#!/usr/bin/env python3
"""Full-volume vs sub-patch processing (the paper's §I/II-A argument).

Trains the same 3D U-Net two ways under an equal step budget -- on full
volumes (the paper's design) and on randomly sampled sub-patches (the
memory-saving alternative it argues against) -- then compares inference
cost and Dice.  Also demonstrates data augmentation and checkpointing
along the way.

Run:  python examples/full_volume_vs_patches.py
"""

import tempfile

import numpy as np

from repro.core import (
    CheckpointManager,
    ExperimentSettings,
    MISPipeline,
    full_volume_inference,
    sliding_window_inference,
    train_on_patches,
)
from repro.core.config import build_model
from repro.data import Augmenter, random_flip, random_gaussian_noise
from repro.nn import Adam, SoftDiceLoss, batch_dice

PATCH = (8, 8, 8)
STEPS = 60


def main() -> None:
    settings = ExperimentSettings(
        num_subjects=10, volume_shape=(16, 16, 16), epochs=1,
        base_filters=4, depth=2, seed=1, use_batchnorm=False,
        scale_learning_rate=False,
    )
    pipeline = MISPipeline(settings)
    train_x, train_y = pipeline.load_split_arrays("train")
    test_x, test_y = pipeline.load_split_arrays("test")
    loss = SoftDiceLoss()
    aug = Augmenter([random_flip(p=0.5), random_gaussian_noise(0.02)], seed=0)

    # -- full-volume training (with augmentation + checkpoints) -------------
    print(f"training FULL-VOLUME for {STEPS} steps...")
    full_net = build_model({}, settings)
    opt = Adam(full_net, lr=3e-3)
    mgr = CheckpointManager(tempfile.mkdtemp(prefix="ckpt_"), keep=2)
    rng = np.random.default_rng(0)
    for step in range(STEPS):
        idx = rng.choice(train_x.shape[0], size=2, replace=False)
        xs, ys = [], []
        for i in idx:
            xi, yi = aug(train_x[i], train_y[i])
            xs.append(xi)
            ys.append(yi)
        x, y = np.stack(xs), np.stack(ys)
        full_net.zero_grad()
        pred = full_net(x)
        value, dpred = loss.forward(pred, y)
        full_net.backward(dpred)
        opt.step()
        if (step + 1) % 20 == 0:
            dice = float(batch_dice(full_net.predict(test_x), test_y).mean())
            mgr.save(full_net, opt, epoch=step, val_dice=dice)
            print(f"  step {step + 1:>3}: loss {value:.3f}  test DSC {dice:.3f}")
    print(f"  best checkpoint: {mgr.best_path}")

    # -- sub-patch training ---------------------------------------------------
    print(f"\ntraining on SUB-PATCHES {PATCH} for {STEPS} steps...")
    patch_net = build_model({}, settings)
    train_on_patches(
        patch_net, loss, Adam(patch_net, lr=3e-3),
        train_x, train_y, patch_shape=PATCH, steps=STEPS,
        patches_per_step=2, rng=np.random.default_rng(0),
    )

    # -- inference comparison ---------------------------------------------------
    full_res = full_volume_inference(full_net, test_x)
    patch_res = sliding_window_inference(patch_net, test_x, PATCH, overlap=0.5)
    full_dice = float(batch_dice(full_res.prediction, test_y).mean())
    patch_dice = float(batch_dice(patch_res.prediction, test_y).mean())

    print("\ninference comparison on the test split:")
    print(f"{'strategy':<14} {'DSC':>6} {'passes':>7} {'overcompute':>12} "
          f"{'seconds':>8}")
    print(f"{'full volume':<14} {full_dice:>6.3f} "
          f"{full_res.forward_passes:>7} "
          f"{full_res.overcompute_factor():>12.2f} {full_res.seconds:>8.3f}")
    print(f"{'sub-patches':<14} {patch_dice:>6.3f} "
          f"{patch_res.forward_passes:>7} "
          f"{patch_res.overcompute_factor():>12.2f} {patch_res.seconds:>8.3f}")
    print("\nthe paper's cost argument in one number: every output voxel "
          f"is computed {patch_res.overcompute_factor():.1f}x when sliding "
          "windows overlap by 50%")


if __name__ == "__main__":
    main()
