#!/usr/bin/env python3
"""What would ASHA have saved on the paper's search?  (simulation)

The paper runs every configuration to the full 250-epoch budget.  This
example composes three of the repo's pieces to estimate what adaptive
early stopping would have changed at paper scale:

* the calibrated cost model prices each trial's wall-clock per epoch;
* a synthetic quality model produces plausible learning curves per
  configuration (better learning rates plateau higher and sooner --
  the *shape* every HPO paper assumes, with seeded noise);
* the real ASHA scheduler decides, rung by rung, which trials stop.

The output: epochs run, simulated elapsed time at 32 GPUs, and whether
the winner survives.  (Synthetic quality model -- an estimate of
mechanism, not a measured claim.)

Run:  python examples/adaptive_search_simulation.py
"""

import numpy as np

from repro.perf import calibrated_model, format_hms, paper_search_grid
from repro.raysim import ASHAScheduler, GridSearch, fifo_schedule, tune_run


def quality_curve(config: dict, epochs: int, rng: np.random.Generator):
    """Plausible validation-dice trajectory for one configuration."""
    lr = config["learning_rate"]
    # sweet spot near 1e-4; width/loss nudge the ceiling slightly
    ceiling = 0.89 - 0.08 * abs(np.log10(lr) + 4.0)
    if config["loss"] == "quadratic_dice":
        ceiling -= 0.01
    if config["base_filters"] == 11:
        ceiling += 0.005
    speed = 25.0 / max(lr / 1e-4, 0.25)  # small lr converges slower
    curve = ceiling * (1.0 - np.exp(-np.arange(1, epochs + 1) / speed))
    return curve + rng.normal(0, 0.004, size=epochs)


def main() -> None:
    model = calibrated_model()
    grid = paper_search_grid()
    rng = np.random.default_rng(0)
    epochs = 250

    # Pre-draw every trial's learning curve (the 'ground truth').
    configs = [
        {"learning_rate": c.learning_rate, "loss": c.loss,
         "base_filters": c.base_filters}
        for c in grid
    ]
    curves = [quality_curve(cfg, epochs, rng) for cfg in configs]
    curve_by_key = {str(cfg): crv for cfg, crv in zip(configs, curves)}

    def trainable(config, reporter):
        curve = curve_by_key[str(config)]
        for epoch in range(1, epochs + 1):
            if not reporter(epoch=epoch, val_dice=float(curve[epoch - 1])):
                return None
        return None

    space = {
        "learning_rate": sorted({c["learning_rate"] for c in configs}),
        "loss": ["dice", "quadratic_dice"],
        "base_filters": [8, 11],
    }

    # FIFO (the paper's setting) vs ASHA.
    fifo = tune_run(trainable, GridSearch(space))
    asha = tune_run(
        trainable, GridSearch(space),
        scheduler=ASHAScheduler("val_dice", grace_period=10,
                                reduction_factor=3, max_t=epochs),
    )

    def costs_at_32(analysis):
        durations = []
        for trial, cfg in zip(analysis.trials, grid):
            frac = len(trial.results) / epochs
            durations.append(model.trial_time(cfg, 1) * frac)
        return fifo_schedule(durations, 32).makespan, sum(durations)

    for name, analysis in (("FIFO (paper)", fifo), ("ASHA", asha)):
        total_epochs = sum(len(t.results) for t in analysis.trials)
        best = analysis.best_trial("val_dice")
        makespan, gpu_seconds = costs_at_32(analysis)
        print(f"{name:<13} epochs run {total_epochs:>5} "
              f"({100 * total_epochs / (len(grid) * epochs):>3.0f}%)  "
              f"elapsed@32GPUs {format_hms(makespan)}  "
              f"GPU-hours {gpu_seconds / 3600:>5.1f}  "
              f"best lr={best.config['learning_rate']:.0e} "
              f"dice={best.best_metric('val_dice'):.3f}")

    print("\nnote the asymmetry: ASHA cuts GPU-HOURS hard but barely the "
          "32-GPU MAKESPAN -- the survivors still run 250 epochs and pin "
          "the critical path (the same floor that caps the paper's x15).")

    same_winner = (
        fifo.best_config("val_dice")["learning_rate"]
        == asha.best_config("val_dice")["learning_rate"]
    )
    print(f"\nsame winning learning rate under both schedulers: {same_winner}")
    print("(quality curves are synthetic; the saving mechanism -- rungs "
          "cutting the bottom 2/3 -- is the real ASHA implementation)")


if __name__ == "__main__":
    main()
