#!/usr/bin/env python3
"""Input-pipeline profiling: why the paper binarises offline.

Reproduces the Section III-B1 analysis with real file I/O: profiles the
per-epoch cost of re-transforming NIfTI volumes every epoch vs reading
pre-binarised TFRecord-style files, prints the stage table (the
TensorBoard-profiler-screenshot equivalent) and the amortisation point.

Run:  python examples/pipeline_profiling.py
"""

from repro.core import profile_online_vs_offline


def main() -> None:
    print("profiling online (transform every epoch) vs offline "
          "(binarise once) input pipelines...\n")
    report = profile_online_vs_offline(
        num_subjects=6,
        volume_shape=(64, 64, 32),
        epochs=3,
    )
    print(report.render())
    print(
        f"\nbottleneck stage: {report.bottleneck().stage} "
        f"({report.bottleneck().per_element_ms:.1f} ms/subject)"
    )
    print(
        "conclusion: the input data is identical every epoch, so the "
        "transform is hoisted out of the training loop -- the paper's "
        "offline TFRecord binarisation (Section III-B1)."
    )


if __name__ == "__main__":
    main()
