#!/usr/bin/env python3
"""Experiment-parallel hyper-parameter tuning (the paper's method 2).

Runs a real grid search through the Ray-Tune-analogue trial runner at
laptop scale, then re-runs it under ASHA early stopping to show the
epochs an adaptive scheduler saves on top of the paper's FIFO setup.

Run:  python examples/hyperparameter_search.py
"""

from repro.core import DistMISRunner, ExperimentSettings, HyperparameterSpace
from repro.core.experiment_parallel import run_search_inprocess
from repro.raysim import ASHAScheduler


def main() -> None:
    space = HyperparameterSpace(
        {
            "learning_rate": [3e-3, 1e-3, 1e-6],
            "loss": ["dice", "quadratic_dice"],
        }
    )
    settings = ExperimentSettings(
        num_subjects=10, volume_shape=(16, 16, 16), epochs=8,
        base_filters=2, depth=2, seed=0,
    )
    print(f"search space: {len(space)} configurations "
          "(the cross-product of the options, Section III-B2)\n")

    runner = DistMISRunner(space=space, settings=settings)
    result = runner.run_inprocess("experiment_parallel")

    print(f"{'trial':<10} {'lr':>8} {'loss':<16} {'val DSC':>8} {'status'}")
    for trial in result.analysis.trials:
        dsc = trial.best_metric("val_dice") or 0.0
        print(f"{trial.trial_id:<10} {trial.config['learning_rate']:>8.0e} "
              f"{trial.config['loss']:<16} {dsc:>8.3f} {trial.status.value}")
    best = result.analysis.best_trial("val_dice")
    print(f"\nbest configuration: {best.config} "
          f"(val DSC {best.best_metric('val_dice'):.3f})")

    # -- the same search under ASHA early stopping --------------------------
    print("\nre-running under ASHA (grace 2, reduction 2)...")
    asha = ASHAScheduler("val_dice", grace_period=2, reduction_factor=2,
                         max_t=settings.epochs, time_attr="epoch")
    pruned = run_search_inprocess(space, settings,
                                  pipeline=runner.pipeline, scheduler=asha)
    full_epochs = sum(len(t.results) for t in result.analysis.trials)
    asha_epochs = sum(len(t.results) for t in pruned.analysis.trials)
    print(f"epochs run: FIFO {full_epochs}, ASHA {asha_epochs} "
          f"({100 * (1 - asha_epochs / full_epochs):.0f}% saved)")
    print(f"ASHA winner: {pruned.analysis.best_config('val_dice')}")


if __name__ == "__main__":
    main()
