#!/usr/bin/env python3
"""Data-parallel training on virtual GPUs (the paper's method 1).

Demonstrates, with real training, the exact semantics Section III-B2's
MirroredStrategy / Ray SGD stack provides: batch sharding across
replicas, ring all-reduce of the gradients, the LR x #GPUs scaling rule
-- and the bit-exactness of sharding at a fixed global batch.

Run:  python examples/data_parallel_training.py
"""


from repro.core import ExperimentSettings, MISPipeline, train_trial
from repro.core.data_parallel import placement_case
from repro.nn import linear_scaling_rule


def main() -> None:
    config = {"learning_rate": 3e-3, "loss": "dice"}

    print("Section III-B2 placement cases:")
    for n in (1, 2, 4, 8, 32):
        lr = linear_scaling_rule(1e-4, n)
        print(f"  n={n:<3} -> {placement_case(n):<11} "
              f"global batch {2 * n:<3} initial LR {lr:.1e}")

    # -- exact sharding demo: one device batch-4 vs two replicas batch-2 -----
    def make(batch_per_replica):
        return ExperimentSettings(
            num_subjects=12, volume_shape=(16, 16, 16), epochs=5,
            base_filters=2, depth=2, seed=3, use_batchnorm=False,
            scale_learning_rate=False, batch_per_replica=batch_per_replica,
        )

    s1, s2 = make(4), make(2)
    pipeline = MISPipeline(s1)
    print("\ntraining the same configuration two ways "
          "(fixed global batch of 4):")
    single = train_trial(config, s1, pipeline, num_replicas=1)
    sharded = train_trial(config, s2, pipeline, num_replicas=2)
    print(f"{'epoch':>5} {'1 GPU loss':>14} {'2-GPU loss':>14} {'delta':>10}")
    for r1, r2 in zip(single.history, sharded.history):
        print(f"{r1.epoch:>5} {r1.train_loss:>14.10f} "
              f"{r2.train_loss:>14.10f} {abs(r1.train_loss - r2.train_loss):>10.1e}")
    print(f"\ntest DSC: single {single.test_dice:.6f}   "
          f"sharded {sharded.test_dice:.6f}")
    assert abs(single.test_dice - sharded.test_dice) < 1e-9
    print("=> gradient sharding + ring all-reduce is exact "
          "(the paper's dice-invariance claim, Section IV-C)")

    # -- the deployed recipe: batch and LR grow with the replica count --------
    print("\nthe deployed recipe (global batch = 2 x #GPUs, LR scaled):")
    deployed = ExperimentSettings(
        num_subjects=12, volume_shape=(16, 16, 16), epochs=15,
        base_filters=4, depth=2, seed=3,
    )
    for n in (1, 2):
        out = train_trial(config, deployed, pipeline, num_replicas=n)
        print(f"  {n} replica(s): global batch {2 * n}, "
              f"LR {out.history[0].lr:.1e}, "
              f"val DSC {out.val_dice:.3f}")


if __name__ == "__main__":
    main()
