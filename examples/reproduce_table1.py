#!/usr/bin/env python3
"""Reproduce Table I and Figure 4 on the simulated MareNostrum-CTE.

Prices the full paper-scale hyper-parameter search (20 trials, 484
volumes, 250 epochs, V100 nodes of 4) under both distribution methods
at 1..32 GPUs using the calibrated cost model and the discrete-event
simulator, printing the reproduction next to the paper's numbers.

Run:  python examples/reproduce_table1.py
"""

from repro.core import DistMISRunner
from repro.perf import (
    TABLE1_DATA_PARALLEL_S,
    TABLE1_DP_SPEEDUPS,
    TABLE1_EP_SPEEDUPS,
    TABLE1_EXPERIMENT_PARALLEL_S,
    format_hms,
)


def main() -> None:
    runner = DistMISRunner()
    print("simulating 3 jittered runs per cell "
          "(the paper averaged three executions)...\n")
    report = runner.simulate_comparison(
        gpu_counts=(1, 2, 4, 8, 12, 16, 32), num_runs=3, base_seed=0
    )

    print("=== Table I (ours vs paper) ===")
    print(f"{'#GPUs':>5} | {'dp ours':>10} {'dp paper':>10} | "
          f"{'ep ours':>10} {'ep paper':>10} | "
          f"{'x dp':>6} {'(ppr)':>6} | {'x ep':>6} {'(ppr)':>6}")
    for row in report.table_rows():
        n = row["num_gpus"]
        print(
            f"{n:>5} | {format_hms(row['dp_elapsed']):>10} "
            f"{format_hms(TABLE1_DATA_PARALLEL_S[n]):>10} | "
            f"{format_hms(row['ep_elapsed']):>10} "
            f"{format_hms(TABLE1_EXPERIMENT_PARALLEL_S[n]):>10} | "
            f"{row['dp_speedup']:>6.2f} {TABLE1_DP_SPEEDUPS[n]:>6.2f} | "
            f"{row['ep_speedup']:>6.2f} {TABLE1_EP_SPEEDUPS[n]:>6.2f}"
        )

    print("\n" + report.render_figure_series())

    gaps = dict(report.crossover_gap())
    print(f"\nspeed-up gap (experiment - data parallel) at 32 GPUs: "
          f"+{gaps[32]:.2f} (paper: +{15.19 - 13.18:.2f})")

    # A peek at the execution trace behind one cell.
    run = runner.simulate("experiment_parallel", 8, seed=0)
    tl = run.timeline
    print(f"\ntrace of experiment-parallel @ 8 GPUs: "
          f"{len(tl.events)} trials over {len(tl.resources())} GPUs, "
          f"mean utilisation {tl.mean_utilization():.0%}")
    print("export with timeline.to_chrome_trace('trace.json') "
          "and open in chrome://tracing")


if __name__ == "__main__":
    main()
