#!/usr/bin/env python3
"""Quickstart: train the paper's 3D U-Net on a synthetic BraTS cohort.

Walks the whole Fig 1 pipeline at laptop scale in about a minute:
generate a synthetic MSD-Task-1-like cohort, binarise it offline into
TFRecord-style files, train the 3D U-Net with the soft Dice loss and
Adam, and report validation/test Dice (the paper's quality metric,
Section IV-C).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ExperimentSettings, MISPipeline, train_trial
from repro.nn import UNet3D


def main() -> None:
    # -- the paper's full-size model, for reference -------------------------
    paper_net = UNet3D(in_channels=4, out_channels=1, base_filters=8,
                       depth=4, rng=np.random.default_rng(0))
    print("Fig 2 model:", paper_net)
    print(f"  filter progression : {paper_net.filters}")
    print("  input contract     : (N, 4, 240, 240, 152) -> (N, 1, 240, 240, 152)")
    paper_net.validate_input_shape((1, 4, 240, 240, 152))

    # -- a laptop-scale run of the same pipeline ----------------------------
    settings = ExperimentSettings(
        num_subjects=10,            # paper: 484
        volume_shape=(16, 16, 16),  # paper: 240 x 240 x 155
        epochs=20,                  # paper: 250
        base_filters=4,             # paper: 8
        depth=2,                    # paper: 4
        seed=1,
    )
    print("\nBuilding the pipeline (synthetic cohort + offline binarisation)...")
    pipeline = MISPipeline(settings)
    files = pipeline.binarize()
    for split, path in files.items():
        print(f"  {split:<5} -> {path} ({path.stat().st_size / 1024:.0f} KiB)")

    print("\nTraining (soft Dice, Adam @ 3e-3)...")
    outcome = train_trial(
        {"learning_rate": 3e-3, "loss": "dice"},
        settings, pipeline, num_replicas=1, convergence_patience=4,
    )
    for rec in outcome.history:
        bar = "#" * int(40 * rec.val_dice)
        print(f"  epoch {rec.epoch:>2}  loss {rec.train_loss:.3f}  "
              f"val DSC {rec.val_dice:.3f} {bar}")

    print(f"\nbest validation DSC : {outcome.val_dice:.3f}")
    print(f"test DSC            : {outcome.test_dice:.3f}")
    print(f"converged at epoch  : {outcome.converged_epoch} "
          f"of {settings.epochs} (paper: ~90 of 250)")
    print(f"wall time           : {outcome.wall_seconds:.1f}s")


if __name__ == "__main__":
    main()
