#!/usr/bin/env python3
"""Fault tolerance: retries, checkpoints, tracking, failure injection.

A 44-hour search on a shared cluster *will* see failures.  This example
stacks the framework's four defences:

1. injected faults + checkpoint-resume retries (`FaultInjector`,
   `RetryPolicy`, `tune_run(retry_policy=...)`),
2. a crash-resumable search log (`RunTracker` + `resume_search`),
3. per-epoch checkpoints (`CheckpointManager`),
4. quantified failure impact on the simulated cluster
   (`cluster.failures` under the same `RetryPolicy`).

Run:  python examples/fault_tolerance.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.cluster.failures import FailureModel, run_with_failures
from repro.core import (
    CheckpointManager,
    ExperimentSettings,
    MISPipeline,
    RunTracker,
    load_checkpoint,
    resume_search,
    train_trial,
)
from repro.core.config import build_model, build_optimizer
from repro.fault_tolerance import FaultInjector, RetryPolicy
from repro.perf import calibrated_model, paper_search_grid
from repro.raysim import GridSearch, tune_run

WORKDIR = Path(tempfile.mkdtemp(prefix="distmis_ft_"))


def flaky_search_with_retries() -> None:
    print("1) injected faults + checkpoint-resume retries " + "-" * 19)
    ckpt_dir = WORKDIR / "toy_ckpts"
    ckpt_dir.mkdir()

    def trainable(config, reporter):
        resume = reporter.resume_from
        if resume is not None and resume.path:
            state = float(np.load(resume.path))
            start = resume.epoch + 1
        else:
            state, start = 0.0, 0
        for epoch in range(start, 5):
            state += config["learning_rate"]
            path = ckpt_dir / f"{reporter.trial_id}_e{epoch}.npy"
            np.save(path, np.asarray(state))
            reporter(epoch=epoch, val_dice=state, checkpoint=str(path))
        return {"val_dice": state}

    injector = FaultInjector(crash_epochs=(2, 3))  # two mid-epoch crashes
    analysis = tune_run(
        injector.wrap(trainable),
        GridSearch({"learning_rate": [1e-2, 1e-3]}),
        retry_policy=RetryPolicy(max_retries=2, resume="checkpoint"),
    )
    for t in analysis.trials:
        resumed = (f"last resume at epoch {t.restored_epoch}"
                   if t.restored_epoch is not None else "never resumed")
        print(f"  {t.trial_id}: {t.status.value} after {t.retries} retries "
              f"({resumed})")
    print(f"  faults injected: {injector.faults_injected}")
    assert analysis.num_errors() == 0


def resumable_search() -> None:
    print("\n2) crash-resumable search log " + "-" * 33)
    settings = ExperimentSettings(num_subjects=6, volume_shape=(16, 16, 16),
                                  epochs=2, base_filters=2, depth=2)
    pipeline = MISPipeline(settings)
    tracker = RunTracker(WORKDIR / "search.jsonl")
    configs = [{"learning_rate": lr} for lr in (3e-3, 1e-3, 1e-4)]

    # First 'process' completes two trials, then 'crashes'.
    for config in configs[:2]:
        out = train_trial(config, settings, pipeline)
        tracker.log_trial(config, "terminated", val_dice=out.val_dice)
    print(f"  before crash: {tracker.summary()}")

    # New 'process' resumes: only the unfinished trial remains.
    remaining = resume_search(configs, tracker)
    print(f"  resuming {len(remaining)} of {len(configs)} trials")
    for config in remaining:
        out = train_trial(config, settings, pipeline)
        tracker.log_trial(config, "terminated", val_dice=out.val_dice)
    best = tracker.best("val_dice")
    print(f"  best after resume: {best.config} "
          f"(val DSC {best.metrics['val_dice']:.3f})")


def checkpointed_training() -> None:
    print("\n3) per-epoch checkpoints " + "-" * 38)
    settings = ExperimentSettings(num_subjects=6, volume_shape=(16, 16, 16),
                                  epochs=3, base_filters=2, depth=2)
    pipeline = MISPipeline(settings)
    mgr = CheckpointManager(WORKDIR / "ckpts", keep=2)

    config = {"learning_rate": 3e-3}
    model = build_model(config, settings)
    opt = build_optimizer(config, settings, model)
    # (train_trial has its own loop; here we drive epochs manually to
    # checkpoint between them)
    from repro.nn import batch_dice

    val_x, val_y = pipeline.load_split_arrays("val")
    from repro.nn import SoftDiceLoss

    loss = SoftDiceLoss()
    for epoch in range(settings.epochs):
        for x, y in pipeline.dataset("train", 2, shuffle_seed=epoch):
            model.zero_grad()
            pred = model(x)
            _, dpred = loss.forward(pred, y)
            model.backward(dpred)
            opt.step()
        dice = float(batch_dice(model.predict(val_x), val_y).mean())
        path = mgr.save(model, opt, epoch=epoch, val_dice=dice)
        print(f"  epoch {epoch}: val DSC {dice:.3f} -> {path.name}")

    restored = build_model(config, settings)
    meta = load_checkpoint(mgr.best_path, restored)
    print(f"  restored best checkpoint: epoch {meta['epoch']}, "
          f"val DSC {meta['val_dice']:.3f}")


def simulated_failure_impact() -> None:
    print("\n4) simulated failure impact at 32 GPUs " + "-" * 24)
    model = calibrated_model()
    grid = paper_search_grid()
    durations = [model.trial_time(c, 1) for c in grid]
    epochs = [c.epochs for c in grid]  # per-epoch checkpoint granularity
    for mtbf_h in (48, 12):
        res = run_with_failures(
            durations, 32,
            FailureModel(mtbf_s=mtbf_h * 3600, repair_s=600),
            seed=1, num_epochs=epochs,
            retry_policy=RetryPolicy(max_retries=10),
        )
        print(f"  MTBF {mtbf_h:>2}h/GPU: makespan {res.makespan/3600:.2f} h, "
              f"{res.num_failures} failures, "
              f"{res.wasted_seconds/60:.0f} min wasted, "
              f"{res.num_abandoned} abandoned")
        for rec in res.retries[:3]:
            print(f"    {rec.trial} attempt {rec.attempt} failed at "
                  f"{rec.failed_at_s/3600:.2f} h -> resume at epoch "
                  f"{rec.resumed_epoch}")


def main() -> None:
    flaky_search_with_retries()
    resumable_search()
    checkpointed_training()
    simulated_failure_impact()


if __name__ == "__main__":
    main()
