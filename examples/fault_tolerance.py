#!/usr/bin/env python3
"""Fault tolerance: retries, checkpoints, tracking, failure injection.

A 44-hour search on a shared cluster *will* see failures.  This example
stacks the framework's four defences:

1. trial retries (`tune_run(max_retries=...)`),
2. a crash-resumable search log (`RunTracker` + `resume_search`),
3. per-epoch checkpoints (`CheckpointManager`),
4. quantified failure impact on the simulated cluster
   (`cluster.failures`).

Run:  python examples/fault_tolerance.py
"""

import tempfile
from pathlib import Path


from repro.cluster.failures import FailureModel, run_with_failures
from repro.core import (
    CheckpointManager,
    ExperimentSettings,
    MISPipeline,
    RunTracker,
    load_checkpoint,
    resume_search,
    train_trial,
)
from repro.core.config import build_model, build_optimizer
from repro.perf import calibrated_model, paper_search_grid
from repro.raysim import GridSearch, tune_run

WORKDIR = Path(tempfile.mkdtemp(prefix="distmis_ft_"))


def flaky_search_with_retries() -> None:
    print("1) flaky trials + retries " + "-" * 40)
    attempts: dict[str, int] = {}

    def trainable(config, reporter):
        key = str(config)
        attempts[key] = attempts.get(key, 0) + 1
        if config["learning_rate"] == 1e-3 and attempts[key] == 1:
            raise RuntimeError("simulated GPU ECC error")
        reporter(val_dice=0.5 + config["learning_rate"])
        return None

    analysis = tune_run(
        trainable, GridSearch({"learning_rate": [1e-2, 1e-3]}),
        max_retries=2,
    )
    for t in analysis.trials:
        print(f"  {t.trial_id}: {t.status.value} after {t.retries} retries")
    assert analysis.num_errors() == 0


def resumable_search() -> None:
    print("\n2) crash-resumable search log " + "-" * 33)
    settings = ExperimentSettings(num_subjects=6, volume_shape=(16, 16, 16),
                                  epochs=2, base_filters=2, depth=2)
    pipeline = MISPipeline(settings)
    tracker = RunTracker(WORKDIR / "search.jsonl")
    configs = [{"learning_rate": lr} for lr in (3e-3, 1e-3, 1e-4)]

    # First 'process' completes two trials, then 'crashes'.
    for config in configs[:2]:
        out = train_trial(config, settings, pipeline)
        tracker.log_trial(config, "terminated", val_dice=out.val_dice)
    print(f"  before crash: {tracker.summary()}")

    # New 'process' resumes: only the unfinished trial remains.
    remaining = resume_search(configs, tracker)
    print(f"  resuming {len(remaining)} of {len(configs)} trials")
    for config in remaining:
        out = train_trial(config, settings, pipeline)
        tracker.log_trial(config, "terminated", val_dice=out.val_dice)
    best = tracker.best("val_dice")
    print(f"  best after resume: {best.config} "
          f"(val DSC {best.metrics['val_dice']:.3f})")


def checkpointed_training() -> None:
    print("\n3) per-epoch checkpoints " + "-" * 38)
    settings = ExperimentSettings(num_subjects=6, volume_shape=(16, 16, 16),
                                  epochs=3, base_filters=2, depth=2)
    pipeline = MISPipeline(settings)
    mgr = CheckpointManager(WORKDIR / "ckpts", keep=2)

    config = {"learning_rate": 3e-3}
    model = build_model(config, settings)
    opt = build_optimizer(config, settings, model)
    # (train_trial has its own loop; here we drive epochs manually to
    # checkpoint between them)
    from repro.nn import batch_dice

    val_x, val_y = pipeline.load_split_arrays("val")
    from repro.nn import SoftDiceLoss

    loss = SoftDiceLoss()
    for epoch in range(settings.epochs):
        for x, y in pipeline.dataset("train", 2, shuffle_seed=epoch):
            model.zero_grad()
            pred = model(x)
            _, dpred = loss.forward(pred, y)
            model.backward(dpred)
            opt.step()
        dice = float(batch_dice(model.predict(val_x), val_y).mean())
        path = mgr.save(model, opt, epoch=epoch, val_dice=dice)
        print(f"  epoch {epoch}: val DSC {dice:.3f} -> {path.name}")

    restored = build_model(config, settings)
    meta = load_checkpoint(mgr.best_path, restored)
    print(f"  restored best checkpoint: epoch {meta['epoch']}, "
          f"val DSC {meta['val_dice']:.3f}")


def simulated_failure_impact() -> None:
    print("\n4) simulated failure impact at 32 GPUs " + "-" * 24)
    model = calibrated_model()
    durations = [model.trial_time(c, 1) for c in paper_search_grid()]
    for mtbf_h in (48, 12):
        res = run_with_failures(
            durations, 32,
            FailureModel(mtbf_s=mtbf_h * 3600, repair_s=600,
                         checkpoint_fraction=0.96),
            seed=1,
        )
        print(f"  MTBF {mtbf_h:>2}h/GPU: makespan {res.makespan/3600:.2f} h, "
              f"{res.num_failures} failures, "
              f"{res.wasted_seconds/60:.0f} min wasted")


def main() -> None:
    flaky_search_with_retries()
    resumable_search()
    checkpointed_training()
    simulated_failure_impact()


if __name__ == "__main__":
    main()
