#!/usr/bin/env python3
"""Artifact kit: regenerate every quantitative result into ./results/.

Writes one plain-text file per artefact (Table I, Fig 4, cost
decomposition, hybrid sweep, deployment analysis, the full markdown
report), so the whole reproduction can be diffed run-to-run.

Run:  python examples/generate_all_results.py [output_dir]
"""

import sys
from pathlib import Path

from repro.core import DistMISRunner
from repro.core.hybrid import best_gpus_per_trial
from repro.core.report import build_report
from repro.perf import (
    DatasetFootprint,
    SpeedupTable,
    TrialConfig,
    calibrated_model,
    epoch_breakdown,
    format_hms,
    paper_search_grid,
    plan_deployment,
)
from repro.cluster import INFINIBAND_EDR


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)
    model = calibrated_model()
    grid = paper_search_grid()
    runner = DistMISRunner()

    # Table I
    table = SpeedupTable(model).render()
    (out_dir / "table1.txt").write_text(table + "\n")
    print(f"table1.txt          <- {table.splitlines()[0][:50]}...")

    # Fig 4 (3 jittered runs)
    report = runner.simulate_comparison(num_runs=3, base_seed=0)
    (out_dir / "fig4.txt").write_text(report.render_figure_series() + "\n")
    print("fig4.txt            <- mean/min/max series, both methods")

    # Cost decomposition
    lines = ["data-parallel cost decomposition (fraction of trial time)"]
    cats = ["compute", "straggler_wait", "allreduce", "input",
            "framework", "validation", "fixed"]
    lines.append("gpus " + " ".join(f"{c:>15}" for c in cats))
    for n in (1, 2, 4, 8, 16, 32):
        fr = epoch_breakdown(model, TrialConfig(), n).fractions()
        lines.append(f"{n:>4} " + " ".join(f"{fr[c]:>15.3f}" for c in cats))
    (out_dir / "cost_breakdown.txt").write_text("\n".join(lines) + "\n")
    print("cost_breakdown.txt  <- per-category trial shares")

    # Hybrid sweep
    lines = ["hybrid parallelism sweep at 32 GPUs (20-trial search)"]
    for g, r in sorted(best_gpus_per_trial(grid, model, 32).items()):
        lines.append(
            f"g={g:>2} slots={r.concurrent_slots:>2} "
            f"elapsed={format_hms(r.elapsed_seconds)} "
            f"util={r.mean_gpu_utilization:.0%}"
        )
    (out_dir / "hybrid_sweep.txt").write_text("\n".join(lines) + "\n")
    print("hybrid_sweep.txt    <- the E14 interior optimum")

    # Deployment analysis
    fp = DatasetFootprint()
    lines = [f"dataset footprint: {fp.gib:.1f} GiB"]
    for nodes in (1, 2, 4, 8):
        staged = plan_deployment(fp, nodes, INFINIBAND_EDR,
                                 strategy="stage_to_nodes")
        shared = plan_deployment(fp, nodes, INFINIBAND_EDR,
                                 strategy="shared_fs")
        lines.append(
            f"{nodes} nodes: stage once {staged.upfront_seconds:.0f}s, "
            f"250-epoch run staged {staged.total_seconds(250) / 3600:.2f}h "
            f"vs shared-fs {shared.total_seconds(250) / 3600:.2f}h"
        )
    (out_dir / "deployment.txt").write_text("\n".join(lines) + "\n")
    print("deployment.txt      <- Fig 1 data-deployment stage analysis")

    # Full markdown report
    (out_dir / "report.md").write_text(build_report(num_runs=3))
    print("report.md           <- the complete paper-vs-ours report")

    # One trial's chrome trace for inspection
    run = runner.simulate("experiment_parallel", 8, seed=0)
    run.timeline.to_chrome_trace(out_dir / "ep8_trace.json")
    print("ep8_trace.json      <- open in chrome://tracing")

    print(f"\nall artefacts in {out_dir.resolve()}")


if __name__ == "__main__":
    main()
