"""RunManifest capture / write / load."""

from repro.telemetry import RunManifest
from repro.telemetry.manifest import git_revision, host_info


class TestCapture:
    def test_capture_fills_environment(self):
        m = RunManifest.capture("inprocess/dp", config={"epochs": 2}, seed=7)
        assert m.kind == "inprocess/dp"
        assert m.seed == 7
        assert m.config == {"epochs": 2}
        assert m.run_id.startswith("inprocess-dp-")
        assert "hostname" in m.host
        assert m.argv  # the current process's argv

    def test_explicit_run_id(self):
        m = RunManifest.capture("k", run_id="my-run")
        assert m.run_id == "my-run"


class TestPersistence:
    def test_write_load_roundtrip(self, tmp_path):
        m = RunManifest.capture(
            "simulate/ep", config={"num_gpus": 8}, seed=1,
            final_metrics={"elapsed_seconds": 123.4},
        )
        path = m.write(tmp_path)
        assert path.name == "manifest.json"
        loaded = RunManifest.load(tmp_path)
        assert loaded.run_id == m.run_id
        assert loaded.kind == "simulate/ep"
        assert loaded.config == {"num_gpus": 8}
        assert loaded.final_metrics == {"elapsed_seconds": 123.4}

    def test_write_is_atomic_no_tmp_left(self, tmp_path):
        RunManifest.capture("k").write(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]

    def test_iso_timestamp_in_dict(self):
        d = RunManifest.capture("k").to_dict()
        assert d["created_iso"].endswith("Z")


class TestEnvironmentProbes:
    def test_host_info_keys(self):
        info = host_info()
        assert {"hostname", "platform", "python", "cpu_count"} <= set(info)

    def test_git_revision_in_repo(self):
        rev = git_revision()
        # inside this repo a sha comes back; outside, None is fine
        if rev is not None:
            assert len(rev.split("+")[0]) == 40

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(cwd=tmp_path) is None
