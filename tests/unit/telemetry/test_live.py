"""Live monitoring: event log, health board, monitor ticks, top view."""

import io
import json
import urllib.request

import pytest

from repro.telemetry import (
    EVENTS_JSONL,
    AlertRule,
    EventLog,
    LiveMonitor,
    TelemetryHub,
    TopView,
    WorkerHealthBoard,
    read_events,
    run_top,
)


def _hb(worker_id, state="busy", trial_id=None, busy=0.0, pid=100):
    return {"worker_id": worker_id, "pid": pid, "state": state,
            "trial_id": trial_id, "busy_seconds": busy}


class TestEventLog:
    def test_seq_strictly_increasing_and_readable(self, tmp_path):
        log = EventLog(tmp_path / EVENTS_JSONL)
        for i in range(3):
            ev = log.append("snapshot", values={"i": i})
            assert ev["seq"] == i
        log.close()
        events = read_events(tmp_path / EVENTS_JSONL)
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert all(e["type"] == "snapshot" for e in events)

    def test_read_events_since_seq_cursor(self, tmp_path):
        log = EventLog(tmp_path / EVENTS_JSONL)
        for _ in range(4):
            log.append("heartbeat")
        log.close()
        assert [e["seq"] for e in read_events(tmp_path / EVENTS_JSONL,
                                              since_seq=1)] == [2, 3]

    def test_read_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / EVENTS_JSONL
        log = EventLog(path)
        log.append("snapshot", values={})
        log.close()
        # simulate a crash mid-append: valid line + torn fragment
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 1, "type": "hea')
        events = read_events(path)
        assert [e["seq"] for e in events] == [0]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_events(tmp_path / "absent.jsonl") == []

    def test_close_is_idempotent(self, tmp_path):
        log = EventLog(tmp_path / EVENTS_JSONL)
        log.append("snapshot")
        log.close()
        log.close()
        assert len(read_events(tmp_path / EVENTS_JSONL)) == 1

    def test_read_under_concurrent_appender(self, tmp_path):
        # a reader racing a writer mid-line must see only whole events,
        # each exactly once, and never raise
        import threading

        path = tmp_path / EVENTS_JSONL
        log = EventLog(path)
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            try:
                for i in range(200):
                    log.append("snapshot", values={"i": i})
            except BaseException as exc:  # surfaced by the main thread
                errors.append(exc)
            finally:
                stop.set()

        t = threading.Thread(target=writer)
        t.start()
        try:
            while not stop.is_set():
                events = read_events(path)
                seqs = [e["seq"] for e in events]
                assert seqs == sorted(set(seqs))  # whole, in order, unique
        finally:
            t.join()
            log.close()
        assert not errors
        assert [e["seq"] for e in read_events(path)] == list(range(200))

    def test_seq_resumes_after_restart(self, tmp_path):
        # a process restart reopening the same events.jsonl must keep
        # seq strictly increasing, or tail cursors silently drop events
        path = tmp_path / EVENTS_JSONL
        log = EventLog(path)
        for _ in range(3):
            log.append("snapshot")
        log.close()
        restarted = EventLog(path)  # fresh instance, same file
        ev = restarted.append("snapshot")
        assert ev["seq"] == 3
        restarted.append("health")
        restarted.close()
        seqs = [e["seq"] for e in read_events(path)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_seq_resumes_past_torn_tail(self, tmp_path):
        path = tmp_path / EVENTS_JSONL
        log = EventLog(path)
        log.append("snapshot")
        log.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 99, "type": "torn')  # crash mid-write
        restarted = EventLog(path)
        ev = restarted.append("snapshot")
        restarted.close()
        # the torn line is unreadable, so numbering resumes after the
        # highest *parseable* seq -- still strictly increasing
        assert ev["seq"] == 1


class TestWorkerHealthBoard:
    def board(self, registry=None):
        return WorkerHealthBoard(registry=registry, interval_s=1.0,
                                 stall_factor=3.0)

    def test_heartbeat_within_window_stays_alive(self):
        b = self.board()
        b.on_heartbeat(_hb(0), now=0.0)
        assert b.check(now=2.0) == []
        assert b.alive_count() == 1
        assert b.stalled_count() == 0

    def test_silence_past_window_stalls(self):
        b = self.board()
        b.on_heartbeat(_hb(0), now=0.0)
        b.on_heartbeat(_hb(1), now=0.0)
        assert b.check(now=3.5) == [0, 1]
        # already stalled: not reported as *newly* stalled again
        assert b.check(now=4.0) == []
        assert b.stalled_count() == 2

    def test_heartbeat_unstalls_and_counter_counts_transitions(self):
        reg = TelemetryHub().metrics
        b = self.board(registry=reg)
        b.on_heartbeat(_hb(0), now=0.0)
        assert b.check(now=4.0) == [0]
        b.on_heartbeat(_hb(0), now=4.5)
        assert b.check(now=5.0) == []
        assert b.alive_count() == 1
        assert b.check(now=9.0) == [0]   # second stall transition
        rows = {r["name"]: r["value"] for r in reg.samples()}
        assert rows["worker_stalled_total"] == 2
        assert rows["workers_stalled"] == 1
        assert rows["workers_alive"] == 0

    def test_mark_dead_stalls_immediately(self):
        b = self.board()
        b.on_heartbeat(_hb(0), now=0.0)
        b.mark_dead(0, now=0.1)
        assert b.check(now=0.2) == [0]   # no waiting out the window

    def test_wall_clock_jump_does_not_stall_workers(self):
        """Stall windows are monotonic arithmetic: a wall-clock step
        (NTP) must neither stall nor un-stall anyone.  The wall reading
        only feeds the exported ``last_seen_wall``."""
        b = self.board()
        b.on_heartbeat(_hb(0), now=0.0, wall=1e9)
        assert b.check(now=1.0) == []          # 1s of monotonic silence
        (row,) = b.snapshot()
        assert row["last_seen_wall"] == 1e9

    def test_snapshot_rows_are_jsonable(self):
        b = self.board()
        b.on_heartbeat(_hb(0, state="busy", trial_id="trial_0001",
                           busy=1.5), now=0.0)
        (row,) = b.snapshot()
        assert json.loads(json.dumps(row)) == row
        assert row["trial_id"] == "trial_0001"
        assert row["heartbeats"] == 1


class TestLiveMonitor:
    def monitor(self, tmp_path, hub=None, **kw):
        hub = TelemetryHub() if hub is None else hub
        kw.setdefault("interval_s", 1.0)
        mon = LiveMonitor(hub, run_dir=tmp_path, **kw)
        hub.attach_live(mon)
        return hub, mon

    def test_tick_respects_interval_and_force(self, tmp_path):
        hub, mon = self.monitor(tmp_path)
        assert mon.tick(now=0.0) is True
        assert mon.tick(now=0.5) is False     # interval not elapsed: free
        assert mon.tick(now=0.5, force=True) is True
        assert mon.tick(now=1.6) is True
        assert mon.snapshots == 3

    def test_data_wait_ratio_is_windowed(self, tmp_path):
        hub, mon = self.monitor(tmp_path)
        hub.on_step_bucket("compute", 1.0)
        mon.tick(now=0.0)
        assert mon.last_values["data_wait_ratio"] == 0.0
        # the next window degrades even though cumulative totals look ok
        hub.on_step_bucket("data_wait", 3.0)
        hub.on_step_bucket("compute", 1.0)
        mon.tick(now=1.5)
        assert mon.last_values["data_wait_ratio"] == pytest.approx(0.75)

    def test_health_view_does_not_advance_the_window(self, tmp_path):
        hub, mon = self.monitor(tmp_path)
        hub.on_step_bucket("compute", 1.0)
        mon.tick(now=0.0)
        hub.on_step_bucket("data_wait", 1.0)
        mon.health_view()                      # read-only view
        mon.health_view()
        mon.tick(now=1.5)
        # the delta window still spans back to the last *tick*
        assert mon.last_values["data_wait_ratio"] == pytest.approx(1.0)

    def test_queue_depth_and_extra_values_surface(self, tmp_path):
        hub, mon = self.monitor(tmp_path)
        hub.metrics.gauge("tune_trials_pending").set(5)
        mon.set_value("replicas", 2)
        values = mon.snapshot_values()
        assert values["queue_depth"] == 5.0
        assert values["replicas"] == 2.0

    def test_alert_flows_into_events_and_hub(self, tmp_path):
        rules = [AlertRule.parse("backlog", "queue_depth > 3",
                                 severity="warning")]
        hub, mon = self.monitor(tmp_path, rules=rules)
        hub.metrics.gauge("tune_trials_pending").set(9)
        mon.tick(now=0.0)
        assert [a.rule for a in hub.alerts] == ["backlog"]
        alerts = [e for e in read_events(tmp_path / EVENTS_JSONL)
                  if e["type"] == "alert"]
        assert [(a["rule"], a["state"]) for a in alerts] \
            == [("backlog", "firing")]
        (snap,) = [e for e in read_events(tmp_path / EVENTS_JSONL)
                   if e["type"] == "snapshot"]
        assert snap["alerts_firing"] == ["backlog"]

    def test_wall_clock_jump_does_not_flap_alerts(self, tmp_path):
        """Hysteresis counts snapshot windows on the monotonic tick
        clock; wall-clock steps between ticks only move the exported
        timestamps, never the firing decision."""
        rules = [AlertRule.parse("backlog", "queue_depth > 3 for 2 windows")]
        hub, mon = self.monitor(tmp_path, rules=rules)
        hub.metrics.gauge("tune_trials_pending").set(9)
        mon.tick(now=0.0, wall=1000.0)            # window 1: streak only
        assert hub.alerts == []
        # NTP steps the wall back an hour between windows
        mon.tick(now=1.5, wall=1000.0 - 3600.0)   # window 2: fires
        assert [(a.rule, a.state) for a in hub.alerts] \
            == [("backlog", "firing")]
        assert hub.alerts[0].fired_at_wall == 1000.0 - 3600.0
        # a forward jump must not spuriously resolve it either
        mon.tick(now=3.0, wall=1000.0 + 7200.0)
        assert [(a.rule, a.state) for a in hub.alerts] \
            == [("backlog", "firing")]

    def test_heartbeats_append_events_and_feed_health(self, tmp_path):
        hub, mon = self.monitor(tmp_path)
        mon.on_heartbeat(_hb(0, trial_id="trial_0000", busy=0.4))
        mon.tick(now=0.0, force=True)
        events = read_events(tmp_path / EVENTS_JSONL)
        assert [e["type"] for e in events] == ["heartbeat", "snapshot"]
        (snap,) = [e for e in events if e["type"] == "snapshot"]
        (worker,) = snap["workers"]
        assert worker["trial_id"] == "trial_0000"
        assert mon.last_values["workers_alive"] == 1.0

    def test_close_is_idempotent_and_writes_final_health(self, tmp_path):
        hub, mon = self.monitor(tmp_path)
        mon.tick(now=0.0)
        mon.close()
        n = len(read_events(tmp_path / EVENTS_JSONL))
        mon.close()                            # crash-safe double flush
        mon.tick(force=True)                   # closed: must be a no-op
        events = read_events(tmp_path / EVENTS_JSONL)
        assert len(events) == n
        assert events[-1]["type"] == "health"

    def test_finalize_run_closes_monitor_and_records_alerts(self, tmp_path):
        hub = TelemetryHub(run_dir=tmp_path)
        rules = [AlertRule.parse("backlog", "queue_depth > 3")]
        mon = LiveMonitor(hub, interval_s=1.0, rules=rules)
        hub.attach_live(mon)
        hub.metrics.gauge("tune_trials_pending").set(9)
        hub.finalize_run("unit", config={}, seed=0)
        assert mon._closed
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert [a["rule"] for a in manifest["alerts"]] == ["backlog"]
        assert (tmp_path / EVENTS_JSONL).exists()

    def test_http_endpoint_serves_health_and_metrics(self, tmp_path):
        hub, mon = self.monitor(tmp_path, http_port=0)
        try:
            hub.metrics.counter("train_steps_total").inc(3)
            mon.on_heartbeat(_hb(0))
            mon.tick(now=0.0, force=True)
            base = f"http://127.0.0.1:{mon.http_port}"
            with urllib.request.urlopen(f"{base}/health", timeout=5) as r:
                health = json.loads(r.read())
            assert health["workers_alive"] == 1
            assert health["snapshots"] == 1
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as r:
                prom = r.read().decode()
            assert "train_steps_total 3" in prom
        finally:
            mon.close()
        assert mon.http_port is None


class TestTopView:
    def events_for_run(self, tmp_path):
        hub = TelemetryHub()
        mon = LiveMonitor(hub, run_dir=tmp_path, interval_s=1.0)
        hub.attach_live(mon)
        hub.on_step_bucket("compute", 3.0)
        hub.on_step_bucket("data_wait", 1.0)
        mon.on_heartbeat(_hb(0, state="busy", trial_id="trial_0002",
                             busy=2.5))
        mon.on_heartbeat(_hb(1, state="idle"))
        mon.tick(now=0.0, force=True)
        mon.close()
        return tmp_path

    def test_render_shows_workers_buckets_and_alerts(self, tmp_path):
        run_dir = self.events_for_run(tmp_path)
        view = TopView()
        events = read_events(run_dir / EVENTS_JSONL)
        assert view.ingest(events) == len(events)
        assert view.ingest(events) == 0        # idempotent re-ingest
        out = view.render()
        assert "workers (2/2 alive)" in out
        assert "trial_0002" in out
        assert "compute" in out and "data_wait" in out
        assert "alerts: none firing" in out
        assert view.finished                   # saw the terminal health event

    def test_render_flags_stalled_workers_and_firing_alerts(self):
        view = TopView()
        view.ingest([
            {"seq": 0, "t_wall": 0.0, "type": "alert", "rule": "r",
             "state": "firing", "severity": "critical", "message": "boom"},
            {"seq": 1, "t_wall": 0.0, "type": "snapshot", "values": {},
             "buckets": {}, "workers": [
                 {"worker_id": 0, "pid": 9, "state": "dead",
                  "trial_id": None, "busy_seconds": 0.0, "stalled": True}],
             "alerts_firing": ["r"]},
        ])
        out = view.render(now=0.0)
        assert "ALERTS FIRING" in out and "boom" in out
        assert "STALLED" in out

    def test_heartbeat_freshness_is_seq_ordered_not_wall(self):
        """A wall-clock step must not make a fresh heartbeat look stale:
        row refresh is ordered by event ``seq``, and the rendered
        snapshot age clamps at zero."""
        view = TopView()
        view.ingest([
            {"seq": 0, "t_wall": 100.0, "type": "snapshot", "values": {},
             "buckets": {}, "workers": [
                 {"worker_id": 0, "state": "idle", "trial_id": None,
                  "busy_seconds": 0.0, "stalled": False}]},
            # newer event, older wall stamp (clock stepped backwards)
            {"seq": 1, "t_wall": 50.0, "type": "heartbeat", "worker_id": 0,
             "state": "busy", "trial_id": "trial_0007", "busy_seconds": 1.0},
        ])
        out = view.render(now=0.0)
        assert "trial_0007" in out
        assert "age   0.0s" in out

    def test_render_before_any_snapshot(self):
        assert "no snapshots" in TopView().render()

    def test_render_serve_run_shows_gauges_and_quantiles(self):
        view = TopView()
        view.ingest([
            {"seq": 0, "t_wall": 0.0, "type": "alert",
             "rule": "serve_p99_slo", "state": "firing",
             "severity": "critical", "message": "p99 over SLO"},
            {"seq": 1, "t_wall": 0.0, "type": "snapshot", "values": {
                "serve_queue_depth": 7.0, "serve_inflight": 4.0,
                "serve_replicas": 2.0, "serve_latency_p50": 0.0123,
                "serve_latency_p95": 0.0456, "serve_latency_p99": 0.6},
             "buckets": {}, "workers": []},
        ])
        out = view.render(now=0.0)
        assert "serving:  queue 7  in-flight 4  replicas 2" in out
        assert "p50 12.3ms" in out and "p95 45.6ms" in out
        assert "p99 600.0ms" in out
        assert "serve_p99_slo" in out and "ALERTS FIRING" in out
        # a serve run with no step activity drops the training buckets
        assert "step-time buckets" not in out

    def test_render_serve_gauges_without_quantiles(self):
        view = TopView()
        view.ingest([
            {"seq": 0, "t_wall": 0.0, "type": "snapshot", "values": {
                "serve_queue_depth": 0.0, "serve_inflight": 0.0,
                "serve_replicas": 1.0},
             "buckets": {}, "workers": []},
        ])
        out = view.render(now=0.0)
        assert "serving:  queue 0" in out
        assert "latency" not in out  # no histogram observations yet

    def test_run_top_non_tty_oneshot_and_missing_dir(self, tmp_path):
        run_dir = self.events_for_run(tmp_path / "run")
        out = io.StringIO()
        assert run_top(run_dir, stream=out) == 0
        assert "distmis top" in out.getvalue()
        assert run_top(tmp_path / "nowhere", stream=io.StringIO()) == 1

    def test_run_top_follow_stops_after_final_health(self, tmp_path):
        run_dir = self.events_for_run(tmp_path)
        out = io.StringIO()
        naps = []
        rc = run_top(run_dir, follow=True, interval_s=0.0, stream=out,
                     clock=lambda: 0.0, sleep=naps.append)
        assert rc == 0
        # frame 1 ingests everything incl. the health event; frame 2 sees
        # nothing new behind it and the loop exits on its own
        assert len(naps) == 1
