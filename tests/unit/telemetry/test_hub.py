"""TelemetryHub wiring, the null sink, and the end-to-end run directory."""

import json

import pytest

from repro.cluster import Timeline
from repro.telemetry import (
    NULL_HUB,
    NullHub,
    TelemetryHub,
    get_hub,
    set_hub,
)


class TestLiveHub:
    def test_on_stage_feeds_metrics_and_trace(self):
        hub = TelemetryHub()
        hub.on_stage("binarize.train", 0.25, elements=4)
        fam = hub.metrics.get("pipeline_stage_seconds_total")
        assert fam.labels(stage="binarize.train").value == pytest.approx(0.25)
        (sp,) = hub.tracer.closed_spans()
        assert sp.category == "pipeline"
        assert sp.duration == pytest.approx(0.25)

    def test_flush_writes_run_dir(self, tmp_path):
        hub = TelemetryHub(run_dir=tmp_path / "run")
        hub.metrics.counter("x_total").inc()
        with hub.span("work"):
            pass
        sim = Timeline()
        sim.record("sim", 0.0, 1.0, "gpu0")
        hub.attach_timeline(sim)
        out = hub.finalize_run("test", config={"a": 1}, seed=0,
                               final_metrics={"m": 2})
        names = {p.name for p in out.iterdir()}
        assert names == {"manifest.json", "metrics.jsonl", "metrics.prom",
                         "trace.json"}
        trace = json.loads((out / "trace.json").read_text())
        spans = [e for e in trace if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"work", "sim"}
        # the wall-clock anchor rides along as a metadata event
        (anchor,) = [e for e in trace if e["name"] == "clock_anchor"]
        assert anchor["ph"] == "M"
        assert anchor["args"]["wall_t0_unix"] == hub.tracer.wall_t0

    def test_flush_without_run_dir_is_noop(self):
        assert TelemetryHub().flush() is None

    def test_flush_is_crash_safe(self, tmp_path, monkeypatch):
        # flush rewrites every artefact wholesale; an interrupt mid-write
        # must leave the previous file intact and no temp litter behind
        import repro.telemetry.fsio as fsio

        hub = TelemetryHub(run_dir=tmp_path)
        hub.metrics.counter("x_total").inc()
        hub.flush()
        before = (tmp_path / "metrics.jsonl").read_text()

        real_replace = fsio.os.replace

        def boom(src, dst):
            raise OSError("interrupted")

        monkeypatch.setattr(fsio.os, "replace", boom)
        hub.metrics.counter("x_total").inc()
        with pytest.raises(OSError):
            hub.flush()
        monkeypatch.setattr(fsio.os, "replace", real_replace)
        assert (tmp_path / "metrics.jsonl").read_text() == before
        assert not list(tmp_path.glob("*.tmp"))

    def test_profile_flush_writes_profile_json(self, tmp_path):
        hub = TelemetryHub(run_dir=tmp_path, profile=True)
        hub.on_step_bucket("compute", 1.5)
        hub.flush()
        data = json.loads((tmp_path / "profile.json").read_text())
        assert data["buckets"]["compute"] == pytest.approx(1.5)
        assert data["source"] == "measured"

    def test_default_hub_swap(self):
        hub = TelemetryHub()
        try:
            set_hub(hub)
            assert get_hub() is hub
        finally:
            set_hub(None)
        assert get_hub() is NULL_HUB


class TestNullSink:
    def test_disabled_and_silent(self, tmp_path):
        hub = NullHub()
        assert hub.enabled is False
        # every recording path is a no-op that returns a reusable object
        m = hub.metrics.counter("x_total", "h", ("a",))
        assert m.labels(a=1) is m
        m.inc()
        m.observe(1.0)
        m.set(2.0)
        with hub.span("s") as sp:
            sp.set(k=1)
        hub.on_stage("stage", 0.1)
        hub.attach_timeline(Timeline())
        assert hub.flush(tmp_path / "nothing") is None
        assert hub.finalize_run("kind") is None
        assert not (tmp_path / "nothing").exists()

    def test_null_registry_empty(self):
        hub = NullHub()
        assert len(hub.metrics) == 0
        assert hub.metrics.to_prometheus() == ""
        assert hub.tracer.to_chrome_trace() == []

    def test_instrumented_handles_preresolved_once(self):
        # the branch-free contract: code resolves handles at construction
        # and calls plain methods per event -- on the null twin every one
        # of those is the same shared no-op object
        hub = NULL_HUB
        h1 = hub.metrics.histogram("a", buckets=(1,))
        h2 = hub.metrics.counter("b")
        assert h1 is h2


class TestEndToEnd:
    def test_run_inprocess_emits_full_run_dir(self, tmp_path):
        from repro.core import (
            DistMISRunner,
            ExperimentSettings,
            HyperparameterSpace,
        )

        hub = TelemetryHub(run_dir=tmp_path / "run")
        runner = DistMISRunner(
            space=HyperparameterSpace({"learning_rate": [3e-3],
                                       "loss": ["dice"]}),
            settings=ExperimentSettings(num_subjects=6,
                                        volume_shape=(8, 8, 8),
                                        epochs=1, base_filters=2, depth=2),
            telemetry=hub,
        )
        result = runner.run_inprocess("experiment_parallel")
        assert result.best().val_dice >= 0.0

        run_dir = tmp_path / "run"
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["kind"] == "inprocess/experiment_parallel"
        assert manifest["final_metrics"]["num_trials"] == 1

        rows = [json.loads(line) for line in
                (run_dir / "metrics.jsonl").read_text().splitlines()]
        names = {r["name"] for r in rows}
        assert {"train_steps_total", "train_step_seconds", "train_loss",
                "pipeline_stage_seconds_total",
                "tune_trials_total"} <= names
        steps = next(r for r in rows if r["name"] == "train_steps_total")
        assert steps["value"] > 0

        prom = (run_dir / "metrics.prom").read_text()
        assert "# TYPE train_step_seconds histogram" in prom

        trace = json.loads((run_dir / "trace.json").read_text())
        cats = {e["cat"] for e in trace}
        # training-loop spans AND pipeline-stage spans in one view
        assert {"train", "pipeline", "run", "trial", "eval"} <= cats

    def test_disabled_run_writes_nothing(self, tmp_path):
        from repro.core import (
            DistMISRunner,
            ExperimentSettings,
            HyperparameterSpace,
        )

        runner = DistMISRunner(
            space=HyperparameterSpace({"learning_rate": [3e-3],
                                       "loss": ["dice"]}),
            settings=ExperimentSettings(num_subjects=6,
                                        volume_shape=(8, 8, 8),
                                        epochs=1, base_filters=2, depth=2),
            telemetry=NULL_HUB,
        )
        runner.run_inprocess("experiment_parallel")
        assert list(tmp_path.iterdir()) == []

    def test_simulate_merges_sim_timeline(self, tmp_path):
        from repro.core import DistMISRunner

        hub = TelemetryHub(run_dir=tmp_path / "sim")
        run = DistMISRunner(telemetry=hub).simulate("experiment_parallel", 4,
                                                    seed=0)
        assert run.elapsed_seconds > 0
        trace = json.loads((tmp_path / "sim" / "trace.json").read_text())
        pids = {e["pid"] for e in trace}
        assert pids == {0, 1}  # real spans + the simulated timeline
