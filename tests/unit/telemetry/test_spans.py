"""Tracer: nesting, explicit-clock spans, Timeline interop, Chrome export."""

import json

import pytest

from repro.cluster import Timeline
from repro.telemetry import Tracer


class TestNesting:
    def test_nested_spans_get_depth(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        spans = {s.name: s for s in tr.closed_spans()}
        assert spans["outer"].depth == 0
        assert spans["inner"].depth == 1
        # inner closes first
        assert spans["inner"].end <= spans["outer"].end

    def test_exception_recorded_and_propagated(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        (sp,) = tr.closed_spans()
        assert sp.attrs["error"] == "RuntimeError"

    def test_set_attaches_attrs(self):
        tr = Tracer()
        with tr.span("s") as sp:
            sp.set(epoch=3)
        assert tr.closed_spans()[0].attrs["epoch"] == 3

    def test_add_completed_ends_now(self):
        tr = Tracer()
        sp = tr.add_completed("stage", 0.5, category="pipeline")
        assert sp.duration == pytest.approx(0.5)
        assert sp.end <= tr.now()


class TestExplicitClock:
    def test_record_span_virtual_time(self):
        tr = Tracer()
        sp = tr.record_span("trial", 100.0, 250.0, resource="gpu3")
        assert sp.duration == 150.0

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record_span("x", 2.0, 1.0)

    def test_ingest_timeline(self):
        tl = Timeline()
        tl.record("t0", 0.0, 5.0, "gpu0", category="train", lr=1e-3)
        tr = Tracer()
        assert tr.ingest_timeline(tl) == 1
        (sp,) = tr.closed_spans()
        assert (sp.name, sp.resource, sp.category) == ("t0", "gpu0", "train")
        assert sp.attrs == {"lr": 1e-3}

    def test_to_timeline_roundtrip(self):
        tr = Tracer()
        tr.record_span("a", 0.0, 2.0, resource="r1", category="train")
        tl = tr.to_timeline()
        assert tl.makespan() == 2.0
        assert tl.by_category() == {"train": 2.0}


class TestElapsed:
    def test_closed_span_returns_duration(self):
        tr = Tracer()
        sp = tr.record_span("t", 1.0, 3.0)
        assert sp.elapsed() == pytest.approx(2.0)
        assert sp.elapsed(now=100.0) == pytest.approx(2.0)

    def test_open_span_measures_against_now(self):
        from repro.telemetry import Span

        sp = Span(name="t", start=5.0)
        assert sp.elapsed(now=7.5) == pytest.approx(2.5)
        assert sp.elapsed(now=4.0) == 0.0  # clamped, never negative

    def test_open_span_without_now_raises(self):
        from repro.telemetry import Span

        sp = Span(name="t", start=0.0)
        with pytest.raises(ValueError):
            sp.elapsed()
        with pytest.raises(ValueError):
            sp.duration  # duration stays strict: open spans have none


class TestChromeExport:
    def test_merged_view_separates_pids(self, tmp_path):
        tr = Tracer()
        with tr.span("real_work"):
            pass
        sim = Timeline()
        sim.record("sim_trial", 0.0, 60.0, "gpu0", category="train")
        path = tmp_path / "trace.json"
        events = tr.to_chrome_trace(path, extra_timelines=[sim])
        assert json.loads(path.read_text()) == events
        by_name = {e["name"]: e for e in events}
        assert by_name["real_work"]["pid"] == 0
        assert by_name["sim_trial"]["pid"] == 1
        assert by_name["sim_trial"]["dur"] == pytest.approx(60e6)
        assert all(e["ph"] == "X" for e in events
                   if e.get("cat") != "__metadata")
        assert by_name["clock_anchor"]["args"]["wall_t0_unix"] == tr.wall_t0

    def test_lanes_per_resource(self):
        tr = Tracer()
        tr.record_span("a", 0, 1, resource="gpu0")
        tr.record_span("b", 0, 1, resource="gpu1")
        tr.record_span("c", 1, 2, resource="gpu0")
        events = tr.to_chrome_trace()
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["a"] == tids["c"]
        assert tids["a"] != tids["b"]
