"""Tracer: nesting, explicit-clock spans, Timeline interop, Chrome export."""

import json

import pytest

from repro.cluster import Timeline
from repro.telemetry import Tracer


class TestNesting:
    def test_nested_spans_get_depth(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        spans = {s.name: s for s in tr.closed_spans()}
        assert spans["outer"].depth == 0
        assert spans["inner"].depth == 1
        # inner closes first
        assert spans["inner"].end <= spans["outer"].end

    def test_exception_recorded_and_propagated(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        (sp,) = tr.closed_spans()
        assert sp.attrs["error"] == "RuntimeError"

    def test_set_attaches_attrs(self):
        tr = Tracer()
        with tr.span("s") as sp:
            sp.set(epoch=3)
        assert tr.closed_spans()[0].attrs["epoch"] == 3

    def test_add_completed_ends_now(self):
        tr = Tracer()
        sp = tr.add_completed("stage", 0.5, category="pipeline")
        assert sp.duration == pytest.approx(0.5)
        assert sp.end <= tr.now()


class TestExplicitClock:
    def test_record_span_virtual_time(self):
        tr = Tracer()
        sp = tr.record_span("trial", 100.0, 250.0, resource="gpu3")
        assert sp.duration == 150.0

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record_span("x", 2.0, 1.0)

    def test_ingest_timeline(self):
        tl = Timeline()
        tl.record("t0", 0.0, 5.0, "gpu0", category="train", lr=1e-3)
        tr = Tracer()
        assert tr.ingest_timeline(tl) == 1
        (sp,) = tr.closed_spans()
        assert (sp.name, sp.resource, sp.category) == ("t0", "gpu0", "train")
        assert sp.attrs == {"lr": 1e-3}

    def test_to_timeline_roundtrip(self):
        tr = Tracer()
        tr.record_span("a", 0.0, 2.0, resource="r1", category="train")
        tl = tr.to_timeline()
        assert tl.makespan() == 2.0
        assert tl.by_category() == {"train": 2.0}


class TestElapsed:
    def test_closed_span_returns_duration(self):
        tr = Tracer()
        sp = tr.record_span("t", 1.0, 3.0)
        assert sp.elapsed() == pytest.approx(2.0)
        assert sp.elapsed(now=100.0) == pytest.approx(2.0)

    def test_open_span_measures_against_now(self):
        from repro.telemetry import Span

        sp = Span(name="t", start=5.0)
        assert sp.elapsed(now=7.5) == pytest.approx(2.5)
        assert sp.elapsed(now=4.0) == 0.0  # clamped, never negative

    def test_open_span_without_now_raises(self):
        from repro.telemetry import Span

        sp = Span(name="t", start=0.0)
        with pytest.raises(ValueError):
            sp.elapsed()
        with pytest.raises(ValueError):
            sp.duration  # duration stays strict: open spans have none


class TestChromeExport:
    def test_merged_view_separates_pids(self, tmp_path):
        tr = Tracer()
        with tr.span("real_work"):
            pass
        sim = Timeline()
        sim.record("sim_trial", 0.0, 60.0, "gpu0", category="train")
        path = tmp_path / "trace.json"
        events = tr.to_chrome_trace(path, extra_timelines=[sim])
        assert json.loads(path.read_text()) == events
        by_name = {e["name"]: e for e in events}
        assert by_name["real_work"]["pid"] == 0
        assert by_name["sim_trial"]["pid"] == 1
        assert by_name["sim_trial"]["dur"] == pytest.approx(60e6)
        assert all(e["ph"] == "X" for e in events
                   if e.get("cat") != "__metadata")
        assert by_name["clock_anchor"]["args"]["wall_t0_unix"] == tr.wall_t0

    def test_lanes_per_resource(self):
        tr = Tracer()
        tr.record_span("a", 0, 1, resource="gpu0")
        tr.record_span("b", 0, 1, resource="gpu1")
        tr.record_span("c", 1, 2, resource="gpu0")
        events = tr.to_chrome_trace()
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["a"] == tids["c"]
        assert tids["a"] != tids["b"]


class TestOpenSpans:
    """Open (end is None) spans must never leak into exports -- not as
    a crash, not as a dur-less event, and never twice once closed."""

    def test_open_span_excluded_from_closed_and_chrome(self):
        from repro.telemetry import Span

        tr = Tracer()
        open_sp = Span(name="inflight", start=tr.now())
        with tr._lock:
            tr.spans.append(open_sp)  # a live progress view does this
        tr.record_span("finished", 0.0, 1.0)
        assert [s.name for s in tr.closed_spans()] == ["finished"]
        events = tr.to_chrome_trace()
        assert "inflight" not in {e["name"] for e in events}

    def test_span_closing_after_early_insert_emitted_once(self):
        tr = Tracer()
        active = tr.span("watched")
        with tr._lock:
            tr.spans.append(active.span)  # inserted while still open
        assert tr.closed_spans() == []    # not finished yet
        active.__exit__(None, None, None)  # _finish re-appends it
        closed = tr.closed_spans()
        assert [s.name for s in closed] == ["watched"]
        events = tr.to_chrome_trace()
        assert sum(1 for e in events if e["name"] == "watched") == 1

    def test_open_span_skipped_across_frame_boundaries(self):
        # the execpool worker streams incremental frames; a span open at
        # frame N must appear exactly once (in the frame after it closes)
        from repro.telemetry import TelemetryHub, capture_frame

        hub = TelemetryHub()
        active = hub.tracer.span("long_compute", category="serve")
        with hub.tracer._lock:
            hub.tracer.spans.append(active.span)
        frame1, cursor = capture_frame(hub, worker_id=0)
        assert [s["name"] for s in frame1["spans"]] == []
        active.__exit__(None, None, None)
        frame2, cursor = capture_frame(hub, worker_id=0, since=cursor)
        assert [s["name"] for s in frame2["spans"]] == ["long_compute"]
        frame3, _ = capture_frame(hub, worker_id=0, since=cursor)
        assert frame3["spans"] == []  # never a second copy

    def test_closed_before_capture_listed_twice_emitted_once(self):
        from repro.telemetry import TelemetryHub, capture_frame

        hub = TelemetryHub()
        sp = hub.tracer.record_span("done", 0.0, 0.5)
        with hub.tracer._lock:
            hub.tracer.spans.append(sp)  # duplicate identity in the list
        frame, _ = capture_frame(hub, worker_id=1)
        assert [s["name"] for s in frame["spans"]] == ["done"]
