"""Cross-process aggregation: frames, anchor alignment, registry merge."""

import json

import pytest

from repro.telemetry import (
    TelemetryHub,
    TraceAggregator,
    Tracer,
    capture_frame,
    merge_registries,
    merged_chrome_trace,
    sanitize_frame,
)
from repro.telemetry.hub import STAGE_LATENCY_BUCKETS


def _worker_hub(anchor_offset: float, base: TelemetryHub) -> TelemetryHub:
    hub = TelemetryHub()
    # Pin the worker's wall-clock anchor relative to the driver's: the
    # worker started `anchor_offset` seconds after it.
    hub.tracer.wall_t0 = base.tracer.wall_t0 + anchor_offset
    return hub


class TestFrames:
    def test_capture_frame_contents(self):
        driver = TelemetryHub()
        w = _worker_hub(0.0, driver)
        w.metrics.counter("train_steps_total").inc(7)
        w.tracer.record_span("trial_0000", 1.0, 3.0, category="trial")
        frame, cursor = capture_frame(w, worker_id=2)
        assert frame["worker_id"] == 2
        assert frame["pid"] > 0
        assert frame["anchor_wall"] == w.tracer.wall_t0
        assert [s["name"] for s in frame["spans"]] == ["trial_0000"]
        assert any(r["name"] == "train_steps_total"
                   for r in frame["samples"])
        assert cursor == 1

    def test_cursor_makes_spans_incremental(self):
        driver = TelemetryHub()
        w = _worker_hub(0.0, driver)
        w.tracer.record_span("a", 0.0, 1.0)
        frame1, cursor = capture_frame(w, worker_id=0)
        w.tracer.record_span("b", 1.0, 2.0)
        frame2, cursor = capture_frame(w, worker_id=0, since=cursor)
        assert [s["name"] for s in frame1["spans"]] == ["a"]
        assert [s["name"] for s in frame2["spans"]] == ["b"]
        assert cursor == 2

    def test_frame_is_json_serialisable(self):
        # frames travel over a multiprocessing queue; JSON round-trip is
        # the stricter contract and catches stray numpy scalars
        driver = TelemetryHub()
        w = _worker_hub(0.0, driver)
        w.on_stage("decode", 0.25, elements=4)
        w.metrics.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.5)
        frame, _ = capture_frame(w, worker_id=1)
        assert json.loads(json.dumps(frame)) == frame


class TestAlignment:
    def test_worker_spans_shift_into_driver_timebase(self):
        driver = TelemetryHub()
        w = _worker_hub(5.0, driver)  # worker clock started 5 s later
        w.tracer.record_span("work", 1.0, 2.0, category="trial")
        frame, _ = capture_frame(w, worker_id=0)
        frame["pid"] = 4242  # distinct from the driver's pid
        agg = TraceAggregator()
        agg.add_frame(frame)
        ((pid, span),) = list(agg.aligned_spans(driver.tracer.wall_t0))
        assert pid == 4242
        assert span.start == pytest.approx(6.0)
        assert span.end == pytest.approx(7.0)

    def test_merged_trace_has_per_process_rows(self):
        driver = TelemetryHub()
        with driver.span("drive"):
            pass
        agg = TraceAggregator()
        for wid, pid in ((0, 1001), (1, 1002)):
            w = _worker_hub(1.0, driver)
            w.tracer.record_span(f"trial_{wid}", 0.0, 1.0, category="trial")
            frame, _ = capture_frame(w, worker_id=wid)
            frame["pid"] = pid
            agg.add_frame(frame)
        events = merged_chrome_trace(driver.tracer, agg)
        x = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in x} >= {1001, 1002}
        names = {e["args"]["name"] for e in events
                 if e["name"] == "process_name"}
        assert {"driver", "worker-0", "worker-1"} <= names
        # worker spans land at driver time anchor_delta + start = 1.0 s
        trial_ts = [e["ts"] for e in x if e["name"].startswith("trial_")]
        assert trial_ts == [pytest.approx(1e6)] * 2
        (anchor,) = [e for e in events if e["name"] == "clock_anchor"]
        assert anchor["args"]["wall_t0_unix"] == driver.tracer.wall_t0

    def test_sim_timelines_get_pids_above_real_ones(self):
        from repro.cluster import Timeline

        tr = Tracer()
        tr.record_span("real", 0.0, 1.0)
        sim = Timeline()
        sim.record("sim", 0.0, 1.0, "gpu0")
        events = merged_chrome_trace(tr, None, extra_timelines=[sim])
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["sim"]["pid"] > by_name["real"]["pid"]


class TestRegistryMerge:
    def test_counters_sum_and_gauges_last_write(self):
        sets = []
        for steps, dice in ((5, 0.7), (3, 0.9)):
            reg = TelemetryHub().metrics
            reg.counter("train_steps_total").inc(steps)
            reg.gauge("val_dice").set(dice)
            sets.append(reg.samples())
        merged = merge_registries(sets)
        rows = {(r["name"]): r for r in merged.samples()}
        assert rows["train_steps_total"]["value"] == 8
        assert rows["val_dice"]["value"] == pytest.approx(0.9)

    def test_labelled_series_stay_separate(self):
        sets = []
        for worker in (0, 1):
            reg = TelemetryHub().metrics
            reg.counter("execpool_tasks_total", labelnames=("worker",)) \
                .labels(worker=worker).inc(worker + 1)
            sets.append(reg.samples())
        merged = merge_registries(sets)
        by_worker = {r["labels"]["worker"]: r["value"]
                     for r in merged.samples()}
        assert by_worker == {"0": 1, "1": 2}

    def test_histograms_merge_buckets_sum_count(self):
        sets = []
        for values in ((0.2, 0.4), (0.6,)):
            reg = TelemetryHub().metrics
            h = reg.histogram("step_seconds", buckets=(0.5, 1.0))
            for v in values:
                h.observe(v)
            sets.append(reg.samples())
        merged = merge_registries(sets)
        (row,) = merged.samples()
        assert row["count"] == 3
        assert row["sum"] == pytest.approx(1.2)
        # cumulative bucket counts: two <= 0.5, all three <= 1.0
        assert row["buckets"] == {"0.5": 2, "1.0": 3}

    def test_merged_samples_spans_driver_and_workers(self):
        driver = TelemetryHub()
        driver.metrics.counter("train_steps_total").inc(2)
        w = _worker_hub(0.0, driver)
        w.metrics.counter("train_steps_total").inc(5)
        frame, _ = capture_frame(w, worker_id=0)
        driver.ingest_worker_frame(frame)
        (row,) = [r for r in driver.merged_samples()
                  if r["name"] == "train_steps_total"]
        assert row["value"] == 7

    def test_merge_is_invariant_to_frame_arrival_order(self):
        # frames from different workers can interleave arbitrarily on
        # the result queue; counters/histograms sum (order-free) and a
        # colliding gauge resolves by sorted worker id, not arrival
        def frame_for(wid, steps, dice, latency, driver):
            w = _worker_hub(0.0, driver)
            w.metrics.counter("train_steps_total").inc(steps)
            w.metrics.gauge("val_dice").set(dice)
            w.metrics.histogram("step_seconds",
                                buckets=(0.5, 1.0)).observe(latency)
            return capture_frame(w, worker_id=wid)[0]

        merges = []
        for order in ((0, 1), (1, 0)):
            driver = TelemetryHub()
            frames = {0: frame_for(0, 5, 0.7, 0.2, driver),
                      1: frame_for(1, 3, 0.9, 0.8, driver)}
            for wid in order:
                driver.ingest_worker_frame(frames[wid])
            merges.append({(r["name"], tuple(sorted(r["labels"].items()))): r
                           for r in driver.merged_samples()})
        first, second = merges
        assert first == second
        assert first[("train_steps_total", ())]["value"] == 8
        assert first[("val_dice", ())]["value"] == pytest.approx(0.9)
        h = first[("step_seconds", ())]
        assert h["count"] == 2 and h["sum"] == pytest.approx(1.0)

    def test_same_worker_frames_are_cumulative_not_summed(self):
        # a worker's samples are cumulative snapshots: the latest frame
        # supersedes earlier ones instead of double-counting
        driver = TelemetryHub()
        w = _worker_hub(0.0, driver)
        w.metrics.counter("train_steps_total").inc(2)
        frame1, cursor = capture_frame(w, worker_id=0)
        w.metrics.counter("train_steps_total").inc(3)
        frame2, _ = capture_frame(w, worker_id=0, since=cursor)
        driver.ingest_worker_frame(frame1)
        driver.ingest_worker_frame(frame2)
        (row,) = [r for r in driver.merged_samples()
                  if r["name"] == "train_steps_total"]
        assert row["value"] == 5

    def test_stage_latency_histogram_merges(self):
        driver = TelemetryHub()
        w = _worker_hub(0.0, driver)
        w.on_stage("nifti_decode", 0.4, elements=4)  # 0.1 s/el
        frame, _ = capture_frame(w, worker_id=0)
        driver.ingest_worker_frame(frame)
        rows = {r["name"]: r for r in driver.merged_samples()}
        lat = rows["pipeline_stage_latency_seconds"]
        assert lat["count"] == 1  # one per-element latency observation
        assert lat["sum"] == pytest.approx(0.1)
        assert tuple(float(e) for e in lat["buckets"]) \
            == STAGE_LATENCY_BUCKETS


def _good_span() -> dict:
    hub = TelemetryHub()
    hub.tracer.record_span("ok", 1.0, 2.0, category="trial")
    frame, _ = capture_frame(hub, worker_id=0)
    (span,) = frame["spans"]
    return span


def _dropped_count(hub: TelemetryHub) -> dict:
    return {r["labels"]["kind"]: r["value"]
            for r in hub.metrics.samples()
            if r["name"] == "telemetry_frames_dropped_total"}


class TestSanitizeFrame:
    @pytest.mark.parametrize("frame", [
        None, 42, "frame", ["worker_id", 0],
        {},                          # no worker_id at all
        {"worker_id": None},
        {"worker_id": "not-a-number"},
        {"worker_id": [1]},
    ])
    def test_unusable_frames_return_none(self, frame):
        clean, dropped = sanitize_frame(frame)
        assert clean is None and dropped == 0

    def test_numeric_string_worker_id_is_coerced(self):
        clean, _ = sanitize_frame({"worker_id": "3"})
        assert clean["worker_id"] == 3

    def test_bad_pid_and_anchor_fall_back(self):
        clean, _ = sanitize_frame(
            {"worker_id": 0, "pid": "oops", "anchor_wall": {}})
        assert clean["pid"] == 0
        assert clean["anchor_wall"] == 0.0

    def test_bad_spans_dropped_good_spans_kept(self):
        good = _good_span()
        clean, dropped = sanitize_frame({"worker_id": 0, "spans": [
            good,
            "not-a-span",
            {"name": "no-times"},
            {"name": "bad-times", "start": "a", "end": 2.0},
            None,
        ]})
        assert [s["name"] for s in clean["spans"]] == ["ok"]
        assert dropped == 4

    def test_non_list_spans_field_counts_one_drop(self):
        clean, dropped = sanitize_frame({"worker_id": 0, "spans": "zzz"})
        assert clean["spans"] == [] and dropped == 1

    def test_malformed_samples_discarded(self):
        for samples in ("zzz", {"name": "x"}, [1, 2], [{"name": "x"}]):
            clean, _ = sanitize_frame({"worker_id": 0, "samples": samples})
            assert clean["samples"] == []


class TestIngestMalformedFrames:
    def test_unusable_frame_dropped_and_counted_not_raised(self):
        driver = TelemetryHub()
        driver.ingest_worker_frame({"pid": 1234})        # no worker_id
        driver.ingest_worker_frame("garbage")
        assert driver.aggregator is None                 # nothing ingested
        assert _dropped_count(driver) == {"frame": 2}

    def test_partial_frame_keeps_valid_spans_counts_bad_ones(self):
        driver = TelemetryHub()
        driver.ingest_worker_frame({
            "worker_id": 0, "pid": 1234, "anchor_wall": 0.0,
            "spans": [_good_span(), {"name": "torn"}],
            "samples": "not-a-list",
        })
        assert _dropped_count(driver) == {"span": 1}
        assert len(driver.aggregator) == 1
        (w,) = driver.aggregator.workers()
        assert w["spans"] == 1
        assert driver.aggregator.sample_sets() == [[]]

    def test_good_frames_do_not_touch_the_drop_counter(self):
        driver = TelemetryHub()
        w = _worker_hub(0.0, driver)
        w.metrics.counter("train_steps_total").inc(1)
        frame, _ = capture_frame(w, worker_id=0)
        driver.ingest_worker_frame(frame)
        assert _dropped_count(driver) == {}
