"""Request tracing: context, tail sampler, phase telescoping, waterfall."""

import json
import math

import pytest

from repro.telemetry import (
    NULL_HUB,
    PHASES,
    SERVE_LATENCY_BUCKETS,
    MetricsRegistry,
    RequestTrace,
    RequestTracer,
    TailSampler,
    TelemetryHub,
    TraceContext,
    TracingConfig,
    load_request_traces,
    render_waterfall,
)
from repro.telemetry.tracing import _hash_unit


class TestTraceContext:
    def test_mint_is_unique(self):
        a, b = TraceContext.mint(), TraceContext.mint()
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 16
        assert len(a.span_id) == 8

    def test_child_shares_trace_id_with_fresh_span(self):
        parent = TraceContext.mint(sampled=False)
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert child.sampled is False

    def test_dict_roundtrip_survives_pickle_path(self):
        ctx = TraceContext.mint()
        # the context crosses the process boundary as a plain dict
        wire = json.loads(json.dumps(ctx.to_dict()))
        assert TraceContext.from_dict(wire) == ctx


class TestTracingConfig:
    def test_defaults_valid(self):
        cfg = TracingConfig()
        assert cfg.enabled and 0 < cfg.sample_rate < 1

    @pytest.mark.parametrize("kwargs", [
        {"sample_rate": -0.1},
        {"sample_rate": 1.5},
        {"slow_quantile": 0.0},
        {"slow_quantile": 1.0},
        {"latency_window": 0},
        {"min_window": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TracingConfig(**kwargs)


class TestTailSampler:
    def test_error_and_retried_always_kept(self):
        s = TailSampler(TracingConfig(sample_rate=0.0))
        assert s.decide("t0", 0.001, error=True) == (True, "error")
        assert s.decide("t1", 0.001, retried=True) == (True, "retried")

    def test_no_slow_keeps_while_warming(self):
        cfg = TracingConfig(sample_rate=0.0, min_window=20)
        s = TailSampler(cfg)
        # fewer than min_window samples: nothing qualifies as "slow"
        for i in range(cfg.min_window - 1):
            keep, reason = s.decide(f"warm{i}", 100.0 + i)
            assert (keep, reason) == (False, "dropped")

    def test_slow_tail_kept_after_warmup(self):
        cfg = TracingConfig(sample_rate=0.0, min_window=20)
        s = TailSampler(cfg)
        for i in range(50):
            s.decide(f"base{i}", 0.010)
        keep, reason = s.decide("outlier", 5.0)
        assert (keep, reason) == (True, "slow")
        # well below the p90 threshold: dropped
        assert s.decide("fast", 0.001) == (False, "dropped")

    def test_threshold_computed_before_appending(self):
        # the decision for sample N must not include sample N in its
        # own window (it would always be "slow" relative to itself)
        cfg = TracingConfig(sample_rate=0.0, min_window=2)
        s = TailSampler(cfg)
        s.decide("a", 0.010)
        threshold_before = s.slow_threshold()
        s.decide("b", 99.0)
        assert threshold_before is None or threshold_before <= 0.010

    def test_hash_sampling_is_deterministic(self):
        s1 = TailSampler(TracingConfig(sample_rate=0.5, min_window=10**6))
        s2 = TailSampler(TracingConfig(sample_rate=0.5, min_window=10**6))
        ids = [f"trace{i}" for i in range(200)]
        d1 = [s1.decide(t, 0.01) for t in ids]
        d2 = [s2.decide(t, 0.01) for t in ids]
        assert d1 == d2
        kept = sum(1 for keep, _ in d1 if keep)
        assert 0 < kept < len(ids)  # rate 0.5 keeps some, not all

    def test_hash_unit_in_range(self):
        for t in ("", "abc", "x" * 64):
            assert 0.0 <= _hash_unit(t) < 1.0

    def test_rate_extremes(self):
        keep_all = TailSampler(TracingConfig(sample_rate=1.0,
                                             min_window=10**6))
        keep_none = TailSampler(TracingConfig(sample_rate=0.0,
                                              min_window=10**6))
        assert keep_all.decide("t", 0.01) == (True, "sampled")
        assert keep_none.decide("t", 0.01) == (False, "dropped")


def _tracer(**cfg):
    cfg.setdefault("sample_rate", 1.0)
    return RequestTracer(telemetry=NULL_HUB, config=TracingConfig(**cfg))


class TestPhaseTelescoping:
    def test_durations_sum_exactly_to_latency(self):
        rt = _tracer()
        ctx = rt.begin("r0")
        t = rt.complete(ctx, "r0", arrival=10.0, released=10.002,
                        started=10.005, done=10.011, completed=10.012,
                        compute_s=0.004)
        durs = t.phase_durations()
        assert set(durs) == set(PHASES)
        assert sum(durs.values()) == pytest.approx(t.latency_s, abs=1e-12)
        assert t.latency_s == pytest.approx(0.012)
        assert durs["queue_wait"] == pytest.approx(0.002)
        assert durs["batch_wait"] == pytest.approx(0.003)
        assert durs["compute"] == pytest.approx(0.004)
        assert durs["dispatch"] == pytest.approx(0.002)
        assert durs["stitch"] == pytest.approx(0.001)

    def test_missing_stamps_collapse_to_zero(self):
        rt = _tracer()
        ctx = rt.begin("r1")
        t = rt.complete(ctx, "r1", arrival=5.0, completed=5.1,
                        error="replica died")
        durs = t.phase_durations()
        # missing stamps collapse onto arrival, so the whole latency
        # falls into the final (completed - done) residual
        assert durs["stitch"] == pytest.approx(0.1)
        for p in ("queue_wait", "batch_wait", "dispatch", "compute"):
            assert durs[p] == 0.0
        assert sum(durs.values()) == pytest.approx(t.latency_s)

    def test_compute_capped_to_driver_window(self):
        # a replica-reported compute longer than the started->done
        # window must not drive dispatch negative
        rt = _tracer()
        t = rt.complete(rt.begin("r2"), "r2", arrival=0.0, released=0.001,
                        started=0.002, done=0.004, completed=0.005,
                        compute_s=99.0)
        durs = t.phase_durations()
        assert durs["compute"] == pytest.approx(0.002)
        assert durs["dispatch"] == 0.0
        assert all(d >= 0 for d in durs.values())

    def test_out_of_order_stamps_clamped_monotone(self):
        rt = _tracer()
        t = rt.complete(rt.begin("r3"), "r3", arrival=1.0, released=0.5,
                        started=0.2, done=0.1, completed=1.05)
        assert all(d >= 0 for d in t.phase_durations().values())
        assert sum(t.phase_durations().values()) == pytest.approx(
            t.latency_s)

    def test_retried_request_always_kept(self):
        rt = _tracer(sample_rate=0.0)
        t = rt.complete(rt.begin("r4"), "r4", arrival=0.0, completed=0.01,
                        attempt=1)
        assert t.kept and t.keep_reason == "retried"

    def test_spans_land_on_hub_tracer_with_trace_id(self):
        hub = TelemetryHub()
        rt = RequestTracer(telemetry=hub,
                           config=TracingConfig(sample_rate=1.0))
        import time

        t0 = time.monotonic() - 0.02
        ctx = rt.begin("req_007")
        rt.complete(ctx, "req_007", arrival=t0, released=t0 + 0.004,
                    started=t0 + 0.008, done=t0 + 0.016,
                    completed=t0 + 0.02, compute_s=0.006)
        serve = [s for s in hub.tracer.closed_spans()
                 if s.category == "serve"]
        names = {s.name for s in serve}
        assert "request" in names
        assert {"queue_wait", "batch_wait", "compute"} <= names
        for s in serve:
            assert s.attrs["trace_id"] == ctx.trace_id
            assert s.attrs["request_id"] == "req_007"
            assert s.end >= s.start

    def test_disabled_records_no_spans_but_still_decides(self):
        hub = TelemetryHub()
        rt = RequestTracer(telemetry=hub, config=TracingConfig(
            enabled=False, sample_rate=1.0))
        t = rt.complete(rt.begin("r5"), "r5", arrival=0.0, completed=0.01)
        assert t.kept  # the decision is made either way
        assert not [s for s in hub.tracer.closed_spans()
                    if s.category == "serve"]
        assert rt.traces() == []

    def test_kept_retention_bounded(self):
        rt = _tracer(max_traces=4)
        for i in range(10):
            rt.complete(rt.begin(f"r{i}"), f"r{i}", arrival=0.0,
                        completed=0.01)
        assert len(rt.traces()) == 4
        assert rt.traces()[-1].request_id == "r9"


class TestRequestTraceRoundtrip:
    def test_jsonl_roundtrip(self, tmp_path):
        rt = _tracer()
        rt.complete(rt.begin("ra"), "ra", arrival=0.0, released=0.001,
                    started=0.002, done=0.008, completed=0.009,
                    compute_s=0.005, strategy="full_volume",
                    batch_id="b0", batch_size=3, replica=1,
                    replica_pid=777, kernel_seconds={"gemm:conv": 0.004})
        (tmp_path / "requests.jsonl").write_text(rt.to_jsonl())
        loaded = load_request_traces(tmp_path)
        assert len(loaded) == 1
        t = loaded[0]
        assert t.request_id == "ra" and t.replica_pid == 777
        assert t.kernel_seconds == {"gemm:conv": 0.004}
        assert t.phase_durations()["compute"] == pytest.approx(0.005)

    def test_load_tolerates_torn_tail(self, tmp_path):
        rt = _tracer()
        rt.complete(rt.begin("rb"), "rb", arrival=0.0, completed=0.01)
        text = rt.to_jsonl() + '{"request_id": "torn", "latency'
        (tmp_path / "requests.jsonl").write_text(text)
        loaded = load_request_traces(tmp_path)
        assert [t.request_id for t in loaded] == ["rb"]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_request_traces(tmp_path) == []


class TestWaterfall:
    def _trace(self, **over):
        rt = _tracer()
        kwargs = dict(arrival=0.0, released=0.002, started=0.003,
                      done=0.009, completed=0.010, compute_s=0.005)
        kwargs.update(over)
        return rt.complete(rt.begin("req_042"), "req_042", **kwargs)

    def test_header_and_dominant_phase(self):
        out = render_waterfall(self._trace(batch_size=4))
        assert "req_042" in out and "trace " in out
        assert "batch 4" in out
        assert "dominant phase: compute" in out
        for p in PHASES:
            assert p in out

    def test_error_line(self):
        out = render_waterfall(self._trace(error="worker killed"))
        assert "ERROR: worker killed" in out

    def test_zero_latency_does_not_divide_by_zero(self):
        rt = _tracer()
        t = rt.complete(rt.begin("rz"), "rz", arrival=1.0, completed=1.0)
        out = render_waterfall(t)
        assert "rz" in out

    def test_dominant_phase_none_without_phases(self):
        t = RequestTrace(request_id="x", trace_id="t", latency_s=0.0)
        assert t.dominant_phase() is None
        assert "dominant" not in render_waterfall(t)


class TestLatencyHistogramQuantiles:
    def test_quantile_interpolates_and_clamps(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=SERVE_LATENCY_BUCKETS)
        assert math.isnan(h.quantile(0.5))
        for _ in range(100):
            h.observe(0.004)   # lands in (0.0025, 0.005]
        q = h.quantile(0.5)
        assert 0.0025 < q <= 0.005
        h2 = reg.histogram("lat2", buckets=(1.0, 2.0))
        h2.observe(50.0)       # beyond the last edge: clamp
        assert h2.quantile(0.99) == 2.0

    def test_quantile_range_checked(self):
        h = MetricsRegistry().histogram("lat")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_exemplar_stored_at_owning_edge(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1))
        h.observe(0.05, exemplar={"trace_id": "abc123"})
        assert h.exemplars["0.1"]["trace_id"] == "abc123"
        assert h.exemplars["0.1"]["value"] == 0.05
        h.observe(5.0, exemplar={"trace_id": "tail"})
        assert h.exemplars["+Inf"]["trace_id"] == "tail"

    def test_exemplars_in_samples_and_merge(self):
        from repro.telemetry import merge_registries

        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.01,))
        h.observe(0.005, exemplar={"trace_id": "keep-me"})
        ((_, sample),) = h._samples()
        assert sample["exemplars"]["0.01"]["trace_id"] == "keep-me"
        merged = merge_registries([reg.samples(), reg.samples()])
        out = merged.get("lat")
        assert out.exemplars["0.01"]["trace_id"] == "keep-me"
        assert out.count == 2 * h.count  # counts sum, exemplars don't
