"""SLO/alert rules: parsing, hysteresis, dedup, resolution, null path."""

import math

import pytest

from repro.telemetry import (
    NULL_HUB,
    Alert,
    AlertEngine,
    AlertRule,
    TelemetryHub,
    default_rules,
)
from repro.telemetry.alerts import DEFAULT_RULE_SPECS


class TestRuleParsing:
    def test_parse_full_expression(self):
        rule = AlertRule.parse("input_bound",
                               "data_wait_ratio > 0.5 for 3 windows")
        assert rule.value == "data_wait_ratio"
        assert rule.op == ">"
        assert rule.threshold == 0.5
        assert rule.for_windows == 3

    def test_parse_defaults_to_one_window(self):
        rule = AlertRule.parse("nf", "trials_nonfinite > 0")
        assert rule.for_windows == 1

    @pytest.mark.parametrize("expr,op,thresh", [
        ("x >= 1.5", ">=", 1.5),
        ("x <= -2", "<=", -2.0),
        ("x < 1e-3", "<", 1e-3),
        ("x > 0.5 for 1 window", ">", 0.5),
    ])
    def test_parse_operators_and_literals(self, expr, op, thresh):
        rule = AlertRule.parse("r", expr)
        assert (rule.op, rule.threshold) == (op, thresh)

    @pytest.mark.parametrize("expr", [
        "", "x", "x > ", "> 0.5", "x == 0.5", "x > 0.5 for zero windows",
        "x > 0.5 for -1 windows", "x > 0.5 sometimes",
    ])
    def test_parse_rejects_malformed(self, expr):
        with pytest.raises(ValueError):
            AlertRule.parse("bad", expr)

    def test_expr_round_trips(self):
        for name, expr, sev, _ in DEFAULT_RULE_SPECS:
            rule = AlertRule.parse(name, expr, severity=sev)
            again = AlertRule.parse(name, rule.expr, severity=sev)
            assert again == rule

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AlertRule(name="r", value="x", op="!=", threshold=0.0)
        with pytest.raises(ValueError):
            AlertRule(name="r", value="x", op=">", threshold=0.0,
                      for_windows=0)
        with pytest.raises(ValueError):
            AlertRule(name="", value="x", op=">", threshold=0.0)

    def test_engine_rejects_duplicate_rule_names(self):
        rule = AlertRule.parse("dup", "x > 1")
        with pytest.raises(ValueError):
            AlertEngine([rule, rule])

    def test_default_rules_cover_issue_failure_modes(self):
        names = {r.name for r in default_rules()}
        assert {"input_bound", "queue_backlog", "loss_non_finite",
                "worker_stalled"} <= names


class TestBreachSemantics:
    def test_missing_value_is_not_a_breach(self):
        rule = AlertRule.parse("r", "x > 0.5")
        breached, value = rule.breached({})
        assert not breached and math.isnan(value)

    def test_nan_value_is_not_a_breach(self):
        rule = AlertRule.parse("r", "x > 0.5")
        breached, value = rule.breached({"x": float("nan")})
        assert not breached and math.isnan(value)

    def test_infinite_value_compares(self):
        rule = AlertRule.parse("r", "x > 0.5")
        assert rule.breached({"x": float("inf")})[0]


class TestHysteresis:
    def rule(self, windows=3):
        return AlertRule.parse("r", f"x > 0.5 for {windows} windows")

    def test_fires_only_after_n_consecutive_windows(self):
        engine = AlertEngine([self.rule(3)])
        assert engine.evaluate({"x": 0.9}, now=0.0) == []
        assert engine.evaluate({"x": 0.9}, now=1.0) == []
        (alert,) = engine.evaluate({"x": 0.9}, now=2.0)
        assert alert.state == "firing"
        assert alert.windows_breached == 3
        assert alert.fired_at_wall == 2.0

    def test_one_clear_window_resets_the_streak(self):
        engine = AlertEngine([self.rule(3)])
        engine.evaluate({"x": 0.9}, now=0.0)
        engine.evaluate({"x": 0.9}, now=1.0)
        engine.evaluate({"x": 0.1}, now=2.0)   # noisy blip clears streak
        assert engine.evaluate({"x": 0.9}, now=3.0) == []
        assert engine.evaluate({"x": 0.9}, now=4.0) == []
        assert len(engine.evaluate({"x": 0.9}, now=5.0)) == 1

    def test_single_window_rule_fires_immediately(self):
        engine = AlertEngine([AlertRule.parse("nf", "n > 0")])
        (alert,) = engine.evaluate({"n": 1.0}, now=0.0)
        assert alert.state == "firing"


class TestDedupAndResolution:
    def engine(self):
        return AlertEngine([AlertRule.parse("r", "x > 0.5",
                                            severity="critical")])

    def test_firing_alert_is_deduplicated(self):
        engine = self.engine()
        assert len(engine.evaluate({"x": 0.9}, now=0.0)) == 1
        # still breaching: no new record, but the live one is refreshed
        assert engine.evaluate({"x": 0.7}, now=1.0) == []
        (active,) = engine.firing
        assert active.value == 0.7
        assert active.windows_breached == 2
        assert len(engine.history) == 1

    def test_resolution_emits_record_and_allows_refire(self):
        engine = self.engine()
        engine.evaluate({"x": 0.9}, now=0.0)
        (resolved,) = engine.evaluate({"x": 0.1}, now=1.0)
        assert resolved.state == "resolved"
        assert resolved.fired_at_wall == 0.0
        assert resolved.resolved_at_wall == 1.0
        assert engine.firing == []
        (refired,) = engine.evaluate({"x": 0.9}, now=2.0)
        assert refired.state == "firing"
        assert [a.state for a in engine.history] \
            == ["firing", "resolved", "firing"]

    def test_no_resolution_without_prior_firing(self):
        engine = self.engine()
        assert engine.evaluate({"x": 0.1}, now=0.0) == []
        assert engine.history == []

    def test_alert_to_dict_maps_nan_value_to_none(self):
        alert = Alert(rule="r", severity="warning", state="resolved",
                      value=float("nan"), threshold=0.5, expr="x > 0.5",
                      message="m", fired_at_wall=0.0)
        assert alert.to_dict()["value"] is None


class TestHubIntegration:
    def test_record_alert_lands_in_hub_and_counter(self):
        hub = TelemetryHub()
        engine = AlertEngine([AlertRule.parse("r", "x > 0.5")])
        for alert in engine.evaluate({"x": 0.9}, now=0.0):
            hub.record_alert(alert)
        assert [a.rule for a in hub.alerts] == ["r"]
        (row,) = [r for r in hub.metrics.samples()
                  if r["name"] == "alerts_total"]
        assert row["labels"] == {"rule": "r", "state": "firing"}
        assert row["value"] == 1

    def test_null_hub_swallows_alert_api(self):
        # the no-op twin must absorb the whole live surface untouched
        engine = AlertEngine([AlertRule.parse("r", "x > 0.5")])
        for alert in engine.evaluate({"x": 0.9}, now=0.0):
            NULL_HUB.record_alert(alert)
        assert NULL_HUB.alerts == []
        NULL_HUB.attach_live(object())
        assert NULL_HUB.live is None
        NULL_HUB.live_tick(force=True)   # must not raise
