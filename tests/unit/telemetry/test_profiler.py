"""Step-time attribution, the bottleneck analyzer, the progress table."""

import io

import pytest

from repro.perf import TrialConfig, calibrated_model
from repro.telemetry import (
    ProfileData,
    ProgressReporter,
    StepAttribution,
    TelemetryHub,
    analyze,
    analyze_run_dir,
    build_profile_data,
)
from repro.telemetry.spans import Span


class TestStepAttribution:
    def test_fractions_and_total(self):
        att = StepAttribution(data_wait=1.0, compute=2.0, sync=1.0)
        assert att.total == pytest.approx(4.0)
        assert att.input_bound_fraction == pytest.approx(0.25)
        assert att.sync_overhead_fraction == pytest.approx(0.25)
        with pytest.raises(ValueError):
            att.fraction("gpu")

    def test_add_and_dict_roundtrip(self):
        a = StepAttribution(compute=1.0)
        b = StepAttribution(compute=0.5, checkpoint=0.25)
        merged = a + b
        assert merged.compute == pytest.approx(1.5)
        assert StepAttribution.from_dict(merged.as_dict()) == merged

    def test_from_samples_reads_bucket_counter(self):
        hub = TelemetryHub()
        hub.on_step_bucket("compute", 2.0)
        hub.on_step_bucket("compute", 1.0)
        hub.on_step_bucket("data_wait", 0.5)
        att = StepAttribution.from_samples(hub.metrics.samples())
        assert att.compute == pytest.approx(3.0)
        assert att.data_wait == pytest.approx(0.5)
        assert att.sync == 0.0


class TestCostModelAttribution:
    """Pin the analytic split against the simulator's StepCostModel."""

    def setup_method(self):
        self.model = calibrated_model()
        self.config = TrialConfig()

    def test_single_gpu_has_exactly_zero_sync(self):
        # claim C1: 1-GPU trials pay no gradient-sync overhead at all
        att = StepAttribution.from_cost_model(self.model, self.config, 1)
        assert att.sync == 0.0
        assert att.compute == pytest.approx(
            self.model.step_compute_time(self.config))
        assert att.data_wait == pytest.approx(
            self.model.input_time(self.config))

    @pytest.mark.parametrize("num_gpus", [2, 8, 32])
    def test_multi_gpu_sync_matches_model_terms(self, num_gpus):
        from repro.cluster.collectives import allreduce_time

        m, cfg = self.model, self.config
        att = StepAttribution.from_cost_model(m, cfg, num_gpus)
        compute = m.step_compute_time(cfg)
        comm = allreduce_time(
            m.gradient_bytes(cfg), num_gpus, m.cluster.node.num_gpus,
            m.cluster.node.intra_link, m.cluster.inter_link)
        expected = (compute * (m.sync_factor(num_gpus) - 1.0)
                    + comm + m.framework_overhead(num_gpus))
        assert att.sync == pytest.approx(expected)
        assert att.sync > 0.0

    @pytest.mark.parametrize("num_gpus", [1, 8])
    def test_decomposition_sums_to_step_time(self, num_gpus):
        # the buckets are a *decomposition*, not an approximation:
        # data_wait + compute + sync == step_time, and the checkpoint
        # bucket amortises the fixed per-epoch cost over its steps
        m, cfg = self.model, self.config
        att = StepAttribution.from_cost_model(m, cfg, num_gpus)
        assert att.total == pytest.approx(
            m.step_time(cfg, num_gpus)
            + m.params.epoch_fixed_s / m.steps_per_epoch(cfg, num_gpus))

    def test_sync_overhead_grows_with_scale(self):
        fr = [StepAttribution.from_cost_model(self.model, self.config, n)
              .sync_overhead_fraction for n in (1, 2, 8, 32)]
        assert fr[0] == 0.0
        assert fr == sorted(fr)


class TestAnalyze:
    def _data(self, **buckets):
        return ProfileData(attribution=StepAttribution(**buckets))

    def test_input_bound_verdict_names_claim_c3(self):
        report = analyze(self._data(data_wait=6.0, compute=4.0))
        assert "input-bound" in report.verdict
        assert "C3" in report.verdict
        assert report.input_bound_pct == pytest.approx(60.0)

    def test_sync_bound_verdict_names_claim_c1(self):
        report = analyze(self._data(compute=6.0, sync=4.0))
        assert "sync-bound" in report.verdict
        assert "C1" in report.verdict

    def test_checkpoint_and_compute_verdicts(self):
        assert "checkpoint-bound" in analyze(
            self._data(compute=6.0, checkpoint=4.0)).verdict
        assert "compute-bound" in analyze(
            self._data(compute=9.0, data_wait=1.0)).verdict

    def test_empty_profile_says_so(self):
        report = analyze(ProfileData())
        assert "no step time recorded" in report.verdict
        assert report.gpu_seconds_total == 0.0

    def test_straggler_detection(self):
        data = self._data(compute=1.0)
        data.workers = [
            {"worker_id": 0, "pid": 1, "busy_seconds": 10.0, "tasks": 10},
            {"worker_id": 1, "pid": 2, "busy_seconds": 10.0, "tasks": 10},
            {"worker_id": 2, "pid": 3, "busy_seconds": 20.0, "tasks": 10},
        ]
        report = analyze(data)
        assert report.stragglers == [2]
        assert "straggler" in report.render()

    def test_no_straggler_flag_for_single_worker(self):
        data = self._data(compute=1.0)
        data.workers = [
            {"worker_id": 0, "pid": 1, "busy_seconds": 30.0, "tasks": 3}]
        assert analyze(data).stragglers == []

    def test_top_stages_sorted_by_wall_clock(self):
        data = self._data(compute=1.0)
        data.stage_seconds = {"transform": 1.0, "nifti_decode": 5.0}
        data.stage_elements = {"transform": 10, "nifti_decode": 10}
        report = analyze(data)
        assert [s for s, _, _ in report.top_stages] \
            == ["nifti_decode", "transform"]
        assert "nifti_decode" in report.render()


class TestProfileData:
    def test_roundtrip(self):
        data = ProfileData(
            attribution=StepAttribution(compute=2.0, data_wait=1.0),
            stage_seconds={"decode": 1.5},
            stage_elements={"decode": 3},
            workers=[{"worker_id": 0, "pid": 7,
                      "busy_seconds": 2.0, "tasks": 2}],
            trials=[{"trial_id": "trial_0000", "seconds": 1.0,
                     "worker": 0, "gpu_seconds": 1.0}],
        )
        again = ProfileData.from_dict(data.to_dict())
        assert again.attribution == data.attribution
        assert again.stage_seconds == data.stage_seconds
        assert again.workers == data.workers
        assert again.trials == data.trials

    def test_build_from_hub_measures_and_accounts_trials(self):
        hub = TelemetryHub()
        hub.on_step_bucket("compute", 2.0)
        hub.on_stage("record_read", 0.5, elements=5)
        hub.tracer.record_span("trial_0000", 0.0, 3.0, category="trial")
        data = build_profile_data(hub)
        assert data.source == "measured"
        assert data.attribution.compute == pytest.approx(2.0)
        assert data.stage_seconds["record_read"] == pytest.approx(0.5)
        (trial,) = data.trials
        assert trial["trial_id"] == "trial_0000"
        assert trial["gpu_seconds"] == pytest.approx(3.0)

    def test_cost_model_source_when_only_attached(self):
        hub = TelemetryHub()
        hub.attach_attribution(StepAttribution(compute=1.0))
        data = build_profile_data(hub)
        assert data.source == "cost_model"
        assert data.attribution.compute == pytest.approx(1.0)


class TestAnalyzeRunDir:
    def test_prefers_profile_json(self, tmp_path):
        hub = TelemetryHub(run_dir=tmp_path, profile=True)
        hub.on_step_bucket("data_wait", 9.0)
        hub.on_step_bucket("compute", 1.0)
        hub.flush()
        report = analyze_run_dir(tmp_path)
        assert "input-bound" in report.verdict
        assert report.source == "measured"

    def test_falls_back_to_metrics_jsonl(self, tmp_path):
        hub = TelemetryHub(run_dir=tmp_path)  # plain --telemetry run
        hub.on_step_bucket("compute", 4.0)
        hub.tracer.record_span("trial_0000", 0.0, 2.0, category="trial")
        hub.flush()
        assert not (tmp_path / "profile.json").exists()
        report = analyze_run_dir(tmp_path)
        assert "compute-bound" in report.verdict
        assert report.gpu_seconds_total == pytest.approx(2.0)

    def test_missing_run_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            analyze_run_dir(tmp_path / "nope")


class _FakeStatus:
    def __init__(self, value):
        self.value = value


class _FakeTrial:
    def __init__(self, trial_id, status, results=(), runtime_s=0.0):
        self.trial_id = trial_id
        self.status = _FakeStatus(status)
        self.results = list(results)
        self.runtime_s = runtime_s


class TestProgressReporter:
    def test_render_shows_running_elapsed_from_open_span(self):
        trials = [
            _FakeTrial("trial_0000", "running",
                       results=[{"val_dice": 0.5}]),
            _FakeTrial("trial_0001", "terminated",
                       results=[{"val_dice": 0.8}], runtime_s=12.0),
            _FakeTrial("trial_0002", "pending"),
        ]
        in_flight = {"trial_0000": Span(name="trial_0000", start=10.0,
                                        category="trial")}
        text = ProgressReporter(stream=io.StringIO()).render(
            trials, in_flight, now=13.5)
        lines = text.splitlines()
        assert "pending: 1" in lines[0] and "running: 1" in lines[0]
        running = next(ln for ln in lines if ln.startswith("trial_0000"))
        assert "3.5" in running
        done = next(ln for ln in lines if ln.startswith("trial_0001"))
        assert "12.0" in done and "0.8000" in done
        pending = next(ln for ln in lines if ln.startswith("trial_0002"))
        assert "None" in pending  # no fake elapsed for queued trials

    def test_update_rate_limited_finish_forced(self):
        t = [0.0]
        stream = io.StringIO()
        rep = ProgressReporter(stream=stream, interval_s=2.0,
                               clock=lambda: t[0])
        trials = [_FakeTrial("trial_0000", "running")]
        rep.update(trials)          # renders (first call)
        rep.update(trials)          # suppressed: 0 s elapsed
        assert rep.renders == 1
        t[0] = 2.5
        rep.update(trials)          # interval passed
        assert rep.renders == 2
        rep.finish(trials)          # forced despite the interval
        assert rep.renders == 3
        assert stream.getvalue().count("== trials") == 3
