"""Chrome-trace output schema: the contract Perfetto (and the profiler's
run-dir fallback) rely on."""

import json

import pytest

from repro.cluster import Timeline
from repro.telemetry import Tracer

REQUIRED_X_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}


def _spans(events):
    return [e for e in events if e["ph"] == "X"]


class TestSchema:
    def test_file_is_valid_json_array_roundtrip(self, tmp_path):
        tr = Tracer()
        with tr.span("a"):
            pass
        path = tmp_path / "trace.json"
        events = tr.to_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert isinstance(loaded, list)
        assert loaded == events

    def test_complete_events_carry_every_field(self):
        tr = Tracer()
        with tr.span("outer", category="run", epoch=1):
            with tr.span("inner", category="train"):
                pass
        for e in _spans(tr.to_chrome_trace()):
            assert REQUIRED_X_KEYS <= set(e)
            assert e["dur"] >= 0.0
        # attrs surface as args
        by_name = {e["name"]: e for e in _spans(tr.to_chrome_trace())}
        assert by_name["outer"]["args"] == {"epoch": 1}

    def test_timestamps_monotone_nondecreasing(self):
        tr = Tracer()
        for _ in range(5):
            with tr.span("step"):
                pass
        ts = [e["ts"] for e in _spans(tr.to_chrome_trace())]
        assert ts == sorted(ts)

    def test_nested_spans_stack_by_containment(self):
        # Perfetto nests same-lane X events by interval containment:
        # the child's [ts, ts+dur] must sit inside the parent's.
        tr = Tracer()
        with tr.span("parent"):
            with tr.span("child"):
                pass
        by_name = {e["name"]: e for e in _spans(tr.to_chrome_trace())}
        parent, child = by_name["parent"], by_name["child"]
        assert parent["tid"] == child["tid"]  # same lane, stacked by depth
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_empty_tracer_exports_empty_array(self):
        assert Tracer().to_chrome_trace() == []

    def test_simulated_and_real_events_interleave(self):
        tr = Tracer()
        with tr.span("real"):
            pass
        sim = Timeline()
        sim.record("sim", 0.0, 2.0, "gpu0", category="train")
        events = _spans(tr.to_chrome_trace(extra_timelines=[sim]))
        pids = {e["name"]: e["pid"] for e in events}
        assert pids["real"] != pids["sim"]
        # one sorted stream, all schema-complete
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
        assert all(REQUIRED_X_KEYS <= set(e) for e in events)

    def test_clock_anchor_metadata(self):
        tr = Tracer()
        with tr.span("w"):
            pass
        events = tr.to_chrome_trace()
        (anchor,) = [e for e in events if e["name"] == "clock_anchor"]
        assert anchor["ph"] == "M"
        assert anchor["args"]["wall_t0_unix"] == pytest.approx(tr.wall_t0)
