"""MetricsRegistry: counters/gauges/histograms, labels, exposition."""

import json
import math

import pytest

from repro.telemetry import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "ops")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("trials_total", labelnames=("status",))
        c.labels(status="ok").inc(3)
        c.labels(status="err").inc()
        assert c.labels(status="ok").value == 3
        assert c.labels(status="err").value == 1

    def test_wrong_labels_rejected(self):
        c = MetricsRegistry().counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError):
            c.labels(b=1)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        ((_, sample),) = h._samples()
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(6.05)
        # cumulative: le=0.1 -> 1, le=1 -> 3, le=10 -> 4
        assert sample["buckets"] == {"0.1": 1, "1.0": 3, "10.0": 4}

    def test_observation_above_all_buckets_only_in_inf(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))
        h.observe(99.0)
        ((_, sample),) = h._samples()
        assert sample["buckets"]["1.0"] == 0
        assert sample["count"] == 1  # the +Inf bucket in exposition

    def test_mean(self):
        h = MetricsRegistry().histogram("lat")
        assert math.isnan(h.mean())
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean() == 3.0

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestRegistry:
    def test_registration_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("steps_total", "optimizer steps",
                    ("method",)).labels(method="dp").inc(5)
        reg.histogram("step_s", "per-step latency",
                      buckets=(0.5, 1.0)).observe(0.2)
        text = reg.to_prometheus()
        assert "# HELP steps_total optimizer steps" in text
        assert "# TYPE steps_total counter" in text
        assert 'steps_total{method="dp"} 5' in text
        assert 'step_s_bucket{le="0.5"} 1' in text
        assert 'step_s_bucket{le="+Inf"} 1' in text
        assert "step_s_sum 0.2" in text
        assert "step_s_count 1" in text

    def test_jsonl_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("val_dice").set(0.9)
        reg.counter("t_total", labelnames=("s",)).labels(s="ok").inc()
        path = reg.export_jsonl(tmp_path / "m.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {r["name"]: r for r in rows}
        assert by_name["val_dice"]["value"] == 0.9
        assert by_name["t_total"]["labels"] == {"s": "ok"}

    def test_empty_registry_exports_empty(self):
        reg = MetricsRegistry()
        assert reg.to_prometheus() == ""
        assert reg.to_jsonl() == ""
