"""Micro-batcher unit tests: pure logic under synthetic monotonic time."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import BatchKey, MicroBatcher

KEY = BatchKey(strategy="full_volume", shape=(1, 8, 8, 8),
               dtype="float64")
KEY_SW = BatchKey(strategy="sliding_window", shape=(1, 64, 64, 64),
                  dtype="float64")


class TestMicroBatcher:
    def test_full_batch_releases_immediately(self):
        mb = MicroBatcher(max_batch=3, max_delay_s=10.0)
        for i in range(3):
            mb.add(f"r{i}", KEY, now=0.0)
        # deadline far away: size alone triggers the release
        assert mb.due(now=0.0) == [(KEY, ["r0", "r1", "r2"])]
        assert mb.depth() == 0

    def test_partial_batch_waits_for_deadline(self):
        mb = MicroBatcher(max_batch=4, max_delay_s=0.01)
        mb.add("r0", KEY, now=0.0)
        mb.add("r1", KEY, now=0.002)
        assert mb.due(now=0.005) == []          # oldest only 5 ms old
        assert mb.depth() == 2
        # the *oldest* arrival sets the deadline, not the newest
        assert mb.due(now=0.01) == [(KEY, ["r0", "r1"])]
        assert mb.depth() == 0

    def test_overfull_group_splits_and_keeps_remainder(self):
        mb = MicroBatcher(max_batch=2, max_delay_s=10.0)
        for i in range(5):
            mb.add(f"r{i}", KEY, now=0.0)
        assert mb.due(now=0.0) == [(KEY, ["r0", "r1"]),
                                   (KEY, ["r2", "r3"])]
        assert mb.depth() == 1                  # r4 waits for company
        assert mb.due(now=10.0) == [(KEY, ["r4"])]

    def test_incompatible_requests_never_share_a_batch(self):
        mb = MicroBatcher(max_batch=2, max_delay_s=0.0)
        mb.add("small", KEY, now=0.0)
        mb.add("large", KEY_SW, now=0.0)
        other_dtype = BatchKey(strategy="full_volume",
                               shape=(1, 8, 8, 8), dtype="float32")
        mb.add("f32", other_dtype, now=0.0)
        released = dict(mb.due(now=1.0))
        assert released == {KEY: ["small"], KEY_SW: ["large"],
                            other_dtype: ["f32"]}

    def test_next_deadline_tracks_oldest_pending(self):
        mb = MicroBatcher(max_batch=4, max_delay_s=0.01)
        assert mb.next_deadline() is None
        mb.add("r0", KEY, now=5.0)
        mb.add("r1", KEY_SW, now=4.0)
        assert mb.next_deadline() == pytest.approx(4.01)
        mb.due(now=4.02)                        # flushes the sliding group
        assert mb.next_deadline() == pytest.approx(5.01)

    def test_flush_releases_everything(self):
        mb = MicroBatcher(max_batch=8, max_delay_s=100.0)
        mb.add("r0", KEY, now=0.0)
        mb.add("r1", KEY_SW, now=0.0)
        assert dict(mb.flush()) == {KEY: ["r0"], KEY_SW: ["r1"]}
        assert mb.depth() == 0
        assert mb.flush() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_delay_s=-1.0)
        mb = MicroBatcher()
        with pytest.raises(ValueError):
            mb.add("r0", KEY, now=0.0, weight=0.0)

    def test_next_deadline_full_group_is_due_now(self):
        """ISSUE 10 satellite: a group already at max_batch must report
        a deadline at (or before) its oldest arrival, never ``oldest +
        max_delay_s`` -- a caller sleeping until the returned instant
        would stall an immediately-releasable batch."""
        mb = MicroBatcher(max_batch=2, max_delay_s=10.0)
        mb.add("r0", KEY, now=3.0)
        assert mb.next_deadline() == pytest.approx(13.0)  # partial
        mb.add("r1", KEY, now=4.0)
        assert mb.next_deadline() == pytest.approx(3.0)   # full: due now
        assert mb.due(now=3.0) == [(KEY, ["r0", "r1"])]


class TestWeightedFairness:
    def test_small_request_not_blocked_by_large_chunk_fanout(self):
        """A one-item request admitted behind a large request's chunk
        backlog is released within ~one batch, not after all of it --
        the scatter-gather head-of-line-blocking fix."""
        mb = MicroBatcher(max_batch=4, max_delay_s=0.0)
        for ci in range(20):
            mb.add(f"big#c{ci}", KEY, now=0.0, request_id="big")
        mb.add("small", KEY, now=0.001, request_id="small")
        released = [rid for _, batch in mb.due(now=1.0)
                    for rid in batch]
        assert released.index("small") <= mb.max_batch

    def test_weights_scale_release_share(self):
        """weight=4 vs weight=1 on one key: the first full batch gives
        the heavy request ~4x the slots (stride scheduling)."""
        mb = MicroBatcher(max_batch=5, max_delay_s=0.0)
        for i in range(10):
            mb.add(f"hi#{i}", KEY, now=0.0, request_id="hi", weight=4.0)
            mb.add(f"lo#{i}", KEY, now=0.0, request_id="lo", weight=1.0)
        (key, first), *_ = mb.due(now=1.0)
        owners = [item.split("#")[0] for item in first]
        assert owners.count("hi") == 4
        assert owners.count("lo") == 1

    def test_single_item_requests_degenerate_to_fifo(self):
        mb = MicroBatcher(max_batch=3, max_delay_s=0.0)
        for i in range(7):
            mb.add(f"r{i}", KEY, now=float(i))
        released = [rid for _, batch in mb.due(now=100.0)
                    for rid in batch]
        assert released == [f"r{i}" for i in range(7)]

    def test_due_limit_caps_released_batches(self):
        """Dispatch credits: due(limit=n) releases at most n batches;
        the remainder keeps accumulating in the batcher."""
        mb = MicroBatcher(max_batch=2, max_delay_s=0.0)
        for i in range(8):
            mb.add(f"r{i}", KEY, now=0.0)
        assert len(mb.due(now=1.0, limit=2)) == 2
        assert mb.depth() == 4
        assert len(mb.due(now=1.0, limit=None)) == 2
        assert mb.depth() == 0

    @settings(max_examples=40, deadline=None)
    @given(
        adds=st.lists(
            st.tuples(st.integers(0, 2),     # key index
                      st.integers(0, 3)),    # request group within key
            min_size=1, max_size=40),
        max_batch=st.integers(1, 5),
    )
    def test_arrival_order_per_request_is_preserved(self, adds, max_batch):
        """Property (ISSUE 10 satellite): however multi-key adds
        interleave, the released stream keeps each request's items in
        arrival order, every admitted item is released exactly once,
        and items never jump between batch keys."""
        keys = [BatchKey(strategy="full_volume", shape=(1, 4, 4, 4),
                         dtype=f"dt{k}") for k in range(3)]
        mb = MicroBatcher(max_batch=max_batch, max_delay_s=0.0)
        admitted = []
        for i, (ki, grp) in enumerate(adds):
            item = f"k{ki}g{grp}#{i}"
            mb.add(item, keys[ki], now=float(i),
                   request_id=f"k{ki}g{grp}")
            admitted.append((item, keys[ki]))
        released = mb.due(now=float(len(adds) + 1))
        assert mb.depth() == 0
        seen = [(item, key) for key, batch in released
                for item in batch]
        # exactly-once, and each item under its own key
        assert sorted(i for i, _ in seen) == sorted(i for i, _ in admitted)
        assert dict(seen) == dict(admitted)
        assert all(len(batch) <= max_batch for _, batch in released)
        # per-request arrival order: the trailing #i index is admission
        # order, so within one request id it must be increasing
        per_request: dict = {}
        for item, _ in seen:
            rid, idx = item.split("#")
            per_request.setdefault(rid, []).append(int(idx))
        for order in per_request.values():
            assert order == sorted(order)
