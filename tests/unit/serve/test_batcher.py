"""Micro-batcher unit tests: pure logic under synthetic monotonic time."""

import pytest

from repro.serve import BatchKey, MicroBatcher

KEY = BatchKey(strategy="full_volume", shape=(1, 8, 8, 8),
               dtype="float64")
KEY_SW = BatchKey(strategy="sliding_window", shape=(1, 64, 64, 64),
                  dtype="float64")


class TestMicroBatcher:
    def test_full_batch_releases_immediately(self):
        mb = MicroBatcher(max_batch=3, max_delay_s=10.0)
        for i in range(3):
            mb.add(f"r{i}", KEY, now=0.0)
        # deadline far away: size alone triggers the release
        assert mb.due(now=0.0) == [(KEY, ["r0", "r1", "r2"])]
        assert mb.depth() == 0

    def test_partial_batch_waits_for_deadline(self):
        mb = MicroBatcher(max_batch=4, max_delay_s=0.01)
        mb.add("r0", KEY, now=0.0)
        mb.add("r1", KEY, now=0.002)
        assert mb.due(now=0.005) == []          # oldest only 5 ms old
        assert mb.depth() == 2
        # the *oldest* arrival sets the deadline, not the newest
        assert mb.due(now=0.01) == [(KEY, ["r0", "r1"])]
        assert mb.depth() == 0

    def test_overfull_group_splits_and_keeps_remainder(self):
        mb = MicroBatcher(max_batch=2, max_delay_s=10.0)
        for i in range(5):
            mb.add(f"r{i}", KEY, now=0.0)
        assert mb.due(now=0.0) == [(KEY, ["r0", "r1"]),
                                   (KEY, ["r2", "r3"])]
        assert mb.depth() == 1                  # r4 waits for company
        assert mb.due(now=10.0) == [(KEY, ["r4"])]

    def test_incompatible_requests_never_share_a_batch(self):
        mb = MicroBatcher(max_batch=2, max_delay_s=0.0)
        mb.add("small", KEY, now=0.0)
        mb.add("large", KEY_SW, now=0.0)
        other_dtype = BatchKey(strategy="full_volume",
                               shape=(1, 8, 8, 8), dtype="float32")
        mb.add("f32", other_dtype, now=0.0)
        released = dict(mb.due(now=1.0))
        assert released == {KEY: ["small"], KEY_SW: ["large"],
                            other_dtype: ["f32"]}

    def test_next_deadline_tracks_oldest_pending(self):
        mb = MicroBatcher(max_batch=4, max_delay_s=0.01)
        assert mb.next_deadline() is None
        mb.add("r0", KEY, now=5.0)
        mb.add("r1", KEY_SW, now=4.0)
        assert mb.next_deadline() == pytest.approx(4.01)
        mb.due(now=4.02)                        # flushes the sliding group
        assert mb.next_deadline() == pytest.approx(5.01)

    def test_flush_releases_everything(self):
        mb = MicroBatcher(max_batch=8, max_delay_s=100.0)
        mb.add("r0", KEY, now=0.0)
        mb.add("r1", KEY_SW, now=0.0)
        assert dict(mb.flush()) == {KEY: ["r0"], KEY_SW: ["r1"]}
        assert mb.depth() == 0
        assert mb.flush() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_delay_s=-1.0)
