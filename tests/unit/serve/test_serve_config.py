"""ServeConfig construction-time validation (ISSUE 10 satellite): bad
serving parameters must fail in the driver at config build, not later
inside a worker process."""

import pytest

from repro.serve import ServeConfig


def make(**kw):
    base = dict(checkpoint="best.npz", model_builder=object)
    base.update(kw)
    return ServeConfig(**base)


class TestServeConfigValidation:
    def test_defaults_are_valid(self):
        cfg = make()
        assert cfg.scatter_gather is True
        assert cfg.compute_dtype is None
        assert set(cfg.shed_priorities) <= set(cfg.priority_weights)

    @pytest.mark.parametrize("kw", [
        {"replicas": 0},
        {"max_batch": 0},
        {"max_delay_ms": -1.0},
        {"full_volume_max_voxels": 0},
        {"overlap": 1.0},
        {"overlap": -0.1},
        {"sw_batch_size": 0},
        {"max_retries": -1},
        {"heartbeat_s": 0.0},
        {"priority_weights": {}},
        {"priority_weights": {"normal": 0.0}},
        {"priority_weights": {"normal": -2.0}},
        {"shed_priorities": ("bulk",)},
        {"shed_backlog": -1},
        {"max_inflight_per_replica": 0},
        {"compute_dtype": "float16"},
    ])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            make(**kw)

    def test_boundary_values_accepted(self):
        make(overlap=0.0, max_batch=1, sw_batch_size=1, max_retries=0,
             shed_backlog=0, max_inflight_per_replica=1,
             compute_dtype="float32")
        make(overlap=0.99, compute_dtype="float64")

    def test_custom_priority_ladder(self):
        cfg = make(priority_weights={"gold": 10.0, "bronze": 1.0},
                   shed_priorities=("bronze",))
        assert cfg.priority_weights["gold"] == 10.0
