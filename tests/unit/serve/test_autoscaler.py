"""Autoscaler unit tests: streak hysteresis and cooldown, no clocks."""

import pytest

from repro.serve import Autoscaler, AutoscalerConfig


def cfg(**kw):
    base = dict(min_replicas=1, max_replicas=4, backlog_per_replica=2.0,
                scale_up_streak=3, idle_streak=4, cooldown_s=5.0)
    base.update(kw)
    return AutoscalerConfig(**base)


class TestAutoscaler:
    def test_sustained_backlog_scales_up(self):
        a = Autoscaler(cfg())
        # threshold for 1 replica is depth > 2
        assert a.observe(queue_depth=5, inflight=0, replicas=1,
                         now=0.0) == "hold"
        assert a.observe(queue_depth=5, inflight=0, replicas=1,
                         now=1.0) == "hold"
        assert a.observe(queue_depth=5, inflight=0, replicas=1,
                         now=2.0) == "scale_up"

    def test_one_burst_does_not_flap(self):
        a = Autoscaler(cfg())
        a.observe(queue_depth=9, inflight=0, replicas=1, now=0.0)
        a.observe(queue_depth=9, inflight=0, replicas=1, now=1.0)
        # one clear window resets the streak entirely
        a.observe(queue_depth=0, inflight=1, replicas=1, now=2.0)
        assert a.observe(queue_depth=9, inflight=0, replicas=1,
                         now=3.0) == "hold"

    def test_cooldown_delays_next_action(self):
        a = Autoscaler(cfg(scale_up_streak=1, cooldown_s=10.0))
        assert a.observe(queue_depth=9, inflight=0, replicas=1,
                         now=0.0) == "scale_up"
        # pressure persists but the cooldown gates the next decision...
        assert a.observe(queue_depth=9, inflight=0, replicas=2,
                         now=5.0) == "hold"
        # ...and expires on monotonic time
        assert a.observe(queue_depth=9, inflight=0, replicas=2,
                         now=10.0) == "scale_up"

    def test_never_beyond_max_replicas(self):
        a = Autoscaler(cfg(scale_up_streak=1, cooldown_s=0.0,
                           max_replicas=2))
        assert a.observe(queue_depth=99, inflight=0, replicas=2,
                         now=0.0) == "hold"

    def test_sustained_idle_retires_down_to_min(self):
        a = Autoscaler(cfg(idle_streak=2, cooldown_s=0.0))
        assert a.observe(queue_depth=0, inflight=0, replicas=3,
                         now=0.0) == "hold"
        assert a.observe(queue_depth=0, inflight=0, replicas=3,
                         now=1.0) == "retire"
        # at the floor, idleness is tolerated forever
        for t in range(2, 10):
            assert a.observe(queue_depth=0, inflight=0, replicas=1,
                             now=float(t)) == "hold"

    def test_inflight_work_is_not_idle(self):
        a = Autoscaler(cfg(idle_streak=1, cooldown_s=0.0))
        assert a.observe(queue_depth=0, inflight=2, replicas=3,
                         now=0.0) == "hold"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(backlog_per_replica=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_streak=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(cooldown_s=-1.0)
