"""Hardware spec tests (the MareNostrum-CTE model, Section IV-B)."""

import pytest

from repro.cluster import (
    POWER9_NODE,
    V100_16GB,
    ClusterSpec,
    DeviceId,
    fits_in_gpu_memory,
    marenostrum_cte,
    unet3d_activation_bytes,
)


class TestSpecs:
    def test_v100_facts(self):
        assert V100_16GB.memory_gb == pytest.approx(16.0)
        assert V100_16GB.fp32_tflops == pytest.approx(15.7)

    def test_power9_node_facts(self):
        """52 nodes of 2x20-core Power9 with 4 V100s each."""
        assert POWER9_NODE.num_gpus == 4
        assert POWER9_NODE.cpu_cores == 40
        assert POWER9_NODE.gpu is V100_16GB

    def test_marenostrum_preset(self):
        spec = marenostrum_cte(8)
        assert spec.total_gpus == 32
        assert spec.name == "MareNostrum-CTE"
        assert spec.inter_link.name.startswith("InfiniBand")

    def test_marenostrum_node_limit(self):
        with pytest.raises(ValueError, match="52"):
            marenostrum_cte(53)
        assert marenostrum_cte(52).total_gpus == 208


class TestDeviceMapping:
    def test_dense_packing(self):
        spec = marenostrum_cte(8)
        assert spec.device(0) == DeviceId(0, 0)
        assert spec.device(3) == DeviceId(0, 3)
        assert spec.device(4) == DeviceId(1, 0)
        assert spec.device(31) == DeviceId(7, 3)

    def test_out_of_range(self):
        spec = marenostrum_cte(2)
        with pytest.raises(ValueError):
            spec.device(8)

    def test_devices_list(self):
        spec = marenostrum_cte(2)
        devs = spec.devices(6)
        assert len(devs) == 6
        assert devs[5] == DeviceId(1, 1)
        with pytest.raises(ValueError):
            spec.devices(9)

    def test_nodes_for(self):
        spec = marenostrum_cte(8)
        assert spec.nodes_for(1) == 1
        assert spec.nodes_for(4) == 1
        assert spec.nodes_for(5) == 2
        assert spec.nodes_for(32) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)


class TestMemoryModel:
    def test_paper_batch2_fits_batch3_does_not(self):
        """The 16 GB V100 forces batch <= 2 full volumes (Sections IV-B,
        V-C): our footprint model must reproduce that feasibility edge."""
        spatial = (240, 240, 152)
        params = 406_793
        act2 = unet3d_activation_bytes(spatial, batch_per_replica=2)
        act3 = unet3d_activation_bytes(spatial, batch_per_replica=3)
        assert fits_in_gpu_memory(V100_16GB, params, act2)
        assert not fits_in_gpu_memory(V100_16GB, params, act3)

    def test_activation_bytes_scale_linearly_with_batch(self):
        a1 = unet3d_activation_bytes((64, 64, 64), batch_per_replica=1)
        a2 = unet3d_activation_bytes((64, 64, 64), batch_per_replica=2)
        assert a2 == pytest.approx(2 * a1)

    def test_inference_cheaper_than_training(self):
        spatial = (64, 64, 64)
        assert unet3d_activation_bytes(spatial, train=False) < \
            unet3d_activation_bytes(spatial, train=True)
