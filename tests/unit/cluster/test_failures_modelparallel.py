"""Failure injection and pipeline-parallel plan tests."""

import numpy as np
import pytest

from repro.cluster import (
    NVLINK2,
    V100_16GB,
    FailureModel,
    plan_pipeline_parallel,
    run_with_failures,
)
from repro.cluster.failures import expected_slowdown
from repro.raysim import fifo_schedule


class TestFailureModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(mtbf_s=0)
        with pytest.raises(ValueError):
            FailureModel(mtbf_s=10, repair_s=-1)
        with pytest.raises(ValueError):
            FailureModel(mtbf_s=10, checkpoint_fraction=1.0)


class TestRunWithFailures:
    DURATIONS = [100.0, 80.0, 120.0, 60.0]

    def test_no_failures_matches_fifo(self):
        model = FailureModel(mtbf_s=1e12)  # failures effectively never
        res = run_with_failures(self.DURATIONS, 2, model, seed=0)
        assert res.num_failures == 0
        assert res.wasted_seconds == 0.0
        assert res.makespan == pytest.approx(
            fifo_schedule(self.DURATIONS, 2).makespan
        )

    def test_failures_extend_makespan(self):
        healthy = run_with_failures(
            self.DURATIONS, 2, FailureModel(mtbf_s=1e12), seed=0
        )
        flaky = run_with_failures(
            self.DURATIONS, 2, FailureModel(mtbf_s=150.0, repair_s=30.0),
            seed=0,
        )
        assert flaky.num_failures > 0
        assert flaky.makespan > healthy.makespan
        assert flaky.wasted_seconds > 0

    def test_checkpointing_reduces_waste(self):
        kw = dict(seed=3)
        scratch = run_with_failures(
            self.DURATIONS, 2,
            FailureModel(mtbf_s=120.0, repair_s=10.0,
                         checkpoint_fraction=0.0), **kw,
        )
        ckpt = run_with_failures(
            self.DURATIONS, 2,
            FailureModel(mtbf_s=120.0, repair_s=10.0,
                         checkpoint_fraction=0.9), **kw,
        )
        if scratch.num_failures and ckpt.num_failures:
            assert ckpt.makespan <= scratch.makespan + 1e-9

    def test_all_trials_eventually_finish(self):
        res = run_with_failures(
            [50.0] * 6, 3, FailureModel(mtbf_s=80.0, repair_s=5.0), seed=1
        )
        finished = [e for e in res.timeline.events if e.category == "train"]
        assert len(finished) == 6

    def test_seeded_reproducible(self):
        m = FailureModel(mtbf_s=100.0, repair_s=10.0)
        a = run_with_failures(self.DURATIONS, 2, m, seed=5)
        b = run_with_failures(self.DURATIONS, 2, m, seed=5)
        assert a.makespan == b.makespan
        assert a.num_failures == b.num_failures

    def test_validation(self):
        with pytest.raises(ValueError):
            run_with_failures([1.0], 0, FailureModel(mtbf_s=10))
        with pytest.raises(ValueError):
            run_with_failures([-1.0], 1, FailureModel(mtbf_s=10))

    def test_expected_slowdown_analytic(self):
        """Monte-Carlo completion time matches the renewal formula."""
        model = FailureModel(mtbf_s=200.0, repair_s=20.0)
        d = 100.0
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(4000):
            t = 0.0
            while True:
                f = rng.exponential(model.mtbf_s)
                if f >= d:
                    t += d
                    break
                t += f + model.repair_s
            samples.append(t)
        mc = np.mean(samples) / d
        assert expected_slowdown(d, model) == pytest.approx(mc, rel=0.05)


class TestPipelineParallelPlan:
    FLOPS = 1.5e12  # fwd+bwd for a batch of 2 full volumes

    def _plan(self, stages, **kw):
        return plan_pipeline_parallel(
            total_step_flops=self.FLOPS,
            spatial=(240, 240, 152),
            gpu=V100_16GB,
            link=NVLINK2,
            num_stages=stages,
            batch_per_step=2,
            **kw,
        )

    def test_single_stage_no_bubble_no_comm(self):
        p = self._plan(1)
        assert p.bubble_fraction == 0.0

    def test_memory_drops_with_stages(self):
        mems = [self._plan(s).per_stage_memory_bytes for s in (1, 2, 4)]
        assert mems[0] > mems[1] > mems[2]

    def test_max_batch_grows_with_stages(self):
        batches = [self._plan(s).max_feasible_batch for s in (1, 2, 4)]
        assert batches[0] < batches[2]

    def test_bubble_shrinks_with_microbatches(self):
        few = self._plan(4, num_microbatches=2)
        many = self._plan(4, num_microbatches=16)
        assert many.bubble_fraction < few.bubble_fraction
        assert many.step_time_s < few.step_time_s

    def test_throughput_helper(self):
        p = self._plan(2)
        assert p.throughput_samples_per_s() == pytest.approx(
            2 / p.step_time_s
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            self._plan(0)
        with pytest.raises(ValueError):
            plan_pipeline_parallel(self.FLOPS, (8, 8, 8), V100_16GB,
                                   NVLINK2, 2, 0)
