"""Failure injection and pipeline-parallel plan tests."""

import numpy as np
import pytest

from repro.cluster import (
    NVLINK2,
    V100_16GB,
    FailureModel,
    plan_pipeline_parallel,
    run_with_failures,
)
from repro.cluster.failures import expected_slowdown
from repro.fault_tolerance import RetryPolicy
from repro.raysim import fifo_schedule


class TestFailureModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(mtbf_s=0)
        with pytest.raises(ValueError):
            FailureModel(mtbf_s=10, repair_s=-1)
        with pytest.raises(ValueError):
            FailureModel(mtbf_s=10, checkpoint_fraction=1.0)


class TestRunWithFailures:
    DURATIONS = [100.0, 80.0, 120.0, 60.0]

    def test_no_failures_matches_fifo(self):
        model = FailureModel(mtbf_s=1e12)  # failures effectively never
        res = run_with_failures(self.DURATIONS, 2, model, seed=0)
        assert res.num_failures == 0
        assert res.wasted_seconds == 0.0
        assert res.makespan == pytest.approx(
            fifo_schedule(self.DURATIONS, 2).makespan
        )

    def test_failures_extend_makespan(self):
        healthy = run_with_failures(
            self.DURATIONS, 2, FailureModel(mtbf_s=1e12), seed=0
        )
        flaky = run_with_failures(
            self.DURATIONS, 2, FailureModel(mtbf_s=150.0, repair_s=30.0),
            seed=0,
        )
        assert flaky.num_failures > 0
        assert flaky.makespan > healthy.makespan
        assert flaky.wasted_seconds > 0

    def test_checkpointing_reduces_waste(self):
        kw = dict(seed=3)
        scratch = run_with_failures(
            self.DURATIONS, 2,
            FailureModel(mtbf_s=120.0, repair_s=10.0,
                         checkpoint_fraction=0.0), **kw,
        )
        ckpt = run_with_failures(
            self.DURATIONS, 2,
            FailureModel(mtbf_s=120.0, repair_s=10.0,
                         checkpoint_fraction=0.9), **kw,
        )
        if scratch.num_failures and ckpt.num_failures:
            assert ckpt.makespan <= scratch.makespan + 1e-9

    def test_all_trials_eventually_finish(self):
        res = run_with_failures(
            [50.0] * 6, 3, FailureModel(mtbf_s=80.0, repair_s=5.0), seed=1
        )
        finished = [e for e in res.timeline.events if e.category == "train"]
        assert len(finished) == 6

    def test_seeded_reproducible(self):
        m = FailureModel(mtbf_s=100.0, repair_s=10.0)
        a = run_with_failures(self.DURATIONS, 2, m, seed=5)
        b = run_with_failures(self.DURATIONS, 2, m, seed=5)
        assert a.makespan == b.makespan
        assert a.num_failures == b.num_failures

    def test_validation(self):
        with pytest.raises(ValueError):
            run_with_failures([1.0], 0, FailureModel(mtbf_s=10))
        with pytest.raises(ValueError):
            run_with_failures([-1.0], 1, FailureModel(mtbf_s=10))

    def test_expected_slowdown_pins_run_with_failures(self):
        """The analytic slowdown must match the simulator itself (not
        just a hand-rolled Monte-Carlo): default semantics are
        restart-from-scratch, exactly the formula's assumption."""
        model = FailureModel(mtbf_s=200.0, repair_s=20.0)
        d = 100.0
        ratios = [
            run_with_failures([d], 1, model, seed=s).makespan / d
            for s in range(600)
        ]
        assert expected_slowdown(d, model) == pytest.approx(
            float(np.mean(ratios)), rel=0.1
        )

    def test_expected_slowdown_analytic(self):
        """Monte-Carlo completion time matches the renewal formula."""
        model = FailureModel(mtbf_s=200.0, repair_s=20.0)
        d = 100.0
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(4000):
            t = 0.0
            while True:
                f = rng.exponential(model.mtbf_s)
                if f >= d:
                    t += d
                    break
                t += f + model.repair_s
            samples.append(t)
        mc = np.mean(samples) / d
        assert expected_slowdown(d, model) == pytest.approx(mc, rel=0.05)


class TestEpochCheckpointsAndRetryPolicy:
    """The reworked run_with_failures: discrete per-epoch checkpoints,
    RetryPolicy semantics, and per-trial retry records."""

    def test_kept_work_snaps_to_epoch_boundaries(self):
        res = run_with_failures(
            [100.0], 1, FailureModel(mtbf_s=40.0, repair_s=5.0),
            seed=2, num_epochs=10,
        )
        assert res.num_failures > 0
        for rec in res.retries:
            assert rec.kept_work_s % 10.0 == pytest.approx(0.0, abs=1e-9)
            if rec.kept_work_s > 0:
                assert rec.resumed_epoch == int(round(rec.kept_work_s / 10.0))
            else:
                assert rec.resumed_epoch is None
            assert rec.lost_work_s >= 0.0

    def test_finished_trial_records_resume_epoch(self):
        res = run_with_failures(
            [100.0], 1, FailureModel(mtbf_s=40.0, repair_s=5.0),
            seed=2, num_epochs=10,
        )
        (train,) = [e for e in res.timeline.events if e.category == "train"]
        last_resume = res.retries[-1].resumed_epoch
        assert train.meta["resumed_epoch"] == last_resume
        assert train.meta["attempt"] == len(res.retries)

    def test_scratch_discards_all_progress(self):
        res = run_with_failures(
            [100.0], 1, FailureModel(mtbf_s=60.0, repair_s=5.0),
            seed=2, num_epochs=10,
            retry_policy=RetryPolicy(max_retries=10**6, resume="scratch"),
        )
        assert res.num_failures > 0
        assert all(r.kept_work_s == 0.0 for r in res.retries)
        assert all(r.resumed_epoch is None for r in res.retries)
        assert res.wasted_seconds == pytest.approx(
            sum(r.lost_work_s for r in res.retries)
        )

    def test_checkpoint_resume_no_slower_than_scratch(self):
        m = FailureModel(mtbf_s=60.0, repair_s=10.0)
        kw = dict(seed=2, num_epochs=20)
        ckpt = run_with_failures(
            [100.0], 1, m,
            retry_policy=RetryPolicy(max_retries=10**6), **kw,
        )
        scratch = run_with_failures(
            [100.0], 1, m,
            retry_policy=RetryPolicy(max_retries=10**6, resume="scratch"),
            **kw,
        )
        assert ckpt.num_failures > 0
        assert ckpt.makespan <= scratch.makespan + 1e-9

    def test_max_retries_abandons_trial(self):
        res = run_with_failures(
            [1000.0], 1, FailureModel(mtbf_s=5.0, repair_s=1.0),
            seed=0, num_epochs=10,
            retry_policy=RetryPolicy(max_retries=2),
        )
        assert res.num_abandoned == 1
        assert not [e for e in res.timeline.events if e.category == "train"]
        abandoned = [e for e in res.timeline.events
                     if e.category == "abandoned"]
        assert len(abandoned) == 1
        assert len(res.retries) == 3  # max_attempts failed attempts
        assert res.attempts() == {"trial_00": 3}

    def test_retries_reproducible_by_seed(self):
        m = FailureModel(mtbf_s=80.0, repair_s=5.0)
        kw = dict(seed=9, num_epochs=10)
        a = run_with_failures([100.0, 80.0], 2, m, **kw)
        b = run_with_failures([100.0, 80.0], 2, m, **kw)
        assert a.retries == b.retries  # RetryRecord is a frozen dataclass
        assert a.makespan == b.makespan

    def test_retry_records_in_chrome_trace(self):
        res = run_with_failures(
            [100.0], 1, FailureModel(mtbf_s=30.0, repair_s=5.0),
            seed=2, num_epochs=10,
        )
        assert res.num_failures > 0
        trace = res.timeline.to_chrome_trace()
        fails = [e for e in trace if e["cat"] == "failure"]
        assert len(fails) == res.num_failures
        for e in fails:
            assert "attempt" in e["args"]
            assert "kept_work_s" in e["args"]
            assert "lost_work_s" in e["args"]

    def test_num_epochs_validation(self):
        with pytest.raises(ValueError):
            run_with_failures([1.0, 2.0], 1, FailureModel(mtbf_s=10),
                              num_epochs=[5])
        with pytest.raises(ValueError):
            run_with_failures([1.0], 1, FailureModel(mtbf_s=10),
                              num_epochs=0)


class TestPipelineParallelPlan:
    FLOPS = 1.5e12  # fwd+bwd for a batch of 2 full volumes

    def _plan(self, stages, **kw):
        return plan_pipeline_parallel(
            total_step_flops=self.FLOPS,
            spatial=(240, 240, 152),
            gpu=V100_16GB,
            link=NVLINK2,
            num_stages=stages,
            batch_per_step=2,
            **kw,
        )

    def test_single_stage_no_bubble_no_comm(self):
        p = self._plan(1)
        assert p.bubble_fraction == 0.0

    def test_memory_drops_with_stages(self):
        mems = [self._plan(s).per_stage_memory_bytes for s in (1, 2, 4)]
        assert mems[0] > mems[1] > mems[2]

    def test_max_batch_grows_with_stages(self):
        batches = [self._plan(s).max_feasible_batch for s in (1, 2, 4)]
        assert batches[0] < batches[2]

    def test_bubble_shrinks_with_microbatches(self):
        few = self._plan(4, num_microbatches=2)
        many = self._plan(4, num_microbatches=16)
        assert many.bubble_fraction < few.bubble_fraction
        assert many.step_time_s < few.step_time_s

    def test_throughput_helper(self):
        p = self._plan(2)
        assert p.throughput_samples_per_s() == pytest.approx(
            2 / p.step_time_s
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            self._plan(0)
        with pytest.raises(ValueError):
            plan_pipeline_parallel(self.FLOPS, (8, 8, 8), V100_16GB,
                                   NVLINK2, 2, 0)
