"""Discrete-event simulator tests."""

import pytest

from repro.cluster import (
    Resource,
    SimulationError,
    Simulator,
)


class TestTimeouts:
    def test_clock_advances(self):
        sim = Simulator()
        seen = []

        def proc():
            yield sim.timeout(2.5)
            seen.append(sim.now)
            yield sim.timeout(1.5)
            seen.append(sim.now)

        sim.process(proc())
        assert sim.run() == 4.0
        assert seen == [2.5, 4.0]

    def test_timeout_value_passed_through(self):
        sim = Simulator()
        got = []

        def proc():
            v = yield sim.timeout(1.0, value="payload")
            got.append(v)

        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_run_until_stops_clock(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(10.0)

        sim.process(proc())
        assert sim.run(until=3.0) == 3.0
        assert sim.peek() == 10.0
        assert sim.run() == 10.0

    def test_zero_delay_events_same_time(self):
        sim = Simulator()
        order = []

        def a():
            order.append("a")
            yield sim.timeout(0.0)
            order.append("a2")

        def b():
            order.append("b")
            yield sim.timeout(0.0)
            order.append("b2")

        sim.process(a())
        sim.process(b())
        sim.run()
        assert order == ["a", "b", "a2", "b2"]  # FIFO within a timestamp
        assert sim.now == 0.0


class TestProcesses:
    def test_process_is_joinable_event(self):
        sim = Simulator()
        log = []

        def child():
            yield sim.timeout(2.0)
            return "child-result"

        def parent():
            result = yield sim.process(child())
            log.append((sim.now, result))

        sim.process(parent())
        sim.run()
        assert log == [(2.0, "child-result")]

    def test_all_of_join(self):
        sim = Simulator()
        got = []

        def worker(d):
            yield sim.timeout(d)
            return d

        def parent():
            vals = yield sim.all_of([sim.process(worker(d)) for d in (3, 1, 2)])
            got.append((sim.now, vals))

        sim.process(parent())
        sim.run()
        assert got == [(3.0, [3, 1, 2])]

    def test_all_of_empty(self):
        sim = Simulator()
        got = []

        def parent():
            vals = yield sim.all_of([])
            got.append(vals)

        sim.process(parent())
        sim.run()
        assert got == [[]]

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError, match="must yield Events"):
            sim.run()

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()


class TestResources:
    def test_capacity_enforced(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finish = []

        def job(i):
            yield res.request()
            yield sim.timeout(1.0)
            res.release()
            finish.append((i, sim.now))

        for i in range(5):
            sim.process(job(i))
        sim.run()
        # 5 unit jobs over capacity 2 -> makespan 3
        assert sim.now == 3.0
        assert [t for _, t in finish] == [1.0, 1.0, 2.0, 2.0, 3.0]

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def job(name, hold):
            yield res.request()
            order.append(name)
            yield sim.timeout(hold)
            res.release()

        for name, hold in (("a", 2.0), ("b", 1.0), ("c", 1.0)):
            sim.process(job(name, hold))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_release_without_acquire(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError, match="release"):
            res.release()

    def test_queue_length(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(5.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.queue_length == 1
        sim.run()
        assert res.queue_length == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)
