"""Collective cost models and exact ring all-reduce."""

import numpy as np
import pytest

from repro.cluster import (
    INFINIBAND_EDR,
    NVLINK2,
    LinkSpec,
    allreduce_time,
    hierarchical_allreduce_time,
    ring_allreduce,
    ring_allreduce_time,
    transfer_time,
    tree_allreduce_time,
)

rng = np.random.default_rng(17)
MB = 1_000_000


class TestLinkModel:
    def test_alpha_beta(self):
        link = LinkSpec("test", latency_s=1e-6, bandwidth_gbs=10.0)
        assert transfer_time(0, link) == pytest.approx(1e-6)
        assert transfer_time(10 * MB, link) == pytest.approx(1e-6 + 1e-3)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            transfer_time(-1, NVLINK2)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LinkSpec("bad", latency_s=-1, bandwidth_gbs=1)
        with pytest.raises(ValueError):
            LinkSpec("bad", latency_s=0, bandwidth_gbs=0)


class TestCostModels:
    def test_single_gpu_is_free(self):
        assert ring_allreduce_time(MB, 1, NVLINK2) == 0.0
        assert tree_allreduce_time(MB, 1, NVLINK2) == 0.0
        assert allreduce_time(MB, 1, 4, NVLINK2, INFINIBAND_EDR) == 0.0

    def test_ring_bandwidth_term_saturates(self):
        """Ring moves 2(n-1)/n of the buffer: the bandwidth term tends to
        2x buffer time as n grows, so large-n time stays bounded when
        latency is negligible."""
        quiet = LinkSpec("quiet", latency_s=0.0, bandwidth_gbs=10.0)
        t64 = ring_allreduce_time(100 * MB, 64, quiet)
        t128 = ring_allreduce_time(100 * MB, 128, quiet)
        limit = 2 * 100 * MB / quiet.bandwidth_bytes_per_s
        assert t64 < t128 < limit * 1.01

    def test_tree_beats_ring_for_tiny_messages(self):
        t_ring = ring_allreduce_time(64, 32, INFINIBAND_EDR)
        t_tree = tree_allreduce_time(64, 32, INFINIBAND_EDR)
        assert t_tree < t_ring

    def test_ring_beats_tree_for_big_messages(self):
        t_ring = ring_allreduce_time(500 * MB, 16, INFINIBAND_EDR)
        t_tree = tree_allreduce_time(500 * MB, 16, INFINIBAND_EDR)
        assert t_ring < t_tree

    def test_hierarchical_structure(self):
        """Hierarchical = intra ring + inter ring + intra rebroadcast."""
        got = hierarchical_allreduce_time(MB, 4, 8, NVLINK2, INFINIBAND_EDR)
        intra = ring_allreduce_time(MB, 4, NVLINK2)
        inter = ring_allreduce_time(MB, 8, INFINIBAND_EDR)
        assert got == pytest.approx(intra * 1.5 + inter)

    def test_dispatch_three_cases(self):
        """Section III-B2: 1 GPU free; <=M intra-node only; >M pays IB."""
        t1 = allreduce_time(MB, 1, 4, NVLINK2, INFINIBAND_EDR)
        t4 = allreduce_time(MB, 4, 4, NVLINK2, INFINIBAND_EDR)
        t8 = allreduce_time(MB, 8, 4, NVLINK2, INFINIBAND_EDR)
        assert t1 == 0.0
        assert t4 == ring_allreduce_time(MB, 4, NVLINK2)
        assert t8 > t4  # crossing the node boundary costs extra
        assert t8 == pytest.approx(
            hierarchical_allreduce_time(MB, 4, 2, NVLINK2, INFINIBAND_EDR)
        )

    def test_monotone_in_bytes(self):
        times = [
            allreduce_time(b, 8, 4, NVLINK2, INFINIBAND_EDR)
            for b in (MB, 10 * MB, 100 * MB)
        ]
        assert times[0] < times[1] < times[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(MB, 0, NVLINK2)
        with pytest.raises(ValueError):
            allreduce_time(MB, 0, 4, NVLINK2, INFINIBAND_EDR)


class TestExactRingAllReduce:
    def test_result_is_sum_everywhere(self):
        bufs = [rng.normal(size=(5, 3)) for _ in range(7)]
        out = ring_allreduce(bufs)
        expect = sum(bufs)
        for o in out:
            np.testing.assert_allclose(o, expect, atol=1e-12)

    def test_average_mode(self):
        bufs = [np.full(4, float(i)) for i in range(4)]
        out = ring_allreduce(bufs, average=True)
        np.testing.assert_allclose(out[0], 1.5)

    def test_single_buffer_identity(self):
        b = rng.normal(size=6)
        (out,) = ring_allreduce([b])
        np.testing.assert_allclose(out, b)

    def test_inputs_unmodified(self):
        bufs = [rng.normal(size=4) for _ in range(3)]
        copies = [b.copy() for b in bufs]
        ring_allreduce(bufs)
        for b, c in zip(bufs, copies):
            np.testing.assert_array_equal(b, c)

    def test_buffer_smaller_than_ring(self):
        """More ranks than elements still reduces correctly (empty
        chunks are legal)."""
        bufs = [np.array([float(i)]) for i in range(5)]
        out = ring_allreduce(bufs)
        for o in out:
            np.testing.assert_allclose(o, [10.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros(3), np.zeros(4)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce([])
