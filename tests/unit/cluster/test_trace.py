"""Timeline / trace tests."""

import json

import pytest

from repro.cluster import Timeline, TraceEvent


def build_timeline() -> Timeline:
    tl = Timeline()
    tl.record("t0", 0.0, 2.0, "gpu0", category="train")
    tl.record("t1", 1.0, 3.0, "gpu1", category="train")
    tl.record("c0", 3.0, 3.5, "gpu0", category="comm")
    return tl


class TestTraceEvent:
    def test_duration(self):
        ev = TraceEvent("x", 1.0, 4.0, "gpu0")
        assert ev.duration == 3.0

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("x", 2.0, 1.0, "gpu0")


class TestTimeline:
    def test_makespan(self):
        assert build_timeline().makespan() == 3.5
        assert Timeline().makespan() == 0.0

    def test_resources_sorted(self):
        assert build_timeline().resources() == ["gpu0", "gpu1"]

    def test_busy_time_merges_overlaps(self):
        tl = Timeline()
        tl.record("a", 0.0, 2.0, "r")
        tl.record("b", 1.0, 3.0, "r")   # overlaps a
        tl.record("c", 5.0, 6.0, "r")
        assert tl.busy_time("r") == pytest.approx(4.0)

    def test_utilization(self):
        tl = build_timeline()
        assert tl.utilization("gpu0") == pytest.approx(2.5 / 3.5)
        assert tl.utilization("gpu1") == pytest.approx(2.0 / 3.5)
        assert 0 < tl.mean_utilization() <= 1

    def test_utilization_horizon(self):
        tl = build_timeline()
        assert tl.utilization("gpu1", horizon=10.0) == pytest.approx(0.2)

    def test_utilization_window_excludes_idle_lead_in(self):
        # recording that starts late must not dilute utilisation: the
        # window is makespan - start_time, not makespan
        tl = Timeline()
        tl.record("a", 100.0, 101.0, "r")
        tl.record("b", 101.0, 102.0, "r")
        assert tl.utilization("r") == pytest.approx(1.0)
        assert tl.mean_utilization() == pytest.approx(1.0)

    def test_utilization_empty_and_degenerate(self):
        assert Timeline().utilization("r") == 0.0
        tl = Timeline()
        tl.record("instant", 5.0, 5.0, "r")  # zero-length window
        assert tl.utilization("r") == 0.0

    def test_by_category(self):
        cats = build_timeline().by_category()
        assert cats == {"train": pytest.approx(4.0), "comm": pytest.approx(0.5)}

    def test_chrome_trace_roundtrip(self, tmp_path):
        tl = build_timeline()
        path = tmp_path / "trace.json"
        events = tl.to_chrome_trace(path)
        assert len(events) == 3
        assert events[0]["ph"] == "X"
        loaded = json.loads(path.read_text())
        assert loaded == events
        # lanes are stable per resource
        lanes = {e["name"]: e["tid"] for e in events}
        assert lanes["t0"] == lanes["c0"]
        assert lanes["t0"] != lanes["t1"]
        # timestamps/durations are microseconds; meta survives as args
        by_name = {e["name"]: e for e in loaded}
        assert by_name["t1"]["ts"] == pytest.approx(1.0e6)
        assert by_name["t1"]["dur"] == pytest.approx(2.0e6)
        assert by_name["c0"]["dur"] == pytest.approx(0.5e6)

    def test_chrome_trace_meta_args_roundtrip(self, tmp_path):
        tl = Timeline()
        tl.record("t", 0.0, 1.0, "gpu0", category="train",
                  case="mirrored", lr=1e-4)
        path = tmp_path / "trace.json"
        tl.to_chrome_trace(path)
        (ev,) = json.loads(path.read_text())
        assert ev["args"] == {"case": "mirrored", "lr": 1e-4}
        assert ev["cat"] == "train"

    def test_meta_kwargs_recorded(self):
        tl = Timeline()
        ev = tl.record("x", 0, 1, "r", case="mirrored", lr=1e-4)
        assert ev.meta == {"case": "mirrored", "lr": 1e-4}
