"""Optimizer tests on a toy quadratic model and bookkeeping checks."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, ConstantLR, Module, Momentum, StepDecay, get_optimizer


class Quadratic(Module):
    """f(w) = 0.5 * ||w - target||^2 as a trivial 'model'."""

    def __init__(self, dim=5, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.target = rng.normal(size=dim)
        self.add_parameter("w", np.zeros(dim))

    def loss_and_grad(self):
        diff = self.w.value - self.target
        self.w.grad = diff.copy()
        return 0.5 * float(diff @ diff)


def _train(opt_factory, steps=200):
    model = Quadratic()
    opt = opt_factory(model)
    for _ in range(steps):
        model.zero_grad()
        loss = model.loss_and_grad()
        opt.step()
    return model, loss


class TestConvergence:
    def test_sgd_converges(self):
        model, loss = _train(lambda m: SGD(m, lr=0.1), steps=300)
        assert loss < 1e-8

    def test_momentum_converges(self):
        model, loss = _train(lambda m: Momentum(m, lr=0.05, momentum=0.9))
        assert loss < 1e-8

    def test_nesterov_converges(self):
        model, loss = _train(
            lambda m: Momentum(m, lr=0.05, momentum=0.9, nesterov=True)
        )
        assert loss < 1e-6

    def test_adam_converges(self):
        model, loss = _train(lambda m: Adam(m, lr=0.1), steps=400)
        assert loss < 1e-6

    def test_adam_beats_sgd_early_on_badly_scaled_problem(self):
        class Scaled(Quadratic):
            def loss_and_grad(self):
                scale = np.array([100.0, 1.0, 1.0, 1.0, 0.01])
                diff = scale * (self.w.value - self.target)
                self.w.grad = scale * diff
                return 0.5 * float(diff @ diff)

        def run(opt_cls, lr):
            m = Scaled()
            opt = opt_cls(m, lr=lr)
            for _ in range(50):
                m.zero_grad()
                loss = m.loss_and_grad()
                opt.step()
            return loss

        assert run(Adam, 0.1) < run(SGD, 1e-4)


class TestMechanics:
    def test_weight_decay_shrinks_solution(self):
        m1, _ = _train(lambda m: SGD(m, lr=0.1), steps=500)
        m2 = Quadratic()
        opt = SGD(m2, lr=0.1, weight_decay=1.0)
        for _ in range(500):
            m2.zero_grad()
            m2.loss_and_grad()
            opt.step()
        assert np.linalg.norm(m2.w.value) < np.linalg.norm(m1.w.value)

    def test_frozen_parameters_not_updated(self):
        model = Quadratic()
        model.w.trainable = False
        opt = SGD(model, lr=0.1)
        model.loss_and_grad()
        opt.step()
        np.testing.assert_array_equal(model.w.value, np.zeros(5))

    def test_schedule_drives_lr(self):
        model = Quadratic()
        opt = SGD(model, lr=StepDecay(1.0, step_size=2, gamma=0.1))
        assert opt.lr == 1.0
        model.loss_and_grad()
        opt.step()
        opt.step()
        assert opt.lr == pytest.approx(0.1)

    def test_step_returns_lr_used(self):
        model = Quadratic()
        opt = SGD(model, lr=ConstantLR(0.25))
        model.loss_and_grad()
        assert opt.step() == 0.25

    def test_adam_state_roundtrip(self):
        model = Quadratic()
        opt = Adam(model, lr=0.1)
        for _ in range(3):
            model.zero_grad()
            model.loss_and_grad()
            opt.step()
        state = opt.state_dict()
        w_after_3 = model.w.value.copy()

        model2 = Quadratic()
        model2.w.value = w_after_3.copy()
        opt2 = Adam(model2, lr=0.1)
        opt2.load_state_dict(state)

        for o, m in ((opt, model), (opt2, model2)):
            m.zero_grad()
            m.loss_and_grad()
            o.step()
        np.testing.assert_allclose(model.w.value, model2.w.value)

    def test_bad_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam(Quadratic(), beta1=1.0)


class TestRegistry:
    def test_lookup(self):
        m = Quadratic()
        assert isinstance(get_optimizer("adam", m), Adam)
        assert isinstance(get_optimizer("sgd", m, lr=0.1), SGD)
        assert isinstance(get_optimizer("momentum", m), Momentum)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            get_optimizer("lamb", Quadratic())
