"""Cross-validation of the GEMM-family conv backends against the
reference.

The ``reference`` einsum kernels are the ground truth; the ``gemm``
im2col lowering and the tiled ``fused`` backend must agree with them
(and with finite differences) at every stride/padding/kernel
combination the U-Net uses -- plus the registry plumbing that selects
between them.  The fused backend is additionally pinned with tiling
*forced on* (tiny ``DISTMIS_KERNEL_TILE_MB``) and under thread-pool
tile execution (``DISTMIS_KERNEL_THREADS``), which must stay
bit-identical to the serial run.
"""

import numpy as np
import pytest

from repro.nn import (
    Conv3D,
    ConvTranspose3D,
    UNet3D,
    check_module_gradients,
    use_compute_dtype,
    workspace,
)
from repro.nn.functional import (
    conv3d_backward,
    conv3d_forward,
    conv_transpose3d_backward,
    conv_transpose3d_forward,
    release_conv_ctx,
)
from repro.nn.kernels import (
    available_backends,
    get_backend,
    kernel_seconds_snapshot,
    registry,
    set_backend,
    use_backend,
)

rng = np.random.default_rng(42)

# every (kernel, stride, pad) combination exercised by the model, plus
# the asymmetric cases the functional layer accepts.  'same' padding is
# a layer-level notion (odd kernels only); resolve it like Conv3D does.
CONV_CONFIGS = [
    (kernel, stride, pad)
    for kernel in (1, 2, 3)
    for stride in (1, 2)
    for pad in ("same", "valid", 1)
    if not (pad == "same" and kernel % 2 == 0)
]


def _resolve_pad(pad, kernel: int) -> int:
    if pad == "same":
        return kernel // 2
    if pad == "valid":
        return 0
    return pad


def _conv_tensors(kernel, cin=2, cout=3, shape=(6, 5, 4)):
    x = rng.normal(size=(2, cin, *shape))
    w = rng.normal(size=(cout, cin, kernel, kernel, kernel))
    b = rng.normal(size=cout)
    return x, w, b


class TestRegistry:
    def test_all_three_backends_registered(self):
        names = available_backends()
        assert {"reference", "gemm", "fused"} <= set(names)

    def test_only_fused_supports_fusion(self):
        for name in available_backends():
            with use_backend(name) as backend:
                assert backend.supports_fusion == (name == "fused")

    def test_default_backend_is_gemm(self):
        assert registry.DEFAULT_BACKEND == "gemm"

    def test_set_backend_returns_previous(self):
        before = get_backend()
        prev = set_backend("reference")
        try:
            assert prev is before
            assert get_backend().name == "reference"
        finally:
            set_backend(prev)

    def test_use_backend_restores_on_exit(self):
        before = get_backend()
        with use_backend("reference") as active:
            assert active.name == "reference"
            assert get_backend() is active
        assert get_backend() is before

    def test_use_backend_restores_on_error(self):
        before = get_backend()
        with pytest.raises(RuntimeError):
            with use_backend("reference"):
                raise RuntimeError("boom")
        assert get_backend() is before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_backend("cudnn")

    def test_env_var_resolved_on_first_use(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "reference")
        monkeypatch.setattr(registry, "_active", None)
        assert get_backend().name == "reference"

    def test_blank_env_var_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "  ")
        monkeypatch.setattr(registry, "_active", None)
        assert get_backend().name == registry.DEFAULT_BACKEND

    def test_dispatch_feeds_kernel_seconds_ledger(self):
        x, w, b = _conv_tensors(3)
        with use_backend("gemm"):
            conv3d_forward(x, w, b, 1, 1)
            snap = kernel_seconds_snapshot()
        assert snap.get(("gemm", "conv3d_forward"), 0.0) > 0.0


CANDIDATES = ("gemm", "fused")


class TestConv3DParity:
    @pytest.mark.parametrize("backend", CANDIDATES)
    @pytest.mark.parametrize("kernel,stride,pad", CONV_CONFIGS)
    def test_forward_matches_reference(self, backend, kernel, stride, pad):
        x, w, b = _conv_tensors(kernel)
        pad = _resolve_pad(pad, kernel)
        with use_backend("reference"):
            y_ref = conv3d_forward(x, w, b, stride, pad)
        with use_backend(backend):
            y = conv3d_forward(x, w, b, stride, pad)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-11)

    @pytest.mark.parametrize("backend", CANDIDATES)
    @pytest.mark.parametrize("kernel,stride,pad", CONV_CONFIGS)
    def test_backward_matches_reference(self, backend, kernel, stride, pad):
        x, w, b = _conv_tensors(kernel)
        pad = _resolve_pad(pad, kernel)
        with use_backend("reference"):
            y = conv3d_forward(x, w, b, stride, pad)
            dy = rng.normal(size=y.shape)
            ref = conv3d_backward(dy, x, w, stride, pad)
        with use_backend(backend):
            out = conv3d_backward(dy, x, w, stride, pad)
        for g, r, label in zip(out, ref, ("dx", "dw", "db")):
            np.testing.assert_allclose(g, r, rtol=1e-9, atol=1e-11,
                                       err_msg=label)

    @pytest.mark.parametrize("backend", CANDIDATES)
    @pytest.mark.parametrize("kernel,stride,pad", CONV_CONFIGS)
    def test_backward_with_ctx_reuse_matches_reference(self, backend, kernel,
                                                       stride, pad):
        """The stashed im2col patches must give the same gradients."""
        x, w, b = _conv_tensors(kernel)
        pad = _resolve_pad(pad, kernel)
        with use_backend("reference"):
            y = conv3d_forward(x, w, b, stride, pad)
            dy = rng.normal(size=y.shape)
            ref = conv3d_backward(dy, x, w, stride, pad)
        with use_backend(backend):
            ctx: dict = {}
            conv3d_forward(x, w, b, stride, pad, ctx=ctx)
            out = conv3d_backward(dy, x, w, stride, pad, ctx=ctx)
            release_conv_ctx(ctx)
        for g, r, label in zip(out, ref, ("dx", "dw", "db")):
            np.testing.assert_allclose(g, r, rtol=1e-9, atol=1e-11,
                                       err_msg=label)


class TestConvTransposeParity:
    @pytest.mark.parametrize("backend", CANDIDATES)
    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 2), (2, 1),
                                               (3, 1)])
    def test_forward_backward_match_reference(self, backend, kernel, stride):
        x = rng.normal(size=(2, 3, 4, 3, 2))
        w = rng.normal(size=(3, 2, kernel, kernel, kernel))
        b = rng.normal(size=2)
        with use_backend("reference"):
            y_ref = conv_transpose3d_forward(x, w, b, stride)
            dy = rng.normal(size=y_ref.shape)
            ref = conv_transpose3d_backward(dy, x, w, stride)
        with use_backend(backend):
            y = conv_transpose3d_forward(x, w, b, stride)
            out = conv_transpose3d_backward(dy, x, w, stride)
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-11)
        for g, r, label in zip(out, ref, ("dx", "dw", "db")):
            np.testing.assert_allclose(g, r, rtol=1e-9, atol=1e-11,
                                       err_msg=label)


class TestGradcheck:
    """Finite differences against the layers the U-Net instantiates."""

    @pytest.mark.parametrize("backend", CANDIDATES)
    @pytest.mark.parametrize("kernel,stride,pad", [
        (3, 1, "same"),   # every ConvBlock conv
        (1, 1, 0),        # the 1x1x1 segmentation head
        (3, 2, 1),        # strided variant
        (2, 1, "valid"),  # even kernel
    ])
    def test_conv3d_gradients(self, backend, kernel, stride, pad):
        layer = Conv3D(2, 3, kernel, stride=stride, padding=pad,
                       rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 2, 5, 5, 4))
        with use_backend(backend):
            errs = check_module_gradients(layer, x)
        assert max(errs.values()) < 1e-6, errs

    @pytest.mark.parametrize("backend", CANDIDATES)
    def test_conv_transpose3d_gradients(self, backend):
        layer = ConvTranspose3D(3, 2, 2, stride=2,
                                rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 3, 3, 3, 2))
        with use_backend(backend):
            errs = check_module_gradients(layer, x)
        assert max(errs.values()) < 1e-6, errs

    def test_conv3d_gradients_with_tiling_forced(self, monkeypatch):
        """Tiny tile budget: the fused lowering must split every conv
        into many output-depth tiles and still pass finite differences."""
        monkeypatch.setenv("DISTMIS_KERNEL_TILE_MB", "0.0001")
        layer = Conv3D(2, 3, 3, padding="same",
                       rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 2, 5, 5, 4))
        with use_backend("fused"):
            errs = check_module_gradients(layer, x)
        assert max(errs.values()) < 1e-6, errs


class TestFusedTilingAndThreads:
    """The fused backend's tiled path (forced on via a tiny tile budget)
    against the reference, serially and on the tile thread-pool."""

    def _run(self, backend):
        g = np.random.default_rng(1234)  # identical tensors every call
        x = g.normal(size=(2, 2, 8, 7, 6))
        w = g.normal(size=(3, 2, 3, 3, 3))
        b = g.normal(size=3)
        with use_backend(backend):
            ctx: dict = {}
            y = conv3d_forward(x, w, b, 1, 1, ctx=ctx)
            dy = np.random.default_rng(9).normal(size=y.shape)
            dx, dw, db = conv3d_backward(dy, x, w, 1, 1, ctx=ctx)
            release_conv_ctx(ctx)
        return y, dx, dw, db

    def test_tiled_path_matches_reference(self, monkeypatch):
        ref = self._run("reference")
        monkeypatch.setenv("DISTMIS_KERNEL_TILE_MB", "0.001")
        out = self._run("fused")
        for o, r, label in zip(out, ref, ("y", "dx", "dw", "db")):
            np.testing.assert_allclose(o, r, rtol=1e-9, atol=1e-11,
                                       err_msg=label)

    def test_threaded_tiles_bit_identical_to_serial(self, monkeypatch):
        """Thread-pool tile execution is a scheduling choice, not a
        numerical one: every output must match the serial run exactly,
        and no tile may scribble over another's workspace buffer."""
        monkeypatch.setenv("DISTMIS_KERNEL_TILE_MB", "0.001")
        serial = self._run("fused")
        monkeypatch.setenv("DISTMIS_KERNEL_THREADS", "4")
        threaded = self._run("fused")
        for s, t, label in zip(serial, threaded, ("y", "dx", "dw", "db")):
            assert np.array_equal(s, t), f"{label} differs under threads"

    def test_workspace_balanced_after_tiled_run(self, monkeypatch):
        # delta, not absolute: earlier tests' layers may still hold a
        # live forward ctx (released lazily on their next forward)
        monkeypatch.setenv("DISTMIS_KERNEL_TILE_MB", "0.001")
        monkeypatch.setenv("DISTMIS_KERNEL_THREADS", "2")
        before = workspace().stats()["in_use_bytes"]
        self._run("fused")
        assert workspace().stats()["in_use_bytes"] == before

    def test_outputs_do_not_alias_workspace(self, monkeypatch):
        """Forward/backward results must be freshly allocated -- a later
        kernel call reusing arena scratch must not mutate them."""
        monkeypatch.setenv("DISTMIS_KERNEL_TILE_MB", "0.001")
        y1, dx1, dw1, db1 = self._run("fused")
        snap = (y1.copy(), dx1.copy(), dw1.copy(), db1.copy())
        self._run("fused")  # reuses the same arena buffers
        for a, b, label in zip((y1, dx1, dw1, db1), snap,
                               ("y", "dx", "dw", "db")):
            assert np.array_equal(a, b), f"{label} aliases the workspace"


class TestModelLevelParity:
    @pytest.mark.parametrize("backend", CANDIDATES)
    def test_unet_step_grads_match_reference(self, backend):
        x = np.random.default_rng(5).normal(size=(1, 2, 8, 8, 8))

        def grads(name):
            with use_backend(name):
                net = UNet3D(2, 1, base_filters=2, depth=2, norm="none",
                             rng=np.random.default_rng(3))
                net.train()
                net.zero_grad()
                pred = net(x)
                net.backward(np.ones_like(pred) / pred.size)
                return pred, net.get_flat_grads()

        pred_ref, g_ref = grads("reference")
        pred, g = grads(backend)
        np.testing.assert_allclose(pred, pred_ref, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(g, g_ref, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("backend", CANDIDATES)
    def test_float32_path_parity(self, backend):
        x64 = np.random.default_rng(5).normal(size=(2, 2, 6, 6, 4))
        with use_compute_dtype("float32"):
            layer = Conv3D(2, 3, 3, padding="same",
                           rng=np.random.default_rng(0))
            assert layer.w.value.dtype == np.float32
            x = x64.astype(np.float32)
            with use_backend("reference"):
                y_ref = layer(x)
                layer.zero_grad()
                layer.backward(np.ones_like(y_ref))
                gw_ref = layer.w.grad.copy()
            with use_backend(backend):
                y = layer(x)
                layer.zero_grad()
                layer.backward(np.ones_like(y))
                gw = layer.w.grad.copy()
        assert y_ref.dtype == np.float32 and y.dtype == np.float32
        np.testing.assert_allclose(y, y_ref, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(gw, gw_ref, rtol=1e-4, atol=1e-4)
