"""Metric tests: Dice, IoU, precision/recall, confusion counts."""

import numpy as np
import pytest

from repro.nn import (
    batch_dice,
    dice_coefficient,
    iou,
    precision,
    recall,
    soft_dice_coefficient,
    voxel_accuracy,
)
from repro.nn.metrics import confusion_counts


def _masks():
    pred = np.zeros((4, 4, 4))
    target = np.zeros((4, 4, 4))
    pred[:2] = 1.0       # 32 voxels predicted
    target[1:3] = 1.0    # 32 voxels true, overlap = 16
    return pred, target


class TestDice:
    def test_half_overlap(self):
        pred, target = _masks()
        # dice = 2*16 / (32+32) = 0.5
        assert dice_coefficient(pred, target) == pytest.approx(0.5)

    def test_perfect(self):
        pred, target = _masks()
        assert dice_coefficient(target, target) == pytest.approx(1.0)

    def test_disjoint(self):
        pred = np.zeros((4, 4, 4)); pred[0] = 1
        target = np.zeros((4, 4, 4)); target[3] = 1
        assert dice_coefficient(pred, target) == pytest.approx(0.0)

    def test_both_empty_returns_empty_value(self):
        z = np.zeros((2, 2, 2))
        assert dice_coefficient(z, z) == 1.0
        assert dice_coefficient(z, z, empty_value=0.0) == 0.0

    def test_threshold_applied_to_probabilities(self):
        pred = np.full((2, 2, 2), 0.6)
        target = np.ones((2, 2, 2))
        assert dice_coefficient(pred, target, threshold=0.5) == pytest.approx(1.0)
        assert dice_coefficient(pred, target, threshold=0.7) == pytest.approx(0.0)

    def test_symmetry(self):
        pred, target = _masks()
        assert dice_coefficient(pred, target) == dice_coefficient(target, pred)

    def test_dice_vs_iou_relation(self):
        """dice = 2*iou / (1 + iou) for any pair of hard masks."""
        pred, target = _masks()
        d = dice_coefficient(pred, target)
        j = iou(pred, target)
        assert d == pytest.approx(2 * j / (1 + j))


class TestSoftDice:
    def test_matches_hard_dice_on_binary(self):
        pred, target = _masks()
        assert soft_dice_coefficient(pred, target, eps=1e-12) == pytest.approx(
            0.5, abs=1e-9
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            soft_dice_coefficient(np.zeros(3), np.zeros(4))


class TestPrecisionRecall:
    def test_values(self):
        pred, target = _masks()
        # TP=16, FP=16, FN=16
        assert precision(pred, target) == pytest.approx(0.5)
        assert recall(pred, target) == pytest.approx(0.5)

    def test_empty_prediction_precision_is_one(self):
        z = np.zeros((2, 2, 2))
        t = np.ones((2, 2, 2))
        assert precision(z, t) == 1.0
        assert recall(z, t) == 0.0

    def test_accuracy(self):
        pred, target = _masks()
        # TP=16 TN=16 of 64
        assert voxel_accuracy(pred, target) == pytest.approx(0.5)


class TestConfusion:
    def test_counts_sum_to_total(self):
        pred, target = _masks()
        tp, fp, fn, tn = confusion_counts(pred, target)
        assert tp + fp + fn + tn == pred.size
        assert (tp, fp, fn, tn) == (16, 16, 16, 16)


class TestBatchDice:
    def test_per_sample(self):
        pred = np.stack([np.ones((2, 2, 2)), np.zeros((2, 2, 2))])
        target = np.ones((2, 2, 2, 2))
        out = batch_dice(pred, target)
        assert out.shape == (2,)
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            batch_dice(np.zeros((2, 2)), np.zeros((3, 2)))
