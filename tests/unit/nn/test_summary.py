"""Model-summary tests."""

import numpy as np

from repro.nn import Conv3D, ReLU, Sequential, UNet3D, format_summary, model_summary


class TestModelSummary:
    def test_sequential_rows(self):
        net = Sequential(
            Conv3D(1, 4, 3, rng=np.random.default_rng(0)),
            ReLU(),
            Conv3D(4, 2, 3, rng=np.random.default_rng(1)),
        )
        rows = model_summary(net, (1, 1, 4, 4, 4))
        kinds = [r.kind for r in rows]
        assert kinds == ["Conv3D", "ReLU", "Conv3D"]
        assert rows[0].output_shape == (1, 4, 4, 4, 4)
        assert rows[0].params == 1 * 4 * 27 + 4
        assert rows[1].params == 0

    def test_param_totals_match_model(self):
        net = UNet3D(2, 1, 2, 2, rng=np.random.default_rng(0))
        rows = model_summary(net, (1, 2, 4, 4, 4))
        assert sum(r.params for r in rows) == net.num_params()

    def test_model_left_intact(self):
        net = UNet3D(2, 1, 2, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 2, 4, 4, 4))
        before = net.predict(x)
        model_summary(net, (1, 2, 4, 4, 4))
        assert net.training  # mode restored
        np.testing.assert_array_equal(net.predict(x), before)
        # forward no longer shadowed by the probe wrapper
        assert "forward" not in net.enc_blocks[0].body.layers[0].__dict__

    def test_format_contains_totals(self):
        net = UNet3D(4, 1, 8, 4, rng=np.random.default_rng(0))
        text = format_summary(net, (1, 4, 16, 16, 16))
        assert "total params: 352,513" in text
        assert "Conv3D" in text and "BatchNorm" in text

    def test_shapes_follow_unet_contraction(self):
        net = UNet3D(1, 1, 2, 3, rng=np.random.default_rng(0))
        rows = model_summary(net, (1, 1, 8, 8, 8))
        pool_shapes = [r.output_shape for r in rows if r.kind == "MaxPool3D"]
        assert pool_shapes == [(1, 2, 4, 4, 4), (1, 4, 2, 2, 2)]
