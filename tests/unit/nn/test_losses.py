"""Loss function tests: values, analytic gradients, registry."""

import numpy as np
import pytest

from repro.nn import (
    BinaryCrossEntropy,
    ComboLoss,
    QuadraticSoftDiceLoss,
    SoftDiceLoss,
    get_loss,
    numeric_gradient,
    relative_error,
)

rng = np.random.default_rng(99)


def _rand_pred_target(shape=(2, 1, 3, 3, 3)):
    pred = rng.uniform(0.05, 0.95, size=shape)
    target = (rng.uniform(size=shape) > 0.6).astype(float)
    return pred, target


class TestSoftDice:
    def test_perfect_match_is_zero_loss(self):
        t = np.zeros((1, 1, 4, 4, 4))
        t[0, 0, :2] = 1.0
        loss, _ = SoftDiceLoss().forward(t.copy(), t)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_complete_mismatch_near_one(self):
        pred = np.zeros((1, 1, 4, 4, 4))
        pred[0, 0, :2] = 1.0
        target = np.zeros_like(pred)
        target[0, 0, 2:] = 1.0
        loss, _ = SoftDiceLoss(eps=1e-6).forward(pred, target)
        assert loss == pytest.approx(1.0, abs=1e-4)

    def test_empty_masks_give_zero_loss(self):
        """eps keeps 0/0 at dice=1 (loss 0) for empty prediction+target."""
        z = np.zeros((1, 1, 2, 2, 2))
        loss, _ = SoftDiceLoss(eps=0.1).forward(z, z.copy())
        assert loss == pytest.approx(0.0)

    def test_loss_in_unit_interval(self):
        pred, target = _rand_pred_target()
        loss, _ = SoftDiceLoss().forward(pred, target)
        assert 0.0 <= loss <= 1.0

    def test_gradient_matches_numeric(self):
        pred, target = _rand_pred_target((2, 1, 2, 2, 2))
        loss_fn = SoftDiceLoss()
        _, grad = loss_fn.forward(pred, target)
        num = numeric_gradient(lambda p: loss_fn.forward(p, target)[0], pred.copy())
        assert relative_error(grad, num) < 1e-5

    def test_batch_mean_semantics(self):
        """Loss of a batch == mean of per-sample losses (claim C2 lever)."""
        pred, target = _rand_pred_target((4, 1, 2, 2, 2))
        loss_fn = SoftDiceLoss()
        full, _ = loss_fn.forward(pred, target)
        singles = [
            loss_fn.forward(pred[i : i + 1], target[i : i + 1])[0]
            for i in range(4)
        ]
        assert full == pytest.approx(np.mean(singles))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            SoftDiceLoss().forward(np.zeros((1, 2)), np.zeros((1, 3)))

    def test_bad_eps_rejected(self):
        with pytest.raises(ValueError):
            SoftDiceLoss(eps=0.0)


class TestQuadraticSoftDice:
    def test_gradient_matches_numeric(self):
        pred, target = _rand_pred_target((2, 1, 2, 2, 2))
        loss_fn = QuadraticSoftDiceLoss()
        _, grad = loss_fn.forward(pred, target)
        num = numeric_gradient(lambda p: loss_fn.forward(p, target)[0], pred.copy())
        assert relative_error(grad, num) < 1e-5

    def test_perfect_binary_match_is_zero(self):
        t = np.zeros((1, 1, 2, 2, 2))
        t[0, 0, 0] = 1.0
        loss, _ = QuadraticSoftDiceLoss().forward(t.copy(), t)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_differs_from_plain_dice_on_soft_preds(self):
        pred, target = _rand_pred_target()
        l1, _ = SoftDiceLoss().forward(pred, target)
        l2, _ = QuadraticSoftDiceLoss().forward(pred, target)
        assert l1 != pytest.approx(l2)


class TestBCE:
    def test_gradient_matches_numeric(self):
        pred, target = _rand_pred_target((2, 1, 2, 2, 2))
        loss_fn = BinaryCrossEntropy()
        _, grad = loss_fn.forward(pred, target)
        num = numeric_gradient(lambda p: loss_fn.forward(p, target)[0], pred.copy())
        assert relative_error(grad, num) < 1e-4

    def test_clipping_handles_extremes(self):
        pred = np.array([[0.0, 1.0]])
        target = np.array([[1.0, 0.0]])
        loss, grad = BinaryCrossEntropy().forward(pred, target)
        assert np.isfinite(loss) and np.isfinite(grad).all()


class TestComboLoss:
    def test_alpha_blend(self):
        pred, target = _rand_pred_target()
        d, b = SoftDiceLoss(), BinaryCrossEntropy()
        combo = ComboLoss(d, b, alpha=0.3)
        lc, gc = combo.forward(pred, target)
        ld, gd = d.forward(pred, target)
        lb, gb = b.forward(pred, target)
        assert lc == pytest.approx(0.3 * ld + 0.7 * lb)
        np.testing.assert_allclose(gc, 0.3 * gd + 0.7 * gb)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ComboLoss(SoftDiceLoss(), BinaryCrossEntropy(), alpha=1.5)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_loss("dice"), SoftDiceLoss)
        assert isinstance(get_loss("quadratic_dice"), QuadraticSoftDiceLoss)
        assert isinstance(get_loss("bce"), BinaryCrossEntropy)

    def test_instance_passthrough(self):
        inst = SoftDiceLoss(eps=0.5)
        assert get_loss(inst) is inst

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown loss"):
            get_loss("focal")

    def test_kwargs_forwarded(self):
        assert get_loss("dice", eps=0.25).eps == 0.25
