"""Learning-rate schedule tests, including the paper's scaling rule."""

import pytest

from repro.nn import (
    ConstantLR,
    CosineAnnealing,
    CyclicLR,
    ExponentialDecay,
    LinearWarmup,
    StepDecay,
    linear_scaling_rule,
)


class TestConstant:
    def test_value(self):
        s = ConstantLR(1e-4)
        assert s(0) == s(1000) == 1e-4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)


class TestStepDecay:
    def test_decays_at_boundaries(self):
        s = StepDecay(1.0, step_size=10, gamma=0.5)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(20) == 0.25


class TestExponential:
    def test_smooth_decay(self):
        s = ExponentialDecay(1.0, decay_steps=10, decay_rate=0.5)
        assert s(10) == pytest.approx(0.5)
        assert s(5) == pytest.approx(0.5**0.5)


class TestCyclic:
    def test_triangular_waveform(self):
        s = CyclicLR(base_lr=0.1, max_lr=1.0, step_size=10)
        assert s(0) == pytest.approx(0.1)
        assert s(10) == pytest.approx(1.0)   # peak
        assert s(20) == pytest.approx(0.1)   # trough
        assert s(5) == pytest.approx(0.55)   # mid-ramp

    def test_triangular2_halves_amplitude(self):
        s = CyclicLR(0.0, 1.0, step_size=10, mode="triangular2")
        assert s(10) == pytest.approx(1.0)
        assert s(30) == pytest.approx(0.5)

    def test_bounds_respected_everywhere(self):
        s = CyclicLR(1e-4, 1e-3, step_size=7)
        vals = [s(t) for t in range(100)]
        assert min(vals) >= 1e-4 - 1e-12
        assert max(vals) <= 1e-3 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            CyclicLR(1.0, 0.5, 10)
        with pytest.raises(ValueError):
            CyclicLR(0.1, 1.0, 0)
        with pytest.raises(ValueError):
            CyclicLR(0.1, 1.0, 10, mode="sawtooth")


class TestCosine:
    def test_endpoints(self):
        s = CosineAnnealing(1.0, total_steps=100, min_lr=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(100) == pytest.approx(0.1)
        assert s(500) == pytest.approx(0.1)  # clamps past the horizon

    def test_monotone_decrease(self):
        s = CosineAnnealing(1.0, total_steps=50)
        vals = [s(t) for t in range(51)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))


class TestWarmup:
    def test_ramps_into_inner(self):
        s = LinearWarmup(ConstantLR(1.0), warmup_steps=10)
        assert s(0) == pytest.approx(0.1)
        assert s(4) == pytest.approx(0.5)
        assert s(10) == pytest.approx(1.0)
        assert s(50) == pytest.approx(1.0)

    def test_zero_warmup_is_identity(self):
        s = LinearWarmup(ConstantLR(0.3), warmup_steps=0)
        assert s(0) == 0.3


class TestLinearScalingRule:
    def test_paper_rule(self):
        """Section IV-B: initial LR = 1e-4 x #GPUs."""
        assert linear_scaling_rule(1e-4, 1) == pytest.approx(1e-4)
        assert linear_scaling_rule(1e-4, 32) == pytest.approx(3.2e-3)

    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            linear_scaling_rule(1e-4, 0)
