"""Module system tests: registration, traversal, state, flat views."""

import numpy as np
import pytest

from repro.nn import Conv3D, Module, Parameter, ReLU, Sequential


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.add_parameter("a", np.ones(3))
        self.child = Sequential(Conv3D(1, 2, 1, rng=np.random.default_rng(0)))

    def forward(self, x):
        return x

    def backward(self, dy):
        return dy


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 2)))
        assert p.grad.shape == (2, 2)
        assert (p.grad == 0).all()

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert (p.grad == 0).all()

    def test_shape_size(self):
        p = Parameter(np.zeros((2, 3)))
        assert p.shape == (2, 3) and p.size == 6


class TestTraversal:
    def test_named_parameters_qualified(self):
        toy = Toy()
        names = dict(toy.named_parameters())
        assert "a" in names
        assert "child.layer0.w" in names
        assert "child.layer0.b" in names

    def test_num_params(self):
        toy = Toy()
        # a: 3, conv 1x1x1 (1->2): w=2, b=2
        assert toy.num_params() == 3 + 2 + 2

    def test_named_modules(self):
        toy = Toy()
        mods = dict(toy.named_modules())
        assert "" in mods and "child" in mods and "child.layer0" in mods


class TestState:
    def test_state_dict_roundtrip(self):
        toy = Toy()
        state = toy.state_dict()
        toy.a.value[:] = 99.0
        toy.load_state_dict(state)
        np.testing.assert_array_equal(toy.a.value, np.ones(3))

    def test_state_dict_is_copy(self):
        toy = Toy()
        state = toy.state_dict()
        state["a"][:] = 7.0
        assert (toy.a.value == 1.0).all()

    def test_missing_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        del state["a"]
        with pytest.raises(KeyError, match="missing"):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["a"] = np.zeros(5)
        with pytest.raises(ValueError, match="shape mismatch"):
            toy.load_state_dict(state)


class TestFlatViews:
    def test_flat_params_roundtrip(self):
        toy = Toy()
        flat = toy.get_flat_params()
        assert flat.size == toy.num_params(trainable_only=True)
        toy.set_flat_params(flat * 2)
        np.testing.assert_array_equal(toy.a.value, 2 * np.ones(3))

    def test_flat_grads_roundtrip(self):
        toy = Toy()
        g = np.arange(float(toy.num_params(trainable_only=True)))
        toy.set_flat_grads(g)
        np.testing.assert_array_equal(toy.get_flat_grads(), g)

    def test_wrong_size_rejected(self):
        toy = Toy()
        with pytest.raises(ValueError):
            toy.set_flat_params(np.zeros(1))

    def test_flat_excludes_buffers(self):
        from repro.nn import BatchNorm

        bn = BatchNorm(4)
        # gamma(4) + beta(4) trainable; running stats excluded
        assert bn.get_flat_params().size == 8
        assert bn.num_params() == 16


class TestModes:
    def test_train_eval_recursive(self):
        toy = Toy()
        toy.eval()
        assert not toy.training and not toy.child.training
        toy.train()
        assert toy.training and toy.child.training

    def test_zero_grad_recursive(self):
        toy = Toy()
        for p in toy.parameters():
            p.grad += 1.0
        toy.zero_grad()
        assert all((p.grad == 0).all() for p in toy.parameters())

    def test_call_dispatches_forward(self):
        assert ReLU()(np.array([[-1.0, 2.0]])).tolist() == [[0.0, 2.0]]
