"""Initializer tests, including the paper's truncated normal."""

import numpy as np
import pytest

from repro.nn import GlorotUniform, HeNormal, TruncatedNormal, get_initializer
from repro.nn.initializers import Constant, Ones, RandomNormal, Zeros, _fan_in_out

rng = np.random.default_rng(11)


class TestTruncatedNormal:
    def test_all_samples_within_two_sigma(self):
        init = TruncatedNormal(mean=0.0, stddev=0.05)
        w = init((50, 50), rng)
        assert np.abs(w).max() <= 0.1 + 1e-12

    def test_mean_approximately_centred(self):
        init = TruncatedNormal(mean=1.0, stddev=0.1)
        w = init((200, 200), rng)
        assert abs(w.mean() - 1.0) < 0.01
        assert w.min() >= 0.8 and w.max() <= 1.2

    def test_deterministic_with_seed(self):
        init = TruncatedNormal()
        a = init((10,), np.random.default_rng(1))
        b = init((10,), np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestFanComputation:
    def test_dense(self):
        assert _fan_in_out((20, 30)) == (20, 30)

    def test_conv_channels_first(self):
        # (C_out=8, C_in=4, 3,3,3): fan_in = 4*27, fan_out = 8*27
        assert _fan_in_out((8, 4, 3, 3, 3)) == (108, 216)


class TestGlorotHe:
    def test_glorot_bounds(self):
        w = GlorotUniform()((16, 4, 3, 3, 3), rng)
        limit = np.sqrt(6.0 / (4 * 27 + 16 * 27))
        assert np.abs(w).max() <= limit

    def test_he_variance(self):
        w = HeNormal()((64, 32, 3, 3, 3), rng)
        expected_std = np.sqrt(2.0 / (32 * 27))
        assert abs(w.std() - expected_std) / expected_std < 0.05


class TestSimple:
    def test_zeros_ones_constant(self):
        assert (Zeros()((3,), rng) == 0).all()
        assert (Ones()((3,), rng) == 1).all()
        assert (Constant(2.5)((3,), rng) == 2.5).all()

    def test_random_normal_std(self):
        w = RandomNormal(stddev=0.2)((10000,), rng)
        assert abs(w.std() - 0.2) < 0.01


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_initializer("truncated_normal"), TruncatedNormal)
        assert isinstance(get_initializer("glorot_uniform"), GlorotUniform)
        assert isinstance(get_initializer("he_normal"), HeNormal)

    def test_passthrough(self):
        inst = TruncatedNormal(stddev=0.3)
        assert get_initializer(inst) is inst

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown initializer"):
            get_initializer("orthogonal")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            get_initializer(42)


class TestDtypePolicy:
    """Initializers honour the compute-dtype policy (ISSUE 5)."""

    def test_default_dtype_is_float64(self):
        for init in (Zeros(), Ones(), Constant(3.0), TruncatedNormal(),
                     RandomNormal(), GlorotUniform(), HeNormal()):
            assert init((4, 4), rng).dtype == np.float64

    def test_explicit_float32(self):
        for init in (Zeros(dtype="float32"), Ones(dtype="float32"),
                     Constant(3.0, dtype="float32"),
                     TruncatedNormal(dtype="float32"),
                     RandomNormal(dtype="float32"),
                     GlorotUniform(dtype="float32"),
                     HeNormal(dtype="float32")):
            assert init((4, 4), rng).dtype == np.float32

    def test_dtype_none_follows_policy_at_call_time(self):
        from repro.nn import use_compute_dtype

        init = TruncatedNormal()  # dtype=None defers to the policy
        with use_compute_dtype("float32"):
            assert init((8,), rng).dtype == np.float32
        assert init((8,), rng).dtype == np.float64
        # an explicit dtype is pinned and ignores the policy
        with use_compute_dtype("float32"):
            assert TruncatedNormal(dtype="float64")((8,), rng).dtype \
                == np.float64

    def test_float32_draw_is_downcast_of_float64_draw(self):
        """Random inits draw in float64 then downcast, so the float32
        stream is the bit-exact downcast of the float64 one."""
        a = TruncatedNormal()((32,), np.random.default_rng(9))
        b = TruncatedNormal(dtype="float32")((32,), np.random.default_rng(9))
        np.testing.assert_array_equal(b, a.astype(np.float32))

    def test_get_initializer_forwards_dtype_for_string_specs(self):
        init = get_initializer("he_normal", dtype="float32")
        assert init((4, 4), rng).dtype == np.float32
        # instance passthrough keeps the instance's own dtype
        inst = TruncatedNormal(dtype="float32")
        assert get_initializer(inst, dtype="float64") is inst
