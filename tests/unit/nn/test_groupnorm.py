"""Group/instance normalisation tests."""

import numpy as np
import pytest

from repro.nn import (
    GroupNorm,
    InstanceNorm,
    UNet3D,
    check_module_gradients,
)

rng = np.random.default_rng(14)
X = rng.normal(loc=3.0, scale=2.0, size=(2, 4, 4, 4, 4))


class TestGroupNorm:
    def test_normalises_per_group(self):
        gn = GroupNorm(4, num_groups=2)
        y = gn(X)
        yg = y.reshape(2, 2, 2, 4, 4, 4)
        means = yg.mean(axis=(2, 3, 4, 5))
        stds = yg.std(axis=(2, 3, 4, 5))
        np.testing.assert_allclose(means, 0.0, atol=1e-10)
        np.testing.assert_allclose(stds, 1.0, atol=1e-3)

    def test_gradients(self):
        errs = check_module_gradients(GroupNorm(4, 2), X.copy())
        assert max(errs.values()) < 1e-5, errs

    def test_instance_norm_gradients(self):
        errs = check_module_gradients(InstanceNorm(4), X.copy())
        assert max(errs.values()) < 1e-5, errs

    def test_train_eval_identical(self):
        gn = GroupNorm(4, 2)
        y_train = gn(X)
        gn.eval()
        y_eval = gn(X)
        np.testing.assert_allclose(y_train, y_eval)

    def test_batch_independence(self):
        """Each sample normalised independently -- concatenating batches
        does not change any sample's output (the property BN lacks)."""
        gn = GroupNorm(4, 2)
        single = gn(X[:1])
        both = gn(X)
        np.testing.assert_allclose(both[:1], single, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupNorm(4, 3)  # 3 does not divide 4
        with pytest.raises(ValueError):
            GroupNorm(0, 1)
        gn = GroupNorm(4, 2)
        with pytest.raises(ValueError):
            gn(np.zeros((1, 3, 2, 2, 2)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            GroupNorm(4, 2).backward(X)


class TestInstanceNorm:
    def test_is_per_channel_groupnorm(self):
        inn = InstanceNorm(4)
        assert inn.num_groups == 4
        y = inn(X)
        means = y.mean(axis=(2, 3, 4))
        np.testing.assert_allclose(means, 0.0, atol=1e-10)


class TestUNetNormOption:
    @pytest.mark.parametrize("norm", ["batch", "instance", "group", None])
    def test_all_norms_build_and_train(self, norm):
        net = UNet3D(1, 1, 2, 2, rng=np.random.default_rng(0), norm=norm)
        x = rng.normal(size=(2, 1, 4, 4, 4))
        y = net(x)
        dx = net.backward(np.ones_like(y))
        assert dx.shape == x.shape

    def test_unknown_norm_rejected(self):
        with pytest.raises(ValueError, match="unknown norm"):
            UNet3D(1, 1, 2, 2, norm="layer")

    def test_instance_norm_data_parallel_exact_without_sync(self):
        """InstanceNorm is batch-independent, so sharding is exact with
        NO synchronisation -- the practical reason MIS pipelines prefer
        it at batch size 2."""
        from repro.nn import Adam, SoftDiceLoss
        from repro.raysim import DataParallelTrainer

        def factory():
            return UNet3D(1, 1, 2, 2, rng=np.random.default_rng(0),
                          norm="instance")

        r = np.random.default_rng(1)
        x = r.normal(size=(4, 1, 4, 4, 4))
        y = (r.uniform(size=(4, 1, 4, 4, 4)) > 0.8).astype(float)
        t1 = DataParallelTrainer(factory, SoftDiceLoss(),
                                 lambda m: Adam(m, lr=1e-3), 1)
        t2 = DataParallelTrainer(factory, SoftDiceLoss(),
                                 lambda m: Adam(m, lr=1e-3), 2)
        try:
            for _ in range(3):
                o1, o2 = t1.train_step(x, y), t2.train_step(x, y)
                assert o1["loss"] == pytest.approx(o2["loss"], abs=1e-12)
            np.testing.assert_allclose(t1.model.get_flat_params(),
                                       t2.model.get_flat_params(), atol=1e-10)
        finally:
            t1.shutdown()
            t2.shutdown()

    def test_default_still_batchnorm(self):
        net = UNet3D(1, 1, 2, 2, rng=np.random.default_rng(0))
        names = [n for n, _ in net.named_parameters()]
        assert any("running_mean" in n for n in names)
