"""Multiclass loss + softmax-head U-Net tests (the original 4-class task)."""

import numpy as np
import pytest

from repro.nn import (
    MulticlassSoftDiceLoss,
    UNet3D,
    get_loss,
    numeric_gradient,
    relative_error,
)
from repro.data import one_hot

rng = np.random.default_rng(31)


def softmaxed(shape=(2, 4, 3, 3, 3)):
    logits = rng.normal(size=shape)
    e = np.exp(logits - logits.max(axis=1, keepdims=True))
    return e / e.sum(axis=1, keepdims=True)


def onehot_target(shape=(2, 4, 3, 3, 3)):
    labels = rng.integers(0, shape[1], size=(shape[0], *shape[2:]))
    return np.stack([one_hot(l, shape[1]) for l in labels])


class TestMulticlassSoftDice:
    def test_perfect_prediction_zero_loss(self):
        t = onehot_target()
        loss, _ = MulticlassSoftDiceLoss().forward(t.copy(), t)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_loss_in_unit_interval(self):
        p, t = softmaxed(), onehot_target()
        loss, _ = MulticlassSoftDiceLoss().forward(p, t)
        assert 0.0 <= loss <= 1.0

    def test_gradient_matches_numeric(self):
        p, t = softmaxed((1, 3, 2, 2, 2)), onehot_target((1, 3, 2, 2, 2))
        loss_fn = MulticlassSoftDiceLoss()
        _, grad = loss_fn.forward(p, t)
        num = numeric_gradient(lambda v: loss_fn.forward(v, t)[0], p.copy())
        assert relative_error(grad, num) < 1e-5

    def test_exclude_background_gradient(self):
        p, t = softmaxed((1, 3, 2, 2, 2)), onehot_target((1, 3, 2, 2, 2))
        loss_fn = MulticlassSoftDiceLoss(include_background=False)
        _, grad = loss_fn.forward(p, t)
        assert (grad[:, 0] == 0).all()  # background channel untouched
        num = numeric_gradient(lambda v: loss_fn.forward(v, t)[0], p.copy())
        assert relative_error(grad, num) < 1e-5

    def test_no_foreground_rejected(self):
        with pytest.raises(ValueError):
            MulticlassSoftDiceLoss(include_background=False).forward(
                np.zeros((1, 1, 2, 2, 2)), np.zeros((1, 1, 2, 2, 2))
            )

    def test_registry(self):
        assert isinstance(get_loss("multiclass_dice"), MulticlassSoftDiceLoss)


class TestSoftmaxUNet:
    def test_output_is_distribution_over_classes(self):
        net = UNet3D(2, 4, 2, 2, final_activation="softmax",
                     rng=np.random.default_rng(0))
        y = net(rng.normal(size=(1, 2, 4, 4, 4)))
        assert y.shape == (1, 4, 4, 4, 4)
        np.testing.assert_allclose(y.sum(axis=1), 1.0, atol=1e-9)
        assert (y >= 0).all()

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError):
            UNet3D(1, 1, 2, 2, final_activation="relu")

    def test_multiclass_training_reduces_loss(self):
        """Short 4-class training on a synthetic labelled volume."""
        from repro.nn import Adam

        net = UNet3D(2, 4, 3, 2, final_activation="softmax",
                     use_batchnorm=False, rng=np.random.default_rng(0))
        opt = Adam(net, lr=1e-2)
        loss_fn = MulticlassSoftDiceLoss()

        labels = rng.integers(0, 4, size=(2, 4, 4, 4))
        target = np.stack([one_hot(l, 4) for l in labels])
        # make the task learnable: channels encode the label directly
        x = np.stack([
            np.stack([(l == 1) | (l == 2), (l == 2) | (l == 3)])
            for l in labels
        ]).astype(float)
        x += rng.normal(scale=0.05, size=x.shape)

        first = None
        for _ in range(60):
            net.zero_grad()
            pred = net(x)
            value, dpred = loss_fn.forward(pred, target)
            if first is None:
                first = value
            net.backward(dpred)
            opt.step()
        assert value < first * 0.85

    def test_backward_through_softmax_head(self):
        net = UNet3D(1, 3, 2, 2, final_activation="softmax",
                     use_batchnorm=False, rng=np.random.default_rng(0))
        x = rng.normal(size=(1, 1, 4, 4, 4))
        y = net(x)
        dx = net.backward(rng.normal(size=y.shape))
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()
