"""3D U-Net architecture tests (experiment E6: the Fig 2 model)."""

import numpy as np
import pytest

from repro.nn import PAPER_INPUT_SHAPE, PAPER_OUTPUT_SHAPE, UNet3D

rng = np.random.default_rng(3)


def tiny(depth=3, base=2, in_ch=2, **kw):
    return UNet3D(in_channels=in_ch, out_channels=1, base_filters=base,
                  depth=depth, rng=np.random.default_rng(0), **kw)


class TestArchitecture:
    def test_paper_filter_progression(self):
        """Fig 2: filters at step s are 8 * 2**(s-1) -> [8, 16, 32, 64]."""
        net = UNet3D(4, 1, 8, 4, rng=rng)
        assert net.filters == [8, 16, 32, 64]

    def test_paper_parameter_counts(self):
        """The paper reports 406,793 parameters (Section III-A).

        The closest canonical readings of the architecture text give
        352,513 (synthesis filters halved at the up-convolution, as the
        text states) and 410,361 (up-convolution preserves channels).
        Both counts include the BatchNorm moving statistics, as Keras'
        count_params does.  EXPERIMENTS.md discusses the gap.
        """
        assert UNet3D(4, 1, 8, 4, transpose_halves=True, rng=rng).num_params() == 352_513
        assert UNet3D(4, 1, 8, 4, transpose_halves=False, rng=rng).num_params() == 410_361

    def test_output_shape_matches_input_spatial(self):
        net = tiny()
        x = rng.normal(size=(2, 2, 8, 8, 8))
        y = net(x)
        assert y.shape == (2, 1, 8, 8, 8)

    def test_paper_io_shapes_statically(self):
        """4x240x240x152 in, 1x240x240x152 out; validate without running."""
        net = UNet3D(4, 1, 8, 4, rng=rng)
        net.validate_input_shape((1, *PAPER_INPUT_SHAPE))
        assert PAPER_OUTPUT_SHAPE[0] == net.out_channels
        assert net.min_divisor() == 8
        assert all(d % 8 == 0 for d in PAPER_INPUT_SHAPE[1:])

    def test_output_is_probability(self):
        net = tiny()
        y = net(rng.normal(size=(1, 2, 8, 8, 8)) * 10)
        assert (y >= 0).all() and (y <= 1).all()

    def test_min_divisor(self):
        assert tiny(depth=3).min_divisor() == 4
        assert tiny(depth=4).min_divisor() == 8

    def test_invalid_spatial_dims_rejected(self):
        net = tiny(depth=3)
        with pytest.raises(ValueError, match="divisible"):
            net(rng.normal(size=(1, 2, 6, 8, 8)))

    def test_wrong_channels_rejected(self):
        net = tiny()
        with pytest.raises(ValueError, match="channels"):
            net(rng.normal(size=(1, 3, 8, 8, 8)))

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            UNet3D(depth=1)
        with pytest.raises(ValueError):
            UNet3D(base_filters=0)

    def test_155_slices_rejected_152_accepted(self):
        """The paper crops 240x240x155 -> 240x240x152 precisely so the
        three poolings divide evenly (Section IV-A)."""
        net = UNet3D(4, 1, 8, 4, rng=rng)
        with pytest.raises(ValueError, match="crop"):
            net.validate_input_shape((1, 4, 240, 240, 155))
        net.validate_input_shape((1, 4, 240, 240, 152))


class TestTraining:
    def test_backward_returns_input_gradient(self):
        net = tiny()
        x = rng.normal(size=(1, 2, 8, 8, 8))
        y = net(x)
        dx = net.backward(np.ones_like(y))
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()

    def test_all_parameters_receive_gradient(self):
        net = tiny()
        x = rng.normal(size=(2, 2, 8, 8, 8))
        y = net(x)
        net.backward(rng.normal(size=y.shape))
        for name, p in net.named_parameters():
            if p.trainable:
                assert np.abs(p.grad).sum() > 0, f"{name} got no gradient"

    def test_gradcheck_tiny_net(self):
        """Finite-difference check on a minimal U-Net.

        BatchNorm is disabled (batch-statistics coupling makes numeric
        differencing noisy) and the truncated-normal weights are scaled
        up: at the default 0.05 stddev a two-level net's pre-activations
        sit so close to zero that perturbing a scalar bias sweeps whole
        feature maps across the ReLU kink, which breaks central
        differences without indicating a gradient bug.
        """
        from repro.nn import check_module_gradients

        net = UNet3D(1, 1, 2, 2, use_batchnorm=False,
                     rng=np.random.default_rng(0))
        for name, p in net.named_parameters():
            if name.endswith(".w"):
                p.value *= 20.0
        x = rng.normal(size=(1, 1, 4, 4, 4)) + 0.1
        errs = check_module_gradients(net, x, h=1e-5)
        assert max(errs.values()) < 5e-3, errs

    def test_backward_before_forward_raises(self):
        net = tiny()
        with pytest.raises(RuntimeError):
            net.backward(np.zeros((1, 1, 8, 8, 8)))

    def test_predict_restores_training_mode(self):
        net = tiny()
        assert net.training
        net.predict(rng.normal(size=(1, 2, 8, 8, 8)))
        assert net.training

    def test_predict_deterministic_in_eval(self):
        net = tiny()
        # Populate running stats first.
        net(rng.normal(size=(2, 2, 8, 8, 8)))
        x = rng.normal(size=(1, 2, 8, 8, 8))
        np.testing.assert_array_equal(net.predict(x), net.predict(x))

    def test_state_dict_roundtrip_preserves_output(self):
        net = tiny()
        x = rng.normal(size=(1, 2, 8, 8, 8))
        net(rng.normal(size=(2, 2, 8, 8, 8)))  # touch running stats
        y1 = net.predict(x)
        state = net.state_dict()
        net2 = tiny()
        net2.load_state_dict(state)
        np.testing.assert_allclose(net2.predict(x), y1)


class TestVariants:
    def test_transpose_halves_changes_param_count(self):
        a = tiny(transpose_halves=True).num_params()
        b = tiny(transpose_halves=False).num_params()
        assert b > a

    def test_no_batchnorm_variant(self):
        net = tiny(use_batchnorm=False)
        names = [n for n, _ in net.named_parameters()]
        assert not any("gamma" in n for n in names)
        y = net(rng.normal(size=(1, 2, 8, 8, 8)))
        assert y.shape == (1, 1, 8, 8, 8)

    def test_multiclass_head(self):
        net = UNet3D(2, 4, 2, 2, rng=rng)
        y = net(rng.normal(size=(1, 2, 4, 4, 4)))
        assert y.shape == (1, 4, 4, 4, 4)

    def test_bottleneck_dropout_variant(self):
        net = UNet3D(2, 1, 2, 2, bottleneck_dropout=0.5,
                     use_batchnorm=False, rng=np.random.default_rng(0))
        x = rng.normal(size=(2, 2, 8, 8, 8))
        y1 = net(x)
        y2 = net(x)
        assert not np.array_equal(y1, y2)  # stochastic in train mode
        np.testing.assert_array_equal(net.predict(x), net.predict(x))
        dx = net.backward(np.ones_like(y2))
        assert dx.shape == x.shape

    def test_dropout_zero_is_absent(self):
        net = tiny()
        assert net.bottleneck_dropout is None

    def test_seeded_construction_is_reproducible(self):
        a = UNet3D(2, 1, 2, 2, rng=np.random.default_rng(5))
        b = UNet3D(2, 1, 2, 2, rng=np.random.default_rng(5))
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.value, pb.value)
