"""Unit tests for the low-level conv/pool kernels against naive references."""

import numpy as np
import pytest

from repro.nn import functional as F

rng = np.random.default_rng(1234)


def naive_conv3d(x, w, b=None, stride=1, pad=0):
    """Loop reference implementation of channels-first 3D convolution."""
    s = (stride,) * 3 if isinstance(stride, int) else stride
    p = (pad,) * 3 if isinstance(pad, int) else pad
    xp = np.pad(x, ((0, 0), (0, 0), (p[0], p[0]), (p[1], p[1]), (p[2], p[2])))
    n, ci, D, H, W = xp.shape
    co, _, kd, kh, kw = w.shape
    Do = (D - kd) // s[0] + 1
    Ho = (H - kh) // s[1] + 1
    Wo = (W - kw) // s[2] + 1
    y = np.zeros((n, co, Do, Ho, Wo))
    for nn_ in range(n):
        for o in range(co):
            for d in range(Do):
                for h in range(Ho):
                    for ww in range(Wo):
                        patch = xp[
                            nn_,
                            :,
                            d * s[0] : d * s[0] + kd,
                            h * s[1] : h * s[1] + kh,
                            ww * s[2] : ww * s[2] + kw,
                        ]
                        y[nn_, o, d, h, ww] = (patch * w[o]).sum()
            if b is not None:
                y[nn_, o] += b[o]
    return y


class TestConv3DForward:
    def test_matches_naive_same_padding(self):
        x = rng.normal(size=(2, 3, 5, 5, 5))
        w = rng.normal(size=(4, 3, 3, 3, 3))
        b = rng.normal(size=4)
        got = F.conv3d_forward(x, w, b, stride=1, pad=1)
        want = naive_conv3d(x, w, b, stride=1, pad=1)
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_matches_naive_valid(self):
        x = rng.normal(size=(1, 2, 6, 5, 4))
        w = rng.normal(size=(3, 2, 3, 3, 3))
        got = F.conv3d_forward(x, w, None, stride=1, pad=0)
        want = naive_conv3d(x, w, None, stride=1, pad=0)
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_matches_naive_strided(self):
        x = rng.normal(size=(2, 2, 7, 7, 7))
        w = rng.normal(size=(3, 2, 3, 3, 3))
        got = F.conv3d_forward(x, w, None, stride=2, pad=1)
        want = naive_conv3d(x, w, None, stride=2, pad=1)
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_1x1x1_kernel_is_channel_mix(self):
        x = rng.normal(size=(2, 3, 4, 4, 4))
        w = rng.normal(size=(5, 3, 1, 1, 1))
        got = F.conv3d_forward(x, w)
        want = np.einsum("ncdhw,oc->nodhw", x, w[:, :, 0, 0, 0])
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_channel_mismatch_raises(self):
        x = rng.normal(size=(1, 3, 4, 4, 4))
        w = rng.normal(size=(2, 4, 3, 3, 3))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv3d_forward(x, w)

    def test_anisotropic_kernel(self):
        x = rng.normal(size=(1, 2, 6, 6, 6))
        w = rng.normal(size=(2, 2, 1, 3, 3))
        got = F.conv3d_forward(x, w, pad=(0, 1, 1))
        want = naive_conv3d(x, w, pad=(0, 1, 1))
        np.testing.assert_allclose(got, want, rtol=1e-10)


class TestConv3DBackward:
    def test_bias_gradient_is_output_sum(self):
        x = rng.normal(size=(2, 2, 4, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3, 3))
        dy = rng.normal(size=(2, 3, 4, 4, 4))
        _, _, db = F.conv3d_backward(dy, x, w, stride=1, pad=1)
        np.testing.assert_allclose(db, dy.sum(axis=(0, 2, 3, 4)))

    def test_no_bias_returns_none(self):
        x = rng.normal(size=(1, 1, 4, 4, 4))
        w = rng.normal(size=(1, 1, 3, 3, 3))
        dy = rng.normal(size=(1, 1, 4, 4, 4))
        _, _, db = F.conv3d_backward(dy, x, w, pad=1, with_bias=False)
        assert db is None

    def test_dx_shape_matches_input(self):
        x = rng.normal(size=(2, 3, 6, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3, 3))
        y = F.conv3d_forward(x, w, pad=1)
        dx, dw, _ = F.conv3d_backward(np.ones_like(y), x, w, pad=1)
        assert dx.shape == x.shape
        assert dw.shape == w.shape


class TestConvTranspose3D:
    def test_doubles_spatial_dims(self):
        x = rng.normal(size=(1, 3, 4, 4, 4))
        w = rng.normal(size=(3, 2, 2, 2, 2))
        y = F.conv_transpose3d_forward(x, w, stride=2)
        assert y.shape == (1, 2, 8, 8, 8)

    def test_adjoint_of_conv(self):
        """<conv(x), y> == <x, convT(y)> with flipped weight roles."""
        x = rng.normal(size=(1, 2, 4, 4, 4))
        wt = rng.normal(size=(2, 3, 2, 2, 2))  # (C_in, C_out, k)
        y = F.conv_transpose3d_forward(x, wt, stride=2)
        z = rng.normal(size=y.shape)
        # conv with weight (C_in=3 -> C_out=2) built by transposing wt
        wc = wt.transpose(0, 1, 2, 3, 4)  # (2,3,2,2,2) as (O=2, C=3)? see below
        # conv3d expects (C_out, C_in, k): here the adjoint conv maps z (3ch)
        # back to x-space (2ch) with weight (2, 3, k) = wt itself.
        back = F.conv3d_forward(z, wt, stride=2, pad=0)
        lhs = float((y * z).sum())
        rhs = float((x * back).sum())
        assert abs(lhs - rhs) < 1e-8 * max(1.0, abs(lhs))
        _ = wc

    def test_stride1_overlapping_accumulates(self):
        x = np.ones((1, 1, 2, 2, 2))
        w = np.ones((1, 1, 2, 2, 2))
        y = F.conv_transpose3d_forward(x, w, stride=1)
        # Centre voxel of the 3x3x3 output receives all 8 contributions.
        assert y.shape == (1, 1, 3, 3, 3)
        assert y[0, 0, 1, 1, 1] == pytest.approx(8.0)
        assert y[0, 0, 0, 0, 0] == pytest.approx(1.0)

    def test_channel_mismatch_raises(self):
        x = rng.normal(size=(1, 3, 4, 4, 4))
        w = rng.normal(size=(2, 4, 2, 2, 2))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv_transpose3d_forward(x, w)


class TestPooling:
    def test_maxpool_picks_window_max(self):
        x = rng.normal(size=(2, 3, 4, 4, 4))
        y, _ = F.maxpool3d_forward(x, 2)
        assert y.shape == (2, 3, 2, 2, 2)
        # brute-force check
        for n in range(2):
            for c in range(3):
                for d in range(2):
                    for h in range(2):
                        for w in range(2):
                            win = x[n, c, 2*d:2*d+2, 2*h:2*h+2, 2*w:2*w+2]
                            assert y[n, c, d, h, w] == win.max()

    def test_maxpool_backward_routes_to_argmax(self):
        x = np.zeros((1, 1, 2, 2, 2))
        x[0, 0, 1, 0, 1] = 5.0
        y, arg = F.maxpool3d_forward(x, 2)
        dy = np.full(y.shape, 3.0)
        dx = F.maxpool3d_backward(dy, arg, x.shape, 2)
        assert dx[0, 0, 1, 0, 1] == 3.0
        assert dx.sum() == 3.0

    def test_avgpool_mean_and_backward_spread(self):
        x = rng.normal(size=(1, 2, 4, 4, 4))
        y = F.avgpool3d_forward(x, 2)
        np.testing.assert_allclose(
            y[0, 0, 0, 0, 0], x[0, 0, :2, :2, :2].mean()
        )
        dx = F.avgpool3d_backward(np.ones_like(y), x.shape, 2)
        np.testing.assert_allclose(dx, np.full_like(x, 1 / 8))

    def test_indivisible_dims_raise(self):
        x = rng.normal(size=(1, 1, 5, 4, 4))
        with pytest.raises(ValueError, match="divisible"):
            F.maxpool3d_forward(x, 2)


class TestShapeHelpers:
    def test_conv_output_shape_same(self):
        assert F.conv3d_output_shape((240, 240, 152), 3, 1, 1) == (240, 240, 152)

    def test_conv_output_shape_strided(self):
        assert F.conv3d_output_shape((8, 8, 8), 2, 2, 0) == (4, 4, 4)

    def test_conv_output_shape_negative_raises(self):
        with pytest.raises(ValueError, match="output dim"):
            F.conv3d_output_shape((2, 2, 2), 5, 1, 0)

    def test_transpose_output_shape(self):
        assert F.conv_transpose3d_output_shape((4, 4, 4), 2, 2) == (8, 8, 8)
        assert F.conv_transpose3d_output_shape((3, 3, 3), 3, 1) == (5, 5, 5)

    def test_pad_volume_roundtrip_shape(self):
        x = rng.normal(size=(1, 1, 3, 3, 3))
        assert F.pad_volume(x, (1, 2, 0)).shape == (1, 1, 5, 7, 3)
        assert F.pad_volume(x, (0, 0, 0)) is x
