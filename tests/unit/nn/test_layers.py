"""Layer-level tests: gradients by finite differences, modes, caching."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool3D,
    BatchNorm,
    Conv3D,
    ConvTranspose3D,
    Dropout,
    Identity,
    LeakyReLU,
    MaxPool3D,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    check_module_gradients,
)

rng = np.random.default_rng(7)
X = rng.normal(size=(2, 3, 4, 4, 4))

GRAD_TOL = 1e-5


@pytest.mark.parametrize(
    "factory",
    [
        lambda: Conv3D(3, 4, 3, padding="same", rng=np.random.default_rng(0)),
        lambda: Conv3D(3, 2, 1, padding="valid", rng=np.random.default_rng(0)),
        lambda: Conv3D(3, 2, 3, stride=2, padding=1, rng=np.random.default_rng(0)),
        lambda: Conv3D(3, 2, 3, padding="same", use_bias=False,
                       rng=np.random.default_rng(0)),
        lambda: ConvTranspose3D(3, 2, 2, 2, rng=np.random.default_rng(0)),
        lambda: ConvTranspose3D(3, 2, 3, 1, rng=np.random.default_rng(0)),
        lambda: ConvTranspose3D(3, 2, 2, 2, use_bias=False,
                                rng=np.random.default_rng(0)),
        lambda: MaxPool3D(2),
        lambda: AvgPool3D(2),
        lambda: BatchNorm(3),
        lambda: Sigmoid(),
        lambda: Tanh(),
        lambda: Softmax(axis=1),
        lambda: Identity(),
    ],
    ids=[
        "conv_same", "conv_1x1", "conv_strided", "conv_nobias",
        "convT_2s2", "convT_3s1", "convT_nobias",
        "maxpool", "avgpool", "batchnorm", "sigmoid", "tanh", "softmax",
        "identity",
    ],
)
def test_layer_gradients(factory):
    errs = check_module_gradients(factory(), X.copy())
    assert max(errs.values()) < GRAD_TOL, errs


def test_relu_gradient_away_from_kink():
    # Shift inputs away from zero so finite differences don't cross the kink.
    x = X.copy()
    x[np.abs(x) < 0.1] = 0.5
    errs = check_module_gradients(ReLU(), x)
    assert max(errs.values()) < GRAD_TOL


def test_leaky_relu_negative_slope():
    layer = LeakyReLU(alpha=0.1)
    x = -np.ones((1, 1, 2, 2, 2))
    assert np.allclose(layer(x), -0.1)
    dx = layer.backward(np.ones_like(x))
    assert np.allclose(dx, 0.1)


class TestConv3DLayer:
    def test_same_padding_preserves_shape(self):
        layer = Conv3D(3, 7, 3, padding="same", rng=rng)
        assert layer(X).shape == (2, 7, 4, 4, 4)

    def test_even_kernel_same_padding_rejected(self):
        with pytest.raises(ValueError, match="odd kernel"):
            Conv3D(1, 1, 2, padding="same")

    def test_bad_channels_rejected(self):
        with pytest.raises(ValueError):
            Conv3D(0, 4)

    def test_backward_before_forward_raises(self):
        layer = Conv3D(3, 4, rng=rng)
        with pytest.raises(RuntimeError, match="before forward"):
            layer.backward(X)

    def test_gradients_accumulate_across_backwards(self):
        layer = Conv3D(3, 2, 3, rng=np.random.default_rng(0))
        y = layer(X)
        layer.backward(np.ones_like(y))
        g1 = layer.w.grad.copy()
        layer(X)
        layer.backward(np.ones_like(y))
        np.testing.assert_allclose(layer.w.grad, 2 * g1)

    def test_output_shape_helper(self):
        layer = Conv3D(3, 2, 3, stride=2, padding=1, rng=rng)
        assert layer.output_shape((8, 8, 8)) == (4, 4, 4)


class TestBatchNorm:
    def test_normalises_training_batch(self):
        bn = BatchNorm(3)
        y = bn(X)
        means = y.mean(axis=(0, 2, 3, 4))
        stds = y.std(axis=(0, 2, 3, 4))
        np.testing.assert_allclose(means, 0.0, atol=1e-10)
        np.testing.assert_allclose(stds, 1.0, atol=1e-3)

    def test_running_stats_converge(self):
        bn = BatchNorm(3, momentum=0.0)  # running stats = last batch
        bn(X)
        np.testing.assert_allclose(bn.running_mean.value, X.mean(axis=(0, 2, 3, 4)))

    def test_eval_uses_running_stats(self):
        bn = BatchNorm(3, momentum=0.0)
        bn(X)
        bn.eval()
        x2 = rng.normal(size=X.shape) + 5.0
        y = bn(x2)
        # eval output should NOT be normalised to the new batch
        assert abs(y.mean()) > 1.0

    def test_wrong_channel_count_raises(self):
        bn = BatchNorm(5)
        with pytest.raises(ValueError, match="channels"):
            bn(X)

    def test_sync_reducer_called(self):
        calls = []

        def reducer(s, sq, c):
            calls.append(c)
            return s, sq, c

        bn = BatchNorm(3, stats_reducer=reducer)
        y = bn(X)
        bn.backward(np.ones_like(y))
        assert len(calls) == 2  # forward stats + backward sums

    def test_sync_reducer_equivalence(self):
        """Two half-batch shards with a summing reducer == full batch."""
        full = BatchNorm(3)
        y_full = full(X)

        state = {}

        def make_reducer(shards_stats, key):
            def reducer(s, sq, c):
                shards_stats.setdefault(key, []).append((s, sq, c))
                # sum over both shards (precomputed by running them below)
                return state[key]
            return reducer

        # Precompute global stats from both shards.
        a, b = X[:1], X[1:]
        for key, stat in (
            ("fwd", None),
        ):
            sa = (a.sum(axis=(0, 2, 3, 4)), np.einsum("ncdhw,ncdhw->c", a, a),
                  a.size / 3)
            sb = (b.sum(axis=(0, 2, 3, 4)), np.einsum("ncdhw,ncdhw->c", b, b),
                  b.size / 3)
            state[key] = (sa[0] + sb[0], sa[1] + sb[1], sa[2] + sb[2])

        shard_bn = BatchNorm(3, stats_reducer=lambda s, sq, c: state["fwd"])
        ya = shard_bn(a)
        yb = shard_bn(b)
        np.testing.assert_allclose(np.concatenate([ya, yb]), y_full, atol=1e-10)


class TestDropout:
    def test_eval_is_identity(self):
        d = Dropout(0.5, rng=np.random.default_rng(0)).eval()
        np.testing.assert_array_equal(d(X), X)

    def test_training_preserves_expectation(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        big = np.ones((1, 1, 32, 32, 32))
        y = d(big)
        assert abs(y.mean() - 1.0) < 0.05

    def test_backward_uses_same_mask(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        y = d(X)
        dx = d.backward(np.ones_like(y))
        # gradient is zero exactly where output was dropped
        np.testing.assert_array_equal(dx == 0, y == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestSequential:
    def test_forward_backward_chain(self):
        seq = Sequential(
            Conv3D(3, 4, 3, rng=np.random.default_rng(0)),
            ReLU(),
            Conv3D(4, 2, 3, rng=np.random.default_rng(1)),
        )
        y = seq(X)
        assert y.shape == (2, 2, 4, 4, 4)
        dx = seq.backward(np.ones_like(y))
        assert dx.shape == X.shape

    def test_len_getitem_append(self):
        seq = Sequential(ReLU())
        seq.append(Sigmoid())
        assert len(seq) == 2
        assert isinstance(seq[1], Sigmoid)

    def test_train_eval_propagates(self):
        seq = Sequential(Dropout(0.5), BatchNorm(3))
        seq.eval()
        assert not seq[0].training and not seq[1].training
        seq.train()
        assert seq[0].training and seq[1].training
