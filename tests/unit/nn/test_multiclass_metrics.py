"""Multi-class Dice tests (the original 4-class MSD problem)."""

import numpy as np
import pytest

from repro.nn.metrics import mean_multiclass_dice, multiclass_dice


def label_maps():
    target = np.zeros((4, 4, 4), dtype=np.uint8)
    target[:2] = 1
    target[2] = 2
    target[3, :2] = 3
    pred = target.copy()
    pred[0] = 2  # corrupt a slab of class 1 into class 2
    return pred, target


class TestMulticlassDice:
    def test_perfect_prediction(self):
        _, target = label_maps()
        scores = multiclass_dice(target, target, num_classes=4)
        assert set(scores) == {1, 2, 3}
        assert all(v == 1.0 for v in scores.values())

    def test_partial_overlap_scores(self):
        pred, target = label_maps()
        scores = multiclass_dice(pred, target, num_classes=4)
        assert scores[1] < 1.0       # class 1 lost half its voxels
        assert scores[3] == 1.0      # class 3 untouched

    def test_background_excluded_by_default(self):
        pred, target = label_maps()
        assert 0 not in multiclass_dice(pred, target, 4)
        assert 0 in multiclass_dice(pred, target, 4, include_background=True)

    def test_probability_input_argmaxed(self):
        _, target = label_maps()
        probs = np.zeros((4, 4, 4, 4))
        for c in range(4):
            probs[c][target == c] = 1.0
        scores = multiclass_dice(probs, target, num_classes=4)
        assert all(v == 1.0 for v in scores.values())

    def test_absent_class_scores_empty_convention(self):
        target = np.zeros((2, 2, 2), dtype=np.uint8)
        pred = np.zeros_like(target)
        scores = multiclass_dice(pred, target, num_classes=4)
        assert scores == {1: 1.0, 2: 1.0, 3: 1.0}  # both empty = match

    def test_mean_summary(self):
        pred, target = label_maps()
        per = multiclass_dice(pred, target, 4)
        assert mean_multiclass_dice(pred, target, 4) == pytest.approx(
            np.mean(list(per.values()))
        )

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            multiclass_dice(np.zeros((3, 2, 2)), np.zeros((2, 2, 2)), 4)


class TestBinaryReductionConsistency:
    def test_whole_tumour_equals_binary_dice(self):
        """Joining classes {1,2,3} then scoring binary == scoring the
        'whole tumour' region directly -- the paper's label reduction."""
        from repro.nn.metrics import dice_coefficient

        rng = np.random.default_rng(0)
        target = rng.integers(0, 4, size=(6, 6, 6)).astype(np.uint8)
        pred = rng.integers(0, 4, size=(6, 6, 6)).astype(np.uint8)
        whole = dice_coefficient(pred > 0, target > 0)
        assert 0.0 <= whole <= 1.0
        # and it generally differs from macro Dice over classes
        macro = mean_multiclass_dice(pred, target, 4)
        assert whole != pytest.approx(macro)
