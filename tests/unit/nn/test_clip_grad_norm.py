"""Gradient-clipping tests."""

import numpy as np
import pytest

from repro.nn import Module, clip_grad_norm


class Toy(Module):
    def __init__(self, grads):
        super().__init__()
        for i, g in enumerate(grads):
            p = self.add_parameter(f"p{i}", np.zeros_like(np.asarray(g, float)))
            p.grad = np.asarray(g, dtype=float)


class TestClipGradNorm:
    def test_below_threshold_untouched(self):
        m = Toy([[3.0, 4.0]])  # norm 5
        norm = clip_grad_norm(m, max_norm=10.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(m.p0.grad, [3.0, 4.0])

    def test_above_threshold_rescaled(self):
        m = Toy([[3.0, 4.0]])
        norm = clip_grad_norm(m, max_norm=1.0)
        assert norm == pytest.approx(5.0)  # returns PRE-clip norm
        np.testing.assert_allclose(
            np.linalg.norm(m.p0.grad), 1.0, rtol=1e-9
        )
        # direction preserved
        np.testing.assert_allclose(m.p0.grad, [0.6, 0.8], rtol=1e-9)

    def test_global_norm_across_parameters(self):
        m = Toy([[3.0], [4.0]])
        clip_grad_norm(m, max_norm=1.0)
        total = float(np.sqrt(m.p0.grad[0] ** 2 + m.p1.grad[0] ** 2))
        assert total == pytest.approx(1.0)

    def test_frozen_params_excluded(self):
        m = Toy([[100.0], [3.0, 4.0]])
        m.p0.trainable = False
        norm = clip_grad_norm(m, max_norm=10.0)
        assert norm == pytest.approx(5.0)  # only p1 counted
        np.testing.assert_allclose(m.p0.grad, [100.0])  # untouched

    def test_zero_gradients(self):
        m = Toy([[0.0, 0.0]])
        assert clip_grad_norm(m, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm(Toy([[1.0]]), 0.0)

    def test_stabilises_scaled_lr_training(self):
        """With the LR x #GPUs rule at large n, clipping keeps a step
        bounded: post-clip update magnitude <= lr * max_norm."""
        from repro.nn import SGD, UNet3D

        net = UNet3D(1, 1, 2, 2, use_batchnorm=False,
                     rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 1, 4, 4, 4)) * 50
        y = net(x)
        net.backward(np.ones_like(y) * 100)  # pathological gradient
        before = net.get_flat_params()
        clip_grad_norm(net, max_norm=1.0)
        SGD(net, lr=0.5).step()
        delta = np.linalg.norm(net.get_flat_params() - before)
        assert delta <= 0.5 * 1.0 + 1e-9
