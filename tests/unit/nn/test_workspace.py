"""WorkspaceArena semantics: reuse, bounding, and no-aliasing."""

import numpy as np

from repro.nn import use_backend
from repro.nn.functional import conv3d_backward, conv3d_forward
from repro.nn.kernels import WorkspaceArena, set_workspace_limit, workspace


class TestArenaBasics:
    def test_acquire_release_recycles_buffer(self):
        ws = WorkspaceArena(max_bytes=1 << 20)
        a = ws.acquire((16, 16))
        ws.release(a)
        b = ws.acquire((16, 16))
        assert b is a
        assert ws.stats()["hits"] == 1 and ws.stats()["misses"] == 1

    def test_distinct_keys_get_distinct_buffers(self):
        ws = WorkspaceArena(max_bytes=1 << 20)
        a = ws.acquire((8, 8), np.float64)
        ws.release(a)
        b = ws.acquire((8, 8), np.float32)
        assert b is not a and b.dtype == np.float32

    def test_concurrent_checkouts_never_alias(self):
        ws = WorkspaceArena(max_bytes=1 << 20)
        a = ws.acquire((32,))
        b = ws.acquire((32,))
        assert a is not b
        assert not np.shares_memory(a, b)
        ws.release(a)
        ws.release(b)

    def test_in_use_and_free_accounting(self):
        ws = WorkspaceArena(max_bytes=1 << 20)
        a = ws.acquire((128,))
        assert ws.in_use_bytes == a.nbytes and ws.free_bytes == 0
        ws.release(a)
        assert ws.in_use_bytes == 0 and ws.free_bytes == a.nbytes
        assert ws.total_bytes == a.nbytes

    def test_release_of_foreign_array_and_none_ignored(self):
        ws = WorkspaceArena(max_bytes=1 << 20)
        ws.release(np.zeros(4))
        ws.release(None)
        assert ws.free_bytes == 0 and ws.in_use_bytes == 0

    def test_stale_checkout_id_never_poisons_pool(self):
        """A checkout leaked without release leaves a stale ``id`` entry;
        a foreign array recycled onto the same address must not be filed
        under the old key (acquire would then return the wrong shape)."""
        ws = WorkspaceArena(max_bytes=1 << 20)
        key = ws._key((16, 4), np.float64)
        foreign = np.zeros(3)
        ws._out[id(foreign)] = key  # simulate the id collision
        ws.release(foreign)
        assert id(foreign) not in ws._out
        assert ws.free_bytes == 0  # the foreign array was not retained
        assert ws.acquire((16, 4)).shape == (16, 4)

    def test_double_release_is_harmless(self):
        ws = WorkspaceArena(max_bytes=1 << 20)
        a = ws.acquire((8,))
        ws.release(a)
        ws.release(a)  # second release: no longer checked out -> ignored
        assert ws.free_bytes == a.nbytes

    def test_clear_drops_retained_buffers(self):
        ws = WorkspaceArena(max_bytes=1 << 20)
        ws.release(ws.acquire((64,)))
        ws.clear()
        assert ws.free_bytes == 0
        assert ws.acquire((64,)) is not None  # miss, fresh allocation
        assert ws.misses == 2


class TestArenaBounds:
    def test_eviction_beyond_budget_is_fifo(self):
        ws = WorkspaceArena(max_bytes=3 * 800)  # room for 3 x 100-float64
        bufs = [ws.acquire((100,)) for _ in range(4)]
        for b in bufs:
            ws.release(b)
        # oldest released buffer was evicted to stay under budget
        assert ws.free_bytes == 3 * 800
        assert ws.evictions == 1
        assert ws.acquire((100,)) is not bufs[0]

    def test_oversized_buffer_never_retained(self):
        ws = WorkspaceArena(max_bytes=100)
        a = ws.acquire((1000,))
        ws.release(a)
        assert ws.free_bytes == 0 and ws.evictions == 1

    def test_set_workspace_limit_shrinks_pool(self):
        ws = workspace()
        ws.clear()
        previous = set_workspace_limit(1 << 30)
        try:
            for _ in range(4):
                ws.release(ws.acquire((100,)))
                # sequential checkout: same buffer recycled, pool holds 1
            assert ws.free_bytes == 800
            set_workspace_limit(0)
            assert ws.free_bytes == 0
        finally:
            set_workspace_limit(previous)

    def test_env_var_sets_default_limit(self, monkeypatch):
        monkeypatch.setenv("DISTMIS_KERNEL_WORKSPACE_MB", "2")
        assert WorkspaceArena().max_bytes == 2 * 1024 * 1024


class TestNoAliasingThroughKernels:
    def test_conv_outputs_are_not_arena_views(self):
        """Back-to-back convolutions recycle scratch, yet earlier outputs
        must stay intact -- outputs are never views into the arena."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 6, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3, 3))
        b = rng.normal(size=3)
        with use_backend("gemm"):
            y1 = conv3d_forward(x, w, b, 1, 1)
            keep = y1.copy()
            for _ in range(3):  # recycle the same scratch keys repeatedly
                conv3d_forward(x, w, b, 1, 1)
                conv3d_backward(np.ones((1, 3, 6, 6, 6)), x, w, 1, 1)
        np.testing.assert_array_equal(y1, keep)
        assert y1.base is None or not any(
            np.shares_memory(y1, buf)
            for bufs in workspace()._free.values() for buf in bufs
        )

    def test_kernels_leave_no_checked_out_buffers(self):
        ws = workspace()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 5, 5, 4))
        w = rng.normal(size=(4, 3, 3, 3, 3))
        with use_backend("gemm"):
            before = ws.in_use_bytes
            y = conv3d_forward(x, w, None, 2, 1)
            conv3d_backward(np.ones_like(y), x, w, 2, 1)
            assert ws.in_use_bytes == before
