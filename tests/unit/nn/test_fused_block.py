"""The fused Conv3D+BatchNorm+ReLU layer: routing and parity.

``FusedConvBNReLU3D`` takes the backend's fused kernel path only when
that preserves semantics (fusion-capable backend, local BN statistics,
uninstrumented children); otherwise it must transparently fall back to
the sequential ``conv -> bn -> act`` chain.  Both routes are pinned
against each other here -- predictions, gradients, running statistics
-- plus finite differences through the whole triple.
"""

import numpy as np
import pytest

from repro.nn import UNet3D, check_module_gradients, use_compute_dtype
from repro.nn.kernels import use_backend
from repro.nn.layers.fused_block import FusedConvBNReLU3D


def _block(seed=0, cin=2, cout=3, **kw):
    return FusedConvBNReLU3D(cin, cout, rng=np.random.default_rng(seed),
                             **kw)


def _x(seed=1, cin=2, shape=(6, 5, 4), dtype=np.float64):
    return np.random.default_rng(seed).normal(
        size=(2, cin, *shape)).astype(dtype, copy=False)


def _train_step(block, x):
    block.train()
    block.zero_grad()
    y = block(x)
    dy = np.random.default_rng(7).normal(size=y.shape).astype(
        y.dtype, copy=False)
    block.backward(dy)
    grads = {name: p.grad.copy() for name, p in block.named_parameters()}
    stats = (block.bn.running_mean.value.copy(),
             block.bn.running_var.value.copy())
    return y, grads, stats


class TestRouting:
    def test_fused_route_on_fusion_capable_backend(self):
        block = _block()
        with use_backend("fused"):
            assert block.fusion_active()
            block.train()
            block(_x())
            assert block._route == "fused"

    @pytest.mark.parametrize("backend", ["reference", "gemm"])
    def test_sequential_route_on_other_backends(self, backend):
        block = _block()
        with use_backend(backend):
            assert not block.fusion_active()
            block.train()
            block(_x())
            assert block._route == "sequential"

    def test_sync_bn_forces_sequential(self):
        block = _block()
        block.bn.stats_reducer = lambda total, sq, count: (total, sq, count)
        with use_backend("fused"):
            assert not block.fusion_active()

    def test_instrumented_child_forces_sequential(self):
        """Per-instance forward hooks (profiler, model summary) only fire
        on the sequential route, so fusion must stand down."""
        block = _block()
        calls = []
        orig = block.bn.forward
        block.bn.__dict__["forward"] = lambda x: (calls.append(1),
                                                  orig(x))[1]
        with use_backend("fused"):
            assert not block.fusion_active()
            block.train()
            block(_x())
        assert calls  # the hook actually fired
        del block.bn.__dict__["forward"]
        with use_backend("fused"):
            assert block.fusion_active()


class TestParity:
    def test_train_step_matches_sequential_route(self):
        x = _x()
        with use_backend("gemm"):
            y_seq, g_seq, stats_seq = _train_step(_block(), x)
        with use_backend("fused"):
            y_fused, g_fused, stats_fused = _train_step(_block(), x)
        np.testing.assert_allclose(y_fused, y_seq, rtol=1e-9, atol=1e-12)
        assert g_fused.keys() == g_seq.keys()
        for name in g_seq:
            np.testing.assert_allclose(g_fused[name], g_seq[name],
                                       rtol=1e-9, atol=1e-12, err_msg=name)
        for s_f, s_s in zip(stats_fused, stats_seq):
            np.testing.assert_allclose(s_f, s_s, rtol=1e-9, atol=1e-12)

    def test_eval_mode_matches_sequential_route(self):
        x = _x()
        # train one step first so the running statistics are non-trivial
        with use_backend("fused"):
            block = _block()
            _train_step(block, x)
            block.eval()
            y_fused = block(x)
            block2 = _block()
            _train_step(block2, x)
        with use_backend("gemm"):
            block2.eval()
            y_seq = block2(x)
        np.testing.assert_allclose(y_fused, y_seq, rtol=1e-9, atol=1e-12)

    def test_float32_parity_between_routes(self):
        x = _x(dtype=np.float32)
        with use_compute_dtype("float32"):
            with use_backend("gemm"):
                y_seq, g_seq, _ = _train_step(_block(), x)
            with use_backend("fused"):
                y_fused, g_fused, _ = _train_step(_block(), x)
        assert y_fused.dtype == np.float32
        np.testing.assert_allclose(y_fused, y_seq, rtol=1e-4, atol=1e-5)
        for name in g_seq:
            np.testing.assert_allclose(g_fused[name], g_seq[name],
                                       rtol=1e-3, atol=1e-4, err_msg=name)

    def test_gradcheck_through_fused_route(self):
        # use_bias=False: under BN the conv bias cancels exactly, so its
        # analytic gradient is legitimately zero and finite differences
        # cannot resolve it.
        block = _block(use_bias=False)
        x = _x(shape=(4, 4, 3))
        with use_backend("fused"):
            assert block.fusion_active()
            errs = check_module_gradients(block, x)
        assert max(errs.values()) < 1e-5, errs


class TestInputGradSkip:
    def test_need_dx_false_returns_none_on_fused_route(self):
        block = _block(input_grad=False)
        x = _x()
        with use_backend("fused"):
            block.train()
            y = block(x)
            dx = block.backward(np.ones_like(y))
        assert dx is None
        # parameter gradients still flow
        assert float(np.abs(block.conv.w.grad).sum()) > 0.0

    def test_param_grads_unaffected_by_dx_skip(self):
        x = _x()
        with use_backend("fused"):
            _, g_full, _ = _train_step(_block(), x)
            _, g_skip, _ = _train_step(_block(input_grad=False), x)
        for name in g_full:
            np.testing.assert_allclose(g_skip[name], g_full[name],
                                       rtol=1e-12, atol=0, err_msg=name)

    def test_unet_first_encoder_block_skips_input_grad(self):
        net = UNet3D(2, 1, base_filters=2, depth=2, norm="batch",
                     rng=np.random.default_rng(3))
        first = net.enc_blocks[0].body.layers[0]
        assert isinstance(first, FusedConvBNReLU3D)
        assert first.input_grad is False
        # every other fused stage still propagates dx
        others = [
            m for name, m in net.named_modules()
            if isinstance(m, FusedConvBNReLU3D) and m is not first
        ]
        assert others and all(m.input_grad for m in others)


class TestModuleContract:
    def test_children_visible_to_module_walks(self):
        block = _block()
        names = {name for name, _ in block.named_parameters()}
        assert {"conv.w", "conv.b", "bn.gamma", "bn.beta"} <= names

    def test_state_dict_round_trip(self):
        src, dst = _block(seed=0), _block(seed=5)
        dst.load_state_dict(src.state_dict())
        np.testing.assert_array_equal(dst.conv.w.value, src.conv.w.value)
        np.testing.assert_array_equal(dst.bn.running_mean.value,
                                      src.bn.running_mean.value)

    def test_backward_before_forward_raises(self):
        block = _block()
        with use_backend("fused"):
            with pytest.raises(RuntimeError, match="backward"):
                block.backward(np.zeros((2, 3, 6, 5, 4)))
