"""tf.data-style pipeline tests."""

import threading
import time

import numpy as np
import pytest

from repro.data import Dataset, PipelineStats


class TestConstructors:
    def test_from_list_restartable(self):
        ds = Dataset.from_list([1, 2, 3])
        assert ds.to_list() == [1, 2, 3]
        assert ds.to_list() == [1, 2, 3]  # second pass identical

    def test_from_generator_restartable(self):
        ds = Dataset.from_generator(lambda: (i * i for i in range(4)))
        assert ds.to_list() == [0, 1, 4, 9]
        assert ds.to_list() == [0, 1, 4, 9]

    def test_range(self):
        assert Dataset.range(5).to_list() == [0, 1, 2, 3, 4]


class TestMap:
    def test_sequential_map(self):
        assert Dataset.range(4).map(lambda x: x + 10).to_list() == [10, 11, 12, 13]

    def test_parallel_map_preserves_order(self):
        def slow_inverse(x):
            time.sleep(0.002 * (5 - x))  # later elements finish sooner
            return x * 2

        out = Dataset.range(5).map(slow_inverse, num_parallel_calls=4).to_list()
        assert out == [0, 2, 4, 6, 8]

    def test_parallel_map_actually_overlaps(self):
        barrier = threading.Barrier(3, timeout=5)

        def wait(x):
            barrier.wait()  # deadlocks unless >=3 run concurrently
            return x

        out = Dataset.range(3).map(wait, num_parallel_calls=3).to_list()
        assert out == [0, 1, 2]

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            Dataset.range(3).map(lambda x: x, num_parallel_calls=0)

    def test_chained_maps(self):
        out = Dataset.range(3).map(lambda x: x + 1).map(lambda x: x * 2).to_list()
        assert out == [2, 4, 6]


class TestInterleave:
    def test_round_robin_order(self):
        ds = Dataset.from_list([0, 10]).interleave(
            lambda base: [base + i for i in range(3)], cycle_length=2
        )
        assert ds.to_list() == [0, 10, 1, 11, 2, 12]

    def test_uneven_substreams(self):
        ds = Dataset.from_list([2, 0, 1]).interleave(
            lambda n: ["x"] * n, cycle_length=3
        )
        assert ds.to_list() == ["x", "x", "x"]

    def test_cycle_length_one_is_flat_map(self):
        ds = Dataset.from_list([1, 2]).interleave(lambda n: [n] * n, cycle_length=1)
        assert ds.to_list() == [1, 2, 2]

    def test_refills_as_streams_finish(self):
        ds = Dataset.from_list(["a", "b", "c"]).interleave(
            lambda s: [s] * 2, cycle_length=2
        )
        out = ds.to_list()
        assert sorted(out) == ["a", "a", "b", "b", "c", "c"]
        assert out[:2] == ["a", "b"]


class TestShuffleBatch:
    def test_shuffle_is_permutation(self):
        out = Dataset.range(20).shuffle(buffer_size=8, seed=1).to_list()
        assert sorted(out) == list(range(20))
        assert out != list(range(20))

    def test_shuffle_seeded_reproducible(self):
        a = Dataset.range(20).shuffle(8, seed=3).to_list()
        b = Dataset.range(20).shuffle(8, seed=3).to_list()
        assert a == b

    def test_batch_stacks_arrays(self):
        ds = Dataset.from_list([np.ones(3) * i for i in range(4)]).batch(2)
        batches = ds.to_list()
        assert len(batches) == 2
        assert batches[0].shape == (2, 3)

    def test_batch_remainder(self):
        assert Dataset.range(5).batch(2).to_list() == [[0, 1], [2, 3], [4]]
        assert Dataset.range(5).batch(2, drop_remainder=True).to_list() == [
            [0, 1], [2, 3]
        ]

    def test_batch_tuples(self):
        ds = Dataset.from_list(
            [(np.ones(2) * i, np.zeros(1)) for i in range(4)]
        ).batch(2)
        x, y = ds.to_list()[0]
        assert x.shape == (2, 2) and y.shape == (2, 1)

    def test_unbatch_inverts_batch(self):
        items = [np.full((2,), i, dtype=float) for i in range(6)]
        out = Dataset.from_list(items).batch(4).unbatch().to_list()
        assert len(out) == 6
        np.testing.assert_array_equal(out[5], items[5])


class TestControlFlow:
    def test_repeat_finite(self):
        assert Dataset.range(2).repeat(3).to_list() == [0, 1] * 3

    def test_repeat_then_take(self):
        assert Dataset.range(3).repeat(None).take(7).to_list() == [0, 1, 2, 0, 1, 2, 0]

    def test_take_skip(self):
        assert Dataset.range(10).skip(7).to_list() == [7, 8, 9]
        assert Dataset.range(10).take(2).to_list() == [0, 1]

    def test_filter(self):
        assert Dataset.range(6).filter(lambda x: x % 2 == 0).to_list() == [0, 2, 4]

    def test_shard_partition(self):
        """Shards are disjoint and cover the stream -- the data-parallel
        subject partitioning invariant."""
        full = set(range(11))
        shards = [Dataset.range(11).shard(3, i).to_list() for i in range(3)]
        assert set().union(*shards) == full
        assert sum(len(s) for s in shards) == 11

    def test_shard_bad_index(self):
        with pytest.raises(ValueError):
            Dataset.range(5).shard(2, 2)

    def test_count_reduce(self):
        assert Dataset.range(5).count() == 5
        assert Dataset.range(5).reduce(0, lambda a, b: a + b) == 10


class TestCachePrefetch:
    def test_cache_avoids_recompute(self):
        calls = []

        def expensive(x):
            calls.append(x)
            return x

        ds = Dataset.range(3).map(expensive).cache()
        assert ds.to_list() == [0, 1, 2]
        assert ds.to_list() == [0, 1, 2]
        assert len(calls) == 3  # second pass served from cache

    def test_prefetch_preserves_order_and_content(self):
        out = Dataset.range(50).map(lambda x: x * 3).prefetch(4).to_list()
        assert out == [x * 3 for x in range(50)]

    def test_prefetch_propagates_errors(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("bad element")
            return x

        ds = Dataset.range(5).map(boom).prefetch(2)
        with pytest.raises(RuntimeError, match="bad element"):
            ds.to_list()

    def test_prefetch_overlaps_producer(self):
        """With prefetch, producer time and consumer time overlap.

        Timing-based: take the best of three attempts so a loaded CI
        machine cannot flake the assertion.
        """
        def produce(x):
            time.sleep(0.01)
            return x

        def consume(items):
            t0 = time.perf_counter()
            for _ in items:
                time.sleep(0.01)
            return time.perf_counter() - t0

        n = 12
        ratios = []
        for _ in range(3):
            seq = consume(Dataset.range(n).map(produce))
            ovl = consume(Dataset.range(n).map(produce).prefetch(4))
            ratios.append(ovl / seq)
        assert min(ratios) < 0.9


class TestStats:
    def test_stage_timing_recorded(self):
        stats = PipelineStats()
        ds = Dataset.range(5).with_stats(stats).map(
            lambda x: (time.sleep(0.001), x)[1], stage="binarize"
        )
        ds.to_list()
        assert stats.elements["binarize"] == 5
        assert stats.seconds["binarize"] > 0

    def test_bottleneck_identifies_slowest_stage(self):
        stats = PipelineStats()
        ds = (
            Dataset.range(4)
            .with_stats(stats)
            .map(lambda x: x, stage="fast")
            .map(lambda x: (time.sleep(0.003), x)[1], stage="slow")
        )
        ds.to_list()
        assert stats.bottleneck() == "slow"

    def test_empty_stats(self):
        assert PipelineStats().bottleneck() is None
        assert PipelineStats().report() == []
