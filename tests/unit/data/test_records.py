"""TFRecord-style record file tests, including corruption detection."""

import struct

import numpy as np
import pytest

from repro.data import (
    RecordCorruptionError,
    RecordReader,
    RecordWriter,
    decode_example,
    encode_example,
    read_example_file,
    write_example_file,
)


class TestFraming:
    def test_write_read_roundtrip(self, tmp_path):
        p = tmp_path / "data.rec"
        payloads = [b"alpha", b"", b"\x00" * 100, b"omega"]
        with RecordWriter(p) as w:
            for b in payloads:
                w.write(b)
            assert w.num_records == 4
        assert list(RecordReader(p)) == payloads

    def test_count(self, tmp_path):
        p = tmp_path / "data.rec"
        with RecordWriter(p) as w:
            for i in range(7):
                w.write(bytes([i]))
        assert RecordReader(p).count() == 7

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.rec"
        with RecordWriter(p):
            pass
        assert list(RecordReader(p)) == []

    def test_closed_writer_rejects(self, tmp_path):
        w = RecordWriter(tmp_path / "x.rec")
        w.close()
        with pytest.raises(RuntimeError):
            w.write(b"late")

    def test_frame_layout(self, tmp_path):
        """length(8) + crc(4) + payload + crc(4), TFRecord-style."""
        p = tmp_path / "one.rec"
        with RecordWriter(p) as w:
            w.write(b"hello")
        blob = open(p, "rb").read()
        assert len(blob) == 8 + 4 + 5 + 4
        assert struct.unpack("<Q", blob[:8])[0] == 5
        assert blob[12:17] == b"hello"


class TestCorruption:
    def _write_one(self, tmp_path, payload=b"hello world"):
        p = tmp_path / "x.rec"
        with RecordWriter(p) as w:
            w.write(payload)
        return p

    def test_flipped_payload_byte_detected(self, tmp_path):
        p = self._write_one(tmp_path)
        blob = bytearray(open(p, "rb").read())
        blob[14] ^= 0xFF
        p.write_bytes(bytes(blob))
        with pytest.raises(RecordCorruptionError, match="payload CRC"):
            list(RecordReader(p))

    def test_flipped_length_detected(self, tmp_path):
        p = self._write_one(tmp_path)
        blob = bytearray(open(p, "rb").read())
        blob[0] ^= 0x01
        p.write_bytes(bytes(blob))
        with pytest.raises(RecordCorruptionError):
            list(RecordReader(p))

    def test_truncation_detected(self, tmp_path):
        p = self._write_one(tmp_path)
        blob = open(p, "rb").read()
        p.write_bytes(blob[:-6])
        with pytest.raises(RecordCorruptionError, match="truncated"):
            list(RecordReader(p))

    def test_verify_false_skips_crc(self, tmp_path):
        p = self._write_one(tmp_path)
        blob = bytearray(open(p, "rb").read())
        blob[14] ^= 0xFF
        p.write_bytes(bytes(blob))
        out = list(RecordReader(p, verify=False))
        assert len(out) == 1  # corrupted but read through


class TestExamples:
    def test_feature_map_roundtrip(self):
        rng = np.random.default_rng(0)
        feats = {
            "image": rng.normal(size=(4, 6, 6, 4)).astype(np.float32),
            "label": rng.integers(0, 4, size=(6, 6, 4)).astype(np.uint8),
            "id": np.frombuffer(b"BRATS_0001", dtype=np.uint8),
        }
        back = decode_example(encode_example(feats))
        assert set(back) == set(feats)
        for k in feats:
            np.testing.assert_array_equal(back[k], feats[k])
            assert back[k].dtype == feats[k].dtype

    def test_scalar_and_1d(self):
        feats = {"epoch": np.array(90), "dice": np.array([0.89])}
        back = decode_example(encode_example(feats))
        assert back["epoch"].shape == ()
        assert back["epoch"] == 90
        np.testing.assert_allclose(back["dice"], [0.89])

    def test_empty_feature_map(self):
        assert decode_example(encode_example({})) == {}

    def test_trailing_garbage_detected(self):
        payload = encode_example({"a": np.zeros(2)}) + b"junk"
        with pytest.raises(RecordCorruptionError, match="trailing"):
            decode_example(payload)

    def test_example_file_roundtrip(self, tmp_path):
        p = tmp_path / "shard.rec"
        examples = [
            {"x": np.full((2, 2), i, dtype=np.float32), "i": np.array(i)}
            for i in range(5)
        ]
        n = write_example_file(p, examples)
        assert n == 5
        back = list(read_example_file(p))
        assert len(back) == 5
        for i, ex in enumerate(back):
            assert ex["i"] == i
            np.testing.assert_array_equal(ex["x"], examples[i]["x"])

    def test_deterministic_encoding(self):
        feats = {"b": np.ones(3), "a": np.zeros(2)}
        assert encode_example(feats) == encode_example(dict(reversed(feats.items())))
