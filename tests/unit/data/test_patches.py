"""Patch extraction / stitching tests (the sub-patch baseline of E11)."""

import numpy as np
import pytest

from repro.data import (
    PatchSpec,
    extract_patches,
    patch_grid,
    sample_random_patches,
    stitch_patches,
)

rng = np.random.default_rng(8)


class TestPatchGrid:
    def test_exact_tiling(self):
        spec = PatchSpec((4, 4, 4), (4, 4, 4))
        offsets = patch_grid((8, 8, 8), spec)
        assert len(offsets) == 8
        assert (0, 0, 0) in offsets and (4, 4, 4) in offsets

    def test_clamped_final_patch(self):
        spec = PatchSpec((4, 4, 4), (3, 3, 3))
        offsets = patch_grid((10, 4, 4), spec)
        ds = sorted({d for d, _, _ in offsets})
        assert ds == [0, 3, 6]  # 6+4 = 10 exactly, no out-of-range start

    def test_patch_bigger_than_volume(self):
        with pytest.raises(ValueError, match="exceeds"):
            patch_grid((3, 8, 8), PatchSpec((4, 4, 4), (4, 4, 4)))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PatchSpec((0, 4, 4), (1, 1, 1))
        with pytest.raises(ValueError):
            PatchSpec((4, 4, 4), (5, 4, 4))  # stride > patch -> gaps


class TestExtractStitch:
    def test_roundtrip_non_overlapping(self):
        vol = rng.normal(size=(2, 8, 8, 8)).astype(np.float64)
        spec = PatchSpec((4, 4, 4), (4, 4, 4))
        patches, offsets = extract_patches(vol, spec)
        assert patches.shape == (8, 2, 4, 4, 4)
        back = stitch_patches(patches, offsets, vol.shape[1:])
        np.testing.assert_allclose(back, vol)

    def test_roundtrip_overlapping_averages(self):
        vol = rng.normal(size=(1, 8, 8, 8))
        spec = PatchSpec((4, 4, 4), (2, 2, 2))
        patches, offsets = extract_patches(vol, spec)
        back = stitch_patches(patches, offsets, vol.shape[1:])
        # averaging identical overlapping copies reproduces the volume
        np.testing.assert_allclose(back, vol, atol=1e-12)

    def test_every_voxel_covered(self):
        spec = PatchSpec((3, 3, 3), (2, 2, 2))
        vol = np.ones((1, 7, 7, 7))
        patches, offsets = extract_patches(vol, spec)
        back = stitch_patches(patches, offsets, (7, 7, 7))
        np.testing.assert_allclose(back, 1.0)

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ValueError):
            stitch_patches(np.zeros((2, 1, 2, 2, 2)), [(0, 0, 0)], (4, 4, 4))

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError):
            extract_patches(np.zeros((8, 8, 8)), PatchSpec((4, 4, 4), (4, 4, 4)))


class TestRandomSampling:
    def test_shapes(self):
        img = rng.normal(size=(4, 16, 16, 16))
        mask = np.zeros((1, 16, 16, 16))
        mask[0, 5:8, 5:8, 5:8] = 1.0
        px, pm = sample_random_patches(img, mask, (8, 8, 8), 6,
                                       np.random.default_rng(0))
        assert px.shape == (6, 4, 8, 8, 8)
        assert pm.shape == (6, 1, 8, 8, 8)

    def test_foreground_bias_hits_tumour(self):
        img = rng.normal(size=(1, 16, 16, 16))
        mask = np.zeros((1, 16, 16, 16))
        mask[0, 7:9, 7:9, 7:9] = 1.0  # tiny tumour
        px, pm = sample_random_patches(
            img, mask, (4, 4, 4), 20, np.random.default_rng(0),
            foreground_fraction=1.0,
        )
        assert all(pm[i].sum() > 0 for i in range(20)), \
            "fully-biased sampling must always include tumour voxels"

    def test_no_foreground_falls_back_to_uniform(self):
        img = rng.normal(size=(1, 8, 8, 8))
        mask = np.zeros((1, 8, 8, 8))
        px, pm = sample_random_patches(img, mask, (4, 4, 4), 5,
                                       np.random.default_rng(0),
                                       foreground_fraction=1.0)
        assert pm.sum() == 0

    def test_seeded_reproducible(self):
        img = rng.normal(size=(1, 8, 8, 8))
        mask = (rng.uniform(size=(1, 8, 8, 8)) > 0.9).astype(float)
        a = sample_random_patches(img, mask, (4, 4, 4), 3,
                                  np.random.default_rng(7))
        b = sample_random_patches(img, mask, (4, 4, 4), 3,
                                  np.random.default_rng(7))
        np.testing.assert_array_equal(a[0], b[0])

    def test_validation(self):
        img = np.zeros((1, 8, 8, 8))
        mask = np.zeros((1, 8, 8, 8))
        with pytest.raises(ValueError):
            sample_random_patches(img, mask, (4, 4, 4), 0,
                                  np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_random_patches(img, mask, (16, 4, 4), 1,
                                  np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_random_patches(img, mask, (4, 4, 4), 1,
                                  np.random.default_rng(0),
                                  foreground_fraction=2.0)
