"""NIfTI-1 codec tests."""

import struct

import numpy as np
import pytest

from repro.data import NiftiImage, read_nifti, write_nifti

rng = np.random.default_rng(5)


class TestRoundtrip:
    @pytest.mark.parametrize("dtype", ["uint8", "int16", "int32", "float32", "float64"])
    def test_dtype_roundtrip(self, tmp_path, dtype):
        arr = (rng.normal(size=(5, 4, 3)) * 10).astype(dtype)
        p = write_nifti(tmp_path / "vol.nii", arr)
        back = read_nifti(p)
        np.testing.assert_array_equal(back.data, arr)
        assert back.data.dtype == arr.dtype

    def test_4d_volume(self, tmp_path):
        arr = rng.normal(size=(4, 6, 5, 3)).astype(np.float32)
        p = write_nifti(tmp_path / "vol.nii", arr)
        assert read_nifti(p).data.shape == (4, 6, 5, 3)

    def test_gzip_roundtrip(self, tmp_path):
        arr = rng.normal(size=(8, 8, 8)).astype(np.float32)
        p = write_nifti(tmp_path / "vol.nii.gz", arr)
        with open(p, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"  # gzip magic
        np.testing.assert_array_equal(read_nifti(p).data, arr)

    def test_spacing_and_description(self, tmp_path):
        img = NiftiImage(
            data=np.zeros((4, 4, 4), dtype=np.float32),
            spacing=(1.0, 1.0, 1.0),
            description="MSD Task01 BrainTumour",
        )
        p = write_nifti(tmp_path / "vol.nii", img)
        back = read_nifti(p)
        assert back.spacing == (1.0, 1.0, 1.0)
        assert back.description == "MSD Task01 BrainTumour"

    def test_anisotropic_spacing(self, tmp_path):
        p = write_nifti(
            tmp_path / "v.nii", np.zeros((2, 2, 2), dtype=np.int16),
            spacing=(0.5, 0.5, 2.0),
        )
        assert read_nifti(p).spacing == (0.5, 0.5, 2.0)


class TestHeader:
    def test_standard_header_fields(self, tmp_path):
        p = write_nifti(tmp_path / "v.nii", np.zeros((3, 4, 5), dtype=np.float32))
        blob = open(p, "rb").read()
        assert struct.unpack_from("<i", blob, 0)[0] == 348       # sizeof_hdr
        assert blob[344:348] == b"n+1\x00"                        # magic
        dim = struct.unpack_from("<8h", blob, 40)
        assert dim[0] == 3 and dim[1:4] == (3, 4, 5)
        assert struct.unpack_from("<f", blob, 108)[0] == 352.0   # vox_offset
        assert struct.unpack_from("<h", blob, 70)[0] == 16       # float32 code

    def test_file_size_is_offset_plus_data(self, tmp_path):
        arr = np.zeros((3, 4, 5), dtype=np.float32)
        p = write_nifti(tmp_path / "v.nii", arr)
        assert p.stat().st_size == 352 + arr.nbytes


class TestErrors:
    def test_unsupported_dtype(self, tmp_path):
        with pytest.raises(ValueError, match="dtype"):
            write_nifti(tmp_path / "v.nii", np.zeros((2, 2), dtype=np.complex64))

    def test_too_many_dims(self, tmp_path):
        with pytest.raises(ValueError, match="dims"):
            write_nifti(tmp_path / "v.nii", np.zeros((1,) * 8, dtype=np.float32))

    def test_truncated_file(self, tmp_path):
        p = tmp_path / "bad.nii"
        p.write_bytes(b"x" * 10)
        with pytest.raises(ValueError, match="too small"):
            read_nifti(p)

    def test_bad_magic(self, tmp_path):
        p = write_nifti(tmp_path / "v.nii", np.zeros((2, 2, 2), dtype=np.float32))
        blob = bytearray(open(p, "rb").read())
        blob[344:348] = b"XXXX"
        p2 = tmp_path / "bad.nii"
        p2.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="magic"):
            read_nifti(p2)

    def test_bad_sizeof_hdr(self, tmp_path):
        p = tmp_path / "bad.nii"
        p.write_bytes(struct.pack("<i", 999) + b"\x00" * 400)
        with pytest.raises(ValueError, match="sizeof_hdr"):
            read_nifti(p)

    def test_unsupported_datatype_code(self, tmp_path):
        p = write_nifti(tmp_path / "v.nii", np.zeros((2, 2, 2), dtype=np.float32))
        blob = bytearray(open(p, "rb").read())
        struct.pack_into("<h", blob, 70, 1234)
        p2 = tmp_path / "bad.nii"
        p2.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="datatype"):
            read_nifti(p2)


class TestScaling:
    def test_scl_slope_applied(self, tmp_path):
        p = write_nifti(tmp_path / "v.nii", np.ones((2, 2, 2), dtype=np.int16))
        blob = bytearray(open(p, "rb").read())
        struct.pack_into("<f", blob, 112, 2.0)   # scl_slope
        struct.pack_into("<f", blob, 116, 0.5)   # scl_inter
        p2 = tmp_path / "scaled.nii"
        p2.write_bytes(bytes(blob))
        np.testing.assert_allclose(read_nifti(p2).data, 2.5)
