"""Augmentation transform tests."""

import numpy as np
import pytest

from repro.data import (
    Augmenter,
    random_flip,
    random_gaussian_noise,
    random_intensity_scale,
    random_intensity_shift,
)

rng = np.random.default_rng(12)


def pair():
    img = rng.normal(size=(4, 8, 8, 8)).astype(np.float32)
    mask = (rng.uniform(size=(1, 8, 8, 8)) > 0.8).astype(np.float32)
    return img, mask


class TestFlip:
    def test_flips_image_and_mask_together(self):
        img, mask = pair()
        t = random_flip(axes=(1,), p=1.0)
        img2, mask2 = t(img, mask, np.random.default_rng(0))
        np.testing.assert_array_equal(img2, img[:, ::-1])
        np.testing.assert_array_equal(mask2, mask[:, ::-1])

    def test_probability_zero_is_identity(self):
        img, mask = pair()
        t = random_flip(p=0.0)
        img2, mask2 = t(img, mask, np.random.default_rng(0))
        np.testing.assert_array_equal(img2, img)

    def test_double_flip_identity(self):
        img, mask = pair()
        t = random_flip(axes=(2,), p=1.0)
        r = np.random.default_rng(0)
        i2, m2 = t(*t(img, mask, r), r)
        np.testing.assert_array_equal(i2, img)

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            random_flip(axes=(0,))


class TestIntensity:
    def test_shift_moves_mean_not_mask(self):
        img, mask = pair()
        t = random_intensity_shift(max_shift=0.5)
        img2, mask2 = t(img, mask, np.random.default_rng(1))
        assert not np.array_equal(img2, img)
        np.testing.assert_array_equal(mask2, mask)
        # per-channel constant shift: variance unchanged
        np.testing.assert_allclose(img2.std(axis=(1, 2, 3)),
                                   img.std(axis=(1, 2, 3)), rtol=1e-5)

    def test_scale_preserves_zero(self):
        img = np.zeros((2, 4, 4, 4), dtype=np.float32)
        mask = np.zeros((1, 4, 4, 4), dtype=np.float32)
        t = random_intensity_scale(0.2)
        img2, _ = t(img, mask, np.random.default_rng(0))
        np.testing.assert_array_equal(img2, img)

    def test_noise_changes_image_statistically(self):
        img, mask = pair()
        t = random_gaussian_noise(0.1)
        img2, _ = t(img, mask, np.random.default_rng(0))
        diff = img2 - img
        assert 0.05 < diff.std() < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            random_intensity_shift(-1)
        with pytest.raises(ValueError):
            random_intensity_scale(1.5)
        with pytest.raises(ValueError):
            random_gaussian_noise(-0.1)

    def test_spatial_mismatch_rejected(self):
        t = random_intensity_shift(0.1)
        with pytest.raises(ValueError, match="mismatch"):
            t(np.zeros((1, 4, 4, 4)), np.zeros((1, 4, 4, 2)),
              np.random.default_rng(0))


class TestAugmenter:
    def test_composition_and_replay(self):
        img, mask = pair()
        aug = Augmenter(
            [random_flip(p=0.5), random_gaussian_noise(0.05)], seed=4
        )
        a = aug(img, mask)
        aug.reset()
        b = aug(img, mask)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_successive_calls_differ(self):
        img, mask = pair()
        aug = Augmenter([random_gaussian_noise(0.05)], seed=4)
        a = aug(img, mask)
        b = aug(img, mask)
        assert not np.array_equal(a[0], b[0])

    def test_map_fn_adapter_in_pipeline(self):
        from repro.data import Dataset

        img, mask = pair()
        aug = Augmenter([random_intensity_shift(0.2)], seed=0)
        ds = Dataset.from_list([(img, mask)] * 3).map(aug.map_fn())
        out = ds.to_list()
        assert len(out) == 3
        assert out[0][0].shape == img.shape
