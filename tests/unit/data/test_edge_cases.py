"""Edge-case coverage for the data substrate."""

import threading

import numpy as np
import pytest

from repro.data import (
    Dataset,
    NiftiImage,
    RecordReader,
    RecordWriter,
    read_nifti,
    write_nifti,
)
from repro.raysim import ObjectStore


class TestNiftiEdges:
    def test_1d_volume(self, tmp_path):
        arr = np.arange(7, dtype=np.float32)
        p = write_nifti(tmp_path / "v.nii", arr)
        np.testing.assert_array_equal(read_nifti(p).data, arr)

    def test_7d_volume(self, tmp_path):
        arr = np.zeros((2, 1, 2, 1, 2, 1, 2), dtype=np.uint8)
        p = write_nifti(tmp_path / "v.nii", arr)
        assert read_nifti(p).data.shape == arr.shape

    def test_long_description_truncated_to_80(self, tmp_path):
        p = write_nifti(tmp_path / "v.nii", np.zeros((2, 2, 2), np.int16),
                        description="x" * 200)
        assert len(read_nifti(p).description) <= 80

    def test_gzip_description_roundtrip(self, tmp_path):
        img = NiftiImage(np.zeros((2, 2, 2), np.float32),
                         description="gz test")
        p = write_nifti(tmp_path / "v.nii.gz", img)
        assert read_nifti(p).description == "gz test"

    def test_ni1_magic_accepted(self, tmp_path):
        p = write_nifti(tmp_path / "v.nii", np.ones((2, 2, 2), np.float32))
        blob = bytearray(open(p, "rb").read())
        blob[344:348] = b"ni1\x00"  # two-file variant magic
        p2 = tmp_path / "v2.nii"
        p2.write_bytes(bytes(blob))
        np.testing.assert_array_equal(read_nifti(p2).data,
                                      np.ones((2, 2, 2), np.float32))


class TestRecordEdges:
    def test_large_record(self, tmp_path):
        p = tmp_path / "big.rec"
        payload = bytes(range(256)) * 4096  # 1 MiB
        with RecordWriter(p) as w:
            w.write(payload)
        assert next(iter(RecordReader(p))) == payload

    def test_many_small_records(self, tmp_path):
        p = tmp_path / "many.rec"
        with RecordWriter(p) as w:
            for i in range(1000):
                w.write(bytes([i % 256]))
        assert RecordReader(p).count() == 1000

    def test_context_manager_closes_on_error(self, tmp_path):
        p = tmp_path / "x.rec"
        with pytest.raises(RuntimeError):
            with RecordWriter(p) as w:
                w.write(b"ok")
                raise RuntimeError("interrupted")
        # File is closed and the completed record is readable.
        assert list(RecordReader(p)) == [b"ok"]


class TestDatasetEdges:
    def test_empty_dataset_everything(self):
        ds = Dataset.from_list([])
        assert ds.to_list() == []
        assert ds.batch(3).to_list() == []
        assert ds.shuffle(4, seed=0).to_list() == []
        assert ds.map(lambda x: x).count() == 0
        assert ds.repeat(3).to_list() == []

    def test_repeat_none_of_empty_terminates(self):
        assert Dataset.from_list([]).repeat(None).take(5).to_list() == []

    def test_take_more_than_available(self):
        assert Dataset.range(3).take(10).to_list() == [0, 1, 2]

    def test_skip_more_than_available(self):
        assert Dataset.range(3).skip(10).to_list() == []

    def test_cache_concurrent_consumers(self):
        calls = []

        def expensive(x):
            calls.append(x)
            return x

        ds = Dataset.range(10).map(expensive).cache()
        results = [None, None]

        def consume(i):
            results[i] = ds.to_list()

        threads = [threading.Thread(target=consume, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results[0] == results[1] == list(range(10))
        # lock serialises the fill: elements computed at most twice
        assert len(calls) <= 20

    def test_map_exception_propagates(self):
        def boom(x):
            raise ValueError("bad")

        with pytest.raises(ValueError):
            Dataset.range(3).map(boom).to_list()

    def test_interleave_empty_outer(self):
        assert Dataset.from_list([]).interleave(lambda x: [x]).to_list() == []

    def test_batch_dict_elements(self):
        items = [{"a": np.ones(2) * i, "b": np.zeros(1)} for i in range(4)]
        (b1, b2) = Dataset.from_list(items).batch(2).to_list()
        assert b1["a"].shape == (2, 2)
        back = Dataset.from_list([b1, b2]).unbatch().to_list()
        assert len(back) == 4
        np.testing.assert_array_equal(back[3]["a"], items[3]["a"])


class TestObjectStoreEdges:
    def test_lru_touch_order(self):
        store = ObjectStore(capacity_bytes=2100)
        a = store.put(np.zeros(128))  # 1024
        b = store.put(np.zeros(128))  # 1024
        store.get(a)                  # a is now most recent
        c = store.put(np.zeros(128))  # evicts b
        assert store.contains(a)
        assert not store.contains(b)
        assert store.contains(c)

    def test_delete_frees_bytes(self):
        store = ObjectStore()
        ref = store.put(np.zeros(128))
        store.delete(ref)
        assert store.bytes_used == 0
        store.delete(ref)  # idempotent
