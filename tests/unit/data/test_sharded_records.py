"""Sharded record file tests (the interleave use case of §III-B1)."""

import numpy as np
import pytest

from repro.data import (
    read_example_file,
    read_sharded_examples,
    write_sharded_examples,
)


def examples(n):
    return [
        {"i": np.array(i), "x": np.full((2, 2), i, dtype=np.float32)}
        for i in range(n)
    ]


class TestShardedWrite:
    def test_tensorflow_style_names(self, tmp_path):
        paths = write_sharded_examples(tmp_path, examples(10), 4)
        assert [p.name for p in paths] == [
            "data-00000-of-00004.rec",
            "data-00001-of-00004.rec",
            "data-00002-of-00004.rec",
            "data-00003-of-00004.rec",
        ]

    def test_round_robin_distribution(self, tmp_path):
        paths = write_sharded_examples(tmp_path, examples(10), 4)
        counts = [sum(1 for _ in read_example_file(p)) for p in paths]
        assert counts == [3, 3, 2, 2]

    def test_single_shard(self, tmp_path):
        paths = write_sharded_examples(tmp_path, examples(5), 1)
        assert len(paths) == 1
        assert sum(1 for _ in read_example_file(paths[0])) == 5

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_sharded_examples(tmp_path, examples(2), 0)

    def test_custom_prefix(self, tmp_path):
        paths = write_sharded_examples(tmp_path, examples(2), 2,
                                       prefix="train")
        assert paths[0].name.startswith("train-")


class TestShardedRead:
    def test_all_examples_recovered(self, tmp_path):
        paths = write_sharded_examples(tmp_path, examples(11), 3)
        back = list(read_sharded_examples(paths, cycle_length=3))
        assert len(back) == 11
        assert sorted(int(ex["i"]) for ex in back) == list(range(11))

    def test_interleaved_order(self, tmp_path):
        """cycle_length = num_shards reproduces round-robin order."""
        paths = write_sharded_examples(tmp_path, examples(6), 2)
        back = [int(ex["i"]) for ex in read_sharded_examples(paths, 2)]
        # shard0 = [0,2,4], shard1 = [1,3,5]; interleave -> 0,1,2,3,4,5
        assert back == [0, 1, 2, 3, 4, 5]

    def test_content_roundtrip(self, tmp_path):
        exs = examples(4)
        paths = write_sharded_examples(tmp_path, exs, 2)
        back = sorted(read_sharded_examples(paths, 2),
                      key=lambda e: int(e["i"]))
        for orig, rec in zip(exs, back):
            np.testing.assert_array_equal(orig["x"], rec["x"])
