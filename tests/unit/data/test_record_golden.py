"""Golden-bytes tests: the record wire format must stay stable.

Binarised datasets are expensive to produce (the whole point of offline
binarisation), so the on-disk format is a compatibility contract: a
byte-for-byte golden sample guards against accidental format changes.
"""

import numpy as np

from repro.data import decode_example, encode_example
from repro.data.records import _masked_crc


class TestGoldenBytes:
    def test_masked_crc_golden(self):
        """Fixed inputs -> fixed masked CRCs (TensorFlow masking rule
        over zlib.crc32)."""
        assert _masked_crc(b"") == 0xA282EAD8
        assert _masked_crc(b"hello") == 0xEF8F56F9

    def test_example_encoding_golden(self):
        feats = {
            "a": np.array([1, 2], dtype=np.int32),
            "b": np.array(3.5, dtype=np.float64),
        }
        payload = encode_example(feats)
        expected = bytes.fromhex(
            "02000000"              # 2 features
            "0100" "61"             # name "a"
            "0300" "3c6934"         # dtype "<i4"
            "01"                    # ndim 1
            "0200000000000000"      # shape (2,)
            "0800000000000000"      # 8 bytes
            "0100000002000000"      # [1, 2] int32 LE
            "0100" "62"             # name "b"
            "0300" "3c6638"         # dtype "<f8"
            "00"                    # ndim 0
            "0000000000000000"      # shape placeholder
            "0800000000000000"      # 8 bytes
            "0000000000000c40"      # 3.5 float64 LE
        )
        assert payload == expected

    def test_golden_payload_decodes(self):
        """The frozen byte string above must keep decoding forever."""
        payload = bytes.fromhex(
            "02000000"
            "0100" "61" "0300" "3c6934" "01"
            "0200000000000000" "0800000000000000" "0100000002000000"
            "0100" "62" "0300" "3c6638" "00"
            "0000000000000000" "0800000000000000" "0000000000000c40"
        )
        out = decode_example(payload)
        np.testing.assert_array_equal(out["a"], np.array([1, 2], np.int32))
        assert out["b"] == np.float64(3.5)
        assert out["b"].shape == ()
