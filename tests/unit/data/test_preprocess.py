"""Pre-processing transform tests (the Section IV-A pipeline)."""

import numpy as np
import pytest

from repro.data import (
    SyntheticBraTS,
    center_crop,
    crop_to_divisible,
    merge_labels_binary,
    one_hot,
    preprocess_subject,
    standardize,
)

rng = np.random.default_rng(21)


class TestStandardize:
    def test_zero_mean_unit_std_per_channel(self):
        img = rng.normal(loc=5, scale=3, size=(4, 6, 6, 6))
        out = standardize(img)
        for c in range(4):
            assert abs(out[c].mean()) < 1e-5
            assert abs(out[c].std() - 1) < 1e-4

    def test_channels_independent(self):
        img = np.stack([
            np.full((4, 4, 4), 10.0),
            rng.normal(size=(4, 4, 4)),
        ])
        out = standardize(img)
        # constant channel maps to ~0 (protected by eps)
        assert np.abs(out[0]).max() < 1e-3

    def test_masked_statistics(self):
        img = np.zeros((1, 4, 4, 4))
        img[0, :2] = 10.0
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[:2] = True  # stats from the bright half only
        out = standardize(img, mask=mask)
        # masked region becomes ~0-mean; outside keeps the offset
        assert abs(out[0][mask].mean()) < 1e-5

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            standardize(np.zeros((4, 4, 4)))

    def test_output_float32(self):
        assert standardize(rng.normal(size=(1, 4, 4, 4))).dtype == np.float32


class TestCrop:
    def test_paper_crop_155_to_152(self):
        """240x240x155 -> 240x240x152 with divisor 8 (Section IV-A)."""
        vol = np.zeros((240 // 10, 240 // 10, 155))  # slim proxy, last dim real
        out = crop_to_divisible(vol, 8)
        assert out.shape[-1] == 152

    def test_center_crop_takes_middle(self):
        vol = np.arange(10)
        out = center_crop(vol, (6,))
        np.testing.assert_array_equal(out, np.arange(2, 8))

    def test_center_crop_multi_axis_with_channels(self):
        vol = rng.normal(size=(4, 8, 8, 7))
        out = center_crop(vol, (8, 8, 4))
        assert out.shape == (4, 8, 8, 4)
        np.testing.assert_array_equal(out, vol[:, :, :, 1:5])

    def test_crop_too_large_raises(self):
        with pytest.raises(ValueError, match="cannot crop"):
            center_crop(np.zeros((4,)), (6,))

    def test_already_divisible_unchanged(self):
        vol = rng.normal(size=(2, 16, 16, 8))
        np.testing.assert_array_equal(crop_to_divisible(vol, 8), vol)

    def test_too_small_for_divisor(self):
        with pytest.raises(ValueError, match="too small"):
            crop_to_divisible(np.zeros((4, 4, 4)), 8)

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            crop_to_divisible(np.zeros((8, 8, 8)), 0)


class TestLabels:
    def test_merge_binary(self):
        label = np.array([[0, 1], [2, 3]], dtype=np.uint8)
        out = merge_labels_binary(label)
        np.testing.assert_array_equal(out, [[0, 1], [1, 1]])
        assert out.dtype == np.float32

    def test_one_hot_roundtrip(self):
        label = rng.integers(0, 4, size=(4, 4, 4)).astype(np.uint8)
        oh = one_hot(label, 4)
        assert oh.shape == (4, 4, 4, 4)
        np.testing.assert_array_equal(oh.argmax(axis=0), label)
        np.testing.assert_allclose(oh.sum(axis=0), 1.0)

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 4]), 4)


class TestPreprocessSubject:
    def test_end_to_end(self):
        s = SyntheticBraTS(2, (24, 24, 17), seed=0)[0]
        ex = preprocess_subject(s, divisor=8)
        assert ex.image.shape == (4, 24, 24, 16)  # 17 -> 16
        assert ex.mask.shape == (1, 24, 24, 16)
        assert ex.image.dtype == np.float32
        assert set(np.unique(ex.mask)) <= {0.0, 1.0}
        assert ex.subject_id == s.subject_id

    def test_standardized_channels(self):
        s = SyntheticBraTS(2, (24, 24, 16), seed=0)[0]
        ex = preprocess_subject(s)
        for c in range(4):
            assert abs(ex.image[c].mean()) < 1e-4

    def test_no_standardize_option(self):
        s = SyntheticBraTS(2, (24, 24, 16), seed=0)[0]
        ex = preprocess_subject(s, standardize_intensities=False)
        np.testing.assert_allclose(ex.image, s.image)

    def test_as_tuple(self):
        s = SyntheticBraTS(2, (24, 24, 16), seed=0)[0]
        ex = preprocess_subject(s)
        img, mask = ex.as_tuple()
        assert img is ex.image and mask is ex.mask
