"""Index sidecar tests: random access must fail loudly, never mis-serve.

The ``.idx`` sidecar buys O(1) random access, but a wrong index would
silently train on wrong examples -- far worse than the scan it replaces.
Every corruption here must surface as :class:`RecordIndexError` (so
callers fall back to the sequential reader) or an exact CRC failure.
"""

import os

import numpy as np
import pytest

from repro.data import (
    IndexedRecordReader,
    RecordCorruptionError,
    RecordIndexError,
    RecordReader,
    RecordWriter,
    decode_example,
    encode_example,
    index_path_for,
)


def _write(tmp_path, payloads, name="data.rec", index=True):
    p = tmp_path / name
    with RecordWriter(p, index=index) as w:
        for b in payloads:
            w.write(b)
    return p


PAYLOADS = [b"alpha", b"", b"\x00" * 64, b"omega"]


class TestHappyPath:
    def test_roundtrip_matches_sequential(self, tmp_path):
        p = _write(tmp_path, PAYLOADS)
        r = IndexedRecordReader(p)
        assert len(r) == 4
        assert [bytes(r.payload(i)) for i in range(4)] == PAYLOADS
        assert [bytes(r.payload(i)) for i in range(4)] == list(RecordReader(p))

    def test_negative_and_out_of_range(self, tmp_path):
        r = IndexedRecordReader(_write(tmp_path, PAYLOADS))
        assert bytes(r.payload(-1)) == b"omega"
        with pytest.raises(IndexError):
            r.payload(4)
        with pytest.raises(IndexError):
            r.payload(-5)

    def test_empty_file(self, tmp_path):
        r = IndexedRecordReader(_write(tmp_path, []))
        assert len(r) == 0 and list(r) == []

    def test_example_zero_copy_views(self, tmp_path):
        ex = {"img": np.arange(12, dtype=np.float32).reshape(3, 4)}
        p = tmp_path / "ex.rec"
        with RecordWriter(p) as w:
            w.write(encode_example(ex))
        r = IndexedRecordReader(p)
        out = r.example(0)
        np.testing.assert_array_equal(out["img"], ex["img"])
        # iteration decodes every example in order
        (it,) = list(r)
        np.testing.assert_array_equal(it["img"], ex["img"])
        # zero_copy serves read-only views over the mapping ...
        assert not out["img"].flags.writeable
        # ... and zero_copy=False serves writable copies.
        out2 = IndexedRecordReader(p, zero_copy=False).example(0)
        out2["img"][0, 0] = 99.0
        np.testing.assert_array_equal(r.example(0)["img"], ex["img"])

    def test_decode_example_accepts_memoryview(self):
        ex = {"a": np.ones((2, 2), dtype=np.int16), "b": np.float64(3.5)}
        blob = encode_example(ex)
        out = decode_example(memoryview(blob))
        np.testing.assert_array_equal(out["a"], ex["a"])


class TestCount:
    def test_reader_count_uses_index(self, tmp_path):
        p = _write(tmp_path, PAYLOADS)
        assert RecordReader(p).count() == 4

    def test_reader_count_falls_back_without_index(self, tmp_path):
        p = _write(tmp_path, PAYLOADS, index=False)
        assert not index_path_for(p).exists()
        assert RecordReader(p).count() == 4

    def test_reader_count_falls_back_on_bad_index(self, tmp_path):
        p = _write(tmp_path, PAYLOADS)
        index_path_for(p).write_bytes(b"junk")
        assert RecordReader(p).count() == 4


class TestCorruption:
    def test_missing_sidecar(self, tmp_path):
        p = _write(tmp_path, PAYLOADS, index=False)
        with pytest.raises(RecordIndexError, match="no index sidecar"):
            IndexedRecordReader(p)

    def test_truncated_header(self, tmp_path):
        p = _write(tmp_path, PAYLOADS)
        idx = index_path_for(p)
        idx.write_bytes(idx.read_bytes()[:3])
        with pytest.raises(RecordIndexError, match="truncated header"):
            IndexedRecordReader(p)

    def test_truncated_entry(self, tmp_path):
        p = _write(tmp_path, PAYLOADS)
        idx = index_path_for(p)
        idx.write_bytes(idx.read_bytes()[:-5])
        with pytest.raises(RecordIndexError, match="truncated entry"):
            IndexedRecordReader(p)

    def test_bad_magic(self, tmp_path):
        p = _write(tmp_path, PAYLOADS)
        idx = index_path_for(p)
        raw = bytearray(idx.read_bytes())
        raw[:4] = b"NOPE"
        idx.write_bytes(bytes(raw))
        with pytest.raises(RecordIndexError, match="bad magic"):
            IndexedRecordReader(p)

    def test_stale_index_record_file_newer(self, tmp_path):
        p = _write(tmp_path, PAYLOADS)
        idx_mtime = os.stat(index_path_for(p)).st_mtime_ns
        # Touch the record file strictly after the index was written.
        os.utime(p, ns=(idx_mtime + 10_000_000, idx_mtime + 10_000_000))
        with pytest.raises(RecordIndexError, match="stale index"):
            IndexedRecordReader(p)

    def test_count_mismatch_index_short(self, tmp_path):
        """Records appended without the index: the sidecar no longer
        tiles the file, so it must be rejected, not partially served."""
        p = _write(tmp_path, PAYLOADS)
        idx_raw = index_path_for(p).read_bytes()
        with open(p, "ab") as f:
            with RecordWriter(tmp_path / "extra.rec", index=False) as w:
                w.write(b"straggler")
            f.write((tmp_path / "extra.rec").read_bytes())
        index_path_for(p).write_bytes(idx_raw)  # refresh mtime, same body
        with pytest.raises(RecordIndexError, match="count mismatch|covers"):
            IndexedRecordReader(p)

    def test_count_mismatch_record_truncated(self, tmp_path):
        p = _write(tmp_path, PAYLOADS)
        idx_raw = index_path_for(p).read_bytes()
        blob = p.read_bytes()
        p.write_bytes(blob[:-7])
        index_path_for(p).write_bytes(idx_raw)
        with pytest.raises(RecordIndexError):
            IndexedRecordReader(p)

    def test_corrupt_payload_fails_crc_not_serves(self, tmp_path):
        p = _write(tmp_path, [b"hello world"])
        blob = bytearray(p.read_bytes())
        blob[14] ^= 0xFF  # flip a payload byte
        idx_raw = index_path_for(p).read_bytes()
        p.write_bytes(bytes(blob))
        index_path_for(p).write_bytes(idx_raw)
        r = IndexedRecordReader(p)
        with pytest.raises(RecordCorruptionError):
            r.payload(0)

    def test_index_error_is_corruption_error(self):
        assert issubclass(RecordIndexError, RecordCorruptionError)
