"""Lifecycle tests for the threaded dataset stages.

``prefetch`` runs a producer thread and ``cache`` shares storage across
iterators; both must survive consumers that stop early (``take``,
exceptions, GC) without leaking blocked threads or deadlocking the next
iterator.
"""

import threading
import time

import pytest

from repro.data import Dataset


def _wait_threads(baseline, timeout=5.0):
    """Wait for the live-thread count to fall back to ``baseline``."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        if threading.active_count() <= baseline:
            return True
        time.sleep(0.01)
    return False


class TestPrefetchAbandonment:
    def test_abandoned_iterator_worker_exits(self):
        baseline = threading.active_count()
        ds = Dataset.from_generator(lambda: iter(range(1000))).prefetch(2)
        it = iter(ds)
        assert next(it) == 0
        it.close()  # consumer walks away; worker is blocked on put
        assert _wait_threads(baseline), "prefetch worker thread leaked"

    def test_take_downstream_does_not_leak(self):
        baseline = threading.active_count()
        ds = Dataset.from_generator(lambda: iter(range(1000)))
        assert list(ds.prefetch(1).take(3)) == [0, 1, 2]
        assert _wait_threads(baseline), "prefetch worker thread leaked"

    def test_reiterable_after_abandonment(self):
        ds = Dataset.from_generator(lambda: iter(range(50))).prefetch(4)
        assert list(ds.take(5)) == [0, 1, 2, 3, 4]
        assert list(ds) == list(range(50))

    def test_error_propagates(self):
        def bad():
            yield 1
            raise RuntimeError("boom")

        ds = Dataset.from_generator(bad).prefetch(2)
        with pytest.raises(RuntimeError, match="boom"):
            list(ds)


class TestCacheLifecycle:
    def test_source_pulled_once(self):
        pulls = []

        def src():
            for i in range(5):
                pulls.append(i)
                yield i

        ds = Dataset.from_generator(src).cache()
        assert list(ds) == list(range(5))
        assert list(ds) == list(range(5))
        assert pulls == list(range(5))

    def test_abandoned_first_pass_resumes_not_restarts(self):
        """A cold cache abandoned mid-pass leaves a warm prefix; the
        next iterator serves it and produces only the remainder."""
        pulls = []

        def src():
            for i in range(10):
                pulls.append(i)
                yield i

        ds = Dataset.from_generator(src).cache()
        assert list(ds.take(3)) == [0, 1, 2]
        assert list(ds) == list(range(10))
        # the cached prefix was served from storage, not re-pulled into it
        assert pulls.count(9) == 1 and list(ds) == list(range(10))

    def test_concurrent_iterators_not_serialized(self):
        """A second iterator must stream the cached prefix while the
        first pass is still producing -- the first pass must not hold a
        lock for the whole epoch."""
        release = threading.Event()

        def slow():
            yield 0
            yield 1
            release.wait(timeout=5.0)
            yield 2

        ds = Dataset.from_generator(slow).cache()
        it1 = iter(ds)
        assert [next(it1), next(it1)] == [0, 1]

        got = []
        done = threading.Event()

        def second():
            it2 = iter(ds)
            got.append(next(it2))
            got.append(next(it2))
            done.set()
            got.extend(it2)

        t = threading.Thread(target=second, daemon=True)
        t.start()
        # the second iterator reads the cached prefix while the
        # producer is blocked inside the source
        assert done.wait(timeout=5.0), "second iterator blocked on cold cache"
        assert got[:2] == [0, 1]
        release.set()
        assert list(it1) == [2]
        t.join(timeout=5.0)
        assert got == [0, 1, 2]
