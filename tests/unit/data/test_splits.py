"""Dataset split tests (paper: 70/15/15 over 484 subjects)."""

import pytest

from repro.data import PAPER_FRACTIONS, PAPER_NUM_SUBJECTS, DatasetSplit, split_indices


class TestSplitIndices:
    def test_paper_split_sizes(self):
        s = split_indices(PAPER_NUM_SUBJECTS, PAPER_FRACTIONS, seed=0)
        assert s.sizes == (338, 72, 74)  # floor(484*.7)=338, floor(484*.15)=72
        assert s.total() == 484

    def test_partitions_disjoint_and_complete(self):
        s = split_indices(100, seed=1)
        all_idx = set(s.train) | set(s.val) | set(s.test)
        assert all_idx == set(range(100))
        assert len(s.train) + len(s.val) + len(s.test) == 100

    def test_seeded_reproducible(self):
        assert split_indices(50, seed=5) == split_indices(50, seed=5)

    def test_different_seed_differs(self):
        assert split_indices(50, seed=1).train != split_indices(50, seed=2).train

    def test_no_shuffle_when_seed_none(self):
        s = split_indices(10, (0.5, 0.3, 0.2), seed=None)
        assert s.train == (0, 1, 2, 3, 4)

    def test_tiny_cohort_all_partitions_nonempty(self):
        s = split_indices(3, seed=0)
        assert all(n >= 1 for n in s.sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_indices(2)
        with pytest.raises(ValueError):
            split_indices(10, (0.5, 0.5))
        with pytest.raises(ValueError):
            split_indices(10, (0.7, 0.2, 0.2))
        with pytest.raises(ValueError):
            split_indices(10, (1.0, -0.5, 0.5))


class TestDatasetSplit:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            DatasetSplit(train=(0, 1), val=(1,), test=(2,))

    def test_sizes(self):
        s = DatasetSplit(train=(0, 1, 2), val=(3,), test=(4, 5))
        assert s.sizes == (3, 1, 2)
        assert s.total() == 6
