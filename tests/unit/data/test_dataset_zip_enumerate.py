"""Dataset.zip / enumerate tests, plus nested-ref task arguments."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.raysim import RaySession


class TestZip:
    def test_positional_pairing(self):
        a = Dataset.from_list(["i0", "i1", "i2"])
        b = Dataset.from_list(["l0", "l1", "l2"])
        assert Dataset.zip(a, b).to_list() == [
            ("i0", "l0"), ("i1", "l1"), ("i2", "l2")
        ]

    def test_stops_at_shortest(self):
        a = Dataset.range(5)
        b = Dataset.range(3)
        assert Dataset.zip(a, b).to_list() == [(0, 0), (1, 1), (2, 2)]

    def test_three_way(self):
        z = Dataset.zip(Dataset.range(2), Dataset.range(2), Dataset.range(2))
        assert z.to_list() == [(0, 0, 0), (1, 1, 1)]

    def test_restartable(self):
        z = Dataset.zip(Dataset.range(2), Dataset.range(2))
        assert z.to_list() == z.to_list()

    def test_image_label_decode_idiom(self):
        """The paper's NIfTI-pair pattern: zip file streams, joint map."""
        images = Dataset.from_list([f"img{i}.nii" for i in range(3)])
        labels = Dataset.from_list([f"lab{i}.nii" for i in range(3)])
        pairs = Dataset.zip(images, labels).map(
            lambda p: (p[0].replace(".nii", ""), p[1].replace(".nii", ""))
        )
        assert pairs.to_list()[2] == ("img2", "lab2")

    def test_empty_zip_rejected(self):
        with pytest.raises(ValueError):
            Dataset.zip()


class TestEnumerate:
    def test_indices(self):
        ds = Dataset.from_list(["a", "b"]).enumerate()
        assert ds.to_list() == [(0, "a"), (1, "b")]

    def test_start_offset(self):
        ds = Dataset.from_list(["a"]).enumerate(start=10)
        assert ds.to_list() == [(10, "a")]

    def test_composes_with_filter(self):
        ds = (Dataset.range(6).enumerate()
              .filter(lambda t: t[0] % 2 == 0)
              .map(lambda t: t[1]))
        assert ds.to_list() == [0, 2, 4]


class TestNestedRefArguments:
    def test_list_of_refs_resolved(self):
        with RaySession() as s:
            @s.remote
            def total(values):
                return sum(values)

            refs = [s.put(i) for i in (1, 2, 3)]
            assert s.get(total.remote(refs)) == 6

    def test_dict_of_refs_resolved(self):
        with RaySession() as s:
            @s.remote
            def pick(mapping, key):
                return mapping[key]

            arg = {"x": s.put(np.array([5.0])), "y": 2}
            out = s.get(pick.remote(arg, "x"))
            np.testing.assert_array_equal(out, [5.0])

    def test_deep_nesting(self):
        with RaySession() as s:
            @s.remote
            def inner_value(payload):
                return payload["level1"][0]["leaf"]

            payload = {"level1": [{"leaf": s.put("deep")}]}
            assert s.get(inner_value.remote(payload)) == "deep"
