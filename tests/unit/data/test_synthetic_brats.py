"""Synthetic cohort generator tests."""

import numpy as np
import pytest

from repro.data import (
    CLASS_NAMES,
    MODALITIES,
    PAPER_NUM_SUBJECTS,
    PAPER_VOLUME_SHAPE,
    SyntheticBraTS,
)


@pytest.fixture(scope="module")
def gen():
    return SyntheticBraTS(num_subjects=6, volume_shape=(24, 24, 16), seed=3)


class TestConstants:
    def test_paper_dataset_facts(self):
        """Section IV-A: 484 subjects, 240x240x155, 4 modalities, 4 classes."""
        assert PAPER_NUM_SUBJECTS == 484
        assert PAPER_VOLUME_SHAPE == (240, 240, 155)
        assert MODALITIES == ("FLAIR", "T1w", "T1gd", "T2w")
        assert len(CLASS_NAMES) == 4


class TestGeneration:
    def test_shapes_and_dtypes(self, gen):
        s = gen[0]
        assert s.image.shape == (4, 24, 24, 16)
        assert s.image.dtype == np.float32
        assert s.label.shape == (24, 24, 16)
        assert s.label.dtype == np.uint8

    def test_labels_in_range(self, gen):
        for s in gen:
            assert s.label.min() >= 0 and s.label.max() <= 3

    def test_deterministic_per_index(self):
        a = SyntheticBraTS(4, (16, 16, 8), seed=7).generate(2)
        b = SyntheticBraTS(4, (16, 16, 8), seed=7).generate(2)
        np.testing.assert_array_equal(a.image, b.image)
        np.testing.assert_array_equal(a.label, b.label)

    def test_different_seeds_differ(self):
        a = SyntheticBraTS(4, (16, 16, 8), seed=1)[0]
        b = SyntheticBraTS(4, (16, 16, 8), seed=2)[0]
        assert not np.array_equal(a.image, b.image)

    def test_subjects_differ_within_cohort(self, gen):
        assert not np.array_equal(gen[0].image, gen[1].image)

    def test_random_access_matches_iteration(self, gen):
        by_iter = [s.subject_id for s in gen]
        by_index = [gen[i].subject_id for i in range(len(gen))]
        assert by_iter == by_index

    def test_index_out_of_range(self, gen):
        with pytest.raises(IndexError):
            gen.generate(100)

    def test_tumour_has_nested_classes(self):
        g = SyntheticBraTS(6, (24, 24, 16), seed=0, tumor_probability=1.0)
        s = g[0]
        present = set(np.unique(s.label))
        assert {0, 1, 2, 3} <= present, "expected core, rim and edema"

    def test_no_tumor_subjects_when_probability_zero(self):
        g = SyntheticBraTS(3, (16, 16, 8), seed=0, tumor_probability=0.0)
        for s in g:
            assert s.label.max() == 0
            assert not s.meta["has_tumor"]

    def test_binary_label_joins_positive_classes(self, gen):
        s = gen[0]
        np.testing.assert_array_equal(s.binary_label(), (s.label > 0).astype(np.uint8))

    def test_tumour_voxels_brighter_on_flair(self):
        """Edema should be hyperintense on FLAIR vs normal brain."""
        g = SyntheticBraTS(4, (24, 24, 16), seed=1, tumor_probability=1.0,
                           noise_sigma=0.02)
        s = g[0]
        flair = s.image[0]
        edema_mean = flair[s.label == 3].mean()
        brain_mean = flair[(s.label == 0) & (flair != 0)].mean()
        assert edema_mean > brain_mean

    def test_t1gd_core_enhancement(self):
        g = SyntheticBraTS(4, (24, 24, 16), seed=1, tumor_probability=1.0,
                           noise_sigma=0.02)
        s = g[0]
        t1gd = s.image[2]
        assert t1gd[s.label == 1].mean() > t1gd[s.label == 3].mean()

    def test_nbytes(self, gen):
        s = gen[0]
        assert s.nbytes() == s.image.nbytes + s.label.nbytes

    def test_subject_ids_stable(self, gen):
        assert gen.subject_ids()[0] == "BRATS_0000"
        assert gen[3].subject_id == "BRATS_0003"


class TestValidation:
    def test_bad_num_subjects(self):
        with pytest.raises(ValueError):
            SyntheticBraTS(0)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            SyntheticBraTS(2, volume_shape=(4, 4, 4))
        with pytest.raises(ValueError):
            SyntheticBraTS(2, volume_shape=(16, 16))

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            SyntheticBraTS(2, tumor_probability=1.5)
