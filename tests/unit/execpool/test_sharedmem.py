"""Shared-memory dataset handoff: one copy, every worker attaches."""

import multiprocessing as mp
import pickle

import numpy as np
import pytest

from repro.execpool import AttachedArrays, SharedArrayHandle, SharedArrayStore


def _bundle():
    rng = np.random.default_rng(7)
    return {
        "train_images": rng.normal(size=(4, 8, 8, 8, 1)).astype(np.float32),
        "train_masks": (rng.random((4, 8, 8, 8, 1)) > 0.5).astype(np.float32),
        "scalars": np.arange(5, dtype=np.int64),
    }


class TestRoundTrip:
    def test_attach_returns_equal_arrays(self):
        arrays = _bundle()
        with SharedArrayStore(arrays) as store:
            att = store.attach()
            assert set(att.arrays) == set(arrays)
            for k in arrays:
                np.testing.assert_array_equal(att[k], arrays[k])
                assert att[k].dtype == arrays[k].dtype
            att.close()

    def test_offsets_are_cache_aligned(self):
        with SharedArrayStore(_bundle()) as store:
            for _, offset, _, _ in store.handle.entries:
                assert offset % 64 == 0

    def test_empty_bundle_rejected(self):
        with pytest.raises(ValueError):
            SharedArrayStore({})

    def test_handle_pickles(self):
        with SharedArrayStore(_bundle()) as store:
            handle = pickle.loads(pickle.dumps(store.handle))
            assert isinstance(handle, SharedArrayHandle)
            assert handle == store.handle
            att = handle.attach()
            np.testing.assert_array_equal(att["scalars"],
                                          np.arange(5, dtype=np.int64))
            att.close()


class TestSharing:
    def test_attachments_share_pages(self):
        """Two attachments map the same segment: a write through one is
        visible through the other without any copy or message."""
        with SharedArrayStore(_bundle()) as store:
            a = store.attach()
            b = store.attach()
            a["scalars"][0] = 123456
            assert b["scalars"][0] == 123456
            a.close()
            b.close()

    def test_child_process_attaches_zero_copy(self):
        """A forked child attaches via the pickled handle and sees the
        parent's bytes; its write comes back through the parent's
        mapping -- shared pages, not a pickled copy."""
        arrays = _bundle()
        with SharedArrayStore(arrays) as store:

            def child(handle, out_q):
                att = handle.attach()
                out_q.put(float(att["train_images"].sum()))
                att["scalars"][4] = 777
                att.close()

            ctx = mp.get_context("fork")
            q = ctx.Queue()
            p = ctx.Process(target=child, args=(store.handle, q))
            p.start()
            child_sum = q.get(timeout=30)
            p.join(timeout=30)
            assert p.exitcode == 0
            assert child_sum == pytest.approx(
                float(arrays["train_images"].sum()))
            att = store.attach()
            assert att["scalars"][4] == 777
            att.close()

    def test_attach_does_not_poison_resource_tracker(self):
        """Attaching must not register the segment with the resource
        tracker (bpo-38119): the publisher owns it, and a second
        registration makes the tracker unlink or double-unregister it."""
        from multiprocessing import resource_tracker

        with SharedArrayStore({"x": np.zeros(4)}) as store:
            seen = []
            orig = resource_tracker.register
            resource_tracker.register = lambda name, rtype: seen.append(
                (name, rtype))
            try:
                att = store.attach()
                att.close()
            finally:
                resource_tracker.register = orig
            assert all(rtype != "shared_memory" for _, rtype in seen)


class TestLifetime:
    def test_pipeline_keeps_attachment_alive(self):
        """Regression: the views record the mapping's raw pointer, so
        whoever holds the arrays must hold the AttachedArrays too --
        dropping it lets SharedMemory.__del__ unmap under the views."""
        import gc

        from repro.core import ExperimentSettings
        from repro.core.pipeline import ArrayBackedPipeline

        rng = np.random.default_rng(0)
        arrays = {}
        for split in ("train", "val", "test"):
            arrays[f"{split}_images"] = rng.normal(
                size=(2, 8, 8, 8, 1)).astype(np.float32)
            arrays[f"{split}_masks"] = np.zeros(
                (2, 8, 8, 8, 1), dtype=np.float32)
        with SharedArrayStore(arrays) as store:
            settings = ExperimentSettings(num_subjects=4,
                                          volume_shape=(8, 8, 8))
            pipe = ArrayBackedPipeline(settings, store.handle.attach())
            assert isinstance(pipe._owner, AttachedArrays)
            gc.collect()  # would free the mapping if the ref were dropped
            batch = next(iter(pipe.dataset("train", batch_size=2)))
            np.testing.assert_array_equal(batch[0][0],
                                          arrays["train_images"][0])
