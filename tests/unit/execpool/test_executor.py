"""Process-pool trial executor tests.

Cheap picklable trainables at module level (the pool ships them to the
workers), 2-worker pools, trial budgets of a few epochs -- the goal is
driver semantics (streaming, stops, retries, shutdown), not throughput.
"""

import numpy as np
import pytest

from repro.execpool import (
    ProcessPoolTrialExecutor,
    SharedArrayStore,
    TrialExecutionError,
    run_trials_parallel,
)
from repro.fault_tolerance import RetryPolicy
from repro.raysim.search import GridSearch
from repro.raysim.tune import FIFOScheduler, TrialScheduler, TrialStatus, \
    tune_run


def quadratic_trainable(config, reporter):
    score = -(config["x"] - 3.0) ** 2
    for epoch in range(3):
        if not reporter(epoch=epoch, score=score + epoch * 0.1):
            return None
    return {"score": score + 0.2, "x": config["x"]}


def slow_trainable(config, reporter):
    import time

    for epoch in range(100):
        if not reporter(epoch=epoch, score=float(epoch)):
            return None
        time.sleep(0.05)  # leave the async stop time to arrive
    return {"score": 100.0}


def crash_then_succeed(config, reporter):
    if reporter.attempt < config.get("crashes", 1):
        raise RuntimeError("synthetic worker crash")
    reporter(epoch=0, score=1.0)
    return {"score": 1.0, "attempt": reporter.attempt}


def always_crash(config, reporter):
    raise RuntimeError("hopeless")


def shared_sum_factory(handle):
    att = handle.attach()

    def trainable(config, reporter):
        reporter(epoch=0, score=0.0)
        return {"total": float(att["values"].sum()) + config["bias"]}

    return trainable


class StopAfterFirstReport(FIFOScheduler):
    """Stops every trial at its first report -- exercises the
    asynchronous stop broadcast."""

    def on_result(self, trial, result):
        return TrialScheduler.STOP


class TestPool:
    def test_runs_trials_and_streams_results(self):
        configs = [{"x": 1.0}, {"x": 3.0}, {"x": 5.0}]
        with ProcessPoolTrialExecutor(quadratic_trainable,
                                      max_workers=2) as pool:
            trials = run_trials_parallel(pool, configs,
                                         metric="score")
        assert [t.trial_id for t in trials] == [
            "trial_0000", "trial_0001", "trial_0002"]
        assert all(t.status is TrialStatus.TERMINATED for t in trials)
        assert [len(t.results) for t in trials] == [3, 3, 3]
        assert trials[1].final["score"] == pytest.approx(0.2)
        assert trials[0].final["x"] == 1.0

    def test_scheduler_stop_broadcast(self):
        with ProcessPoolTrialExecutor(slow_trainable,
                                      max_workers=2) as pool:
            trials = run_trials_parallel(pool, [{"x": 0.0}, {"x": 1.0}],
                                         scheduler=StopAfterFirstReport(),
                                         metric="score")
        assert all(t.status is TrialStatus.STOPPED for t in trials)
        # stopped at (or shortly after) the first report, never the
        # full budget
        assert all(len(t.results) < 100 for t in trials)

    def test_retry_resubmits_crashed_attempt(self):
        with ProcessPoolTrialExecutor(crash_then_succeed,
                                      max_workers=2) as pool:
            trials = run_trials_parallel(
                pool, [{"crashes": 1}],
                retry_policy=RetryPolicy(max_retries=1, resume="scratch"),
                metric="score")
        (t,) = trials
        assert t.status is TrialStatus.TERMINATED
        assert t.retries == 1
        assert t.final["attempt"] == 1
        # the crashed attempt's rows were discarded on restart
        assert [r["epoch"] for r in t.results] == [0]

    def test_retries_exhausted_marks_error(self):
        with ProcessPoolTrialExecutor(always_crash, max_workers=1) as pool:
            trials = run_trials_parallel(
                pool, [{}], retry_policy=RetryPolicy(max_retries=1))
        (t,) = trials
        assert t.status is TrialStatus.ERROR
        assert "hopeless" in t.error
        assert t.retries == 1

    def test_raise_on_error(self):
        with ProcessPoolTrialExecutor(always_crash, max_workers=1) as pool:
            with pytest.raises(TrialExecutionError, match="hopeless"):
                run_trials_parallel(pool, [{}], raise_on_error=True)

    def test_add_worker_scales_up_and_serves_tasks(self):
        with ProcessPoolTrialExecutor(quadratic_trainable,
                                      max_workers=1) as pool:
            assert pool.worker_count() == 1
            wid = pool.add_worker()
            assert wid == 1
            assert pool.worker_count() == 2
            trials = run_trials_parallel(pool, [{"x": float(i)}
                                                for i in range(4)],
                                         metric="score")
            assert all(t.status is TrialStatus.TERMINATED for t in trials)

    def test_retire_worker_drains_then_exits(self):
        with ProcessPoolTrialExecutor(quadratic_trainable,
                                      max_workers=2) as pool:
            pool.retire_worker(1)
            pool.retire_worker(1)          # idempotent
            # the retiring worker announces itself then exits
            deadline = 10.0
            import time as _time

            t0 = _time.monotonic()
            retired = False
            while _time.monotonic() - t0 < deadline:
                kind, *payload = pool.next_message(timeout=deadline)
                if kind == "retired":
                    assert payload[0] == 1
                    retired = True
                    break
            assert retired
            t0 = _time.monotonic()
            while pool._procs[1].is_alive():
                assert _time.monotonic() - t0 < deadline
                _time.sleep(0.01)
            # a retired worker is a drain, not a failure
            assert pool.dead_workers() == []
            assert pool.worker_count() == 1
            # the surviving worker still serves the queue
            trials = run_trials_parallel(pool, [{"x": 2.0}],
                                         metric="score")
            assert trials[0].status is TrialStatus.TERMINATED

    def test_retire_validates_worker_id(self):
        with ProcessPoolTrialExecutor(quadratic_trainable,
                                      max_workers=1) as pool:
            with pytest.raises(ValueError):
                pool.retire_worker(7)

    def test_requires_exactly_one_trainable(self):
        with pytest.raises(ValueError):
            ProcessPoolTrialExecutor()
        with pytest.raises(ValueError):
            ProcessPoolTrialExecutor(
                quadratic_trainable, trainable_factory=shared_sum_factory)

    def test_submit_after_shutdown_rejected(self):
        pool = ProcessPoolTrialExecutor(quadratic_trainable, max_workers=1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit("trial_0000", {"x": 0.0})
        pool.shutdown()  # idempotent

    def test_factory_attaches_shared_memory(self):
        """The per-worker factory runs in the worker and serves every
        trial from the attached (not copied) parent arrays."""
        values = np.arange(10, dtype=np.float64)
        with SharedArrayStore({"values": values}) as store:
            with ProcessPoolTrialExecutor(
                    trainable_factory=shared_sum_factory,
                    factory_kwargs={"handle": store.handle},
                    max_workers=2) as pool:
                trials = run_trials_parallel(
                    pool, [{"bias": 0.0}, {"bias": 1.0}], metric="total")
        totals = sorted(t.final["total"] for t in trials)
        assert totals == [45.0, 46.0]


class TestTuneRunIntegration:
    def test_process_executor_matches_serial(self):
        axes = {"x": [0.0, 2.0, 3.0, 4.0]}
        serial = tune_run(quadratic_trainable, GridSearch(axes),
                          metric="score")
        parallel = tune_run(quadratic_trainable, GridSearch(axes),
                            metric="score", executor="process",
                            max_workers=2)
        for a, b in zip(serial.trials, parallel.trials):
            assert a.config == b.config
            assert a.final == b.final
            assert a.results == b.results
        assert (serial.best_trial("score").config
                == parallel.best_trial("score").config)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            tune_run(quadratic_trainable, GridSearch({"x": [0.0]}),
                     metric="score", executor="threads")
