"""Augmentation integration in the training pipeline."""

import numpy as np
import pytest

from repro.core import ExperimentSettings, MISPipeline, train_trial
from repro.data import Augmenter, random_flip, random_gaussian_noise


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(num_subjects=8, volume_shape=(16, 16, 16),
                              epochs=2, base_filters=2, depth=2, seed=0)


@pytest.fixture(scope="module")
def pipeline(settings, tmp_path_factory):
    return MISPipeline(settings, record_dir=tmp_path_factory.mktemp("aug"))


class TestAugmentedDataset:
    def test_augmenter_applied_per_element(self, pipeline):
        aug = Augmenter([random_gaussian_noise(0.5)], seed=0)
        plain = [x for x, _ in pipeline.dataset("train", 1)]
        noisy = [x for x, _ in pipeline.dataset("train", 1, augmenter=aug)]
        assert len(plain) == len(noisy)
        assert not np.allclose(plain[0], noisy[0])

    def test_epochs_see_different_augmentations(self, pipeline):
        aug = Augmenter([random_gaussian_noise(0.5)], seed=0)
        ds = pipeline.dataset("train", 1, augmenter=aug)
        epoch1 = [x.copy() for x, _ in ds]
        epoch2 = [x.copy() for x, _ in ds]
        assert not np.allclose(epoch1[0], epoch2[0])

    def test_fresh_augmenter_replays(self, pipeline):
        a1 = Augmenter([random_gaussian_noise(0.3)], seed=7)
        a2 = Augmenter([random_gaussian_noise(0.3)], seed=7)
        e1 = [x for x, _ in pipeline.dataset("train", 1, augmenter=a1)]
        e2 = [x for x, _ in pipeline.dataset("train", 1, augmenter=a2)]
        for x1, x2 in zip(e1, e2):
            np.testing.assert_array_equal(x1, x2)

    def test_masks_stay_binary_under_flips(self, pipeline):
        aug = Augmenter([random_flip(p=1.0)], seed=0)
        for _, y in pipeline.dataset("train", 2, augmenter=aug):
            assert set(np.unique(y)) <= {0.0, 1.0}

    def test_stage_timing_recorded(self, pipeline):
        aug = Augmenter([random_gaussian_noise(0.1)], seed=0)
        list(pipeline.dataset("train", 2, augmenter=aug))
        assert pipeline.stats.elements["augment"] > 0


class TestAugmentedTrial:
    def test_trial_runs_with_augmentation(self, settings, pipeline):
        aug_settings = ExperimentSettings(
            num_subjects=8, volume_shape=(16, 16, 16), epochs=2,
            base_filters=2, depth=2, seed=0, augment=True,
        )
        out = train_trial({"learning_rate": 3e-3}, aug_settings, pipeline)
        assert len(out.history) == 2
        assert np.isfinite([r.train_loss for r in out.history]).all()

    def test_augmented_trial_reproducible(self, pipeline):
        s = ExperimentSettings(
            num_subjects=8, volume_shape=(16, 16, 16), epochs=2,
            base_filters=2, depth=2, seed=0, augment=True,
        )
        a = train_trial({"learning_rate": 3e-3}, s, pipeline)
        b = train_trial({"learning_rate": 3e-3}, s, pipeline)
        assert [r.train_loss for r in a.history] == [
            r.train_loss for r in b.history
        ]

    def test_augmentation_changes_training(self, pipeline):
        base = ExperimentSettings(
            num_subjects=8, volume_shape=(16, 16, 16), epochs=2,
            base_filters=2, depth=2, seed=0, augment=False,
        )
        aug = ExperimentSettings(
            num_subjects=8, volume_shape=(16, 16, 16), epochs=2,
            base_filters=2, depth=2, seed=0, augment=True,
        )
        o1 = train_trial({"learning_rate": 3e-3}, base, pipeline)
        o2 = train_trial({"learning_rate": 3e-3}, aug, pipeline)
        assert o1.history[-1].train_loss != o2.history[-1].train_loss
