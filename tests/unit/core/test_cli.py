"""CLI tests (argparse wiring + command behaviour, in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        commands = set(subparsers.choices)
        assert commands == {
            "table1", "fig4", "train", "search", "simulate", "profile",
            "calibrate", "report", "summary", "telemetry", "top", "trace",
            "bench", "serve-bench",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_requires_method_and_gpus(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])
        args = build_parser().parse_args(["simulate", "data_parallel", "8"])
        assert args.gpus == 8


class TestCommands:
    def test_table1_prints_all_rows(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for n in (1, 2, 4, 8, 12, 16, 32):
            assert f"{n}  |" in out

    def test_simulate_cell_and_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        assert main(["simulate", "experiment_parallel", "8",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "8 GPUs" in out
        assert trace.exists()

    def test_simulate_with_failures(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        rc = main(["simulate", "experiment_parallel", "8",
                   "--failures", "mtbf=20000,repair=600",
                   "--max-retries", "5", "--seed", "1",
                   "--trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "experiment_parallel+failures" in out
        assert "failures:" in out and "wasted" in out
        assert "abandoned trials:" in out
        assert trace.exists()

    def test_simulate_bad_failures_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "experiment_parallel", "8",
                  "--failures", "repair=600"])
        with pytest.raises(SystemExit):
            main(["simulate", "experiment_parallel", "8",
                  "--failures", "mtbf=1,bogus=2"])

    def test_train_command(self, capsys):
        rc = main([
            "train", "--subjects", "6", "--volume", "16", "16", "16",
            "--epochs", "2", "--base-filters", "2", "--depth", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "val DSC" in out and "test DSC" in out

    def test_search_command_experiment_parallel(self, capsys):
        rc = main([
            "search", "--subjects", "6", "--volume", "16", "16", "16",
            "--epochs", "2", "--base-filters", "2", "--depth", "2",
            "--lr", "0.003", "0.0001",
        ])
        assert rc == 0
        assert "best:" in capsys.readouterr().out

    def test_search_command_data_parallel(self, capsys):
        rc = main([
            "search", "--subjects", "6", "--volume", "16", "16", "16",
            "--epochs", "2", "--base-filters", "2", "--depth", "2",
            "--lr", "0.003", "--method", "data_parallel", "--gpus", "2",
        ])
        assert rc == 0
        assert "best:" in capsys.readouterr().out

    def test_search_defaults_to_float32_and_restores_policy(self, capsys,
                                                            monkeypatch):
        """``search`` flips the compute-dtype default to the float32
        fast path for the duration of the command only: ``main`` must
        hand the process back with the global policy untouched, so
        in-process callers (this suite!) never inherit float32."""
        import numpy as np

        from repro.nn.dtypes import get_compute_dtype
        from repro.nn.layers.conv3d import Conv3D

        monkeypatch.delenv("DISTMIS_COMPUTE_DTYPE", raising=False)
        before = get_compute_dtype()
        seen = {}
        orig_init = Conv3D.__init__

        def spy(self, *a, **kw):
            orig_init(self, *a, **kw)
            seen.setdefault("dtype", self.w.value.dtype)

        monkeypatch.setattr(Conv3D, "__init__", spy)
        rc = main([
            "search", "--subjects", "6", "--volume", "8", "8", "8",
            "--epochs", "1", "--base-filters", "2", "--depth", "2",
            "--lr", "0.003",
        ])
        assert rc == 0
        assert seen["dtype"] == np.float32      # the fast path was on
        assert get_compute_dtype() == before    # ...and was handed back
        capsys.readouterr()

    def test_search_compute_dtype_flag_overrides_fast_path(self, capsys,
                                                           monkeypatch):
        import numpy as np

        from repro.nn.layers.conv3d import Conv3D

        monkeypatch.delenv("DISTMIS_COMPUTE_DTYPE", raising=False)
        seen = {}
        orig_init = Conv3D.__init__

        def spy(self, *a, **kw):
            orig_init(self, *a, **kw)
            seen.setdefault("dtype", self.w.value.dtype)

        monkeypatch.setattr(Conv3D, "__init__", spy)
        rc = main([
            "search", "--subjects", "6", "--volume", "8", "8", "8",
            "--epochs", "1", "--base-filters", "2", "--depth", "2",
            "--lr", "0.003", "--compute-dtype", "float64",
        ])
        assert rc == 0
        assert seen["dtype"] == np.float64
        capsys.readouterr()

    def test_summary_command(self, capsys):
        rc = main(["summary", "--volume", "16", "16", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total params: 352,513" in out
        assert "MaxPool3D" in out

    def test_report_command_writes_markdown(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        rc = main(["report", "--runs", "1", "--output", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        assert "## Table I (ours vs paper)" in text
        assert "## Data-parallel cost decomposition" in text
        assert "| 32 |" in text

    def test_profile_command(self, capsys):
        rc = main(["profile", "--subjects", "3", "--volume", "16", "16", "16",
                   "--epochs", "1"])
        assert rc == 0
        assert "pipeline stage profile" in capsys.readouterr().out

    def test_telemetry_roundtrip(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        rc = main([
            "search", "--subjects", "6", "--volume", "16", "16", "16",
            "--epochs", "1", "--base-filters", "2", "--depth", "2",
            "--lr", "0.003", "--telemetry", str(run_dir),
        ])
        assert rc == 0
        assert f"telemetry written to {run_dir}" in capsys.readouterr().out

        assert main(["telemetry", "summary", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "kind      : inprocess/experiment_parallel" in out
        assert "train_steps_total" in out

        assert main(["telemetry", "prom", str(run_dir)]) == 0
        assert "# TYPE train_steps_total counter" in capsys.readouterr().out

        merged = tmp_path / "merged.json"
        assert main(["telemetry", "trace", str(run_dir),
                     "--output", str(merged)]) == 0
        capsys.readouterr()
        assert merged.exists()

    def test_telemetry_prom_missing_dir_fails(self, tmp_path, capsys):
        assert main(["telemetry", "prom", str(tmp_path)]) == 1
