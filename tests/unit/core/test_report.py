"""Reproduction-report builder tests."""

import pytest

from repro.core import build_report


@pytest.fixture(scope="module")
def report_text():
    return build_report(num_runs=1, base_seed=0)


class TestBuildReport:
    def test_has_all_sections(self, report_text):
        assert "# DistMIS reproduction report" in report_text
        assert "## Table I (ours vs paper)" in report_text
        assert "## Figure 4 series" in report_text
        assert "## Data-parallel cost decomposition" in report_text

    def test_table_has_all_gpu_rows(self, report_text):
        for n in (1, 2, 4, 8, 12, 16, 32):
            assert f"\n| {n} | " in report_text

    def test_paper_values_quoted(self, report_text):
        assert "44:18:02" in report_text   # paper dp @ 1 GPU
        assert "2:55:06" in report_text    # paper ep @ 32 GPUs
        assert "13.18" in report_text
        assert "15.19" in report_text

    def test_calibration_disclosure_present(self, report_text):
        assert "Calibration fit vs Table I" in report_text
        assert "%" in report_text

    def test_gap_statement(self, report_text):
        assert "Speed-up gap" in report_text

    def test_valid_markdown_tables(self, report_text):
        """Every table row has the same column count as its header."""
        lines = report_text.splitlines()
        i = 0
        while i < len(lines):
            if lines[i].startswith("|") and i + 1 < len(lines) and \
                    set(lines[i + 1].replace("|", "").strip()) <= {"-", ":", " "}:
                ncols = lines[i].count("|")
                j = i + 2
                while j < len(lines) and lines[j].startswith("|"):
                    assert lines[j].count("|") == ncols, lines[j]
                    j += 1
                i = j
            else:
                i += 1
