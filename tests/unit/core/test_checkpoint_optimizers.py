"""Checkpoint round-trips for every optimizer's state structure."""

import numpy as np
import pytest

from repro.core import CheckpointManager, load_checkpoint, save_checkpoint
from repro.core.checkpoint import _flatten_opt_state, _unflatten_opt_state
from repro.nn import SGD, Adam, Momentum, SoftDiceLoss, UNet3D


def tiny(seed=0):
    return UNet3D(1, 1, 2, 2, use_batchnorm=False,
                  rng=np.random.default_rng(seed))


def train_steps(net, opt, steps=3, seed=2):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2, 1, 4, 4, 4))
    t = (rng.uniform(size=(2, 1, 4, 4, 4)) > 0.8).astype(float)
    loss = SoftDiceLoss()
    for _ in range(steps):
        net.zero_grad()
        _, d = loss.forward(net(x), t)
        net.backward(d)
        opt.step()
    return x, t


@pytest.mark.parametrize(
    "factory",
    [
        lambda m: SGD(m, lr=1e-2),
        lambda m: Momentum(m, lr=1e-2, momentum=0.9),
        lambda m: Momentum(m, lr=1e-2, momentum=0.9, nesterov=True),
        lambda m: Adam(m, lr=1e-3),
    ],
    ids=["sgd", "momentum", "nesterov", "adam"],
)
def test_optimizer_checkpoint_roundtrip(tmp_path, factory):
    """Nested optimizer state (including integer slot keys) must
    survive the flatten/npz/unflatten pipeline and keep training in
    lock-step with the original."""
    net, opt = tiny(1), None
    opt = factory(net)
    x_t = train_steps(net, opt)
    save_checkpoint(tmp_path / "ck", net, opt, step=3)

    net2 = tiny(9)
    opt2 = factory(net2)
    load_checkpoint(tmp_path / "ck", net2, opt2)

    # continue both one more step: identical updates
    loss = SoftDiceLoss()
    x, t = x_t
    for n, o in ((net, opt), (net2, opt2)):
        n.zero_grad()
        _, d = loss.forward(n(x), t)
        n.backward(d)
        o.step()
    np.testing.assert_allclose(net.get_flat_params(),
                               net2.get_flat_params(), atol=1e-12)


class TestCheckpointManagerResave:
    def test_same_epoch_resave_not_double_registered(self, tmp_path):
        """Regression: re-saving an epoch (a crash-resume re-runs the
        crashed epoch) used to register the same path twice, letting the
        rolling eviction unlink the live checkpoint."""
        net = tiny()
        opt = SGD(net, lr=1e-2)
        mgr = CheckpointManager(tmp_path, keep=2)
        mgr.save(net, opt, epoch=0, val_dice=0.1)
        p1 = mgr.save(net, opt, epoch=1, val_dice=0.2)
        assert mgr.save(net, opt, epoch=1, val_dice=0.25) == p1
        assert mgr._saved.count(p1) == 1
        mgr.save(net, opt, epoch=2, val_dice=0.3)
        # the live epoch-1 checkpoint must survive the eviction
        assert p1.exists()
        assert len(mgr._saved) == 2
        assert all(p.exists() for p in mgr._saved)
        net2 = tiny(3)
        load_checkpoint(mgr.latest_path(), net2, SGD(net2, lr=1e-2))


class TestFlattenHelpers:
    def test_integer_keys_roundtrip(self):
        state = {"t": 5, "m": {0: np.ones(2), 3: np.zeros(1)}}
        flat = _flatten_opt_state(state)
        back = _unflatten_opt_state(
            {k: np.asarray(v) for k, v in flat.items()}
        )
        assert back["t"] == 5
        assert set(back["m"]) == {0, 3}
        np.testing.assert_array_equal(back["m"][0], np.ones(2))

    def test_deep_nesting(self):
        state = {"a": {"b": {"c": np.arange(3)}}}
        back = _unflatten_opt_state(_flatten_opt_state(state))
        np.testing.assert_array_equal(back["a"]["b"]["c"], np.arange(3))

    def test_scalars_restored_as_python(self):
        back = _unflatten_opt_state(_flatten_opt_state({"t": 7}))
        assert back["t"] == 7 and not isinstance(back["t"], np.ndarray)
