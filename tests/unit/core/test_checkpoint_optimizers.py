"""Checkpoint round-trips for every optimizer's state structure."""

import numpy as np
import pytest

from repro.core import load_checkpoint, save_checkpoint
from repro.core.checkpoint import _flatten_opt_state, _unflatten_opt_state
from repro.nn import SGD, Adam, Momentum, SoftDiceLoss, UNet3D


def tiny(seed=0):
    return UNet3D(1, 1, 2, 2, use_batchnorm=False,
                  rng=np.random.default_rng(seed))


def train_steps(net, opt, steps=3, seed=2):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2, 1, 4, 4, 4))
    t = (rng.uniform(size=(2, 1, 4, 4, 4)) > 0.8).astype(float)
    loss = SoftDiceLoss()
    for _ in range(steps):
        net.zero_grad()
        _, d = loss.forward(net(x), t)
        net.backward(d)
        opt.step()
    return x, t


@pytest.mark.parametrize(
    "factory",
    [
        lambda m: SGD(m, lr=1e-2),
        lambda m: Momentum(m, lr=1e-2, momentum=0.9),
        lambda m: Momentum(m, lr=1e-2, momentum=0.9, nesterov=True),
        lambda m: Adam(m, lr=1e-3),
    ],
    ids=["sgd", "momentum", "nesterov", "adam"],
)
def test_optimizer_checkpoint_roundtrip(tmp_path, factory):
    """Nested optimizer state (including integer slot keys) must
    survive the flatten/npz/unflatten pipeline and keep training in
    lock-step with the original."""
    net, opt = tiny(1), None
    opt = factory(net)
    x_t = train_steps(net, opt)
    save_checkpoint(tmp_path / "ck", net, opt, step=3)

    net2 = tiny(9)
    opt2 = factory(net2)
    load_checkpoint(tmp_path / "ck", net2, opt2)

    # continue both one more step: identical updates
    loss = SoftDiceLoss()
    x, t = x_t
    for n, o in ((net, opt), (net2, opt2)):
        n.zero_grad()
        _, d = loss.forward(n(x), t)
        n.backward(d)
        o.step()
    np.testing.assert_allclose(net.get_flat_params(),
                               net2.get_flat_params(), atol=1e-12)


class TestFlattenHelpers:
    def test_integer_keys_roundtrip(self):
        state = {"t": 5, "m": {0: np.ones(2), 3: np.zeros(1)}}
        flat = _flatten_opt_state(state)
        back = _unflatten_opt_state(
            {k: np.asarray(v) for k, v in flat.items()}
        )
        assert back["t"] == 5
        assert set(back["m"]) == {0, 3}
        np.testing.assert_array_equal(back["m"][0], np.ones(2))

    def test_deep_nesting(self):
        state = {"a": {"b": {"c": np.arange(3)}}}
        back = _unflatten_opt_state(_flatten_opt_state(state))
        np.testing.assert_array_equal(back["a"]["b"]["c"], np.arange(3))

    def test_scalars_restored_as_python(self):
        back = _unflatten_opt_state(_flatten_opt_state({"t": 7}))
        assert back["t"] == 7 and not isinstance(back["t"], np.ndarray)
