"""Run tracking / search-resume tests."""


import pytest

from repro.core import RunTracker, resume_search


@pytest.fixture
def tracker(tmp_path):
    return RunTracker(tmp_path / "run.jsonl")


CONFIGS = [
    {"learning_rate": 1e-3, "loss": "dice"},
    {"learning_rate": 1e-4, "loss": "dice"},
    {"learning_rate": 1e-3, "loss": "quadratic_dice"},
]


class TestRunTracker:
    def test_log_and_read_back(self, tracker):
        tracker.log_trial(CONFIGS[0], "terminated", val_dice=0.9, epochs=10)
        recs = list(tracker.records())
        assert len(recs) == 1
        assert recs[0].config == CONFIGS[0]
        assert recs[0].metrics["val_dice"] == 0.9

    def test_append_only(self, tracker):
        for cfg in CONFIGS:
            tracker.log_trial(cfg, "terminated", val_dice=0.5)
        assert len(list(tracker.records())) == 3

    def test_empty_log(self, tracker):
        assert list(tracker.records()) == []
        assert tracker.best("val_dice") is None
        assert tracker.summary() == {}

    def test_best_by_metric(self, tracker):
        tracker.log_trial(CONFIGS[0], "terminated", val_dice=0.7)
        tracker.log_trial(CONFIGS[1], "terminated", val_dice=0.9)
        tracker.log_trial(CONFIGS[2], "error")
        best = tracker.best("val_dice")
        assert best.config == CONFIGS[1]
        worst = tracker.best("val_dice", mode="min")
        assert worst.config == CONFIGS[0]

    def test_summary_counts(self, tracker):
        tracker.log_trial(CONFIGS[0], "terminated")
        tracker.log_trial(CONFIGS[1], "error")
        tracker.log_trial(CONFIGS[2], "stopped")
        assert tracker.summary() == {"terminated": 1, "error": 1, "stopped": 1}

    def test_torn_final_line_skipped(self, tracker, tmp_path):
        tracker.log_trial(CONFIGS[0], "terminated", val_dice=0.8)
        with open(tracker.path, "a") as f:
            f.write('{"config": {"learning_rate"')  # simulated crash
        recs = list(tracker.records())
        assert len(recs) == 1
        assert tracker.torn_lines == 1

    def test_torn_line_count_resets_per_scan(self, tracker):
        tracker.log_trial(CONFIGS[0], "terminated")
        with open(tracker.path, "a") as f:
            f.write("not json\n")
            f.write('{"broken"\n')
        list(tracker.records())
        assert tracker.torn_lines == 2
        # a clean log scans back to zero
        clean = RunTracker(tracker.path.parent / "clean.jsonl")
        clean.log_trial(CONFIGS[1], "terminated")
        list(clean.records())
        assert clean.torn_lines == 0

    def test_log_trial_is_durable_per_line(self, tracker):
        # every append must be complete on disk when log_trial returns
        tracker.log_trial(CONFIGS[0], "terminated", val_dice=0.8)
        raw = tracker.path.read_text()
        assert raw.endswith("\n")
        assert len(raw.splitlines()) == 1


class TestResume:
    def test_completed_trials_filtered(self, tracker):
        tracker.log_trial(CONFIGS[0], "terminated", val_dice=0.8)
        remaining = resume_search(CONFIGS, tracker)
        assert remaining == CONFIGS[1:]

    def test_key_is_order_independent(self, tracker):
        reordered = dict(reversed(list(CONFIGS[0].items())))
        tracker.log_trial(reordered, "terminated")
        remaining = resume_search(CONFIGS, tracker)
        assert CONFIGS[0] not in remaining

    def test_errored_trials_retried(self, tracker):
        tracker.log_trial(CONFIGS[0], "error")
        remaining = resume_search(CONFIGS, tracker)
        assert CONFIGS[0] in remaining

    def test_fresh_log_runs_everything(self, tracker):
        assert resume_search(CONFIGS, tracker) == CONFIGS

    def test_end_to_end_interrupted_search(self, tracker):
        """Simulate a crash after 2 of 3 trials, then resume."""
        executed = []

        def run(configs):
            for i, cfg in enumerate(configs):
                if len(executed) == 2 and cfg == CONFIGS[2]:
                    raise KeyboardInterrupt  # the 'crash'
                executed.append(cfg)
                tracker.log_trial(cfg, "terminated", val_dice=0.1 * i)

        with pytest.raises(KeyboardInterrupt):
            run(CONFIGS)
        # resume: only the unfinished config remains
        remaining = resume_search(CONFIGS, tracker)
        assert remaining == [CONFIGS[2]]
        for cfg in remaining:
            executed.append(cfg)
            tracker.log_trial(cfg, "terminated", val_dice=0.99)
        assert len(executed) == 3
        assert tracker.best("val_dice").config == CONFIGS[2]
