"""Inference strategies (E11 substrate) and checkpointing tests."""

import numpy as np
import pytest

from repro.core import (
    CheckpointManager,
    chunk_bounds,
    full_volume_inference,
    load_checkpoint,
    save_checkpoint,
    sliding_window_inference,
    sliding_window_spec,
    stitch_chunks,
    train_on_patches,
)
from repro.data.patches import extract_patches, stitch_patches
from repro.nn import Adam, SGD, SoftDiceLoss, UNet3D

rng = np.random.default_rng(9)


def tiny_net(seed=0):
    return UNet3D(1, 1, 2, 2, use_batchnorm=False,
                  rng=np.random.default_rng(seed))


class TestInference:
    @pytest.fixture(scope="class")
    def net(self):
        return tiny_net()

    @pytest.fixture(scope="class")
    def images(self):
        return rng.normal(size=(2, 1, 8, 8, 8))

    def test_full_volume_shape_and_accounting(self, net, images):
        res = full_volume_inference(net, images)
        assert res.prediction.shape == (2, 1, 8, 8, 8)
        assert res.forward_passes == 2
        assert res.overcompute_factor() == pytest.approx(1.0)

    def test_sliding_window_covers_volume(self, net, images):
        res = sliding_window_inference(net, images, patch_shape=(4, 4, 4),
                                       overlap=0.5)
        assert res.prediction.shape == images.shape[:1] + (1, 8, 8, 8)
        assert np.isfinite(res.prediction).all()
        assert (res.prediction >= 0).all() and (res.prediction <= 1).all()

    def test_sliding_window_overcomputes(self, net, images):
        """The paper's complaint: overlapping windows redo work."""
        res = sliding_window_inference(net, images, patch_shape=(4, 4, 4),
                                       overlap=0.5)
        assert res.overcompute_factor() > 2.0
        assert res.forward_passes > 2

    def test_forward_passes_count_samples_not_batches(self, net, images):
        """Regression: ``forward_passes`` is per sample forwarded, so it
        is invariant to ``batch_size`` and consistent with both
        ``voxels_computed`` and the full-volume strategy (the old
        per-batch count deflated sub-patch compute by ``batch_size``)."""
        results = [
            sliding_window_inference(net, images, patch_shape=(4, 4, 4),
                                     overlap=0.0, batch_size=bs)
            for bs in (1, 4, 64)
        ]
        # 8/4 = 2 per axis -> 8 patches per subject x 2 subjects
        assert [r.forward_passes for r in results] == [16, 16, 16]
        # the invocation count is what batching actually changes
        assert [r.model_invocations for r in results] == [16, 4, 2]
        patch_voxels = 1 * 4 * 4 * 4
        for r in results:
            assert r.voxels_computed == r.forward_passes * patch_voxels

    def test_full_volume_invocation_accounting(self, net, images):
        res = full_volume_inference(net, images)
        assert res.model_invocations == res.forward_passes == 2

    def test_zero_overlap_matches_tiling(self, net, images):
        res = sliding_window_inference(net, images, patch_shape=(4, 4, 4),
                                       overlap=0.0)
        # 8/4 = 2 per axis -> 8 patches per subject, batched by 4
        assert res.overcompute_factor() == pytest.approx(1.0)

    def test_full_vs_patch_predictions_differ(self, net, images):
        """Patch inference loses context: the two strategies disagree on
        a network with receptive field beyond the patch."""
        full = full_volume_inference(net, images)
        win = sliding_window_inference(net, images, patch_shape=(4, 4, 4),
                                       overlap=0.5)
        assert not np.allclose(full.prediction, win.prediction, atol=1e-6)

    def test_invalid_overlap(self, net, images):
        with pytest.raises(ValueError):
            sliding_window_inference(net, images, (4, 4, 4), overlap=1.0)


class TestScatterPlan:
    """The shared sliding-window plan (spec/chunks/stitch) scatter--
    gather serving schedules across replicas -- bit-identity to the
    offline path rests on these helpers."""

    def test_spec_stride_from_overlap(self):
        spec = sliding_window_spec((4, 4, 4), overlap=0.5)
        assert spec.patch_shape == (4, 4, 4)
        assert spec.stride == (2, 2, 2)
        assert sliding_window_spec((4, 4, 4), 0.0).stride == (4, 4, 4)
        # stride floors at 1, never 0
        assert sliding_window_spec((2, 2, 2), 0.9).stride == (1, 1, 1)
        with pytest.raises(ValueError):
            sliding_window_spec((4, 4, 4), 1.0)
        with pytest.raises(ValueError):
            sliding_window_spec((4, 4, 4), -0.1)

    def test_chunk_bounds_cover_exactly(self):
        assert chunk_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert chunk_bounds(4, 4) == [(0, 4)]
        assert chunk_bounds(1, 8) == [(0, 1)]
        with pytest.raises(ValueError):
            chunk_bounds(0, 4)
        with pytest.raises(ValueError):
            chunk_bounds(4, 0)

    def test_stitch_chunks_order_permutation_bit_identity(self):
        """ISSUE 10 satellite: driver-side stitching of per-chunk
        predictions is bitwise identical to the offline one-pass
        stitch, for *every* chunk arrival order -- chunks are buffered
        and concatenated canonically before the single
        overlap-averaging pass, so float accumulation order never
        depends on which replica answered first."""
        prng = np.random.default_rng(11)
        volume = prng.normal(size=(2, 8, 8, 8))
        spec = sliding_window_spec((4, 4, 4), overlap=0.5)
        patches, offsets = extract_patches(volume, spec)
        bounds = chunk_bounds(len(patches), 3)
        # stand-in "predictions": arbitrary per-patch float payloads
        preds = prng.normal(size=patches.shape)
        reference = stitch_patches(preds, offsets, volume.shape[1:])
        for perm_seed in range(5):
            order = np.random.default_rng(perm_seed).permutation(
                len(bounds))
            gathered = {}
            for ci in order:
                start, end = bounds[ci]
                gathered[int(ci)] = preds[start:end]
            out = stitch_chunks(gathered, offsets, volume.shape[1:])
            assert np.array_equal(reference, out)

    def test_stitch_chunks_rejects_gaps(self):
        with pytest.raises(ValueError):
            stitch_chunks({0: np.zeros((1, 1, 2, 2, 2)),
                           2: np.zeros((1, 1, 2, 2, 2))},
                          [(0, 0, 0), (2, 2, 2)], (4, 4, 4))


class TestPatchTraining:
    def test_loss_trajectory_returned(self):
        net = tiny_net()
        images = rng.normal(size=(3, 1, 8, 8, 8))
        masks = (rng.uniform(size=(3, 1, 8, 8, 8)) > 0.85).astype(float)
        losses = train_on_patches(
            net, SoftDiceLoss(), Adam(net, lr=1e-3),
            images, masks, patch_shape=(4, 4, 4), steps=5,
            rng=np.random.default_rng(0),
        )
        assert len(losses) == 5
        assert all(0 <= l <= 1 for l in losses)

    def test_validation(self):
        net = tiny_net()
        with pytest.raises(ValueError):
            train_on_patches(net, SoftDiceLoss(), SGD(net, lr=0.1),
                             np.zeros((1, 1, 8, 8, 8)),
                             np.zeros((1, 1, 8, 8, 8)),
                             (4, 4, 4), steps=0)


class TestCheckpoint:
    def test_model_roundtrip(self, tmp_path):
        net = tiny_net(1)
        x = rng.normal(size=(1, 1, 8, 8, 8))
        y_before = net.predict(x)
        meta = save_checkpoint(tmp_path / "ck", net, epoch=7, val_dice=0.9)
        assert meta.suffix == ".npz"

        net2 = tiny_net(2)  # different init
        restored_meta = load_checkpoint(tmp_path / "ck", net2)
        np.testing.assert_allclose(net2.predict(x), y_before)
        assert restored_meta == {"epoch": 7, "val_dice": 0.9}

    def test_optimizer_state_roundtrip(self, tmp_path):
        net = tiny_net(1)
        opt = Adam(net, lr=1e-3)
        x = rng.normal(size=(2, 1, 8, 8, 8))
        t = (rng.uniform(size=(2, 1, 8, 8, 8)) > 0.8).astype(float)
        loss = SoftDiceLoss()
        for _ in range(3):
            net.zero_grad()
            _, d = loss.forward(net(x), t)
            net.backward(d)
            opt.step()
        save_checkpoint(tmp_path / "ck", net, opt, epoch=3)

        net2, opt2 = tiny_net(9), None
        opt2 = Adam(net2, lr=1e-3)
        load_checkpoint(tmp_path / "ck", net2, opt2)

        # One more identical step on both must produce identical weights.
        for n, o in ((net, opt), (net2, opt2)):
            n.zero_grad()
            _, d = loss.forward(n(x), t)
            n.backward(d)
            o.step()
        np.testing.assert_allclose(net.get_flat_params(),
                                   net2.get_flat_params(), atol=1e-12)

    def test_missing_optimizer_state_raises(self, tmp_path):
        net = tiny_net()
        save_checkpoint(tmp_path / "ck", net)
        with pytest.raises(KeyError, match="optimizer"):
            load_checkpoint(tmp_path / "ck", tiny_net(), Adam(tiny_net()))

    def test_manager_rolls_and_tracks_best(self, tmp_path):
        net = tiny_net()
        mgr = CheckpointManager(tmp_path, keep=2, metric="val_dice")
        for epoch, dice in enumerate([0.5, 0.8, 0.7, 0.6]):
            mgr.save(net, epoch=epoch, val_dice=dice)
        # only the last `keep` rolling checkpoints remain (+ best)
        rolling = sorted(p.name for p in tmp_path.glob("ckpt_epoch*.npz"))
        assert rolling == ["ckpt_epoch0002.npz", "ckpt_epoch0003.npz"]
        meta = load_checkpoint(mgr.best_path, tiny_net())
        assert meta["val_dice"] == 0.8

    def test_manager_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, mode="best")
