"""DistMISRunner, distribution methods, results and profiling tests."""

import pytest

from repro.core import (
    ComparisonReport,
    DistMISRunner,
    ExperimentSettings,
    HyperparameterSpace,
    MethodSeries,
    placement_case,
    profile_online_vs_offline,
)
from repro.core.data_parallel import simulate_search as dp_simulate
from repro.core.experiment_parallel import simulate_search as ep_simulate
from repro.perf import (
    calibrated_model,
    data_parallel_search_time,
    experiment_parallel_search_time,
    paper_search_grid,
)


def tiny_runner(epochs=2):
    return DistMISRunner(
        space=HyperparameterSpace({"learning_rate": [1e-2, 1e-3]}),
        settings=ExperimentSettings(num_subjects=6, volume_shape=(16, 16, 16),
                                    epochs=epochs, base_filters=2, depth=2),
    )


class TestPlacementCase:
    def test_trichotomy(self):
        assert placement_case(1) == "sequential"
        assert placement_case(3) == "mirrored"
        assert placement_case(5) == "ray_sgd"
        with pytest.raises(ValueError):
            placement_case(0)


class TestSimulatedBackend:
    @pytest.fixture(scope="class")
    def model(self):
        return calibrated_model()

    @pytest.fixture(scope="class")
    def grid(self):
        return paper_search_grid()

    def test_dp_simulator_matches_analytic(self, model, grid):
        for n in (1, 4, 12, 32):
            sim, _ = dp_simulate(grid, model, n)
            assert sim == pytest.approx(
                data_parallel_search_time(model, grid, n)
            )

    def test_ep_simulator_matches_analytic(self, model, grid):
        """The event-driven FIFO placement must equal the analytic
        greedy schedule's makespan."""
        for n in (1, 2, 8, 16, 32):
            sim, _ = ep_simulate(grid, model, n)
            assert sim == pytest.approx(
                experiment_parallel_search_time(model, grid, n)
            )

    def test_dp_timeline_spans_all_gpus(self, model, grid):
        _, tl = dp_simulate(grid, model, 8)
        assert len(tl.resources()) == 8
        assert len(tl.events) == len(grid) * 8

    def test_ep_timeline_one_span_per_trial(self, model, grid):
        _, tl = ep_simulate(grid, model, 8)
        assert len(tl.events) == len(grid)
        assert len(tl.resources()) <= 8
        # trials are packed: the pool keeps every GPU busy early on
        assert tl.mean_utilization() > 0.5

    def test_oversized_request_rejected(self, model, grid):
        with pytest.raises(ValueError):
            dp_simulate(grid, model, 64)
        with pytest.raises(ValueError):
            ep_simulate(grid, model, 64)

    def test_runner_simulate_and_comparison(self):
        runner = tiny_runner()
        run = runner.simulate("experiment_parallel", 8, seed=1)
        assert run.elapsed_seconds > 0
        report = runner.simulate_comparison(gpu_counts=(1, 4, 32), num_runs=2)
        rows = report.table_rows()
        assert rows[0]["num_gpus"] == 1
        assert rows[-1]["ep_speedup"] > rows[-1]["dp_speedup"]

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            tiny_runner().simulate("model_parallel", 4)


class TestInProcessBackend:
    def test_data_parallel_search(self):
        runner = tiny_runner()
        result = runner.run_inprocess("data_parallel", num_gpus=2)
        assert len(result.outcomes) == 2
        best = result.best()
        assert best.val_dice == max(o.val_dice for o in result.outcomes)

    def test_experiment_parallel_search(self):
        runner = tiny_runner()
        result = runner.run_inprocess("experiment_parallel")
        assert len(result.outcomes) == 2
        assert result.analysis is not None
        assert result.analysis.best_trial("val_dice") is not None

    def test_experiment_parallel_multi_gpu_rejected(self):
        with pytest.raises(ValueError, match="simulate"):
            tiny_runner().run_inprocess("experiment_parallel", num_gpus=4)


class TestResults:
    def test_method_series_stats(self):
        s = MethodSeries("dp", [1, 2], runs=[[100.0, 110.0], [60.0, 50.0]])
        assert s.mean() == [105.0, 55.0]
        assert s.minimum() == [100.0, 50.0]
        assert s.maximum() == [110.0, 60.0]
        assert s.speedups()[1] == pytest.approx(105.0 / 55.0)

    def test_report_render(self):
        dp = MethodSeries("dp", [1, 2], runs=[[100.0], [60.0]])
        ep = MethodSeries("ep", [1, 2], runs=[[100.0], [52.0]])
        rep = ComparisonReport(dp, ep)
        text = rep.render_table()
        assert "Speedup" in text
        fig = rep.render_figure_series()
        assert "Fig 4a" in fig and "Fig 4b" in fig
        gaps = rep.crossover_gap()
        assert gaps[1][1] > 0

    def test_mismatched_counts_rejected(self):
        dp = MethodSeries("dp", [1, 2], runs=[[1.0], [1.0]])
        ep = MethodSeries("ep", [1, 4], runs=[[1.0], [1.0]])
        with pytest.raises(ValueError):
            ComparisonReport(dp, ep)


class TestProfiling:
    def test_offline_beats_online(self, tmp_path):
        """E5/C3: reading pre-binarised records is faster per epoch than
        re-running decode + transform, and NIfTI decode or the transform
        is the online bottleneck."""
        rep = profile_online_vs_offline(
            num_subjects=4, volume_shape=(32, 32, 16), epochs=2,
            workdir=tmp_path,
        )
        assert rep.offline_epoch_s < rep.online_epoch_s
        assert rep.speedup_per_epoch() > 1.0
        assert rep.bottleneck().stage in ("nifti_decode", "transform")
        # The one-off binarisation must pay for itself within the
        # paper's 250-epoch budget (at full 240x240x155 volumes it
        # amortises in a handful of epochs; tiny test volumes make the
        # record write relatively more expensive).
        assert rep.epochs_to_amortize < 250
        text = rep.render()
        assert "speed-up" in text
