"""Hybrid-parallelism simulation tests."""

import pytest

from repro.core.hybrid import best_gpus_per_trial, simulate_hybrid_search
from repro.perf import (
    calibrated_model,
    data_parallel_search_time,
    experiment_parallel_search_time,
    paper_search_grid,
)


@pytest.fixture(scope="module")
def model():
    return calibrated_model()


@pytest.fixture(scope="module")
def grid():
    return paper_search_grid()


class TestExtremesRecoverPaperMethods:
    def test_g1_equals_experiment_parallel(self, model, grid):
        result, _ = simulate_hybrid_search(grid, model, 32, 1)
        assert result.elapsed_seconds == pytest.approx(
            experiment_parallel_search_time(model, grid, 32)
        )

    def test_g_equals_n_close_to_data_parallel(self, model, grid):
        """g = n serialises the trials on all GPUs; it differs from the
        pure data-parallel path only by the per-trial Tune overhead and
        the once-per-search Ray cluster startup."""
        result, _ = simulate_hybrid_search(grid, model, 32, 32)
        dp = data_parallel_search_time(model, grid, 32)
        nodes = model.cluster.nodes_for(32)
        extra = (
            len(grid) * model.params.tune_trial_overhead_s
            + nodes * model.params.startup_per_node_s
        )
        assert result.elapsed_seconds == pytest.approx(dp + extra, rel=1e-9)


class TestMechanics:
    def test_slots_are_floor_division(self, model, grid):
        result, _ = simulate_hybrid_search(grid, model, 32, 3)
        assert result.concurrent_slots == 10

    def test_timeline_has_all_trials(self, model, grid):
        result, tl = simulate_hybrid_search(grid, model, 16, 4)
        assert len(tl.events) == len(grid)
        assert tl.makespan() <= result.elapsed_seconds

    def test_utilization_bounds(self, model, grid):
        for g in (1, 4, 16):
            result, _ = simulate_hybrid_search(grid, model, 16, g)
            assert 0.0 < result.mean_gpu_utilization <= 1.0

    def test_seeded_jitter(self, model, grid):
        a, _ = simulate_hybrid_search(grid, model, 16, 2, seed=1)
        b, _ = simulate_hybrid_search(grid, model, 16, 2, seed=1)
        c, _ = simulate_hybrid_search(grid, model, 16, 2, seed=2)
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.elapsed_seconds != c.elapsed_seconds

    def test_validation(self, model, grid):
        with pytest.raises(ValueError):
            simulate_hybrid_search(grid, model, 16, 0)
        with pytest.raises(ValueError):
            simulate_hybrid_search(grid, model, 16, 17)
        with pytest.raises(ValueError):
            simulate_hybrid_search(grid, model, 64, 2)


class TestSweep:
    def test_sweep_includes_extremes(self, model, grid):
        results = best_gpus_per_trial(grid, model, 32)
        assert 1 in results and 32 in results

    def test_interior_optimum_at_32_gpus(self, model, grid):
        """20 trials on 32 GPUs: some 1 < g < 32 must beat both
        extremes (the E14 headline)."""
        results = best_gpus_per_trial(grid, model, 32)
        best_g = min(results, key=lambda g: results[g].elapsed_seconds)
        assert 1 < best_g < 32

    def test_g1_optimal_when_trials_oversubscribe_gpus(self, model, grid):
        """With 20 trials on 4 GPUs every GPU stays busy for many
        rounds, so larger g only adds sync overhead -- g = 1 wins.
        (At 8 GPUs the tail imbalance already lets g = 2 win, which is
        the E14 point: the optimum moves with the trial/GPU ratio.)"""
        results = best_gpus_per_trial(grid, model, 4, candidates=(1, 2, 4))
        best_g = min(results, key=lambda g: results[g].elapsed_seconds)
        assert best_g == 1

    def test_custom_candidates(self, model, grid):
        results = best_gpus_per_trial(grid, model, 16, candidates=(1, 16))
        assert set(results) == {1, 16}


class TestRunnerIntegration:
    def test_runner_simulates_hybrid(self):
        from repro.core import DistMISRunner

        runner = DistMISRunner()
        run = runner.simulate("hybrid", 32, gpus_per_trial=8)
        ep = runner.simulate("experiment_parallel", 32)
        assert run.method == "hybrid[g=8]"
        assert run.elapsed_seconds < ep.elapsed_seconds

    def test_runner_hybrid_default_is_one_node(self):
        from repro.core import DistMISRunner

        runner = DistMISRunner()
        run = runner.simulate("hybrid", 32)
        assert run.method == "hybrid[g=4]"  # MareNostrum node = 4 GPUs
