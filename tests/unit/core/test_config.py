"""Configuration-space and builder tests."""

import numpy as np
import pytest

from repro.core import (
    ExperimentSettings,
    HyperparameterSpace,
    build_loss,
    build_model,
    build_optimizer,
)
from repro.nn import Adam, CyclicLR, QuadraticSoftDiceLoss, SoftDiceLoss


class TestHyperparameterSpace:
    def test_cross_product_size_and_content(self):
        space = HyperparameterSpace({"lr": [1e-3, 1e-4], "loss": ["dice"]})
        configs = space.configurations()
        assert len(space) == len(configs) == 2
        assert {"lr": 1e-3, "loss": "dice"} in configs

    def test_validation(self):
        with pytest.raises(ValueError):
            HyperparameterSpace({})
        with pytest.raises(ValueError):
            HyperparameterSpace({"lr": []})


class TestSettings:
    def test_volume_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            ExperimentSettings(volume_shape=(15, 16, 16), depth=3)

    def test_subject_floor(self):
        with pytest.raises(ValueError):
            ExperimentSettings(num_subjects=2)

    def test_epoch_floor(self):
        with pytest.raises(ValueError):
            ExperimentSettings(epochs=0)


class TestBuilders:
    @pytest.fixture
    def settings(self):
        return ExperimentSettings(num_subjects=6, volume_shape=(16, 16, 16),
                                  epochs=2, base_filters=2, depth=2)

    def test_build_model_deterministic(self, settings):
        a = build_model({"learning_rate": 1e-3}, settings)
        b = build_model({"learning_rate": 1e-4}, settings)
        np.testing.assert_array_equal(a.get_flat_params(), b.get_flat_params())

    def test_build_model_honours_config_width(self, settings):
        small = build_model({}, settings)
        wide = build_model({"base_filters": 4}, settings)
        assert wide.num_params() > small.num_params()

    def test_build_loss(self):
        assert isinstance(build_loss({"loss": "dice"}), SoftDiceLoss)
        assert isinstance(
            build_loss({"loss": "quadratic_dice"}), QuadraticSoftDiceLoss
        )
        assert isinstance(build_loss({}), SoftDiceLoss)

    def test_optimizer_linear_scaling_rule(self, settings):
        """Section IV-B: initial LR = base x #GPUs."""
        model = build_model({}, settings)
        opt1 = build_optimizer({"learning_rate": 1e-4}, settings, model,
                               num_replicas=1)
        opt8 = build_optimizer({"learning_rate": 1e-4}, settings, model,
                               num_replicas=8)
        assert isinstance(opt1, Adam)
        assert opt8.lr == pytest.approx(8 * opt1.lr)

    def test_scaling_disabled(self, settings):
        settings.scale_learning_rate = False
        model = build_model({}, settings)
        opt = build_optimizer({"learning_rate": 1e-4}, settings, model,
                              num_replicas=8)
        assert opt.lr == pytest.approx(1e-4)

    def test_cyclic_lr_option(self, settings):
        """Reference [38]: cyclic learning rates approximate the scaled
        rate."""
        settings.cyclic_lr = True
        model = build_model({}, settings)
        opt = build_optimizer({"learning_rate": 1e-3}, settings, model,
                              num_replicas=2, steps_per_epoch=5)
        assert isinstance(opt.schedule, CyclicLR)
        assert opt.schedule.max_lr == pytest.approx(2e-3)

    def test_unknown_optimizer(self, settings):
        model = build_model({}, settings)
        with pytest.raises(ValueError):
            build_optimizer({"optimizer": "lamb"}, settings, model)
