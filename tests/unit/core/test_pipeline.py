"""MISPipeline (Fig 1 stages) tests on the in-process backend."""

import pytest

from repro.core import ExperimentSettings, MISPipeline, train_trial


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(num_subjects=8, volume_shape=(16, 16, 16),
                              epochs=2, base_filters=2, depth=2, seed=0)


@pytest.fixture(scope="module")
def pipeline(settings, tmp_path_factory):
    return MISPipeline(settings, record_dir=tmp_path_factory.mktemp("rec"))


class TestBinarization:
    def test_one_record_file_per_split(self, pipeline):
        files = pipeline.binarize()
        assert set(files) == {"train", "val", "test"}
        for p in files.values():
            assert p.exists() and p.stat().st_size > 0

    def test_idempotent(self, pipeline):
        a = pipeline.binarize()
        b = pipeline.binarize()
        assert a == b

    def test_split_sizes_70_15_15(self, pipeline):
        sizes = pipeline.split.sizes
        assert sum(sizes) == 8
        assert sizes[0] >= sizes[1] and sizes[0] >= sizes[2]

    def test_stats_recorded(self, pipeline):
        pipeline.binarize()
        assert any(k.startswith("binarize.") for k in pipeline.stats.seconds)


class TestDataset:
    def test_batched_tensors(self, pipeline):
        for x, y in pipeline.dataset("train", batch_size=2):
            assert x.ndim == 5 and x.shape[1] == 4
            assert y.shape[1] == 1
            assert x.shape[0] <= 2
        arrays_x, arrays_y = pipeline.load_split_arrays("train")
        assert arrays_x.shape[0] == len(pipeline.split.train)

    def test_unknown_split(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.dataset("holdout", 2)

    def test_shuffle_changes_order(self, pipeline):
        a = [x[0, 0, 0, 0, 0] for x, _ in pipeline.dataset("train", 1,
                                                           shuffle_seed=1)]
        b = [x[0, 0, 0, 0, 0] for x, _ in pipeline.dataset("train", 1,
                                                           shuffle_seed=2)]
        assert sorted(a) == sorted(b)

    def test_steps_per_epoch(self, pipeline):
        n_train = len(pipeline.split.train)
        assert pipeline.steps_per_epoch(2) == -(-n_train // 2)

    def test_prefetch_path(self, pipeline):
        items = list(pipeline.dataset("val", 1, prefetch=2))
        assert len(items) == len(pipeline.split.val)


class TestTrainTrial:
    def test_outcome_structure(self, settings, pipeline):
        out = train_trial({"learning_rate": 1e-2, "loss": "dice"},
                          settings, pipeline, num_replicas=1)
        assert len(out.history) == settings.epochs
        assert 0.0 <= out.val_dice <= 1.0
        assert 0.0 <= out.test_dice <= 1.0
        assert out.wall_seconds > 0
        assert out.num_replicas == 1

    def test_reporter_receives_epochs(self, settings, pipeline):
        rows = []

        def reporter(**kw):
            rows.append(kw)
            return True

        train_trial({"learning_rate": 1e-2}, settings, pipeline,
                    reporter=reporter)
        assert len(rows) == settings.epochs
        assert {"epoch", "train_loss", "val_dice", "lr"} <= set(rows[0])

    def test_reporter_can_stop_early(self, settings, pipeline):
        out = train_trial({"learning_rate": 1e-2}, settings, pipeline,
                          reporter=lambda **kw: False)
        assert len(out.history) == 1

    def test_replica_count_recorded_and_lr_scaled(self, settings, pipeline):
        out = train_trial({"learning_rate": 1e-3}, settings, pipeline,
                          num_replicas=2)
        assert out.num_replicas == 2
        assert out.history[0].lr == pytest.approx(2e-3)

    def test_convergence_detection(self, settings, pipeline):
        """A 0-LR run cannot improve, so convergence is flagged at 0."""
        s = ExperimentSettings(num_subjects=8, volume_shape=(16, 16, 16),
                               epochs=5, base_filters=2, depth=2, seed=0,
                               scale_learning_rate=False)
        out = train_trial({"learning_rate": 1e-12}, s, pipeline,
                          convergence_patience=2)
        assert out.converged_epoch is not None
        assert out.converged_epoch <= 2
