"""Formatting / small-API tests for the speed-up report types."""

import pytest

from repro.core import MethodSeries
from repro.perf import SpeedupRow, SpeedupTable, calibrated_model


class TestSpeedupRow:
    def test_formatted_tuple(self):
        row = SpeedupRow(num_gpus=4, dp_seconds=3661.0, ep_seconds=1830.5,
                         dp_speedup=3.127, ep_speedup=3.6449)
        n, dp_t, dp_s, ep_t, ep_s = row.formatted()
        assert n == 4
        assert dp_t == "1:01:01"
        assert dp_s == "3.13"
        assert ep_t == "0:30:30"  # banker's rounding: 1830.5 -> 1830
        assert ep_s == "3.64"


class TestMethodSeriesRow:
    def test_row_dict(self):
        s = MethodSeries("dp", [1, 4], runs=[[100.0, 120.0], [30.0, 50.0]])
        row = s.row(1)
        assert row["num_gpus"] == 4
        assert row["mean_s"] == 40.0
        assert row["min_s"] == 30.0
        assert row["max_s"] == 50.0
        assert row["speedup"] == pytest.approx(110.0 / 40.0)


class TestSpeedupTableCustomisation:
    def test_custom_gpu_counts(self):
        table = SpeedupTable(calibrated_model(), gpu_counts=(1, 2))
        rows = table.compute()
        assert [r.num_gpus for r in rows] == [1, 2]
        assert rows[0].dp_speedup == pytest.approx(1.0)

    def test_render_accepts_precomputed_rows(self):
        table = SpeedupTable(calibrated_model(), gpu_counts=(1,))
        rows = table.compute()
        assert table.render(rows).count("\n") == 3
