"""Per-epoch trial trace / cost-breakdown tests."""

import pytest

from repro.perf import (
    TrialConfig,
    calibrated_model,
    epoch_breakdown,
    simulate_trial_timeline,
)


@pytest.fixture(scope="module")
def model():
    return calibrated_model()


CFG = TrialConfig()


class TestBreakdown:
    def test_total_matches_trial_time(self, model):
        for n in (1, 4, 32):
            bd = epoch_breakdown(model, CFG, n)
            assert bd.total() == pytest.approx(model.trial_time(CFG, n),
                                               rel=1e-9)

    def test_fractions_sum_to_one(self, model):
        fr = epoch_breakdown(model, CFG, 8).fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in fr.values())

    def test_single_gpu_has_no_parallel_overheads(self, model):
        bd = epoch_breakdown(model, CFG, 1)
        assert bd.straggler_wait == 0.0
        assert bd.allreduce == 0.0
        assert bd.framework == 0.0
        assert bd.compute > 0

    def test_straggler_wait_grows_with_gpus(self, model):
        fr4 = epoch_breakdown(model, CFG, 4).fractions()
        fr32 = epoch_breakdown(model, CFG, 32).fractions()
        assert fr32["straggler_wait"] > fr4["straggler_wait"] > 0

    def test_straggler_dominates_other_overheads_under_calibration(self, model):
        """The calibration note: jitter is the main fitted overhead."""
        fr = epoch_breakdown(model, CFG, 32).fractions()
        assert fr["straggler_wait"] > fr["allreduce"]
        assert fr["straggler_wait"] > fr["framework"]


class TestTimeline:
    def test_makespan_near_expected_trial_time(self, model):
        tl = simulate_trial_timeline(model, CFG, 8, seed=0, epochs=30)
        short_cfg = TrialConfig(epochs=30)
        expect = model.trial_time(short_cfg, 8)
        assert tl.makespan() == pytest.approx(expect, rel=0.05)

    def test_categories_present(self, model):
        tl = simulate_trial_timeline(model, CFG, 8, seed=0, epochs=5)
        cats = tl.by_category()
        for key in ("compute", "straggler_wait", "allreduce", "input"):
            assert key in cats

    def test_single_gpu_has_no_wait_spans(self, model):
        tl = simulate_trial_timeline(model, CFG, 1, seed=0, epochs=5)
        assert "straggler_wait" not in tl.by_category()
        assert "allreduce" not in tl.by_category()

    def test_epoch_variance_from_sampled_stragglers(self, model):
        tl = simulate_trial_timeline(model, CFG, 32, seed=0, epochs=20)
        waits = [e.duration for e in tl.events
                 if e.category == "straggler_wait"]
        assert len(waits) == 20
        assert max(waits) > min(waits)  # sampled, not constant

    def test_seeded_reproducible(self, model):
        a = simulate_trial_timeline(model, CFG, 8, seed=3, epochs=5)
        b = simulate_trial_timeline(model, CFG, 8, seed=3, epochs=5)
        assert a.makespan() == b.makespan()

    def test_spans_contiguous_no_gaps(self, model):
        tl = simulate_trial_timeline(model, CFG, 4, seed=0, epochs=3)
        events = sorted(tl.events, key=lambda e: e.start)
        for a, b in zip(events, events[1:]):
            assert b.start == pytest.approx(a.end)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            simulate_trial_timeline(model, CFG, 4, epochs=0)
