"""Search-level timing, Table I calibration, and the headline claims."""

import numpy as np
import pytest

from repro.perf import (
    MARENOSTRUM_CTE_PROFILE,
    PAPER_GPU_COUNTS,
    TABLE1_DATA_PARALLEL_S,
    TABLE1_DP_SPEEDUPS,
    TABLE1_EP_SPEEDUPS,
    TABLE1_EXPERIMENT_PARALLEL_S,
    SpeedupTable,
    calibrated_model,
    data_parallel_search_time,
    experiment_parallel_search_time,
    format_hms,
    paper_search_grid,
    summarize,
)
from repro.raysim import makespan_lower_bound


@pytest.fixture(scope="module")
def model():
    return calibrated_model()


@pytest.fixture(scope="module")
def grid():
    return paper_search_grid()


class TestTable1Inputs:
    def test_table1_transcription(self):
        """Elapsed strings of Table I converted to seconds."""
        assert TABLE1_DATA_PARALLEL_S[1] == 44 * 3600 + 18 * 60 + 2
        assert TABLE1_EXPERIMENT_PARALLEL_S[32] == 2 * 3600 + 55 * 60 + 6
        for n, t in TABLE1_DATA_PARALLEL_S.items():
            assert TABLE1_DP_SPEEDUPS[n] == pytest.approx(
                TABLE1_DATA_PARALLEL_S[1] / t, abs=0.02
            )

    def test_grid_is_twenty_trials(self, grid):
        assert len(grid) == 20

    def test_format_hms(self):
        assert format_hms(159482) == "44:18:02"
        assert format_hms(0) == "0:00:00"
        with pytest.raises(ValueError):
            format_hms(-1)


class TestCalibration:
    def test_frozen_profile_matches_table1(self):
        """Every Table I cell within 10%, mean within 5%."""
        result = summarize(MARENOSTRUM_CTE_PROFILE)
        assert result.max_abs_pct_error < 10.0
        assert result.mean_abs_pct_error < 5.0

    def test_single_gpu_anchors_44_hours(self, model, grid):
        t = data_parallel_search_time(model, grid, 1)
        assert t == pytest.approx(TABLE1_DATA_PARALLEL_S[1], rel=0.05)


class TestHeadlineClaims:
    """The paper's C1 shape, from the calibrated model."""

    @pytest.fixture(scope="class")
    def rows(self, model):
        return SpeedupTable(model).compute()

    def test_times_monotonically_decrease(self, rows):
        for series in ("dp_seconds", "ep_seconds"):
            vals = [getattr(r, series) for r in rows]
            assert all(a > b for a, b in zip(vals, vals[1:])), series

    def test_speedups_sublinear(self, rows):
        for r in rows:
            assert r.dp_speedup <= r.num_gpus + 1e-9
            assert r.ep_speedup <= r.num_gpus + 1e-9

    def test_experiment_parallel_wins_beyond_one_gpu(self, rows):
        for r in rows:
            if r.num_gpus > 1:
                assert r.ep_speedup > r.dp_speedup, f"n={r.num_gpus}"

    def test_gap_largest_at_32(self, rows):
        gaps = {r.num_gpus: r.ep_speedup - r.dp_speedup for r in rows}
        assert max(gaps, key=gaps.get) == 32

    def test_paper_speedup_band_at_32(self, rows):
        """Paper: x13.18 (dp) and x15.19 (ep) at 32 GPUs; we require the
        same 'x12 to x14' / 'x14 to x16' bands the abstract quotes."""
        r32 = [r for r in rows if r.num_gpus == 32][0]
        assert 12.0 <= r32.dp_speedup <= 14.0
        assert 14.0 <= r32.ep_speedup <= 16.5

    def test_near_linear_at_two_gpus(self, rows):
        r2 = [r for r in rows if r.num_gpus == 2][0]
        assert r2.dp_speedup > 1.6
        assert r2.ep_speedup > 1.7

    def test_speedups_within_paper_tolerance(self, rows):
        """Every speed-up cell within 15% of the paper's value."""
        for r in rows:
            assert r.dp_speedup == pytest.approx(
                TABLE1_DP_SPEEDUPS[r.num_gpus], rel=0.15
            )
            assert r.ep_speedup == pytest.approx(
                TABLE1_EP_SPEEDUPS[r.num_gpus], rel=0.15
            )


class TestSearchTimes:
    def test_ep_bounded_below_by_makespan_lb(self, model, grid):
        durations = [model.trial_time(c, 1) for c in grid]
        for n in PAPER_GPU_COUNTS:
            lb = makespan_lower_bound(
                durations, n,
                per_trial_overhead=model.params.tune_trial_overhead_s,
            )
            got = experiment_parallel_search_time(model, grid, n)
            assert got >= lb - 1e-9

    def test_ep_at_32_bounded_by_longest_trial(self, model, grid):
        """With >= one GPU per trial the makespan is the longest trial --
        why the paper's x15.19 is far from x32."""
        longest = max(model.trial_time(c, 1) for c in grid)
        got = experiment_parallel_search_time(model, grid, 32)
        assert got >= longest
        assert got < longest * 1.2

    def test_dp_sums_trials(self, model, grid):
        total = data_parallel_search_time(model, grid, 4)
        parts = sum(model.trial_time(c, 4) for c in grid)
        assert total == pytest.approx(parts)

    def test_seeded_jitter_reproducible(self, model, grid):
        a = data_parallel_search_time(model, grid, 8, seed=5)
        b = data_parallel_search_time(model, grid, 8, seed=5)
        c = data_parallel_search_time(model, grid, 8, seed=6)
        assert a == b
        assert a != c

    def test_jitter_centred_on_expectation(self, model, grid):
        base = data_parallel_search_time(model, grid, 8)
        seeded = np.mean(
            [data_parallel_search_time(model, grid, 8, seed=s) for s in range(25)]
        )
        assert seeded == pytest.approx(base, rel=0.05)

    def test_render_contains_all_rows(self, model):
        table = SpeedupTable(model)
        text = table.render()
        for n in PAPER_GPU_COUNTS:
            assert f"\n{n:>6}  |" in text or text.startswith(f"{n:>6}  |")
