"""Straggler order-statistics tests."""

import numpy as np
import pytest

from repro.perf import expected_max_factor, sample_max_factor


class TestExpectedMax:
    def test_identity_cases(self):
        assert expected_max_factor(1, 0.3) == 1.0
        assert expected_max_factor(8, 0.0) == 1.0

    def test_monotone_in_n(self):
        vals = [expected_max_factor(n, 0.2) for n in (2, 4, 8, 16, 32)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_monotone_in_sigma(self):
        vals = [expected_max_factor(8, s) for s in (0.05, 0.1, 0.2, 0.4)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_against_monte_carlo(self):
        rng = np.random.default_rng(0)
        n, sigma = 8, 0.25
        draws = rng.lognormal(0.0, sigma, size=(200_000, n))
        mc = draws.max(axis=1).mean() / np.exp(0.5 * sigma**2)
        assert expected_max_factor(n, sigma) == pytest.approx(mc, rel=5e-3)

    def test_known_two_replica_value(self):
        """E[max of 2 N(0,1)] = 1/sqrt(pi); for small sigma the factor is
        ~ 1 + sigma/sqrt(pi)."""
        sigma = 0.01
        approx = 1 + sigma / np.sqrt(np.pi)
        assert expected_max_factor(2, sigma) == pytest.approx(approx, abs=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_max_factor(0, 0.1)
        with pytest.raises(ValueError):
            expected_max_factor(2, -0.1)


class TestSampleMax:
    def test_deterministic_cases(self):
        rng = np.random.default_rng(0)
        assert sample_max_factor(1, 0.5, rng) == 1.0
        assert sample_max_factor(4, 0.0, rng) == 1.0

    def test_converges_to_expectation(self):
        rng = np.random.default_rng(1)
        got = sample_max_factor(4, 0.2, rng, num_steps=100_000)
        assert got == pytest.approx(expected_max_factor(4, 0.2), rel=1e-2)
