"""Benchmark-regression tracker: schema, directions, bands, quarantine."""

import json

import pytest

from repro.perf.regression import (
    BenchRecord,
    append_trajectory,
    bench_output_path,
    compare_records,
    host_metadata,
    hosts_comparable,
    is_smoke_env,
    load_bench_record,
    load_trajectory,
    metric_directions,
    validate_record,
)

HOST_A = {"cpu_count": 8, "machine": "x86_64", "processor": "x86_64",
          "blas": {"name": "openblas", "version": "0.3"}}
HOST_B = {"cpu_count": 96, "machine": "ppc64le", "processor": "POWER9",
          "blas": {"name": "essl", "version": "6.2"}}


def record(metrics, host=HOST_A, smoke=False, benchmark="kernels"):
    return BenchRecord(benchmark=benchmark, smoke=smoke, host=dict(host),
                       metrics=dict(metrics))


class TestSmokeEnvAndPaths:
    def test_is_smoke_env_reads_flag(self):
        assert not is_smoke_env({})
        assert not is_smoke_env({"DISTMIS_BENCH_SMOKE": "0"})
        assert not is_smoke_env({"DISTMIS_BENCH_SMOKE": ""})
        assert is_smoke_env({"DISTMIS_BENCH_SMOKE": "1"})

    def test_smoke_runs_are_quarantined_to_their_own_file(self, tmp_path):
        anchor = tmp_path / "test_kernels.py"
        full = bench_output_path(anchor, "kernels", smoke=False)
        smoke = bench_output_path(anchor, "kernels", smoke=True)
        assert full.name == "BENCH_kernels.json"
        assert smoke.name == "BENCH_kernels_smoke.json"
        assert full != smoke and full.parent == smoke.parent == tmp_path

    def test_host_metadata_carries_comparability_keys(self):
        meta = host_metadata()
        assert {"cpu_count", "machine", "blas_threads", "blas"} <= set(meta)


class TestSchema:
    def good(self):
        return {"benchmark": "kernels", "smoke": False, "host": dict(HOST_A),
                "gemm_seconds": 1.25}

    def test_valid_record_passes(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        assert validate_record(self.good(), path=path) == []

    def test_missing_keys_and_bad_types_reported(self):
        problems = validate_record({"smoke": "yes", "host": []})
        text = "\n".join(problems)
        assert "benchmark" in text
        assert "'smoke' must be a boolean" in text
        assert "'host' must be an object" in text

    def test_no_numeric_metrics_is_a_problem(self):
        obj = {"benchmark": "k", "smoke": False, "host": {},
               "note": "text only", "flag": True}
        assert any("no numeric metrics" in p for p in validate_record(obj))

    def test_smoke_filename_consistency_enforced(self, tmp_path):
        smoke_obj = dict(self.good(), smoke=True)
        bad = validate_record(smoke_obj, path=tmp_path / "BENCH_k.json")
        assert any("smoke record on a trajectory filename" in p for p in bad)
        bad = validate_record(self.good(),
                              path=tmp_path / "BENCH_k_smoke.json")
        assert any("*_smoke.json" in p for p in bad)

    def test_load_bench_record_flattens_and_excludes_host(self, tmp_path):
        obj = dict(self.good(), nested={"conv_seconds": 2.0, "deep": {
            "speedup": 3.0}})
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps(obj))
        rec = load_bench_record(path)
        assert rec.metrics["gemm_seconds"] == 1.25
        assert rec.metrics["nested.conv_seconds"] == 2.0
        assert rec.metrics["nested.deep.speedup"] == 3.0
        assert not any(k.startswith("host.") for k in rec.metrics)
        assert rec.host_key == ("x86_64", 8, "openblas")

    def test_load_bench_record_raises_on_schema_violation(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps({"benchmark": "k"}))
        with pytest.raises(ValueError):
            load_bench_record(path)


class TestDirections:
    def test_suffix_token_and_ancestor_inference(self):
        dirs = metric_directions({
            "serial_seconds": 0, "startup_s": 0, "overhead_pct": 0,
            "worker_max_rss_kb.0": 0, "p99_latency_ms": 0,
            "speedup": 0, "throughput_vols": 0, "scaling_efficiency": 0,
            "kernel_seconds.gemm.conv3d_forward": 0,  # via ancestor
            "num_trials": 0, "usable_cores": 0,       # informational
        })
        lower = {k for k, d in dirs.items() if d == "lower"}
        higher = {k for k, d in dirs.items() if d == "higher"}
        assert {"serial_seconds", "startup_s", "overhead_pct",
                "worker_max_rss_kb.0", "p99_latency_ms",
                "kernel_seconds.gemm.conv3d_forward"} == lower
        assert {"speedup", "throughput_vols", "scaling_efficiency"} == higher
        assert "num_trials" not in dirs and "usable_cores" not in dirs

    def test_leaf_wins_over_ancestor(self):
        dirs = metric_directions({"kernel_seconds.gemm.speedup": 0})
        assert dirs == {"kernel_seconds.gemm.speedup": "higher"}


class TestCompare:
    def test_within_band_is_ok(self):
        base = record({"gemm_seconds": 1.0, "speedup": 3.0})
        cand = record({"gemm_seconds": 1.1, "speedup": 2.9})
        report = compare_records(base, cand)
        assert report.ok and report.regressions == []

    def test_slowdown_past_band_regresses(self):
        base = record({"gemm_seconds": 1.0})
        cand = record({"gemm_seconds": 1.3})
        report = compare_records(base, cand)
        (delta,) = report.regressions
        assert delta.rel_change == pytest.approx(0.3)
        assert not report.ok
        assert "REGRESSION" in report.describe()

    def test_higher_is_better_metric_regresses_downward(self):
        base = record({"speedup": 3.0})
        report = compare_records(base, record({"speedup": 2.0}))
        assert not report.ok            # -33% on a higher-is-better metric
        report = compare_records(base, record({"speedup": 4.0}))
        assert report.ok                # improvement never regresses

    def test_informational_metrics_never_gate(self):
        base = record({"num_trials": 4.0})
        report = compare_records(base, record({"num_trials": 400.0}))
        assert report.ok and report.deltas == []

    def test_smoke_candidate_is_quarantined(self):
        base = record({"gemm_seconds": 1.0})
        report = compare_records(base, record({"gemm_seconds": 9.0},
                                              smoke=True))
        assert report.quarantined and not report.ok
        assert report.deltas == []
        assert "QUARANTINED" in report.describe()

    def test_smoke_baseline_is_quarantined(self):
        base = record({"gemm_seconds": 1.0}, smoke=True)
        report = compare_records(base, record({"gemm_seconds": 1.0}))
        assert report.quarantined and not report.ok

    def test_host_mismatch_downgrades_to_advisory(self):
        base = record({"gemm_seconds": 1.0}, host=HOST_B)
        cand = record({"gemm_seconds": 2.0}, host=HOST_A)
        report = compare_records(base, cand)
        assert report.host_mismatch and report.advisory
        assert report.regressions       # the delta is still reported...
        assert report.ok                # ...but a laptop can't gate a cluster

    def test_strict_host_forces_the_gate(self):
        base = record({"gemm_seconds": 1.0}, host=HOST_B)
        cand = record({"gemm_seconds": 2.0}, host=HOST_A)
        report = compare_records(base, cand, strict_host=True)
        assert not report.advisory and not report.ok

    def test_hosts_comparable_lists_each_difference(self):
        reasons = hosts_comparable(record({}, host=HOST_A),
                                   record({}, host=HOST_B))
        assert len(reasons) == 3
        assert any(r.startswith("machine") for r in reasons)

    def test_zero_baseline_metric_is_skipped(self):
        base = record({"gemm_seconds": 0.0})
        report = compare_records(base, record({"gemm_seconds": 1.0}))
        assert report.deltas == []


class TestNoiseBands:
    def test_noisy_history_widens_the_band(self):
        base = record({"gemm_seconds": 1.0})
        cand = record({"gemm_seconds": 1.3})    # +30%: past the 15% default
        noisy = {"gemm_seconds": [0.7, 1.0, 1.3]}  # cv = 0.3 -> 3 sigma = 90%
        report = compare_records(base, cand, history=noisy)
        (delta,) = report.deltas
        assert delta.threshold == pytest.approx(0.9)
        assert not delta.regressed and report.ok

    def test_short_or_flat_history_keeps_default_band(self):
        base = record({"gemm_seconds": 1.0})
        cand = record({"gemm_seconds": 1.3})
        for history in ({}, {"gemm_seconds": [1.0, 1.0]},
                        {"gemm_seconds": [1.0, 1.0, 1.0]}):
            report = compare_records(base, cand, history=history)
            (delta,) = report.deltas
            assert delta.threshold == pytest.approx(0.15)
            assert delta.regressed


class TestTrajectory:
    def test_append_and_load_round_trip(self, tmp_path):
        rec = record({"gemm_seconds": 1.0, "speedup": 2.5})
        append_trajectory(rec, tmp_path)
        append_trajectory(record({"gemm_seconds": 1.1}), tmp_path)
        history = load_trajectory(tmp_path, "kernels")
        assert history["gemm_seconds"] == [1.0, 1.1]
        assert history["speedup"] == [2.5]

    def test_load_filters_by_benchmark_and_host_key(self, tmp_path):
        append_trajectory(record({"x_seconds": 1.0}), tmp_path)
        append_trajectory(record({"x_seconds": 9.0}, host=HOST_B), tmp_path)
        append_trajectory(record({"x_seconds": 5.0}, benchmark="other"),
                          tmp_path)
        rec = record({})
        history = load_trajectory(tmp_path, "kernels",
                                  host_key=rec.host_key)
        assert history == {"x_seconds": [1.0]}
        assert load_trajectory(tmp_path / "absent", "kernels") == {}

    def test_smoke_records_refused_from_the_trajectory(self, tmp_path):
        with pytest.raises(ValueError):
            append_trajectory(record({"x_seconds": 1.0}, smoke=True),
                              tmp_path)


class TestCommittedBaselines:
    def test_committed_bench_files_satisfy_the_schema(self):
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[3] / "benchmarks"
        files = sorted(bench_dir.glob("BENCH_*.json"))
        assert files, "no committed benchmark baselines found"
        for path in files:
            rec = load_bench_record(path)   # raises on violation
            assert metric_directions(rec.metrics), (
                f"{path.name}: nothing gateable")

    def test_committed_baseline_self_compare_is_ok(self):
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[3] / "benchmarks"
        rec = load_bench_record(bench_dir / "BENCH_kernels.json")
        report = compare_records(rec, rec)
        assert report.ok and not report.regressions
