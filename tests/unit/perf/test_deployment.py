"""Data-deployment cost model tests (the Fig 1 deployment stage)."""


import pytest

from repro.cluster import ETHERNET_10G, INFINIBAND_EDR
from repro.perf import (
    GIB,
    PAPER_DATASET_BYTES,
    DatasetFootprint,
    ServingWorkload,
    plan_deployment,
    plan_serving_capacity,
    staging_time,
)


class TestFootprint:
    def test_paper_dataset_size(self):
        """484 subjects of 5 full-volume float32 channels ~ 79 GiB."""
        fp = DatasetFootprint()
        assert fp.total_bytes == PAPER_DATASET_BYTES
        assert 70 < fp.gib < 90

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetFootprint(total_bytes=0)


class TestStaging:
    FP = DatasetFootprint(total_bytes=10 * 10**9)  # 10 GB

    def test_single_node_free(self):
        assert staging_time(self.FP, 1, INFINIBAND_EDR) == 0.0

    def test_tree_is_logarithmic(self):
        t2 = staging_time(self.FP, 2, INFINIBAND_EDR)
        t8 = staging_time(self.FP, 8, INFINIBAND_EDR)
        assert t8 == pytest.approx(3 * t2)  # log2(8) = 3 hops

    def test_sequential_is_linear(self):
        t8 = staging_time(self.FP, 8, INFINIBAND_EDR, tree=False)
        t2 = staging_time(self.FP, 2, INFINIBAND_EDR, tree=False)
        assert t8 == pytest.approx(7 * t2)

    def test_tree_beats_sequential(self):
        assert staging_time(self.FP, 8, INFINIBAND_EDR) < \
            staging_time(self.FP, 8, INFINIBAND_EDR, tree=False)

    def test_fabric_matters(self):
        assert staging_time(self.FP, 4, ETHERNET_10G) > \
            staging_time(self.FP, 4, INFINIBAND_EDR)

    def test_paper_scale_staging_is_minutes(self):
        """63 GiB to 8 nodes over IB: ~minutes, amortised over a 44 h
        run -- why deployment does not appear in Table I."""
        t = staging_time(DatasetFootprint(), 8, INFINIBAND_EDR)
        assert 10 < t < 3600

    def test_validation(self):
        with pytest.raises(ValueError):
            staging_time(self.FP, 0, INFINIBAND_EDR)


class TestPlan:
    FP = DatasetFootprint(total_bytes=10 * 10**9)

    def test_shared_fs_no_upfront(self):
        plan = plan_deployment(self.FP, 8, INFINIBAND_EDR,
                               strategy="shared_fs")
        assert plan.upfront_seconds == 0.0
        assert plan.per_epoch_read_seconds > 0

    def test_staging_pays_off_over_epochs(self):
        shared = plan_deployment(self.FP, 8, INFINIBAND_EDR,
                                 strategy="shared_fs")
        staged = plan_deployment(self.FP, 8, INFINIBAND_EDR,
                                 strategy="stage_to_nodes")
        assert staged.total_seconds(0) > shared.total_seconds(0)
        assert staged.total_seconds(250) < shared.total_seconds(250)

    def test_breakeven_is_finite(self):
        shared = plan_deployment(self.FP, 8, INFINIBAND_EDR,
                                 strategy="shared_fs")
        staged = plan_deployment(self.FP, 8, INFINIBAND_EDR,
                                 strategy="stage_to_nodes")
        saved = shared.per_epoch_read_seconds - staged.per_epoch_read_seconds
        breakeven = staged.upfront_seconds / saved
        assert 0 < breakeven < 250

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_deployment(self.FP, 4, INFINIBAND_EDR, strategy="torrent")
        with pytest.raises(ValueError):
            plan_deployment(self.FP, 4, INFINIBAND_EDR, local_read_gibs=0)
        plan = plan_deployment(self.FP, 4, INFINIBAND_EDR)
        with pytest.raises(ValueError):
            plan.total_seconds(-1)

    def test_units_round_trip_binary_gib(self):
        """Regression: read pricing uses the same binary-GiB unit as
        ``DatasetFootprint.gib`` -- an 8 GiB set at 2 GiB/s is exactly
        4 s/epoch (the old decimal-GB pricing gave ~7% less)."""
        fp = DatasetFootprint(total_bytes=8 * GIB)
        assert fp.gib == pytest.approx(8.0)
        plan = plan_deployment(fp, 4, INFINIBAND_EDR,
                               local_read_gibs=2.0, strategy="stage_to_nodes")
        assert plan.per_epoch_read_seconds == pytest.approx(fp.gib / 2.0)
        shared = plan_deployment(fp, 4, INFINIBAND_EDR,
                                 shared_read_gibs=0.5, strategy="shared_fs")
        assert shared.per_epoch_read_seconds == pytest.approx(fp.gib / 0.5)


class TestServingCapacity:
    W = ServingWorkload(service_s=0.1, dispatch_overhead_s=0.05,
                        max_batch=8, max_delay_s=0.02)

    def test_batch_amortises_dispatch(self):
        # throughput strictly improves with batch when overhead > 0
        rps = [self.W.replica_throughput_rps(b) for b in (1, 2, 8)]
        assert rps[0] < rps[1] < rps[2]
        assert self.W.batch_seconds(2) == pytest.approx(0.25)

    def test_plan_meets_demand_with_headroom(self):
        plan = plan_serving_capacity(self.W, target_rps=20.0,
                                     utilization=0.8)
        assert plan.capacity_rps * 0.8 >= plan.target_rps
        assert plan.headroom >= 1.0 / 0.8 - 1e-9
        assert 1 <= plan.batch <= self.W.max_batch
        assert plan.latency_bound_s == pytest.approx(
            self.W.max_delay_s + self.W.batch_seconds(plan.batch))

    def test_more_traffic_needs_more_replicas(self):
        lo = plan_serving_capacity(self.W, target_rps=5.0)
        hi = plan_serving_capacity(self.W, target_rps=200.0)
        assert hi.replicas > lo.replicas

    def test_no_overhead_prefers_small_batches(self):
        """With zero dispatch overhead batching buys nothing, so the
        plan picks the lowest-latency batch size: 1."""
        w = ServingWorkload(service_s=0.1, dispatch_overhead_s=0.0)
        assert plan_serving_capacity(w, target_rps=5.0).batch == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingWorkload(service_s=0.0)
        with pytest.raises(ValueError):
            ServingWorkload(service_s=0.1, max_batch=0)
        with pytest.raises(ValueError):
            self.W.batch_seconds(9)
        with pytest.raises(ValueError):
            plan_serving_capacity(self.W, target_rps=0)
        with pytest.raises(ValueError):
            plan_serving_capacity(self.W, target_rps=1, utilization=1.5)
