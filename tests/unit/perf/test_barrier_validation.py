"""Cross-validation: event-simulated synchronous steps vs the analytic
straggler model.

The Table I reproduction leans on ``expected_max_factor`` (the analytic
E[max of n] inflation).  Here the same physics is *executed*: n replica
processes with lognormal per-step compute times meet at an AllOf
barrier on the discrete-event simulator, and the realised mean step
time must match the analytic prediction.
"""

import numpy as np
import pytest

from repro.cluster import Simulator
from repro.perf import expected_max_factor


def simulate_sync_steps(num_replicas: int, num_steps: int, sigma: float,
                        base: float = 1.0, seed: int = 0) -> float:
    """Mean barrier-to-barrier step time over an event-simulated run."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    step_times: list[float] = []

    def replica_step(duration):
        yield sim.timeout(duration)
        return duration

    def trainer():
        mean_correction = np.exp(0.5 * sigma**2)
        for _ in range(num_steps):
            start = sim.now
            draws = rng.lognormal(0.0, sigma, size=num_replicas)
            draws = draws / mean_correction * base  # unit-mean jitter
            procs = [sim.process(replica_step(d)) for d in draws]
            yield sim.all_of(procs)  # the synchronisation barrier
            step_times.append(sim.now - start)

    sim.process(trainer())
    sim.run()
    return float(np.mean(step_times))


class TestBarrierValidation:
    @pytest.mark.parametrize("n", [2, 4, 8, 32])
    def test_simulated_matches_analytic(self, n):
        sigma = 0.25
        sim_mean = simulate_sync_steps(n, num_steps=3000, sigma=sigma, seed=1)
        analytic = expected_max_factor(n, sigma)
        assert sim_mean == pytest.approx(analytic, rel=0.02), n

    def test_no_jitter_no_inflation(self):
        assert simulate_sync_steps(8, 50, sigma=0.0) == pytest.approx(1.0)

    def test_single_replica_no_barrier_cost(self):
        sigma = 0.3
        mean = simulate_sync_steps(1, 5000, sigma=sigma, seed=2)
        assert mean == pytest.approx(1.0, rel=0.02)

    def test_inflation_grows_with_replicas(self):
        means = [
            simulate_sync_steps(n, 1500, sigma=0.2, seed=3)
            for n in (2, 8, 32)
        ]
        assert means[0] < means[1] < means[2]

    def test_barrier_waits_are_real_idle_time(self):
        """Total replica compute < total barrier-synchronised time:
        the difference is the straggler wait Table I's dp column pays."""
        n, steps, sigma = 8, 500, 0.3
        rng = np.random.default_rng(4)
        correction = np.exp(0.5 * sigma**2)
        draws = rng.lognormal(0.0, sigma, size=(steps, n)) / correction
        synchronised = draws.max(axis=1).sum()
        per_replica_mean = draws.mean()
        assert synchronised > steps * per_replica_mean * 1.2
