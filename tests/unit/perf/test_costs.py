"""Cost model tests: FLOPs, step pricing, quantisation, memory constants."""


import pytest

from repro.perf import (
    PAPER_EPOCHS,
    PAPER_TRAIN_SAMPLES,
    PAPER_VAL_SAMPLES,
    CostModelParams,
    StepCostModel,
    TrialConfig,
    conv3d_flops,
    unet3d_forward_flops,
    unet3d_param_count,
)


class TestPaperConstants:
    def test_split_sizes(self):
        """484 x 70% = 338 train, 484 x 15% = ~73 val (Section IV-A)."""
        assert PAPER_TRAIN_SAMPLES == 338
        assert PAPER_VAL_SAMPLES == 73
        assert PAPER_EPOCHS == 250


class TestFlops:
    def test_conv_flops_formula(self):
        assert conv3d_flops(10, 4, 8, kernel=3) == 2 * 10 * 4 * 8 * 27

    def test_unet_flops_scale_quadratically_with_width(self):
        f8 = unet3d_forward_flops(base_filters=8)
        f16 = unet3d_forward_flops(base_filters=16)
        assert 3.2 < f16 / f8 < 4.2

    def test_flops_scale_linearly_with_voxels(self):
        a = unet3d_forward_flops(spatial=(64, 64, 64))
        b = unet3d_forward_flops(spatial=(64, 64, 128))
        assert b / a == pytest.approx(2.0, rel=1e-6)

    def test_paper_scale_magnitude(self):
        """~0.5 TFLOPs forward per full 240x240x152 sample."""
        f = unet3d_forward_flops()
        assert 1e11 < f < 2e12

    def test_param_count_matches_real_model(self):
        """Analytic count == real layer-graph count (trainable params)."""
        import numpy as np

        from repro.nn import UNet3D

        for base, halves in ((8, True), (8, False), (4, True)):
            net = UNet3D(4, 1, base, 4, transpose_halves=halves,
                         rng=np.random.default_rng(0))
            assert unet3d_param_count(
                base_filters=base, transpose_halves=halves
            ) == net.num_params(trainable_only=True)


class TestTrialConfig:
    def test_defaults_are_papers(self):
        cfg = TrialConfig()
        assert cfg.batch_per_replica == 2
        assert cfg.epochs == 250

    def test_batch_3_rejected(self):
        with pytest.raises(ValueError, match="16 GB"):
            TrialConfig(batch_per_replica=3)

    def test_unknown_loss_rejected(self):
        with pytest.raises(ValueError):
            TrialConfig(loss="focal")

    def test_compute_scale(self):
        assert TrialConfig().compute_scale() == pytest.approx(1.0)
        assert TrialConfig(loss="quadratic_dice").compute_scale() == \
            pytest.approx(1.02)
        assert TrialConfig(base_filters=11).compute_scale() > 1.5


class TestStepModel:
    @pytest.fixture
    def model(self):
        return StepCostModel(params=CostModelParams())

    def test_steps_per_epoch_quantisation(self, model):
        cfg = TrialConfig()
        # 338 / (2*1) = 169; 338/(2*32) = 5.28 -> 6
        assert model.steps_per_epoch(cfg, 1) == 169
        assert model.steps_per_epoch(cfg, 32) == 6
        assert model.steps_per_epoch(cfg, 32) > 338 / 64

    def test_step_time_positive_and_increasing_in_gpus(self, model):
        cfg = TrialConfig()
        t1 = model.step_time(cfg, 1)
        t4 = model.step_time(cfg, 4)
        t32 = model.step_time(cfg, 32)
        assert 0 < t1 < t4 < t32  # sync + comm grow with n

    def test_epoch_time_decreases_with_gpus(self, model):
        cfg = TrialConfig()
        times = [model.epoch_time(cfg, n) for n in (1, 2, 4, 8, 16, 32)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_trial_time_dominated_by_epochs(self, model):
        cfg = TrialConfig()
        t = model.trial_time(cfg, 1)
        assert t == pytest.approx(
            250 * model.epoch_time(cfg, 1) + model.startup_time(1)
        )

    def test_framework_overhead_cases(self, model):
        """Section III-B2: none / mirrored / ray_sgd."""
        assert model.framework_overhead(1) == 0.0
        m = model.framework_overhead(4)
        r = model.framework_overhead(8)
        assert r >= m >= 0

    def test_sync_factor_growth(self, model):
        assert model.sync_factor(1) == 1.0
        assert model.sync_factor(32) > model.sync_factor(4) > 1.0

    def test_jitter_scales_epochs_not_startup(self, model):
        cfg = TrialConfig()
        base = model.trial_time(cfg, 1, jitter=1.0)
        double = model.trial_time(cfg, 1, jitter=2.0)
        startup = model.startup_time(1)
        assert double - startup == pytest.approx(2 * (base - startup))

    def test_invalid_inputs(self, model):
        cfg = TrialConfig()
        with pytest.raises(ValueError):
            model.step_time(cfg, 0)
        with pytest.raises(ValueError):
            model.trial_time(cfg, 1, jitter=0.0)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            CostModelParams(gpu_efficiency=0.0).validate()
        with pytest.raises(ValueError):
            CostModelParams(straggler_sigma=-1).validate()

    def test_gradient_bytes(self, model):
        cfg = TrialConfig()
        assert model.gradient_bytes(cfg) == unet3d_param_count() * 4
