"""Gradient accumulation and ray.wait analogue tests."""

import time

import numpy as np
import pytest

from repro.nn import SGD, Adam, SoftDiceLoss, UNet3D
from repro.raysim import DataParallelTrainer, RaySession


def factory(seed=0):
    return lambda: UNet3D(1, 1, 2, 2, use_batchnorm=False,
                          rng=np.random.default_rng(seed))


def batch(n, seed=2):
    r = np.random.default_rng(seed)
    x = r.normal(size=(n, 1, 4, 4, 4))
    y = (r.uniform(size=(n, 1, 4, 4, 4)) > 0.8).astype(float)
    return x, y


class TestGradientAccumulation:
    def test_equivalent_to_big_batch(self):
        """k micro-batches == one big batch, bit-for-bit (the Section
        V-C memory workaround must not change the optimisation)."""
        x, y = batch(8)
        big = DataParallelTrainer(factory(), SoftDiceLoss(),
                                  lambda m: SGD(m, lr=1e-2), 1)
        acc = DataParallelTrainer(factory(), SoftDiceLoss(),
                                  lambda m: SGD(m, lr=1e-2), 1)
        try:
            for _ in range(3):
                o1 = big.train_step(x, y)
                o2 = acc.train_step_accumulated(x, y, accumulation_steps=4)
                assert o1["loss"] == pytest.approx(o2["loss"], abs=1e-12)
            np.testing.assert_allclose(
                big.model.get_flat_params(), acc.model.get_flat_params(),
                atol=1e-12,
            )
        finally:
            big.shutdown()
            acc.shutdown()

    def test_combines_with_replicas(self):
        x, y = batch(8)
        big = DataParallelTrainer(factory(), SoftDiceLoss(),
                                  lambda m: Adam(m, lr=1e-3), 1)
        both = DataParallelTrainer(factory(), SoftDiceLoss(),
                                   lambda m: Adam(m, lr=1e-3), 2)
        try:
            o1 = big.train_step(x, y)
            o2 = both.train_step_accumulated(x, y, accumulation_steps=2)
            assert o1["loss"] == pytest.approx(o2["loss"], abs=1e-12)
            np.testing.assert_allclose(
                big.model.get_flat_params(), both.model.get_flat_params(),
                atol=1e-10,
            )
        finally:
            big.shutdown()
            both.shutdown()

    def test_validation(self):
        x, y = batch(4)
        t = DataParallelTrainer(factory(), SoftDiceLoss(),
                                lambda m: SGD(m, lr=1e-2), 2)
        try:
            with pytest.raises(ValueError):
                t.train_step_accumulated(x, y, accumulation_steps=0)
            with pytest.raises(ValueError):
                t.train_step_accumulated(x, y, accumulation_steps=3)
        finally:
            t.shutdown()


class TestWait:
    def test_eager_tasks_all_ready(self):
        with RaySession() as s:
            @s.remote
            def f(i):
                return i

            refs = [f.remote(i) for i in range(4)]
            ready, pending = s.wait(refs, num_returns=2)
            assert len(ready) >= 2
            assert len(ready) + len(pending) == 4

    def test_threaded_wait_returns_fast_task_first(self):
        with RaySession(num_workers=2) as s:
            @s.remote
            def slow():
                time.sleep(0.5)
                return "slow"

            @s.remote
            def fast():
                return "fast"

            r_slow = slow.remote()
            r_fast = fast.remote()
            ready, pending = s.wait([r_slow, r_fast], num_returns=1)
            assert s.get(ready[0]) == "fast"
            assert pending and pending[0].ref_id == r_slow.ref_id
            # eventually both complete
            ready2, pending2 = s.wait([r_slow, r_fast], num_returns=2)
            assert not pending2

    def test_failed_task_counts_as_ready(self):
        with RaySession(num_workers=1) as s:
            @s.remote
            def boom():
                raise RuntimeError("x")

            ref = boom.remote()
            ready, _ = s.wait([ref], num_returns=1)
            assert ready

    def test_validation(self):
        with RaySession() as s:
            @s.remote
            def f():
                return 1

            refs = [f.remote()]
            with pytest.raises(ValueError):
                s.wait(refs, num_returns=0)
            with pytest.raises(ValueError):
                s.wait(refs, num_returns=2)
