"""RayCluster resource registry and placement tests."""

import pytest

from repro.cluster import marenostrum_cte
from repro.raysim import InsufficientResources, RayCluster


@pytest.fixture
def cluster():
    return RayCluster(marenostrum_cte(4))  # 16 GPUs


class TestAllocation:
    def test_pack_fills_nodes_densely(self, cluster):
        alloc = cluster.allocate_gpus(6, strategy="pack")
        assert alloc.num_gpus == 6
        assert alloc.nodes() == [0, 1]
        assert sum(1 for d in alloc.devices if d.node == 0) == 4

    def test_spread_balances_nodes(self, cluster):
        alloc = cluster.allocate_gpus(4, strategy="spread")
        assert alloc.nodes() == [0, 1, 2, 3]

    def test_free_count_tracks(self, cluster):
        assert cluster.free_gpus() == 16
        a = cluster.allocate_gpus(10)
        assert cluster.free_gpus() == 6
        cluster.release(a)
        assert cluster.free_gpus() == 16

    def test_oversubscription_rejected(self, cluster):
        cluster.allocate_gpus(16)
        with pytest.raises(InsufficientResources):
            cluster.allocate_gpus(1)

    def test_release_restores_exact_devices(self, cluster):
        a = cluster.allocate_gpus(16)
        cluster.release(a)
        b = cluster.allocate_gpus(16)
        assert sorted(d.node for d in b.devices) == sorted(
            d.node for d in a.devices
        )

    def test_double_release_rejected(self, cluster):
        a = cluster.allocate_gpus(2)
        cluster.release(a)
        with pytest.raises(ValueError, match="more"):
            cluster.release(a)

    def test_bad_requests(self, cluster):
        with pytest.raises(ValueError):
            cluster.allocate_gpus(0)
        with pytest.raises(ValueError):
            cluster.allocate_gpus(2, strategy="random")
        with pytest.raises(InsufficientResources):
            cluster.allocate_gpus(17)


class TestPlacementCase:
    """The Section III-B2 trichotomy."""

    def test_cases(self, cluster):
        assert cluster.placement_case(1) == "sequential"
        assert cluster.placement_case(2) == "mirrored"
        assert cluster.placement_case(4) == "mirrored"
        assert cluster.placement_case(5) == "ray_sgd"
        assert cluster.placement_case(16) == "ray_sgd"

    def test_invalid(self, cluster):
        with pytest.raises(ValueError):
            cluster.placement_case(0)
