"""Fault tolerance in the trial runner: retry policies, checkpoint
resume, fault injection, and the scheduler rollback hooks."""

from pathlib import Path

import numpy as np
import pytest

from repro.fault_tolerance import (
    CheckpointHandle,
    FaultInjector,
    RetryPolicy,
)
from repro.raysim import GridSearch, TrialStatus, tune_run
from repro.raysim.tune import ASHAScheduler, Trial
from repro.telemetry import TelemetryHub


class TestRetryPolicy:
    def test_defaults(self):
        p = RetryPolicy()
        assert p.max_retries == 0
        assert p.max_attempts == 1
        assert p.resume == "checkpoint"

    def test_backoff_schedule(self):
        p = RetryPolicy(max_retries=3, backoff_s=2.0, backoff_factor=3.0)
        assert p.delay(0) == 0.0
        assert p.delay(1) == pytest.approx(2.0)
        assert p.delay(2) == pytest.approx(6.0)
        assert p.delay(3) == pytest.approx(18.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(resume="sometimes")
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestFaultInjector:
    def test_crashes_at_configured_epoch_then_lets_progress(self):
        reports = []

        def trainable(config, reporter):
            for e in range(5):
                reporter(epoch=e, score=float(e))
                reports.append(e)
            return None

        injector = FaultInjector(crash_epochs=(2,)).wrap(trainable)
        analysis = tune_run(injector, GridSearch({"a": [1]}), max_retries=1)
        assert injector.faults_injected == 1
        assert analysis.trials[0].status is TrialStatus.TERMINATED
        # the crashed report never lands; the retry re-runs everything
        assert reports == [0, 1, 0, 1, 2, 3, 4]

    def test_exhausted_crash_list_without_retries_errors(self):
        def trainable(config, reporter):
            reporter(epoch=0, score=0.0)
            return None

        injector = FaultInjector(trainable, crash_epochs=(0,))
        analysis = tune_run(injector, GridSearch({"a": [1]}))
        trial = analysis.trials[0]
        assert trial.status is TrialStatus.ERROR
        assert "InjectedFault" in trial.error

    def test_random_faults_seeded_reproducible(self):
        def run_once():
            def trainable(config, reporter):
                for e in range(20):
                    reporter(epoch=e, score=0.0)
                return None

            injector = FaultInjector(trainable, p_crash=0.3, seed=7)
            tune_run(injector, GridSearch({"a": [1]}), max_retries=50)
            return injector.faults_injected

        assert run_once() == run_once()

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(p_crash=1.0)
        with pytest.raises(ValueError):
            FaultInjector()(({}), None)


def _checkpointing_trainable(ckpt_dir: Path, epochs: int = 6,
                             starts: list | None = None):
    """Deterministic toy training: per-epoch re-seeded RNG walks a scalar
    state, checkpointed to disk every epoch -- so a checkpoint-resumed
    run is bit-identical to an uninterrupted one."""

    def trainable(config, reporter):
        resume = reporter.resume_from
        if resume is not None and resume.path:
            state = float(np.load(resume.path))
            start = resume.epoch + 1
        else:
            state, start = 0.0, 0
        if starts is not None:
            starts.append(start)
        for epoch in range(start, epochs):
            rng = np.random.default_rng(1_000 + epoch)
            state = 0.9 * state + rng.standard_normal()
            path = ckpt_dir / f"ck_{epoch:02d}.npy"
            np.save(path, np.asarray(state))
            reporter(epoch=epoch, score=state, checkpoint=str(path))
        return {"score": state}

    return trainable


class TestCheckpointResume:
    EPOCHS = 6

    def _run(self, tmp_path, name, injector=None, policy=None):
        d = tmp_path / name
        d.mkdir()
        starts: list[int] = []
        trainable = _checkpointing_trainable(d, self.EPOCHS, starts)
        runnable = injector.wrap(trainable) if injector else trainable
        analysis = tune_run(runnable, GridSearch({"a": [1]}),
                            retry_policy=policy)
        return analysis.trials[0], starts

    def test_resumed_run_bit_identical_to_uninjected(self, tmp_path):
        baseline, base_starts = self._run(tmp_path, "base")
        trial, starts = self._run(
            tmp_path, "injected",
            injector=FaultInjector(crash_epochs=(3,)),
            policy=RetryPolicy(max_retries=2, resume="checkpoint"),
        )
        assert base_starts == [0]
        # crash while reporting epoch 3 -> last durable checkpoint is
        # epoch 2 -> the retry starts at epoch 3
        assert starts == [0, 3]
        assert trial.status is TrialStatus.TERMINATED
        assert trial.retries == 1
        assert trial.restored_epoch == 2
        # same number of epochs, no duplicated rows
        assert [r["epoch"] for r in trial.results] == list(range(self.EPOCHS))
        assert [r["epoch"] for r in baseline.results] == list(range(self.EPOCHS))
        # bit-identical metrics, epoch by epoch, and final
        for a, b in zip(trial.results, baseline.results):
            assert a["score"] == b["score"]
        assert trial.final["score"] == baseline.final["score"]

    def test_scratch_retrains_from_epoch_zero(self, tmp_path):
        baseline, _ = self._run(tmp_path, "base")
        trial, starts = self._run(
            tmp_path, "scratch",
            injector=FaultInjector(crash_epochs=(3,)),
            policy=RetryPolicy(max_retries=1, resume="scratch"),
        )
        assert starts == [0, 0]
        assert trial.restored_epoch is None
        assert [r["epoch"] for r in trial.results] == list(range(self.EPOCHS))
        assert trial.final["score"] == baseline.final["score"]

    def test_no_published_checkpoint_falls_back_to_scratch(self):
        starts = []

        def trainable(config, reporter):
            starts.append(getattr(reporter.resume_from, "epoch", None))
            raise RuntimeError("crash before any checkpoint")

        analysis = tune_run(
            trainable, GridSearch({"a": [1]}),
            retry_policy=RetryPolicy(max_retries=1, resume="checkpoint"),
        )
        trial = analysis.trials[0]
        assert starts == [None, None]
        assert trial.restored_epoch is None
        assert trial.status is TrialStatus.ERROR

    def test_retry_and_restore_counters(self, tmp_path):
        hub = TelemetryHub()
        d = tmp_path / "ck"
        d.mkdir()
        trainable = _checkpointing_trainable(d, self.EPOCHS)
        tune_run(FaultInjector(trainable, crash_epochs=(3,)),
                 GridSearch({"a": [1]}),
                 retry_policy=RetryPolicy(max_retries=2),
                 telemetry=hub)
        assert hub.metrics.get("tune_retries_total").value == 1.0
        assert hub.metrics.get("tune_restores_total").value == 1.0

    def test_reporter_checkpoint_key_not_recorded_as_metric(self):
        def trainable(config, reporter):
            reporter(epoch=0, score=1.0, checkpoint="/tmp/ck.npz")
            return None

        analysis = tune_run(trainable, GridSearch({"a": [1]}))
        (row,) = analysis.trials[0].results
        assert "checkpoint" not in row

    def test_checkpoint_handle_equality_ignores_meta(self):
        a = CheckpointHandle(epoch=3, path="x", meta={"k": 1})
        b = CheckpointHandle(epoch=3, path="x", meta={"k": 2})
        assert a == b


class TestASHARungMatching:
    """Regression: rungs must trigger on *crossing* (t >= rung time),
    not exact equality -- trials reporting every k epochs used to skip
    every rung and never be early-stopped."""

    def test_sparse_reporting_still_hits_rungs(self):
        asha = ASHAScheduler("dice", grace_period=2, reduction_factor=2,
                             max_t=16)  # rungs at t = 2, 4, 8

        def trainable(config, reporter):
            for e in (3, 6, 9, 12):  # never lands exactly on a rung
                if not reporter(epoch=e, dice=config["q"]):
                    return None

        analysis = tune_run(trainable,
                            GridSearch({"q": [0.9, 0.8, 0.2, 0.1]}),
                            scheduler=asha, metric="dice")
        by_q = {t.config["q"]: t for t in analysis.trials}
        assert by_q[0.1].status is TrialStatus.STOPPED
        assert by_q[0.9].status is TrialStatus.TERMINATED

    def test_one_report_can_cross_several_rungs(self):
        asha = ASHAScheduler("dice", grace_period=1, reduction_factor=2,
                             max_t=8)  # rungs at t = 1, 2, 4
        trial = Trial("t0", {})
        asha.on_result(trial, {"epoch": 5, "dice": 0.4})
        assert asha._rungs == {0: [0.4], 1: [0.4], 2: [0.4]}

    def test_non_integer_time_attr(self):
        asha = ASHAScheduler("dice", time_attr="t", grace_period=1,
                             reduction_factor=2, max_t=4)  # rungs 1, 2
        trial = Trial("t0", {})
        asha.on_result(trial, {"t": 2.5, "dice": 0.4})
        assert asha._rungs == {0: [0.4], 1: [0.4]}

    def test_each_rung_recorded_once(self):
        asha = ASHAScheduler("dice", grace_period=1, reduction_factor=2,
                             max_t=4)
        trial = Trial("t0", {})
        asha.on_result(trial, {"epoch": 1, "dice": 0.5})
        asha.on_result(trial, {"epoch": 3, "dice": 0.6})
        assert asha._rungs == {0: [0.5], 1: [0.6]}


class TestASHARetryRollback:
    """Regression: a crashed attempt's rung records used to linger and
    skew the cutoff for every later trial."""

    def test_scratch_retry_rolls_back_rung_records(self):
        asha = ASHAScheduler("dice", grace_period=1, reduction_factor=2,
                             max_t=4)
        attempts = {"n": 0}

        def trainable(config, reporter):
            attempts["n"] += 1
            if attempts["n"] == 1:
                reporter(epoch=1, dice=1.0)  # lost with the crash
                raise RuntimeError("crash")
            for e in range(1, 4):
                if not reporter(epoch=e, dice=0.1):
                    return None

        tune_run(trainable, GridSearch({"a": [1]}), scheduler=asha,
                 retry_policy=RetryPolicy(max_retries=1, resume="scratch"))
        assert asha._rungs[0] == [0.1]
        assert asha._rungs[1] == [0.1]

    def test_stale_crash_results_do_not_stop_later_trials(self):
        asha = ASHAScheduler("dice", grace_period=1, reduction_factor=2,
                             max_t=4)
        attempts = {"n": 0}

        def trainable(config, reporter):
            if config["q"] == "flaky":
                attempts["n"] += 1
                if attempts["n"] == 1:
                    reporter(epoch=1, dice=0.9)
                    raise RuntimeError("crash")
                dice = 0.1
            else:
                dice = 0.5
            for e in range(1, 5):
                if not reporter(epoch=e, dice=dice):
                    return None

        analysis = tune_run(
            trainable, GridSearch({"q": ["flaky", "steady"]}),
            scheduler=asha,
            retry_policy=RetryPolicy(max_retries=1, resume="scratch"),
        )
        steady = next(t for t in analysis.trials
                      if t.config["q"] == "steady")
        # without the rollback the crashed 0.9 raises the rung cutoff
        # above 0.5 and stops the steady trial
        assert steady.status is TrialStatus.TERMINATED

    def test_checkpoint_retry_keeps_durable_entries(self):
        asha = ASHAScheduler("dice", grace_period=1, reduction_factor=2,
                             max_t=8)  # rungs 1, 2, 4
        trial = Trial("t0", {})
        asha.on_result(trial, {"epoch": 1, "dice": 0.5})
        asha.on_result(trial, {"epoch": 2, "dice": 0.6})
        asha.on_result(trial, {"epoch": 4, "dice": 0.7})
        asha.on_trial_retry(trial, keep_up_to=2)
        # epochs <= 2 came from checkpointed progress and stay
        assert asha._rungs == {0: [0.5], 1: [0.6], 2: []}

    def test_retry_of_unseen_trial_is_a_noop(self):
        asha = ASHAScheduler("dice")
        asha.on_trial_retry(Trial("never_reported", {}), keep_up_to=None)
        assert asha._rungs == {}
