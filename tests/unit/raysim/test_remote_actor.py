"""Remote task and actor tests."""

import threading

import numpy as np
import pytest

from repro.raysim import RaySession, TaskError


class TestRemoteTasks:
    def test_eager_mode_roundtrip(self):
        with RaySession() as s:
            @s.remote
            def add(a, b):
                return a + b

            ref = add.remote(2, 3)
            assert s.get(ref) == 5

    def test_refs_as_arguments_resolve(self):
        with RaySession() as s:
            @s.remote
            def double(x):
                return 2 * x

            r1 = double.remote(5)
            r2 = double.remote(r1)
            assert s.get(r2) == 20

    def test_direct_call_still_works(self):
        with RaySession() as s:
            @s.remote
            def f(x):
                return x + 1

            assert f(1) == 2

    def test_task_error_raised_at_get(self):
        with RaySession() as s:
            @s.remote
            def boom():
                raise ValueError("inner")

            ref = boom.remote()  # submission does not raise
            with pytest.raises(TaskError) as exc:
                s.get(ref)
            assert "inner" in str(exc.value.__cause__)

    def test_threaded_mode_parallel_execution(self):
        with RaySession(num_workers=3) as s:
            barrier = threading.Barrier(3, timeout=5)

            @s.remote
            def wait(i):
                barrier.wait()  # requires 3 concurrent tasks
                return i

            refs = [wait.remote(i) for i in range(3)]
            assert s.wait_all(refs) == [0, 1, 2]

    def test_threaded_mode_numpy_payload(self):
        with RaySession(num_workers=2) as s:
            @s.remote
            def total(arr):
                return float(arr.sum())

            data = s.put(np.ones(100))
            assert s.get(total.remote(data)) == 100.0

    def test_kwargs_ref_resolution(self):
        with RaySession() as s:
            @s.remote
            def sub(a, b=0):
                return a - b

            assert s.get(sub.remote(10, b=s.put(4))) == 6

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            RaySession(num_workers=-1)

    def test_tasks_submitted_counter(self):
        with RaySession() as s:
            @s.remote
            def noop():
                return None

            for _ in range(4):
                noop.remote()
            assert s.tasks_submitted == 4


class TestActors:
    def test_state_accumulates_in_order(self):
        with RaySession() as s:
            class Acc:
                def __init__(self, start):
                    self.total = start

                def add(self, v):
                    self.total += v
                    return self.total

            a = s.actor(Acc).remote(10)
            refs = [a.add.remote(i) for i in (1, 2, 3)]
            assert [s.get_blocking(r) for r in refs] == [11, 13, 16]
            a.terminate()

    def test_actor_method_error(self):
        with RaySession() as s:
            class Bad:
                def fail(self):
                    raise RuntimeError("nope")

            a = s.actor(Bad).remote()
            ref = a.fail.remote()
            with pytest.raises(TaskError):
                s.get_blocking(ref)
            a.terminate()

    def test_constructor_error_propagates(self):
        with RaySession() as s:
            class Broken:
                def __init__(self):
                    raise ValueError("ctor")

            with pytest.raises(TaskError):
                s.actor(Broken).remote()

    def test_terminated_actor_rejects_calls(self):
        with RaySession() as s:
            class A:
                def ping(self):
                    return "pong"

            a = s.actor(A).remote()
            a.terminate()
            with pytest.raises(RuntimeError, match="terminated"):
                a.ping.remote()

    def test_direct_method_call_rejected(self):
        with RaySession() as s:
            class A:
                def ping(self):
                    return "pong"

            a = s.actor(A).remote()
            with pytest.raises(TypeError, match=r"\.remote"):
                a.ping()
            a.terminate()

    def test_two_actors_isolated(self):
        with RaySession() as s:
            class Counter:
                def __init__(self):
                    self.n = 0

                def inc(self):
                    self.n += 1
                    return self.n

            a, b = s.actor(Counter).remote(), s.actor(Counter).remote()
            s.get_blocking(a.inc.remote())
            s.get_blocking(a.inc.remote())
            assert s.get_blocking(b.inc.remote()) == 1
            a.terminate()
            b.terminate()
