"""Placement-group tests."""

import pytest

from repro.cluster import marenostrum_cte
from repro.raysim import (
    InsufficientResources,
    RayCluster,
    create_placement_group,
)


@pytest.fixture
def cluster():
    return RayCluster(marenostrum_cte(4))  # 4 nodes x 4 GPUs


def gpu_bundles(n):
    return [{"GPU": 1.0} for _ in range(n)]


class TestStrictPack:
    def test_fits_one_node(self, cluster):
        pg = create_placement_group(cluster, gpu_bundles(4), "STRICT_PACK")
        assert pg.nodes() == [pg.bundle_nodes[0]]
        assert len(set(pg.bundle_nodes)) == 1

    def test_too_big_for_any_node_fails_atomically(self, cluster):
        with pytest.raises(InsufficientResources):
            create_placement_group(cluster, gpu_bundles(5), "STRICT_PACK")
        assert cluster.free_gpus() == 16  # nothing leaked

    def test_skips_partially_used_nodes(self, cluster):
        cluster.allocate_gpus(2, strategy="pack")  # node 0 partially used
        pg = create_placement_group(cluster, gpu_bundles(4), "STRICT_PACK")
        assert pg.nodes() != [0]


class TestPack:
    def test_minimises_nodes(self, cluster):
        pg = create_placement_group(cluster, gpu_bundles(6), "PACK")
        assert len(pg.nodes()) == 2

    def test_fills_fragmented_capacity(self, cluster):
        cluster.allocate_gpus(3, strategy="spread")
        pg = create_placement_group(cluster, gpu_bundles(13), "PACK")
        assert pg.num_bundles == 13
        assert cluster.free_gpus() == 0


class TestSpread:
    def test_spread_balances(self, cluster):
        pg = create_placement_group(cluster, gpu_bundles(4), "SPREAD")
        assert len(pg.nodes()) == 4

    def test_strict_spread_requires_distinct_nodes(self, cluster):
        pg = create_placement_group(cluster, gpu_bundles(4), "STRICT_SPREAD")
        assert len(pg.nodes()) == 4
        with pytest.raises(InsufficientResources):
            create_placement_group(cluster, gpu_bundles(5), "STRICT_SPREAD")

    def test_strict_spread_atomic_failure(self, cluster):
        free_before = cluster.free_gpus()
        with pytest.raises(InsufficientResources):
            create_placement_group(cluster, gpu_bundles(5), "STRICT_SPREAD")
        assert cluster.free_gpus() == free_before


class TestLifecycle:
    def test_remove_returns_resources(self, cluster):
        pg = create_placement_group(cluster, gpu_bundles(8), "PACK")
        assert cluster.free_gpus() == 8
        pg.remove()
        assert cluster.free_gpus() == 16

    def test_remove_idempotent(self, cluster):
        pg = create_placement_group(cluster, gpu_bundles(2), "PACK")
        pg.remove()
        pg.remove()
        assert cluster.free_gpus() == 16

    def test_mixed_resource_bundles(self, cluster):
        pg = create_placement_group(
            cluster, [{"GPU": 2.0, "CPU": 8.0}, {"GPU": 1.0}], "PACK"
        )
        assert pg.num_bundles == 2
        pg.remove()
        assert cluster.free_gpus() == 16

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            create_placement_group(cluster, [], "PACK")
        with pytest.raises(ValueError):
            create_placement_group(cluster, [{"GPU": 0.0}], "PACK")
        with pytest.raises(ValueError):
            create_placement_group(cluster, gpu_bundles(1), "BESTFIT")


class TestPaperUsage:
    def test_mirrored_strategy_reservation(self, cluster):
        """The paper's 1 < n <= M case: all replicas of one trial must
        share a node's NVLink -> STRICT_PACK of n GPU bundles."""
        pg = create_placement_group(cluster, gpu_bundles(4), "STRICT_PACK")
        assert len(pg.nodes()) == 1

    def test_tune_trials_spread(self, cluster):
        """Experiment parallelism: independent 1-GPU trials can SPREAD
        for thermal/host-memory balance, no communication to lose."""
        groups = [
            create_placement_group(cluster, gpu_bundles(1), "SPREAD")
            for _ in range(16)
        ]
        assert cluster.free_gpus() == 0
        per_node = [0, 0, 0, 0]
        for g in groups:
            per_node[g.bundle_nodes[0]] += 1
        assert per_node == [4, 4, 4, 4]
