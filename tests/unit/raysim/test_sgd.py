"""Data-parallel SGD trainer tests -- the machinery behind claim C2."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, SoftDiceLoss, UNet3D
from repro.raysim import DataParallelTrainer, SyncGroup

rng = np.random.default_rng(4)


def unet_factory(use_bn=False, seed=0):
    return lambda: UNet3D(1, 1, 2, 2, use_batchnorm=use_bn,
                          rng=np.random.default_rng(seed))


def batch(n=4, seed=2):
    r = np.random.default_rng(seed)
    x = r.normal(size=(n, 1, 4, 4, 4))
    y = (r.uniform(size=(n, 1, 4, 4, 4)) > 0.8).astype(float)
    return x, y


class TestExactEquivalence:
    @pytest.mark.parametrize("replicas", [2, 4])
    def test_gradient_sharding_equals_full_batch(self, replicas):
        """N-replica training == 1-replica large-batch training, to float
        round-off, when BN is absent (TF MirroredStrategy semantics)."""
        x, y = batch(4)
        t1 = DataParallelTrainer(unet_factory(), SoftDiceLoss(),
                                 lambda m: Adam(m, lr=1e-3), 1)
        tn = DataParallelTrainer(unet_factory(), SoftDiceLoss(),
                                 lambda m: Adam(m, lr=1e-3), replicas)
        try:
            for _ in range(4):
                o1 = t1.train_step(x, y)
                on = tn.train_step(x, y)
                assert o1["loss"] == pytest.approx(on["loss"], abs=1e-12)
            np.testing.assert_allclose(
                t1.model.get_flat_params(), tn.model.get_flat_params(),
                atol=1e-10,
            )
        finally:
            t1.shutdown()
            tn.shutdown()

    def test_sync_batchnorm_restores_equivalence(self):
        x, y = batch(4)
        t1 = DataParallelTrainer(unet_factory(use_bn=True), SoftDiceLoss(),
                                 lambda m: SGD(m, lr=1e-2), 1)
        t2 = DataParallelTrainer(unet_factory(use_bn=True), SoftDiceLoss(),
                                 lambda m: SGD(m, lr=1e-2), 2,
                                 sync_batchnorm=True)
        try:
            for _ in range(3):
                o1 = t1.train_step(x, y)
                o2 = t2.train_step(x, y)
                assert o1["loss"] == pytest.approx(o2["loss"], abs=1e-10)
            np.testing.assert_allclose(
                t1.model.get_flat_params(), t2.model.get_flat_params(),
                atol=1e-8,
            )
        finally:
            t1.shutdown()
            t2.shutdown()

    def test_per_replica_bn_differs_from_full_batch(self):
        """Without sync BN the statistics are per-shard, so the runs
        diverge -- documenting the MirroredStrategy caveat."""
        x, y = batch(4)
        t1 = DataParallelTrainer(unet_factory(use_bn=True), SoftDiceLoss(),
                                 lambda m: SGD(m, lr=1e-2), 1)
        t2 = DataParallelTrainer(unet_factory(use_bn=True), SoftDiceLoss(),
                                 lambda m: SGD(m, lr=1e-2), 2,
                                 sync_batchnorm=False)
        try:
            for _ in range(2):
                t1.train_step(x, y)
                t2.train_step(x, y)
            diff = np.abs(
                t1.model.get_flat_params() - t2.model.get_flat_params()
            ).max()
            assert diff > 1e-9
        finally:
            t1.shutdown()
            t2.shutdown()


class TestInvariants:
    def test_replicas_stay_in_lockstep(self):
        x, y = batch(6)
        t = DataParallelTrainer(unet_factory(), SoftDiceLoss(),
                                lambda m: Adam(m, lr=1e-3), 3)
        try:
            for _ in range(3):
                t.train_step(x, y)
                assert t.weights_in_sync(atol=1e-12)
        finally:
            t.shutdown()

    def test_loss_decreases(self):
        x, y = batch(4)
        t = DataParallelTrainer(unet_factory(), SoftDiceLoss(),
                                lambda m: Adam(m, lr=1e-2), 2)
        try:
            first = t.train_step(x, y)["loss"]
            for _ in range(20):
                last = t.train_step(x, y)["loss"]
            assert last < first
        finally:
            t.shutdown()

    def test_uneven_shards_weighted_correctly(self):
        """Batch 5 over 2 replicas (3+2) must still equal full batch."""
        x, y = batch(5)
        t1 = DataParallelTrainer(unet_factory(), SoftDiceLoss(),
                                 lambda m: SGD(m, lr=1e-2), 1)
        t2 = DataParallelTrainer(unet_factory(), SoftDiceLoss(),
                                 lambda m: SGD(m, lr=1e-2), 2)
        try:
            o1, o2 = t1.train_step(x, y), t2.train_step(x, y)
            assert o1["loss"] == pytest.approx(o2["loss"], abs=1e-12)
            np.testing.assert_allclose(
                t1.model.get_flat_params(), t2.model.get_flat_params(),
                atol=1e-12,
            )
        finally:
            t1.shutdown()
            t2.shutdown()

    def test_batch_smaller_than_replicas_rejected(self):
        x, y = batch(2)
        t = DataParallelTrainer(unet_factory(), SoftDiceLoss(),
                                lambda m: SGD(m, lr=1e-2), 3)
        try:
            with pytest.raises(ValueError, match="sharded"):
                t.train_step(x, y)
        finally:
            t.shutdown()

    def test_mismatched_xy_rejected(self):
        t = DataParallelTrainer(unet_factory(), SoftDiceLoss(),
                                lambda m: SGD(m, lr=1e-2), 1)
        with pytest.raises(ValueError):
            t.train_step(np.zeros((2, 1, 4, 4, 4)), np.zeros((3, 1, 4, 4, 4)))

    def test_evaluate_returns_loss_and_prediction(self):
        x, y = batch(2)
        t = DataParallelTrainer(unet_factory(), SoftDiceLoss(),
                                lambda m: SGD(m, lr=1e-2), 1)
        out = t.evaluate(x, y)
        assert 0 <= out["loss"] <= 1
        assert out["prediction"].shape == y.shape

    def test_bad_replica_count(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(unet_factory(), SoftDiceLoss(),
                                lambda m: SGD(m, lr=1e-2), 0)


class TestSyncGroup:
    def test_deterministic_sum(self):
        import threading

        group = SyncGroup(3)
        results = [None] * 3

        def worker(i):
            results[i] = group.reduce(i, np.array([float(i)]), float(i))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for r in results:
            np.testing.assert_allclose(r[0], [3.0])
            assert r[1] == 3.0
