"""Hyperband scheduler and trial-retry tests."""

import pytest

from repro.raysim import (
    GridSearch,
    HyperbandScheduler,
    TrialStatus,
    tune_run,
)
from repro.raysim.tune import Trial


class TestHyperband:
    def test_star_import_exports_scheduler(self):
        ns = {}
        exec("from repro.raysim.tune import *", ns)
        assert "HyperbandScheduler" in ns
        assert "RetryPolicy" in ns
        assert "CheckpointHandle" in ns

    def test_brackets_have_increasing_grace(self):
        hb = HyperbandScheduler("dice", max_t=81, reduction_factor=3,
                                num_brackets=3)
        graces = [b.grace for b in hb.brackets]
        assert graces == sorted(graces)
        assert len(set(graces)) == 3

    def test_round_robin_bracket_assignment(self):
        hb = HyperbandScheduler("dice", max_t=27, num_brackets=3)

        def trainable(config, reporter):
            for e in range(1, 28):
                if not reporter(epoch=e, dice=config["q"]):
                    return None

        tune_run(trainable, GridSearch({"q": [0.9, 0.5, 0.1, 0.8, 0.2, 0.7]}),
                 scheduler=hb)
        brackets = set(hb._assignment.values())
        assert brackets == {0, 1, 2}

    def test_stops_weak_trials_keeps_strong(self):
        hb = HyperbandScheduler("dice", max_t=16, reduction_factor=2,
                                num_brackets=2)

        def trainable(config, reporter):
            for e in range(1, 17):
                if not reporter(epoch=e, dice=config["q"]):
                    return None

        analysis = tune_run(
            trainable,
            GridSearch({"q": [0.9, 0.8, 0.7, 0.3, 0.2, 0.1, 0.05, 0.02]}),
            scheduler=hb,
        )
        stopped = [t for t in analysis.trials if t.status is TrialStatus.STOPPED]
        assert stopped
        assert analysis.best_trial("dice").config["q"] == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            HyperbandScheduler("dice", num_brackets=0)

    def test_brackets_isolate_rung_records(self):
        hb = HyperbandScheduler("dice", max_t=16, reduction_factor=2,
                                num_brackets=2)
        ta, tb = Trial("a", {}), Trial("b", {})
        ba, bb = hb.bracket_of(ta), hb.bracket_of(tb)
        assert ba is not bb
        hb.on_result(ta, {"epoch": ba.grace, "dice": 0.9})
        hb.on_result(tb, {"epoch": bb.grace, "dice": 0.8})
        assert 0.8 not in ba._rungs.get(0, [])
        assert 0.9 not in bb._rungs.get(0, [])

    def test_retry_rolls_back_only_own_bracket(self):
        hb = HyperbandScheduler("dice", max_t=16, reduction_factor=2,
                                num_brackets=2)
        ta, tb = Trial("a", {}), Trial("b", {})
        ba, bb = hb.bracket_of(ta), hb.bracket_of(tb)
        hb.on_result(ta, {"epoch": ba.grace, "dice": 0.9})
        hb.on_result(tb, {"epoch": bb.grace, "dice": 0.8})
        hb.on_trial_retry(ta, keep_up_to=None)
        assert all(not vals for vals in ba._rungs.values())
        assert any(vals for vals in bb._rungs.values())


class TestRetries:
    def test_flaky_trial_retried_to_success(self):
        attempts = {"n": 0}

        def trainable(config, reporter):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient failure")
            reporter(score=1.0)
            return {"score": 1.0}

        analysis = tune_run(trainable, GridSearch({"a": [1]}), max_retries=3)
        trial = analysis.trials[0]
        assert trial.status is TrialStatus.TERMINATED
        assert trial.retries == 2
        assert analysis.num_errors() == 0

    def test_persistent_failure_exhausts_retries(self):
        def trainable(config, reporter):
            raise RuntimeError("hard failure")

        analysis = tune_run(trainable, GridSearch({"a": [1]}), max_retries=2)
        trial = analysis.trials[0]
        assert trial.status is TrialStatus.ERROR
        assert trial.retries == 2
        assert "hard failure" in trial.error

    def test_retry_clears_partial_results(self):
        calls = {"n": 0}

        def trainable(config, reporter):
            calls["n"] += 1
            reporter(score=0.1 * calls["n"])
            if calls["n"] == 1:
                raise RuntimeError("fail after first report")
            reporter(score=0.9)
            return None

        analysis = tune_run(trainable, GridSearch({"a": [1]}), max_retries=1)
        trial = analysis.trials[0]
        # only the successful attempt's rows remain
        assert [r["score"] for r in trial.results] == [
            pytest.approx(0.2), pytest.approx(0.9)
        ]

    def test_no_retries_by_default(self):
        calls = {"n": 0}

        def trainable(config, reporter):
            calls["n"] += 1
            raise RuntimeError("boom")

        tune_run(trainable, GridSearch({"a": [1]}))
        assert calls["n"] == 1
