"""Tune-analogue trial runner, search algorithms, ASHA tests."""

import pytest

from repro.raysim import (
    ASHAScheduler,
    GridSearch,
    RandomSearch,
    StopTrial,
    TPELite,
    TrialStatus,
    tune_run,
)


class TestGridSearch:
    def test_cross_product(self):
        g = GridSearch({"a": [1, 2], "b": ["x", "y", "z"]})
        configs = list(g.configurations())
        assert len(configs) == len(g) == 6
        assert {frozenset(c.items()) for c in configs} == {
            frozenset({("a", a), ("b", b)}.union())
            for a in (1, 2) for b in ("x", "y", "z")
        }

    def test_paper_cross_product_quote(self):
        """Section III-B2: 'the cross-product of the different values
        for each option in the configuration'."""
        g = GridSearch({"lr": [1e-3, 1e-4, 1e-5], "loss": ["d", "q"]})
        assert len(g) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            GridSearch({})
        with pytest.raises(ValueError):
            GridSearch({"a": []})


class TestRandomSearch:
    def test_seeded_reproducible(self):
        space = {"lr": [1, 2, 3], "x": lambda rng: float(rng.uniform(0, 1))}
        a = list(RandomSearch(space, 5, seed=3).configurations())
        b = list(RandomSearch(space, 5, seed=3).configurations())
        assert a == b
        assert len(a) == 5

    def test_callable_sampler_support(self):
        space = {"x": lambda rng: float(rng.uniform(10, 20))}
        for c in RandomSearch(space, 8, seed=0).configurations():
            assert 10 <= c["x"] <= 20

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSearch({"a": [1]}, 0)


class TestTPELite:
    def test_adapts_towards_good_region(self):
        space = {"x": [0, 1, 2, 3]}
        alg = TPELite(space, num_samples=60, mode="max", startup_trials=8,
                      seed=0)

        def score(cfg):
            return 10.0 if cfg["x"] == 2 else 0.0

        picks = []
        for cfg in alg.configurations():
            picks.append(cfg["x"])
            alg.observe(cfg, score(cfg))
        late = picks[30:]
        assert late.count(2) > len(late) * 0.4  # concentrates on the optimum

    def test_validation(self):
        with pytest.raises(ValueError):
            TPELite({"x": [1]}, 5, mode="best")


class TestTuneRun:
    def test_runs_all_trials_and_finds_best(self):
        def trainable(config, reporter):
            for e in range(3):
                reporter(epoch=e, score=config["a"] * 10 + e)
            return {"score": config["a"] * 10 + 2}

        analysis = tune_run(trainable, GridSearch({"a": [1, 3, 2]}))
        assert len(analysis.trials) == 3
        best = analysis.best_trial("score")
        assert best.config == {"a": 3}
        assert analysis.best_config("score") == {"a": 3}
        assert all(t.status is TrialStatus.TERMINATED for t in analysis.trials)

    def test_min_mode(self):
        def trainable(config, reporter):
            reporter(loss=config["a"])

        analysis = tune_run(trainable, GridSearch({"a": [3, 1, 2]}))
        assert analysis.best_trial("loss", mode="min").config == {"a": 1}

    def test_error_trial_recorded_not_raised(self):
        def trainable(config, reporter):
            if config["a"] == 2:
                raise RuntimeError("bad trial")
            reporter(score=config["a"])

        analysis = tune_run(trainable, GridSearch({"a": [1, 2, 3]}))
        assert analysis.num_errors() == 1
        errored = [t for t in analysis.trials if t.status is TrialStatus.ERROR]
        assert "bad trial" in errored[0].error
        # the rest still completed and best is found
        assert analysis.best_trial("score").config == {"a": 3}

    def test_raise_on_error_mode(self):
        def trainable(config, reporter):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            tune_run(trainable, GridSearch({"a": [1]}), raise_on_error=True)

    def test_stop_trial_exception(self):
        def trainable(config, reporter):
            reporter(score=1.0)
            raise StopTrial()

        analysis = tune_run(trainable, GridSearch({"a": [1]}))
        assert analysis.trials[0].status is TrialStatus.STOPPED

    def test_results_table(self):
        def trainable(config, reporter):
            reporter(score=config["a"])

        analysis = tune_run(trainable, GridSearch({"a": [1, 2]}))
        rows = analysis.results_table("score")
        assert len(rows) == 2 and rows[0]["epochs_run"] == 1

    def test_adaptive_search_receives_observations(self):
        alg = TPELite({"x": [0, 1]}, num_samples=10, seed=0)

        def trainable(config, reporter):
            reporter(score=float(config["x"]))

        tune_run(trainable, alg, metric="score")
        assert len(alg.history) == 10

    def test_no_metric_reported_raises_on_best(self):
        def trainable(config, reporter):
            return None

        analysis = tune_run(trainable, GridSearch({"a": [1]}))
        with pytest.raises(ValueError):
            analysis.best_trial("dice")


class TestASHA:
    def test_rung_times_geometric(self):
        asha = ASHAScheduler("dice", grace_period=10, reduction_factor=3,
                             max_t=250)
        assert asha.rung_times == [10, 30, 90]

    def test_bottom_half_stopped_at_rung(self):
        asha = ASHAScheduler("dice", grace_period=2, reduction_factor=2,
                             max_t=20)

        def trainable(config, reporter):
            for e in range(1, 11):
                # quality proportional to config value
                if not reporter(epoch=e, dice=config["q"] / 10 + e * 1e-4):
                    return None

        # Strong configs first: with sequential execution, ASHA's rung
        # records then cut the weaker late arrivals (a trial that is
        # best-so-far at its rung always survives, as in async ASHA).
        analysis = tune_run(
            trainable, GridSearch({"q": [8, 7, 6, 5, 4, 3, 2, 1]}),
            scheduler=asha,
        )
        stopped = [t for t in analysis.trials if t.status is TrialStatus.STOPPED]
        finished = [t for t in analysis.trials if t.status is TrialStatus.TERMINATED]
        assert stopped, "ASHA should stop weak trials"
        assert finished, "ASHA should keep strong trials"
        # epochs saved vs FIFO
        total_epochs = sum(len(t.results) for t in analysis.trials)
        assert total_epochs < 8 * 10

    def test_best_survives(self):
        asha = ASHAScheduler("dice", grace_period=2, reduction_factor=2,
                             max_t=16)

        def trainable(config, reporter):
            for e in range(1, 9):
                if not reporter(epoch=e, dice=config["q"]):
                    return None

        analysis = tune_run(trainable, GridSearch({"q": [0.1, 0.5, 0.9]}),
                            scheduler=asha)
        best = analysis.best_trial("dice")
        assert best.config == {"q": 0.9}
        assert best.status is TrialStatus.TERMINATED

    def test_validation(self):
        with pytest.raises(ValueError):
            ASHAScheduler("m", mode="bad")
        with pytest.raises(ValueError):
            ASHAScheduler("m", grace_period=0)
        with pytest.raises(ValueError):
            ASHAScheduler("m", reduction_factor=1)
