"""Placement / makespan policy tests."""

import pytest

from repro.raysim import fifo_schedule, lpt_schedule, makespan_lower_bound


class TestFIFO:
    def test_single_worker_serialises(self):
        r = fifo_schedule([1, 2, 3], 1)
        assert r.makespan == 6.0
        assert [a[0] for a in r.assignments] == [0, 0, 0]

    def test_greedy_earliest_available(self):
        # workers: w0 gets 3, w1 gets 2; trial 2 goes to w1 (free at 2)
        r = fifo_schedule([3, 2, 4], 2)
        assert r.assignments[2][0] == 1
        assert r.assignments[2][1] == 2.0
        assert r.makespan == 6.0

    def test_enough_workers_is_max(self):
        assert fifo_schedule([5, 1, 2], 3).makespan == 5.0

    def test_per_trial_overhead_added(self):
        r = fifo_schedule([1.0, 1.0], 1, per_trial_overhead=0.5)
        assert r.makespan == 3.0

    def test_empty(self):
        assert fifo_schedule([], 4).makespan == 0.0

    def test_worker_loads(self):
        r = fifo_schedule([3, 2, 4, 1], 2)
        loads = r.worker_loads(2)
        assert sum(loads) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fifo_schedule([1], 0)
        with pytest.raises(ValueError):
            fifo_schedule([-1], 2)


class TestLPT:
    def test_sorts_longest_first(self):
        # A long job submitted last ruins FIFO; LPT schedules it first.
        bad_order = [1, 1, 1, 1, 6]
        assert lpt_schedule(bad_order, 2).makespan == 6.0
        assert fifo_schedule(bad_order, 2).makespan == 8.0

    def test_lpt_within_4_3_of_lower_bound(self):
        durations = [5, 4, 3, 3, 3]
        lb = makespan_lower_bound(durations, 2)  # 9
        got = lpt_schedule(durations, 2).makespan
        assert lb <= got <= (4 / 3) * lb + 1e-9

    def test_lpt_never_worse_than_fifo_here(self):
        cases = [
            ([8, 7, 6, 5, 4, 3], 3),
            ([10, 1, 1, 1, 1, 1, 1, 1, 1, 1], 2),
            ([2, 2, 2, 2], 4),
        ]
        for durations, n in cases:
            assert lpt_schedule(durations, n).makespan <= \
                fifo_schedule(durations, n).makespan + 1e-12

    def test_assignments_in_input_order(self):
        r = lpt_schedule([1, 9, 2], 2)
        # assignments indexed by input position despite sorted execution
        assert r.assignments[1][2] - r.assignments[1][1] == 9.0


class TestLowerBound:
    def test_both_bounds(self):
        assert makespan_lower_bound([5, 1, 1], 4) == 5.0       # longest trial
        assert makespan_lower_bound([2, 2, 2, 2], 2) == 4.0    # total / workers

    def test_schedules_respect_bound(self):
        durations = [3.0, 1.5, 4.2, 2.7, 0.9, 5.1]
        for n in (1, 2, 3, 6):
            lb = makespan_lower_bound(durations, n)
            assert fifo_schedule(durations, n).makespan >= lb - 1e-12
            assert lpt_schedule(durations, n).makespan >= lb - 1e-12

    def test_overhead_in_bound(self):
        assert makespan_lower_bound([1.0], 1, per_trial_overhead=0.5) == 1.5

    def test_empty(self):
        assert makespan_lower_bound([], 3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            makespan_lower_bound([1], 0)
