"""Object store tests: refs, resolution, LRU eviction."""

import numpy as np
import pytest

from repro.raysim import ObjectStore, ObjectStoreError


class TestBasics:
    def test_put_get(self):
        store = ObjectStore()
        ref = store.put({"a": 1})
        assert store.get(ref) == {"a": 1}

    def test_refs_unique(self):
        store = ObjectStore()
        r1, r2 = store.put(1), store.put(1)
        assert r1 != r2

    def test_nested_resolution(self):
        store = ObjectStore()
        refs = [store.put(i) for i in range(3)]
        assert store.get(refs) == [0, 1, 2]
        assert store.get((refs[0], 5)) == (0, 5)

    def test_non_ref_passthrough(self):
        assert ObjectStore().get(42) == 42

    def test_missing_ref(self):
        store = ObjectStore()
        ref = store.put(1)
        store.delete(ref)
        with pytest.raises(ObjectStoreError):
            store.get(ref)

    def test_reserve_fulfill(self):
        store = ObjectStore()
        ref = store.reserve(owner="task")
        assert not store.contains(ref)
        store.fulfill(ref, "done")
        assert store.get(ref) == "done"

    def test_len_and_counters(self):
        store = ObjectStore()
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.puts == 2


class TestEviction:
    def test_lru_eviction_under_capacity(self):
        store = ObjectStore(capacity_bytes=3000)
        a = store.put(np.zeros(128))   # 1024 B
        b = store.put(np.zeros(128))
        store.get(a)                   # touch a -> b is now LRU
        c = store.put(np.zeros(256))   # 2048 B, must evict b
        assert store.contains(a) is False or store.contains(b) is False
        # b (LRU) evicted first
        assert not store.contains(b)
        assert store.contains(c)
        assert store.evictions >= 1

    def test_oversized_object_rejected(self):
        store = ObjectStore(capacity_bytes=100)
        with pytest.raises(ObjectStoreError, match="exceeds"):
            store.put(np.zeros(1000))

    def test_bytes_used_tracks(self):
        store = ObjectStore()
        store.put(np.zeros(128))
        assert store.bytes_used == 1024

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ObjectStore(capacity_bytes=0)
