"""Property-based tests (hypothesis) on the neural-network substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import (
    QuadraticSoftDiceLoss,
    SoftDiceLoss,
    dice_coefficient,
    iou,
    soft_dice_coefficient,
)
from repro.nn.functional import (
    conv3d_forward,
    conv3d_output_shape,
    maxpool3d_backward,
    maxpool3d_forward,
)

SMALL = {"max_examples": 40, "deadline": None}


def masks(shape=(3, 3, 3)):
    return arrays(np.float64, shape, elements=st.sampled_from([0.0, 1.0]))


def probs(shape=(2, 1, 2, 2, 2)):
    return arrays(
        np.float64, shape,
        elements=st.floats(0.0, 1.0, allow_nan=False),
    )


class TestDiceProperties:
    @settings(**SMALL)
    @given(a=masks(), b=masks())
    def test_dice_in_unit_interval_and_symmetric(self, a, b):
        d = dice_coefficient(a, b)
        assert 0.0 <= d <= 1.0
        assert d == dice_coefficient(b, a)

    @settings(**SMALL)
    @given(a=masks())
    def test_self_dice_is_one(self, a):
        assert dice_coefficient(a, a) == 1.0

    @settings(**SMALL)
    @given(a=masks(), b=masks())
    def test_dice_iou_relation(self, a, b):
        """dice = 2 iou / (1 + iou) for all hard masks."""
        d, j = dice_coefficient(a, b), iou(a, b)
        assert abs(d - 2 * j / (1 + j)) < 1e-12

    @settings(**SMALL)
    @given(p=probs(), t=masks((2, 1, 2, 2, 2)))
    def test_soft_dice_bounded(self, p, t):
        assert 0.0 < soft_dice_coefficient(p, t) <= 1.0 + 1e-12


class TestLossProperties:
    @settings(**SMALL)
    @given(p=probs(), t=masks((2, 1, 2, 2, 2)))
    def test_dice_loss_in_unit_interval(self, p, t):
        loss, grad = SoftDiceLoss().forward(p, t)
        assert 0.0 <= loss <= 1.0
        assert grad.shape == p.shape
        assert np.isfinite(grad).all()

    @settings(**SMALL)
    @given(p=probs(), t=masks((2, 1, 2, 2, 2)))
    def test_quadratic_dice_loss_finite(self, p, t):
        loss, grad = QuadraticSoftDiceLoss().forward(p, t)
        assert 0.0 <= loss <= 1.0 + 1e-12
        assert np.isfinite(grad).all()

    @settings(**SMALL)
    @given(t=masks((2, 1, 2, 2, 2)))
    def test_perfect_prediction_zero_loss(self, t):
        loss, _ = SoftDiceLoss().forward(t.copy(), t)
        assert loss < 1e-9


class TestConvProperties:
    @settings(**SMALL)
    @given(
        d=st.integers(3, 8), h=st.integers(3, 8), w=st.integers(3, 8),
        pad=st.integers(0, 2), stride=st.integers(1, 2),
    )
    def test_output_shape_formula_matches_kernel(self, d, h, w, pad, stride):
        x = np.zeros((1, 1, d, h, w))
        wgt = np.zeros((1, 1, 3, 3, 3))
        expect = None
        try:
            expect = conv3d_output_shape((d, h, w), 3, stride, pad)
        except ValueError:
            return  # illegal geometry is rejected consistently
        y = conv3d_forward(x, wgt, stride=stride, pad=pad)
        assert y.shape[2:] == expect

    @settings(**SMALL)
    @given(x=arrays(np.float64, (1, 2, 4, 4, 4),
                    elements=st.floats(-5, 5, allow_nan=False)))
    def test_conv_linearity(self, x):
        """conv(a x) == a conv(x) -- convolution is linear."""
        rng = np.random.default_rng(0)
        w = rng.normal(size=(3, 2, 3, 3, 3))
        y1 = conv3d_forward(2.5 * x, w, pad=1)
        y2 = 2.5 * conv3d_forward(x, w, pad=1)
        np.testing.assert_allclose(y1, y2, atol=1e-9)


class TestPoolProperties:
    @settings(**SMALL)
    @given(x=arrays(np.float64, (1, 1, 4, 4, 4),
                    elements=st.floats(-10, 10, allow_nan=False)))
    def test_max_pool_dominates_input_mean(self, x):
        y, _ = maxpool3d_forward(x, 2)
        assert y.max() == x.max()
        assert y.min() >= x.min()

    @settings(**SMALL)
    @given(x=arrays(np.float64, (1, 1, 4, 4, 4),
                    elements=st.floats(-10, 10, allow_nan=False)),
           dy=arrays(np.float64, (1, 1, 2, 2, 2),
                     elements=st.floats(-3, 3, allow_nan=False)))
    def test_max_pool_backward_preserves_mass(self, x, dy):
        """Gradient scatter conserves the total gradient."""
        _, arg = maxpool3d_forward(x, 2)
        dx = maxpool3d_backward(dy, arg, x.shape, 2)
        assert abs(dx.sum() - dy.sum()) < 1e-9


class TestWorkspaceProperties:
    """The GEMM backend's scratch arena must never alias live results."""

    @settings(**SMALL)
    @given(
        shape=st.tuples(st.integers(3, 6), st.integers(3, 6),
                        st.integers(3, 6)),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 1),
        repeats=st.integers(1, 3),
    )
    def test_reused_scratch_never_aliases_outputs(self, shape, kernel,
                                                  stride, pad, repeats):
        from repro.nn import use_backend, workspace
        from repro.nn.functional import conv3d_backward

        rng = np.random.default_rng(hash((shape, kernel, stride)) % 2**32)
        x = rng.normal(size=(1, 2, *shape))
        w = rng.normal(size=(2, 2, kernel, kernel, kernel))
        d, h, wd = conv3d_output_shape(shape, (kernel,) * 3, (stride,) * 3,
                                       (pad,) * 3)
        if min(d, h, wd) < 1:
            return  # config produces an empty output volume
        with use_backend("gemm"):
            y = conv3d_forward(x, w, None, stride, pad)
            dx, dw, _ = conv3d_backward(np.ones_like(y), x, w, stride, pad,
                                        with_bias=False)
            frozen = (y.copy(), dx.copy(), dw.copy())
            # hammer the arena with the same shapes: recycled scratch
            # must never overwrite previously returned results
            for _ in range(repeats):
                conv3d_forward(x, w, None, stride, pad)
                conv3d_backward(np.ones_like(y), x, w, stride, pad,
                                with_bias=False)
            ws = workspace()
            pooled = [buf for bufs in ws._free.values() for buf in bufs]
            for out, ref in zip((y, dx, dw), frozen):
                np.testing.assert_array_equal(out, ref)
                assert all(not np.shares_memory(out, buf) for buf in pooled)
