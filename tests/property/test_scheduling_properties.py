"""Property-based tests on placement groups, hybrid makespans and
failure injection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import marenostrum_cte
from repro.cluster.failures import FailureModel, run_with_failures
from repro.raysim import (
    InsufficientResources,
    RayCluster,
    create_placement_group,
    fifo_schedule,
    makespan_lower_bound,
)

SMALL = {"max_examples": 30, "deadline": None}


class TestPlacementGroupProperties:
    @settings(**SMALL)
    @given(
        num_nodes=st.integers(1, 6),
        sizes=st.lists(st.integers(1, 4), min_size=1, max_size=8),
        strategy=st.sampled_from(["STRICT_PACK", "PACK", "SPREAD",
                                  "STRICT_SPREAD"]),
    )
    def test_atomicity_and_accounting(self, num_nodes, sizes, strategy):
        """Either all bundles are granted (and the free count drops by
        exactly the request) or none are (free count unchanged)."""
        cluster = RayCluster(marenostrum_cte(num_nodes))
        bundles = [{"GPU": float(s)} for s in sizes]
        total_requested = sum(sizes)
        before = cluster.free_gpus()
        try:
            pg = create_placement_group(cluster, bundles, strategy)
        except InsufficientResources:
            assert cluster.free_gpus() == before
            return
        assert cluster.free_gpus() == before - total_requested
        if strategy == "STRICT_PACK":
            assert len(pg.nodes()) == 1
        if strategy == "STRICT_SPREAD":
            assert len(pg.nodes()) == len(bundles)
        pg.remove()
        assert cluster.free_gpus() == before

    @settings(**SMALL)
    @given(
        num_nodes=st.integers(1, 5),
        sizes=st.lists(st.integers(1, 4), min_size=1, max_size=6),
    )
    def test_no_node_oversubscribed(self, num_nodes, sizes):
        cluster = RayCluster(marenostrum_cte(num_nodes))
        bundles = [{"GPU": float(s)} for s in sizes]
        try:
            create_placement_group(cluster, bundles, "PACK")
        except InsufficientResources:
            return
        for node in cluster.nodes:
            assert node.free["GPU"] >= -1e-9


class TestFailureProperties:
    @settings(**SMALL)
    @given(
        durations=st.lists(st.floats(1.0, 50.0), min_size=1, max_size=10),
        workers=st.integers(1, 6),
        seed=st.integers(0, 50),
    )
    def test_failures_respect_work_conservation(self, durations, workers, seed):
        """Failures cannot beat the work/longest-trial lower bound.

        (They CAN beat the healthy greedy-FIFO makespan: a failed trial
        re-queues at the back, and Graham's list-scheduling anomaly
        means reordering sometimes packs better -- hypothesis found
        exactly that counterexample, so the honest invariant is the
        bound, not the healthy schedule.)
        """
        flaky = run_with_failures(
            durations, workers,
            FailureModel(mtbf_s=40.0, repair_s=5.0), seed=seed,
        )
        lb = makespan_lower_bound(durations, workers)
        assert flaky.makespan >= lb - 1e-9
        assert flaky.wasted_seconds >= 0
        if flaky.num_failures == 0:
            healthy = fifo_schedule(durations, workers).makespan
            assert flaky.makespan == healthy  # no anomaly without failures

    @settings(**SMALL)
    @given(
        durations=st.lists(st.floats(1.0, 50.0), min_size=1, max_size=8),
        workers=st.integers(1, 4),
        seed=st.integers(0, 50),
    )
    def test_every_trial_completes_exactly_once(self, durations, workers, seed):
        res = run_with_failures(
            durations, workers, FailureModel(mtbf_s=30.0, repair_s=2.0),
            seed=seed,
        )
        done = [e.name for e in res.timeline.events if e.category == "train"]
        assert sorted(done) == sorted(
            f"trial_{i:02d}" for i in range(len(durations))
        )


class TestHybridProperties:
    @settings(**SMALL)
    @given(num_gpus=st.integers(1, 32), g=st.integers(1, 8))
    def test_hybrid_respects_makespan_bound(self, num_gpus, g):
        from repro.core.hybrid import simulate_hybrid_search
        from repro.perf import calibrated_model, paper_search_grid

        if g > num_gpus:
            return
        model = calibrated_model()
        grid = paper_search_grid()[:6]  # keep the property cheap
        # seed=None -> expected (jitter-free) durations match the bound
        result, _ = simulate_hybrid_search(grid, model, num_gpus, g,
                                           seed=None)
        durations = [model.trial_time(c, g) for c in grid]
        slots = num_gpus // g
        lb = makespan_lower_bound(durations, slots)
        assert result.elapsed_seconds >= lb - 1e-6
