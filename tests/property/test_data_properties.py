"""Property-based tests on patching, augmentation and pipeline algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import (
    Augmenter,
    Dataset,
    PatchSpec,
    extract_patches,
    patch_grid,
    random_flip,
    random_gaussian_noise,
    random_intensity_scale,
    random_intensity_shift,
    stitch_patches,
)

SMALL = {"max_examples": 40, "deadline": None}


class TestPatchProperties:
    @settings(**SMALL)
    @given(
        dim=st.integers(4, 12),
        patch=st.integers(2, 4),
        stride=st.integers(1, 4),
    )
    def test_grid_covers_every_voxel(self, dim, patch, stride):
        stride = min(stride, patch)
        spec = PatchSpec((patch,) * 3, (stride,) * 3)
        if patch > dim:
            return
        covered = np.zeros((dim, dim, dim), dtype=bool)
        for d, h, w in patch_grid((dim, dim, dim), spec):
            covered[d : d + patch, h : h + patch, w : w + patch] = True
        assert covered.all()

    @settings(**SMALL)
    @given(
        vol=arrays(np.float64, (1, 6, 6, 6),
                   elements=st.floats(-5, 5, allow_nan=False)),
        stride=st.integers(1, 3),
    )
    def test_extract_stitch_identity(self, vol, stride):
        """Stitching back patches of the SAME volume reproduces it for
        any legal overlap (averaging equal values is a no-op)."""
        spec = PatchSpec((3, 3, 3), (stride,) * 3)
        patches, offsets = extract_patches(vol, spec)
        back = stitch_patches(patches, offsets, vol.shape[1:])
        np.testing.assert_allclose(back, vol, atol=1e-10)


class TestAugmentProperties:
    image = arrays(np.float32, (2, 4, 4, 4),
                   elements=st.floats(-3, 3, allow_nan=False, width=32))
    mask = arrays(np.float32, (1, 4, 4, 4),
                  elements=st.sampled_from([0.0, 1.0]))

    @settings(**SMALL)
    @given(img=image, msk=mask, seed=st.integers(0, 100))
    def test_mask_stays_binary_and_volume_preserved(self, img, msk, seed):
        """No augmentation may change the number of positive voxels or
        de-binarise the mask (flips permute, intensity ops skip it)."""
        aug = Augmenter(
            [random_flip(p=0.7), random_intensity_shift(0.3),
             random_intensity_scale(0.2), random_gaussian_noise(0.1)],
            seed=seed,
        )
        img2, msk2 = aug(img, msk)
        assert img2.shape == img.shape and msk2.shape == msk.shape
        assert set(np.unique(msk2)) <= {0.0, 1.0}
        assert msk2.sum() == msk.sum()

    @settings(**SMALL)
    @given(img=image, msk=mask, seed=st.integers(0, 100))
    def test_replay_determinism(self, img, msk, seed):
        aug = Augmenter([random_flip(p=0.5), random_gaussian_noise(0.05)],
                        seed=seed)
        a_img, a_msk = aug(img, msk)
        aug.reset()
        b_img, b_msk = aug(img, msk)
        np.testing.assert_array_equal(a_img, b_img)
        np.testing.assert_array_equal(a_msk, b_msk)


class TestDatasetAlgebra:
    @settings(**SMALL)
    @given(
        n=st.integers(0, 30),
        batch=st.integers(1, 7),
        shards=st.integers(1, 5),
    )
    def test_shard_then_concat_is_identity_set(self, n, batch, shards):
        full = list(range(n))
        collected = []
        for i in range(shards):
            collected += Dataset.from_list(full).shard(shards, i).to_list()
        assert sorted(collected) == full

    @settings(**SMALL)
    @given(n=st.integers(0, 25), batch=st.integers(1, 6))
    def test_batch_unbatch_identity(self, n, batch):
        items = [np.full((2,), float(i)) for i in range(n)]
        out = Dataset.from_list(items).batch(batch).unbatch().to_list()
        assert len(out) == n
        for a, b in zip(items, out):
            np.testing.assert_array_equal(a, b)

    @settings(**SMALL)
    @given(n=st.integers(1, 20), k=st.integers(1, 20),
           seed=st.integers(0, 50))
    def test_shuffle_preserves_multiset(self, n, k, seed):
        out = Dataset.range(n).shuffle(buffer_size=k, seed=seed).to_list()
        assert sorted(out) == list(range(n))
