"""Property-based tests on records, collectives, scheduling, simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster import Resource, Simulator, ring_allreduce
from repro.data.records import decode_example, encode_example
from repro.data.splits import split_indices
from repro.raysim import fifo_schedule, lpt_schedule, makespan_lower_bound

SMALL = {"max_examples": 40, "deadline": None}


class TestRecordRoundtrip:
    @settings(**SMALL)
    @given(
        arrs=st.dictionaries(
            keys=st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1, max_size=8,
            ),
            values=arrays(
                dtype=st.sampled_from(
                    [np.float32, np.float64, np.uint8, np.int32]
                ),
                shape=st.lists(st.integers(0, 4), min_size=0, max_size=3)
                .map(tuple),
                elements=st.integers(0, 100),
            ),
            max_size=4,
        )
    )
    def test_encode_decode_identity(self, arrs):
        back = decode_example(encode_example(arrs))
        assert set(back) == set(arrs)
        for k in arrs:
            np.testing.assert_array_equal(back[k], arrs[k])
            assert back[k].dtype == arrs[k].dtype
            assert back[k].shape == arrs[k].shape


class TestAllReduceProperties:
    @settings(**SMALL)
    @given(
        n=st.integers(1, 8),
        size=st.integers(1, 40),
        seed=st.integers(0, 1000),
    )
    def test_sum_invariant_any_topology(self, n, size, seed):
        rng = np.random.default_rng(seed)
        bufs = [rng.normal(size=size) for _ in range(n)]
        out = ring_allreduce(bufs)
        expect = np.sum(bufs, axis=0)
        for o in out:
            np.testing.assert_allclose(o, expect, atol=1e-10)


class TestSchedulingProperties:
    durations = st.lists(st.floats(0.1, 100.0, allow_nan=False),
                         min_size=1, max_size=30)

    @settings(**SMALL)
    @given(d=durations, n=st.integers(1, 8))
    def test_makespan_bounds(self, d, n):
        lb = makespan_lower_bound(d, n)
        fifo = fifo_schedule(d, n).makespan
        lpt = lpt_schedule(d, n).makespan
        assert lb - 1e-9 <= lpt <= sum(d) + 1e-9
        assert lb - 1e-9 <= fifo <= sum(d) + 1e-9
        # Graham bound: greedy list scheduling <= 2 OPT <= 2 LB * 2
        assert fifo <= 2 * lb + 1e-9

    @settings(**SMALL)
    @given(d=durations, n=st.integers(1, 8))
    def test_all_work_conserved(self, d, n):
        r = fifo_schedule(d, n)
        loads = r.worker_loads(n)
        assert abs(sum(loads) - sum(d)) < 1e-6
        # no trial starts before its worker frees
        per_worker: dict[int, list] = {}
        for w, s, e in r.assignments:
            per_worker.setdefault(w, []).append((s, e))
        for spans in per_worker.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9  # no overlap on one GPU

    @settings(**SMALL)
    @given(d=durations, n=st.integers(1, 8))
    def test_event_simulator_agrees_with_analytic_fifo(self, d, n):
        """The discrete-event execution of greedy FIFO placement equals
        the analytic makespan."""
        sim = Simulator()
        pool = Resource(sim, capacity=n)

        def proc(duration):
            yield pool.request()
            yield sim.timeout(duration)
            pool.release()

        for dur in d:
            sim.process(proc(dur))
        got = sim.run()
        assert abs(got - fifo_schedule(d, n).makespan) < 1e-9


class TestSplitProperties:
    @settings(**SMALL)
    @given(n=st.integers(3, 600), seed=st.integers(0, 99))
    def test_split_partitions(self, n, seed):
        s = split_indices(n, seed=seed)
        combined = list(s.train) + list(s.val) + list(s.test)
        assert sorted(combined) == list(range(n))
        assert all(c >= 1 for c in s.sizes)


class TestStragglerProperties:
    @settings(**SMALL)
    @given(n=st.integers(1, 64), sigma=st.floats(0.0, 0.5, allow_nan=False))
    def test_factor_at_least_one(self, n, sigma):
        from repro.perf import expected_max_factor

        f = expected_max_factor(n, sigma)
        assert f >= 1.0
        if n > 1 and sigma > 0.01:
            assert f > 1.0
