"""End-to-end profiling: cross-process trace merge, and the profiler's
verdicts pinned to the paper's claims C1 (zero sync overhead for
experiment parallelism) and C3 (raw NIfTI decode dominates the input
pipeline) on really-executed runs."""

import json
import os

from repro.core import (
    DistMISRunner,
    ExperimentSettings,
    HyperparameterSpace,
    MISPipeline,
    train_trial,
)
from repro.telemetry import StepAttribution, TelemetryHub, analyze_run_dir


def _settings(**overrides):
    base = dict(num_subjects=6, volume_shape=(8, 8, 8), epochs=1,
                base_filters=2, depth=2)
    base.update(overrides)
    return ExperimentSettings(**base)


class TestProfiledProcessSearch:
    def test_merged_trace_spans_multiple_worker_pids(self, tmp_path):
        hub = TelemetryHub(run_dir=tmp_path / "run", profile=True)
        runner = DistMISRunner(
            space=HyperparameterSpace({"learning_rate": [3e-3, 1e-3],
                                       "loss": ["dice", "bce"]}),
            settings=_settings(epochs=2),
            telemetry=hub,
        )
        result = runner.run_inprocess("experiment_parallel",
                                      executor="process", max_workers=2)
        assert len(result.outcomes) == 4

        run_dir = tmp_path / "run"
        trace = json.loads((run_dir / "trace.json").read_text())
        spans = [e for e in trace if e["ph"] == "X"]
        driver_pid = os.getpid()

        # one merged Chrome trace with spans from >= 2 worker pids
        worker_pids = {e["pid"] for e in spans if e["pid"] != driver_pid}
        assert len(worker_pids) >= 2
        assert any(e["pid"] == driver_pid for e in spans)

        # every process row is named, and the anchor is recorded
        names = {e["args"]["name"] for e in trace
                 if e["name"] == "process_name"}
        assert "driver" in names
        assert sum(n.startswith("worker-") for n in names) >= 2
        (anchor,) = [e for e in trace if e["name"] == "clock_anchor"]
        assert anchor["args"]["wall_t0_unix"] == hub.tracer.wall_t0

        # alignment: worker spans sit inside the driver's run window
        (run_span,) = [e for e in spans if e["cat"] == "run"]
        run_end = run_span["ts"] + run_span["dur"]
        for e in spans:
            if e["pid"] != driver_pid:
                assert e["ts"] >= 0.0
                assert e["ts"] + e["dur"] <= run_end + 1e6  # 1 s slack

        # worker-side training metrics survive the merge
        rows = [json.loads(line) for line in
                (run_dir / "metrics.jsonl").read_text().splitlines()]
        by_name = {r["name"]: r for r in rows
                   if not r.get("labels")}
        assert by_name["train_steps_total"]["value"] > 0

        # profile.json + the analyzer verdict work off the run dir
        profile = json.loads((run_dir / "profile.json").read_text())
        assert profile["source"] == "measured"
        assert sum(profile["buckets"].values()) > 0
        assert len(profile["workers"]) >= 2
        assert len(profile["trials"]) == 4
        report = analyze_run_dir(run_dir)
        assert report.verdict
        assert report.gpu_seconds_total > 0


class TestClaimC3:
    def test_input_bound_fraction_rises_with_online_nifti(self):
        # same cohort, same training -- only the ingestion path differs:
        # offline-binarised records vs per-epoch online NIfTI decode
        config = {"learning_rate": 3e-3, "loss": "dice"}
        settings = _settings(volume_shape=(16, 16, 16))

        fractions = {}
        outcomes = {}
        for mode in ("records", "nifti"):
            hub = TelemetryHub(profile=True)
            pipeline = MISPipeline(settings, telemetry=hub, input_mode=mode)
            outcomes[mode] = train_trial(config, settings, pipeline,
                                         telemetry=hub)
            att = StepAttribution.from_samples(hub.metrics.samples())
            assert att.total > 0
            fractions[mode] = att.input_bound_fraction
            if mode == "nifti":
                stages = {r["labels"]["stage"] for r in hub.metrics.samples()
                          if r["name"] == "pipeline_stage_seconds_total"}
                assert "nifti_decode" in stages

        # claim C3: the online path spends strictly more of its step
        # time waiting on data than the binarised one
        assert fractions["nifti"] > fractions["records"]
        # both ingestion paths feed bit-identical tensors
        assert outcomes["nifti"].val_dice == outcomes["records"].val_dice


class TestClaimC1:
    def test_sync_bucket_nonzero_only_for_data_parallel(self):
        config = {"learning_rate": 3e-3, "loss": "dice"}
        settings = _settings()

        sync = {}
        for replicas in (1, 2):
            hub = TelemetryHub(profile=True)
            pipeline = MISPipeline(settings, telemetry=hub)
            train_trial(config, settings, pipeline,
                        num_replicas=replicas, telemetry=hub)
            att = StepAttribution.from_samples(hub.metrics.samples())
            assert att.compute > 0
            sync[replicas] = att.sync

        # claim C1: independent 1-replica trials pay exactly zero
        # gradient synchronisation; the data-parallel path pays real time
        assert sync[1] == 0.0
        assert sync[2] > 0.0


class TestProfileCLI:
    def test_search_profile_flag_and_profile_command(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = tmp_path / "prof"
        rc = main([
            "search", "--subjects", "6", "--volume", "8", "8", "8",
            "--epochs", "1", "--base-filters", "2", "--depth", "2",
            "--lr", "3e-3", "--losses", "dice",
            "--profile", str(run_dir),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== trials" in out          # live progress table
        assert "bottleneck report" in out  # final verdict
        assert (run_dir / "profile.json").exists()

        rc = main(["profile", str(run_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "step-time attribution" in out
        assert "verdict:" in out

    def test_profile_command_rejects_empty_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["profile", str(tmp_path)]) == 1
        assert "profile.json" in capsys.readouterr().err

    def test_simulate_profile_uses_cost_model(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = tmp_path / "sim"
        rc = main(["simulate", "experiment_parallel", "4",
                   "--seed", "0", "--profile", str(run_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bottleneck report (source: cost_model)" in out
        profile = json.loads((run_dir / "profile.json").read_text())
        assert profile["source"] == "cost_model"
        # experiment-parallel trials are 1-GPU: zero sync (claim C1)
        assert profile["buckets"]["sync"] == 0.0

    def test_simulate_profile_data_parallel_has_sync(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = tmp_path / "simdp"
        rc = main(["simulate", "data_parallel", "8",
                   "--seed", "0", "--profile", str(run_dir)])
        assert rc == 0
        profile = json.loads((run_dir / "profile.json").read_text())
        assert profile["buckets"]["sync"] > 0.0
