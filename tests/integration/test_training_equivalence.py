"""Integration: distribution does not change the model (claim C2).

The paper's Section IV-C validates that its pipeline modifications and
distribution strategies keep the Dice score unchanged.  Here the claim
is *proved* at reduced scale: full trials run under every distribution
mode and the resulting models are compared.
"""

import pytest

from repro.core import ExperimentSettings, MISPipeline, train_trial


def make_settings(batch_per_replica: int, **kw) -> ExperimentSettings:
    """12 subjects -> 8 training volumes, so a global batch of 4 divides
    every epoch evenly and replica counts can be compared exactly."""
    defaults = dict(
        num_subjects=12, volume_shape=(16, 16, 16), epochs=3,
        base_filters=2, depth=2, seed=3, use_batchnorm=False,
        scale_learning_rate=False,  # isolate sharding from the LR rule
        batch_per_replica=batch_per_replica,
    )
    defaults.update(kw)
    return ExperimentSettings(**defaults)


CONFIG = {"learning_rate": 3e-3, "loss": "dice"}


class TestDistributionInvariance:
    def test_full_trial_identical_at_fixed_global_batch(self, tmp_path):
        """Global batch 4 as one device's batch-of-4 vs two devices'
        batch-of-2 shards: identical epoch histories and dice.  (The
        paper's *deployed* recipe instead grows the global batch with
        #GPUs and rescales the LR -- statistically, not bitwise,
        equivalent; this test pins the sharding math itself.)"""
        s1 = make_settings(batch_per_replica=4)
        s2 = make_settings(batch_per_replica=2)
        pipe = MISPipeline(s1, record_dir=tmp_path)
        out1 = train_trial(CONFIG, s1, pipe, num_replicas=1)
        out2 = train_trial(CONFIG, s2, pipe, num_replicas=2)
        for r1, r2 in zip(out1.history, out2.history):
            assert r1.train_loss == pytest.approx(r2.train_loss, abs=1e-9)
            assert r1.val_dice == pytest.approx(r2.val_dice, abs=1e-9)
        assert out1.test_dice == pytest.approx(out2.test_dice, abs=1e-9)

    def test_four_way_sharding_identical(self, tmp_path):
        s1 = make_settings(batch_per_replica=4)
        s4 = make_settings(batch_per_replica=1)
        pipe = MISPipeline(s1, record_dir=tmp_path)
        out1 = train_trial(CONFIG, s1, pipe, num_replicas=1)
        out4 = train_trial(CONFIG, s4, pipe, num_replicas=4)
        assert out1.history[-1].train_loss == pytest.approx(
            out4.history[-1].train_loss, abs=1e-9
        )
        assert out1.test_dice == pytest.approx(out4.test_dice, abs=1e-9)

    def test_sync_batchnorm_trial_equivalence(self, tmp_path):
        """With BN + the sync reducer, distribution remains exact."""
        s1 = make_settings(batch_per_replica=4, epochs=2,
                           use_batchnorm=True, sync_batchnorm=True)
        s2 = make_settings(batch_per_replica=2, epochs=2,
                           use_batchnorm=True, sync_batchnorm=True)
        pipe = MISPipeline(s1, record_dir=tmp_path)
        out1 = train_trial(CONFIG, s1, pipe, num_replicas=1)
        out2 = train_trial(CONFIG, s2, pipe, num_replicas=2)
        for r1, r2 in zip(out1.history, out2.history):
            assert r1.train_loss == pytest.approx(r2.train_loss, abs=1e-7)
        assert out1.test_dice == pytest.approx(out2.test_dice, abs=1e-6)

    def test_experiment_vs_data_parallel_same_model(self, tmp_path):
        """A configuration trained as 'one experiment-parallel trial'
        (1 GPU) equals the same configuration trained data-parallel at
        the same global batch -- the distribution method is about
        *time*, not results."""
        s1 = make_settings(batch_per_replica=4)
        s2 = make_settings(batch_per_replica=2)
        pipe = MISPipeline(s1, record_dir=tmp_path)
        ep = train_trial(CONFIG, s1, pipe, num_replicas=1)
        dp = train_trial(CONFIG, s2, pipe, num_replicas=2)
        assert ep.val_dice == pytest.approx(dp.val_dice, abs=1e-9)

    def test_rerun_reproducible(self, tmp_path):
        s = make_settings(batch_per_replica=2)
        pipe = MISPipeline(s, record_dir=tmp_path)
        a = train_trial(CONFIG, s, pipe, num_replicas=2)
        b = train_trial(CONFIG, s, pipe, num_replicas=2)
        assert [r.train_loss for r in a.history] == [
            r.train_loss for r in b.history
        ]
