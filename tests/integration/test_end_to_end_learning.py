"""Integration: the pipeline actually learns segmentation (C2/C4/E7/E8)."""

import pytest

from repro.core import ExperimentSettings, MISPipeline, train_trial


@pytest.fixture(scope="module")
def learn_settings():
    return ExperimentSettings(
        num_subjects=10, volume_shape=(16, 16, 16), epochs=25,
        base_filters=4, depth=2, seed=1,
    )


@pytest.fixture(scope="module")
def pipeline(learn_settings, tmp_path_factory):
    return MISPipeline(learn_settings, record_dir=tmp_path_factory.mktemp("r"))


@pytest.fixture(scope="module")
def trained(learn_settings, pipeline):
    return train_trial(
        {"learning_rate": 3e-3, "loss": "dice"},
        learn_settings, pipeline, num_replicas=1,
        convergence_patience=5,
    )


class TestLearning:
    def test_reaches_state_of_art_band(self, trained):
        """The paper reports DSC ~0.89 on its task; the synthetic task
        must be learned to at least that band."""
        assert trained.val_dice >= 0.85
        assert trained.test_dice >= 0.80

    def test_loss_decreases_over_training(self, trained):
        """Soft Dice under eps=0.1 on ~60-voxel tumours descends slowly
        in absolute terms; require a clear, monotone-ish improvement
        rather than a halving."""
        losses = [r.train_loss for r in trained.history]
        assert losses[-1] < losses[0] - 0.05
        assert min(losses) == pytest.approx(losses[-1], abs=0.05)

    def test_dice_improves_over_training(self, trained):
        dices = [r.val_dice for r in trained.history]
        assert dices[-1] > dices[0]
        assert max(dices) == trained.val_dice

    def test_converges_before_budget(self, trained):
        """Section IV-B: training stabilises well before the epoch
        budget (paper: ~epoch 90 of 250)."""
        assert trained.converged_epoch is not None
        assert trained.converged_epoch < len(trained.history)


class TestLossAblation:
    def test_both_losses_learn(self, learn_settings, pipeline):
        """E8 substrate check: both the paper's loss and the quadratic
        variant train successfully.  Which one validates *better* is
        task-dependent (the paper saw plain Dice win on BraTS; on the
        synthetic task the ordering can flip) -- the benchmark
        regenerates and reports the comparison, EXPERIMENTS.md discusses
        it, and this test only pins that both are usable losses."""
        dice = train_trial({"learning_rate": 3e-3, "loss": "dice"},
                           learn_settings, pipeline)
        quad = train_trial({"learning_rate": 3e-3, "loss": "quadratic_dice"},
                           learn_settings, pipeline)
        assert dice.val_dice > 0.6
        assert quad.val_dice > 0.6
        assert abs(dice.val_dice - quad.val_dice) < 0.3


class TestLearningRateSensitivity:
    def test_tiny_lr_underperforms(self, learn_settings, pipeline):
        """Hyper-parameters matter -- the premise of the whole search."""
        good = train_trial({"learning_rate": 3e-3}, learn_settings, pipeline)
        bad_settings = ExperimentSettings(
            num_subjects=10, volume_shape=(16, 16, 16), epochs=5,
            base_filters=4, depth=2, seed=1,
        )
        bad = train_trial({"learning_rate": 1e-7}, bad_settings, pipeline)
        assert good.val_dice > bad.val_dice + 0.2
