"""Integration: crash-resume of the real training pipeline.

The acceptance bar for the fault-tolerance layer: a trial crashed
mid-search by a :class:`FaultInjector` and retried under
``RetryPolicy(resume="checkpoint")`` must end with the *same* final
metrics as an uninjected run -- bit-identical, because training
re-seeds shuffling per epoch and the checkpoint restores model +
optimizer exactly -- while ``resume="scratch"`` re-trains from epoch 0.
"""

import numpy as np
import pytest

from repro.core import ExperimentSettings, HyperparameterSpace
from repro.core.experiment_parallel import run_search_inprocess
from repro.core.pipeline import MISPipeline
from repro.fault_tolerance import FaultInjector, RetryPolicy
from repro.raysim import TrialStatus

SETTINGS = ExperimentSettings(
    num_subjects=6, volume_shape=(16, 16, 16), epochs=3,
    base_filters=2, depth=2, seed=0,
)
SPACE = HyperparameterSpace({"learning_rate": [3e-3]})


@pytest.fixture(scope="module")
def pipeline():
    return MISPipeline(SETTINGS)


@pytest.fixture(scope="module")
def baseline(pipeline):
    return run_search_inprocess(SPACE, SETTINGS, pipeline=pipeline)


class TestCheckpointResumeEndToEnd:
    def test_resumed_trial_matches_uninjected_run(self, tmp_path, pipeline,
                                                  baseline):
        injector = FaultInjector(crash_epochs=(1,))
        result = run_search_inprocess(
            SPACE, SETTINGS, pipeline=pipeline,
            retry_policy=RetryPolicy(max_retries=1, resume="checkpoint"),
            checkpoint_dir=tmp_path / "ckpts",
            fault_injector=injector,
        )
        assert injector.faults_injected == 1
        trial = result.analysis.trials[0]
        assert trial.status is TrialStatus.TERMINATED
        assert trial.retries == 1
        # crashed while reporting epoch 1 -> resumed from the epoch-0
        # checkpoint, so the retry trains epochs 1..2 only
        assert trial.restored_epoch == 0
        (outcome, ) = result.outcomes
        assert [r.epoch for r in outcome.history] == [1, 2]

        (base, ) = baseline.outcomes
        base_by_epoch = {r.epoch: r for r in base.history}
        for rec in outcome.history:
            assert rec.val_dice == base_by_epoch[rec.epoch].val_dice
            np.testing.assert_array_equal(
                rec.train_loss, base_by_epoch[rec.epoch].train_loss
            )
        # final metrics bit-identical to the run that never crashed
        assert outcome.val_dice == base.val_dice
        assert outcome.test_dice == base.test_dice
        # runner results carry the full epoch range with no duplicates
        assert [r["epoch"] for r in trial.results] == [0, 1, 2]

    def test_scratch_retrains_from_epoch_zero(self, tmp_path, pipeline,
                                              baseline):
        result = run_search_inprocess(
            SPACE, SETTINGS, pipeline=pipeline,
            retry_policy=RetryPolicy(max_retries=1, resume="scratch"),
            checkpoint_dir=tmp_path / "ckpts",
            fault_injector=FaultInjector(crash_epochs=(1,)),
        )
        trial = result.analysis.trials[0]
        assert trial.status is TrialStatus.TERMINATED
        assert trial.restored_epoch is None
        (outcome, ) = result.outcomes
        assert [r.epoch for r in outcome.history] == [0, 1, 2]

        (base, ) = baseline.outcomes
        assert outcome.val_dice == base.val_dice
        assert outcome.test_dice == base.test_dice
