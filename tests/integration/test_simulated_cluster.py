"""Integration: paper-scale simulated comparisons (Table I / Fig 4)."""

import pytest

from repro.core import DistMISRunner
from repro.perf import (
    TABLE1_DP_SPEEDUPS,
    TABLE1_EP_SPEEDUPS,
)


@pytest.fixture(scope="module")
def report():
    return DistMISRunner().simulate_comparison(
        gpu_counts=(1, 2, 4, 8, 12, 16, 32), num_runs=3, base_seed=0
    )


class TestComparisonReport:
    def test_all_rows_present(self, report):
        rows = report.table_rows()
        assert [r["num_gpus"] for r in rows] == [1, 2, 4, 8, 12, 16, 32]

    def test_speedups_track_paper(self, report):
        for row in report.table_rows():
            n = row["num_gpus"]
            assert row["dp_speedup"] == pytest.approx(
                TABLE1_DP_SPEEDUPS[n], rel=0.2
            ), f"dp at {n}"
            assert row["ep_speedup"] == pytest.approx(
                TABLE1_EP_SPEEDUPS[n], rel=0.2
            ), f"ep at {n}"

    def test_gap_widens_with_scale(self, report):
        gaps = dict(report.crossover_gap())
        assert gaps[32] > gaps[2]
        assert gaps[32] > 1.0

    def test_min_max_band_brackets_mean(self, report):
        """Fig 4a's error bars: min <= mean <= max per point."""
        for series in (report.dp, report.ep):
            for lo, m, hi in zip(series.minimum(), series.mean(),
                                 series.maximum()):
                assert lo <= m <= hi
                assert lo < hi  # three jittered runs genuinely differ

    def test_renderings_nonempty(self, report):
        assert len(report.render_table().splitlines()) == 10
        assert "x1" in report.render_figure_series().replace(" ", "")


class TestTimelineConsistency:
    def test_experiment_parallel_trace_accounts_all_trials(self):
        runner = DistMISRunner()
        run = runner.simulate("experiment_parallel", 16, seed=2)
        assert len(run.timeline.events) == len(runner.sim_trials)
        # Every span ends by the reported elapsed time.
        assert run.timeline.makespan() <= run.elapsed_seconds + 1e-6

    def test_data_parallel_trace_serialises_trials(self):
        runner = DistMISRunner()
        run = runner.simulate("data_parallel", 8, seed=2)
        # On any single GPU lane, spans must not overlap (one trial at
        # a time uses the whole allocation).
        lanes = {}
        for ev in run.timeline.events:
            lanes.setdefault(ev.resource, []).append((ev.start, ev.end))
        for spans in lanes.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9
