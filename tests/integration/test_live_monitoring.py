"""Integration: the live monitoring layer over a real process pool.

Two acceptance scenarios from the observability issue:

* a process-pool search with live export produces an ``events.jsonl``
  whose snapshots stream *during* the run and which carries at least
  one heartbeat per worker;
* ``SIGKILL``-ing a worker mid-trial raises a ``worker_stalled`` alert
  promptly (the driver pairs the heartbeat window with an authoritative
  ``Process.is_alive`` check), the trial fails over to a surviving
  worker under the retry policy, and the alert lands in the run
  manifest and the ``distmis top`` rendering.
"""

import io
import json
import os
import signal
import time

from repro.execpool import ProcessPoolTrialExecutor, run_trials_parallel
from repro.fault_tolerance import RetryPolicy
from repro.raysim.tune import TrialStatus
from repro.telemetry import (
    EVENTS_JSONL,
    LiveMonitor,
    TelemetryHub,
    read_events,
    run_top,
)

HEARTBEAT_S = 0.2
INTERVAL_S = 0.2


def napping_trainable(config, reporter):
    """Picklable stand-in for training: naps between epoch reports so
    heartbeats and monitor ticks interleave with real messages."""
    for epoch in range(config["epochs"]):
        if not reporter(epoch=epoch, score=float(epoch)):
            return None
        time.sleep(config["nap_s"])
    return {"score": float(config["epochs"])}


def _live_pool(tmp_path, max_workers=2):
    hub = TelemetryHub(run_dir=tmp_path)
    monitor = LiveMonitor(hub, interval_s=INTERVAL_S)
    hub.attach_live(monitor)
    executor = ProcessPoolTrialExecutor(
        trainable=napping_trainable, max_workers=max_workers,
        telemetry=hub, heartbeat_s=HEARTBEAT_S)
    return hub, monitor, executor


class TestLiveExport:
    def test_search_streams_snapshots_and_heartbeats(self, tmp_path):
        hub, monitor, executor = _live_pool(tmp_path)
        try:
            trials = run_trials_parallel(
                executor, [{"epochs": 3, "nap_s": 0.1}] * 4,
                telemetry=hub, message_timeout=60.0)
            # finalize before shutdown so the closing health check sees
            # heartbeats fresher than the stall window
            hub.finalize_run("search", config={}, seed=0)
        finally:
            executor.shutdown()

        assert [t.status for t in trials] == [TrialStatus.TERMINATED] * 4
        events = read_events(tmp_path / EVENTS_JSONL)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

        snapshots = [e for e in events if e["type"] == "snapshot"]
        assert len(snapshots) >= 2, "no periodic snapshots streamed"
        # snapshots were appended while trials were still pending, not
        # just at close: the earliest one predates the last heartbeat
        beats = [e for e in events if e["type"] == "heartbeat"]
        assert snapshots[0]["t_wall"] < beats[-1]["t_wall"]
        per_worker = {}
        for b in beats:
            per_worker[b["worker_id"]] = per_worker.get(b["worker_id"],
                                                        0) + 1
        assert set(per_worker) == {0, 1}
        assert all(n >= 1 for n in per_worker.values())

        # the run closed cleanly: terminal health event, no alerts
        assert events[-1]["type"] == "health"
        assert events[-1]["workers_alive"] == 2
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["alerts"] == []


class TestWorkerKillRaisesStallAlert:
    def test_sigkill_fires_alert_and_fails_over(self, tmp_path):
        hub, monitor, executor = _live_pool(tmp_path)
        victim = executor._procs[0]
        killed_at = None
        try:
            # kill worker 0 once it is mid-trial; the surviving worker
            # keeps the run alive and later absorbs the resubmission
            configs = [{"epochs": 8, "nap_s": 0.25}] * 2

            def progress_hook(trials, **kw):
                nonlocal killed_at
                if killed_at is None and any(
                        t.status is TrialStatus.RUNNING for t in trials):
                    time.sleep(3 * HEARTBEAT_S)  # let it get properly busy
                    os.kill(victim.pid, signal.SIGKILL)
                    killed_at = time.time()

            class Progress:
                update = staticmethod(progress_hook)
                finish = staticmethod(lambda trials: None)

            trials = run_trials_parallel(
                executor, configs, telemetry=hub,
                retry_policy=RetryPolicy(max_retries=1, resume="scratch"),
                message_timeout=60.0, progress=Progress())
            hub.finalize_run("search", config={}, seed=0)
        finally:
            executor.shutdown()

        assert killed_at is not None
        assert [t.status for t in trials] == [TrialStatus.TERMINATED] * 2
        assert sum(t.retries for t in trials) == 1, (
            "exactly the killed worker's trial should have retried")

        events = read_events(tmp_path / EVENTS_JSONL)
        stall_alerts = [e for e in events if e["type"] == "alert"
                        and e["rule"] == "worker_stalled"]
        assert stall_alerts and stall_alerts[0]["state"] == "firing"
        # detection latency: the driver notices the dead process on its
        # next silent poll gap and force-ticks the monitor -- nominally
        # within 2 heartbeat intervals; allow queue-poll granularity
        # (0.2 s) plus loaded-host scheduling slack on top
        latency = stall_alerts[0]["t_wall"] - killed_at
        assert latency <= 2 * HEARTBEAT_S + 0.6, (
            f"worker_stalled took {latency:.2f}s to fire")

        # the stall is visible everywhere the issue promises: manifest...
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert any(a["rule"] == "worker_stalled"
                   and a["state"] == "firing" for a in manifest["alerts"])
        # ...the final health event...
        health = [e for e in events if e["type"] == "health"][-1]
        stalled = [w for w in health["workers"] if w["stalled"]]
        assert [w["worker_id"] for w in stalled] == [0]
        assert health["workers_alive"] == 1
        # ...and the distmis top rendering of the run directory
        out = io.StringIO()
        assert run_top(tmp_path, stream=out) == 0
        text = out.getvalue()
        assert "worker_stalled" in text and "STALLED" in text
