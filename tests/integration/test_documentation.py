"""Documentation guards: the README's code must actually run, the
examples must at least compile, and the experiment index must point at
real files."""

import ast
import py_compile
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


class TestReadmeSnippet:
    def test_python_block_executes(self):
        """Extract the README's Python example and run it (with the
        expensive simulate_comparison narrowed for test speed)."""
        text = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README must contain a python example"
        code = blocks[0]
        # narrow the sweep so the doc test stays fast
        code = code.replace("gpu_counts=(1, 2, 4, 8, 16, 32)",
                            "gpu_counts=(1, 32), num_runs=1")
        ast.parse(code)  # must be valid syntax as printed
        exec(compile(code, "<README>", "exec"), {})  # and actually run


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "path", sorted((REPO / "examples").glob("*.py")),
        ids=lambda p: p.stem,
    )
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_expected_example_set(self):
        names = {p.stem for p in (REPO / "examples").glob("*.py")}
        assert {
            "quickstart",
            "hyperparameter_search",
            "data_parallel_training",
            "reproduce_table1",
            "pipeline_profiling",
            "full_volume_vs_patches",
            "fault_tolerance",
            "adaptive_search_simulation",
            "generate_all_results",
        } <= names


class TestExperimentIndex:
    def test_design_md_references_exist(self):
        """Every benchmarks/... or examples/... path DESIGN.md's
        experiment index mentions must exist."""
        text = (REPO / "DESIGN.md").read_text()
        refs = set(re.findall(r"`((?:benchmarks|examples)/[\w/]+\.py)`", text))
        assert refs, "experiment index should reference bench files"
        for ref in refs:
            assert (REPO / ref).exists(), f"DESIGN.md references missing {ref}"

    def test_experiments_md_covers_all_ids(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for eid in [f"E{i}" for i in range(1, 16)]:
            assert f"{eid} " in text or f"{eid}/" in text or f"{eid}—" in text \
                or f"{eid} —" in text, f"EXPERIMENTS.md missing {eid}"
