"""Integration: complete hyper-parameter searches under both methods."""

import pytest

from repro.core import (
    DistMISRunner,
    ExperimentSettings,
    HyperparameterSpace,
)
from repro.raysim import ASHAScheduler


@pytest.fixture(scope="module")
def runner():
    return DistMISRunner(
        space=HyperparameterSpace(
            {"learning_rate": [3e-3, 1e-7], "loss": ["dice"]}
        ),
        settings=ExperimentSettings(
            num_subjects=8, volume_shape=(16, 16, 16), epochs=6,
            base_filters=2, depth=2, seed=0,
        ),
    )


class TestSearchAgreement:
    def test_both_methods_pick_the_same_winner(self, runner):
        """The two distribution methods explore the same space and must
        crown the same configuration (C2 at search level)."""
        dp = runner.run_inprocess("data_parallel", num_gpus=2)
        ep = runner.run_inprocess("experiment_parallel")
        assert dp.best().config["learning_rate"] == \
            ep.best().config["learning_rate"] == 3e-3

    def test_search_results_complete(self, runner):
        ep = runner.run_inprocess("experiment_parallel")
        assert len(ep.outcomes) == 2
        assert ep.analysis.num_errors() == 0
        table = ep.analysis.results_table("val_dice")
        assert all(row["val_dice"] is not None for row in table)


class TestEarlyStoppingSearch:
    def test_asha_saves_epochs_and_keeps_winner(self, tmp_path):
        from repro.core.experiment_parallel import run_search_inprocess

        settings = ExperimentSettings(
            num_subjects=8, volume_shape=(16, 16, 16), epochs=8,
            base_filters=2, depth=2, seed=0,
        )
        space = HyperparameterSpace(
            {"learning_rate": [3e-3, 1e-6, 1e-7, 1e-8]}
        )
        asha = ASHAScheduler("val_dice", grace_period=2, reduction_factor=2,
                             max_t=8, time_attr="epoch")
        result = run_search_inprocess(space, settings, scheduler=asha)
        total_epochs = sum(len(o.history) for o in result.outcomes)
        assert total_epochs < 4 * 8  # someone was stopped early
        assert result.analysis.best_config("val_dice")["learning_rate"] == 3e-3


class TestFailureInjection:
    def test_broken_trial_does_not_kill_search(self):
        """A trial that crashes is recorded as ERROR; the rest finish."""
        from repro.raysim import GridSearch, TrialStatus, tune_run

        def trainable(config, reporter):
            if config["learning_rate"] < 0:
                raise RuntimeError("simulated GPU OOM")
            reporter(val_dice=config["learning_rate"])
            return {"val_dice": config["learning_rate"]}

        analysis = tune_run(
            trainable,
            GridSearch({"learning_rate": [0.1, -1.0, 0.2]}),
        )
        assert analysis.num_errors() == 1
        assert analysis.best_config("val_dice") == {"learning_rate": 0.2}
        statuses = [t.status for t in analysis.trials]
        assert statuses.count(TrialStatus.TERMINATED) == 2
