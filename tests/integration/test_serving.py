"""Serving integration: bit-identity, deadline flush, fail-over, scale.

Everything runs a real 2-process-deep stack -- checkpoint file, forked
replica workers, the shared task queue -- at smoke scale (tiny U-Net,
8^3 volumes) so the suite stays seconds-fast on one core.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointManager
from repro.core.inference import (
    full_volume_inference,
    sliding_window_inference,
)
from repro.nn import UNet3D
from repro.serve import AutoscalerConfig, ModelServer, ServeConfig

MODEL_KWARGS = dict(in_channels=1, out_channels=1, base_filters=2,
                    depth=2, use_batchnorm=False)


def make_model(seed: int = 7) -> UNet3D:
    return UNet3D(rng=np.random.default_rng(seed), **MODEL_KWARGS)


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    """A best-trial checkpoint through the CheckpointManager round-trip
    (bit-exact restore is pinned by the checkpoint unit tests)."""
    mgr = CheckpointManager(tmp_path_factory.mktemp("serve_ckpt"))
    mgr.save(make_model(), epoch=3, val_dice=0.9)
    return str(mgr.best_path)


def volumes(n, shape=(1, 8, 8, 8), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape) for _ in range(n)]


def serve_config(checkpoint, **kw):
    base = dict(checkpoint=checkpoint, model_builder=UNet3D,
                model_kwargs=MODEL_KWARGS, replicas=1, max_batch=4,
                max_delay_ms=5.0, heartbeat_s=0.2)
    base.update(kw)
    return ServeConfig(**base)


class TestBitIdentity:
    def test_batched_serving_matches_offline_full_volume(self, checkpoint):
        """A prediction served in a micro-batch is bit-identical to a
        solo offline full_volume_inference call on the same volume --
        batching amortises dispatch, never changes arithmetic."""
        vols = volumes(6)
        with ModelServer(serve_config(checkpoint, replicas=2)) as server:
            futs = [server.submit(v) for v in vols]
            server.drain(timeout_s=60)
            responses = [f.result() for f in futs]
        # the burst really was coalesced (full batches of max_batch=4)
        assert max(r.batch_size for r in responses) == 4
        assert {r.strategy for r in responses} == {"full_volume"}
        reference = full_volume_inference(
            make_model(), np.stack(vols)).prediction
        for i, r in enumerate(responses):
            assert r.prediction.shape == vols[i].shape
            assert np.array_equal(reference[i], r.prediction)

    def test_large_volume_routes_to_sliding_window(self, checkpoint):
        cfg = serve_config(checkpoint, full_volume_max_voxels=4 ** 3,
                           patch_shape=(4, 4, 4), overlap=0.5,
                           max_delay_ms=0.0)
        (vol,) = volumes(1)
        with ModelServer(cfg) as server:
            assert server.route(vol) == "sliding_window"
            fut = server.submit(vol)
            server.drain(timeout_s=60)
            response = fut.result()
        assert response.strategy == "sliding_window"
        reference = sliding_window_inference(
            make_model(), vol[None], patch_shape=(4, 4, 4),
            overlap=0.5).prediction
        assert np.array_equal(reference[0], response.prediction)


class TestKernelAttribution:
    def test_server_accumulates_per_backend_kernel_seconds(self, checkpoint):
        """Replicas drain the kernel-seconds ledger every batch and the
        attribution rides back to the server's counter."""
        vols = volumes(4)
        with ModelServer(serve_config(checkpoint)) as server:
            futs = [server.submit(v) for v in vols]
            server.drain(timeout_s=60)
            for f in futs:
                f.result()
            ledger = server.kernel_seconds()
        assert ledger, "no kernel attribution reached the server"
        assert all("/" in key for key in ledger)  # "backend/op" keys
        backends = {key.split("/", 1)[0] for key in ledger}
        assert backends <= {"reference", "gemm", "fused"}
        assert all(seconds >= 0 for seconds in ledger.values())
        assert any(seconds > 0 for seconds in ledger.values())


class TestMicroBatching:
    def test_deadline_flushes_partial_batch(self, checkpoint):
        """Two requests against max_batch=8 never fill the batch; the
        max_delay_ms deadline must release them anyway."""
        cfg = serve_config(checkpoint, max_batch=8, max_delay_ms=40.0)
        with ModelServer(cfg) as server:
            t0 = time.monotonic()
            futs = [server.submit(v) for v in volumes(2)]
            server.step()
            # before the deadline nothing is dispatched
            assert server.batcher.depth() == 2
            server.drain(timeout_s=60)
            elapsed = time.monotonic() - t0
            responses = [f.result() for f in futs]
        assert [r.batch_size for r in responses] == [2, 2]
        assert elapsed >= 0.040  # held for the coalescing window

    def test_immediate_dispatch_when_batch_fills(self, checkpoint):
        cfg = serve_config(checkpoint, max_batch=2, max_delay_ms=10_000.0)
        with ModelServer(cfg) as server:
            futs = [server.submit(v) for v in volumes(2)]
            server.step()
            assert server.batcher.depth() == 0  # no deadline wait
            server.drain(timeout_s=60)
            assert [f.result().batch_size for f in futs] == [2, 2]


# A deliberately slow request mix for the kill tests: 16^3 volumes routed
# to sliding-window with overlap 0.75 take ~0.5 s *each* on this host, so
# the window between the batch's "started" message and its completion is
# seconds wide -- killing the replica inside it is not a race.  These
# tests pin the legacy whole-request dispatch path (scatter_gather=False);
# chunk-granular retry has its own kill test below.
SLOW_KW = dict(full_volume_max_voxels=4 ** 3, patch_shape=(4, 4, 4),
               overlap=0.75, max_delay_ms=0.0, scatter_gather=False)
SLOW_SHAPE = (1, 16, 16, 16)


def kill_serving_replica(server):
    """Wait for the (single) in-flight batch to start, then SIGKILL the
    replica serving it.  Returns once the process is reaped."""
    deadline = time.monotonic() + 30.0
    while not any(b.worker is not None
                  for b in server._inflight.values()):
        assert time.monotonic() < deadline, "batch never started"
        server.step()
        time.sleep(0.005)
    (batch,) = server._inflight.values()
    victim = server.executor._procs[batch.worker]
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=10.0)
    assert not victim.is_alive()


class TestFailOver:
    def test_killed_replica_requests_complete_via_retry(self, checkpoint):
        """SIGKILL the replica serving a batch: its in-flight requests
        are resubmitted (not dropped) and answered by a respawned
        replica, bit-identically."""
        cfg = serve_config(checkpoint, replicas=1, max_batch=2,
                           max_retries=2, **SLOW_KW)
        vols = volumes(2, shape=SLOW_SHAPE)
        with ModelServer(cfg) as server:
            futs = [server.submit(v) for v in vols]
            server.step()  # dispatches one full batch of 2
            assert len(server._inflight) == 1
            kill_serving_replica(server)
            server.drain(timeout_s=120)
            responses = [f.result() for f in futs]
            # the pool healed back to its target size
            assert server.executor.worker_count() == 1
        assert all(r.attempt >= 1 for r in responses)
        assert {r.strategy for r in responses} == {"sliding_window"}
        model = make_model()
        for vol, r in zip(vols, responses):
            reference = sliding_window_inference(
                model, vol[None], patch_shape=(4, 4, 4),
                overlap=0.75).prediction
            assert np.array_equal(reference[0], r.prediction)

    def test_retry_budget_exhaustion_fails_requests(self, checkpoint):
        """max_retries=0: a killed replica's requests fail loudly
        instead of hanging the drain."""
        cfg = serve_config(checkpoint, replicas=1, max_batch=2,
                           max_retries=0, **SLOW_KW)
        with ModelServer(cfg) as server:
            futs = [server.submit(v) for v in volumes(2, shape=SLOW_SHAPE)]
            server.step()
            kill_serving_replica(server)
            server.drain(timeout_s=60)
            for fut in futs:
                assert fut.done()
                with pytest.raises(RuntimeError, match="died mid-batch"):
                    fut.result()


class TestScatterGather:
    def test_scattered_request_bit_identical_across_replicas(self, checkpoint):
        """The tentpole contract: a sliding-window request decomposed
        into patch-chunk tasks, balanced across 2 replicas and stitched
        driver-side, is bit-identical to offline inference -- while
        small full-volume requests interleave with the chunk stream."""
        cfg = serve_config(checkpoint, replicas=2, max_batch=2,
                           full_volume_max_voxels=4 ** 3,
                           patch_shape=(4, 4, 4), overlap=0.5,
                           sw_batch_size=2, max_delay_ms=1.0)
        large = volumes(2, shape=(1, 12, 12, 12), seed=3)
        small = volumes(3, shape=(1, 4, 4, 4), seed=4)
        with ModelServer(cfg) as server:
            large_futs = [server.submit(v) for v in large]
            small_futs = [server.submit(v, priority="high")
                          for v in small]
            server.drain(timeout_s=120)
            large_rs = [f.result() for f in large_futs]
            small_rs = [f.result() for f in small_futs]
        model = make_model()
        for vol, r in zip(large, large_rs):
            assert r.strategy == "sliding_window"
            assert r.chunks > 1           # really was decomposed
            assert r.priority == "normal"
            reference = sliding_window_inference(
                model, vol[None], patch_shape=(4, 4, 4), overlap=0.5,
                batch_size=2).prediction
            assert np.array_equal(reference[0], r.prediction)
        ref_small = full_volume_inference(
            model, np.stack(small)).prediction
        for i, r in enumerate(small_rs):
            assert r.strategy == "full_volume"
            assert r.priority == "high"
            assert np.array_equal(ref_small[i], r.prediction)

    def test_killed_replica_retries_only_its_chunks(self, checkpoint):
        """Chunk-granular fail-over: SIGKILL the replica while a
        scattered request is partially gathered -- chunks that already
        returned are kept, only the dead replica's in-flight chunk
        tasks are resubmitted, and the stitched result stays
        bit-identical to offline inference."""
        # 16^3 at overlap 0.75 -> 2197 patches; 256-patch chunks make 9
        # chunk tasks of ~60 ms each: long enough that SIGKILL lands
        # mid-task (no race), few enough that the drain stays fast
        cfg = serve_config(checkpoint, replicas=1, max_batch=1,
                           max_retries=2, max_delay_ms=0.0,
                           full_volume_max_voxels=4 ** 3,
                           patch_shape=(4, 4, 4), overlap=0.75,
                           sw_batch_size=256)
        (vol,) = volumes(1, shape=SLOW_SHAPE, seed=5)
        with ModelServer(cfg) as server:
            fut = server.submit(vol)
            (pending,) = server._pending.values()
            n_chunks = len(pending.bounds)
            assert n_chunks > 4
            # drive until some chunks have gathered while others are
            # still in flight -- the partial-progress window
            deadline = time.monotonic() + 60.0
            while not (pending.chunk_results
                       and any(b.worker is not None
                               for b in server._inflight.values())):
                assert time.monotonic() < deadline, "no partial gather"
                server.step()
                time.sleep(0.002)
            gathered_before = set(pending.chunk_results)
            victim_batch = next(b for b in server._inflight.values()
                                if b.worker is not None)
            victim = server.executor._procs[victim_batch.worker]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)
            assert not victim.is_alive()
            server.drain(timeout_s=120)
            response = fut.result()
        # already-gathered chunks were kept, not re-run
        assert gathered_before <= set(range(n_chunks))
        assert response.attempt >= 1
        assert response.chunks == n_chunks
        reference = sliding_window_inference(
            make_model(), vol[None], patch_shape=(4, 4, 4),
            overlap=0.75, batch_size=256).prediction
        assert np.array_equal(reference[0], response.prediction)


class TestPrioritiesAndShedding:
    def test_backlog_sheds_low_priority_only(self, checkpoint):
        """With the backlog past shed_backlog, low-priority admissions
        are rejected at submit (future.shed, result() raises) while
        high-priority requests still complete."""
        cfg = serve_config(checkpoint, replicas=1, shed_backlog=2,
                           max_delay_ms=0.0)
        vols = volumes(8)
        with ModelServer(cfg) as server:
            keep = [server.submit(v, priority="high")
                    for v in vols[:4]]   # backlog now 4 >= 2
            shed = [server.submit(v, priority="low") for v in vols[4:6]]
            late_high = server.submit(vols[6], priority="high")
            for f in shed:
                assert f.shed and f.done()
                with pytest.raises(RuntimeError, match="shed"):
                    f.result()
            assert server.shed_count() == 2
            server.drain(timeout_s=60)
            for f in keep + [late_high]:
                assert not f.shed
                assert f.result().prediction.shape == (1, 8, 8, 8)

    def test_unknown_priority_rejected(self, checkpoint):
        with ModelServer(serve_config(checkpoint)) as server:
            with pytest.raises(ValueError, match="unknown priority"):
                server.submit(volumes(1)[0], priority="bulk")


class TestAutoscaling:
    def test_backlog_scales_up_and_idle_retires(self, checkpoint):
        cfg = serve_config(
            checkpoint, replicas=1, max_batch=1, max_delay_ms=0.0,
            autoscale=True,
            autoscaler=AutoscalerConfig(
                min_replicas=1, max_replicas=2, backlog_per_replica=2.0,
                scale_up_streak=1, idle_streak=3, cooldown_s=0.0))
        with ModelServer(cfg) as server:
            futs = [server.submit(v) for v in volumes(8)]
            server.step()  # backlog of 8 > 2 per replica: scale up
            assert server.executor.worker_count() == 2
            assert server._target_replicas == 2
            server.drain(timeout_s=60)
            assert all(f.result() is not None for f in futs)
            # sustained idle: the autoscaler retires back to the floor
            deadline = time.monotonic() + 30.0
            while server.executor.worker_count() > 1:
                assert time.monotonic() < deadline, "never retired"
                server.step()
                time.sleep(0.01)
            assert server._target_replicas == 1
            # a retiring drain is not a failure, and serving continues
            assert server.executor.dead_workers() == []
            fut = server.submit(volumes(1)[0])
            server.drain(timeout_s=60)
            assert fut.result().prediction.shape == (1, 8, 8, 8)
