"""Integration: the original 4-class task end to end.

The paper reduces MSD Task 1 to binary segmentation for benchmarking
(Section IV-A); the framework also supports the original problem:
one-hot preprocessing, a softmax-head U-Net, the macro soft-Dice loss
and per-class scoring -- trained here through the data-parallel trainer
on the synthetic cohort.
"""

import numpy as np
import pytest

from repro.data import SyntheticBraTS, preprocess_subject
from repro.nn import (
    Adam,
    MulticlassSoftDiceLoss,
    UNet3D,
    mean_multiclass_dice,
    multiclass_dice,
)
from repro.raysim import DataParallelTrainer


@pytest.fixture(scope="module")
def cohort():
    gen = SyntheticBraTS(num_subjects=8, volume_shape=(16, 16, 16), seed=2,
                         tumor_probability=1.0, noise_sigma=0.04)
    examples = [
        preprocess_subject(s, divisor=2, multiclass=True) for s in gen
    ]
    images = np.stack([e.image for e in examples])
    masks = np.stack([e.mask for e in examples])
    return images, masks


class TestMulticlassPreprocessing:
    def test_one_hot_mask_shape(self, cohort):
        images, masks = cohort
        assert masks.shape == (8, 4, 16, 16, 16)
        np.testing.assert_allclose(masks.sum(axis=1), 1.0)

    def test_classes_present(self, cohort):
        _, masks = cohort
        per_class_voxels = masks.sum(axis=(0, 2, 3, 4))
        assert (per_class_voxels > 0).all(), "all 4 classes populated"


class TestMulticlassTraining:
    @pytest.fixture(scope="class")
    def trained(self, cohort):
        images, masks = cohort
        train_x, train_y = images[:6], masks[:6]

        def factory():
            return UNet3D(4, 4, 6, 2, final_activation="softmax",
                          use_batchnorm=False,
                          rng=np.random.default_rng(0))

        # Foreground classes cover well under 1% of the voxels each, so
        # the macro Dice needs a small eps and a healthy rate to move.
        trainer = DataParallelTrainer(
            factory,
            MulticlassSoftDiceLoss(include_background=False, eps=1e-3),
            lambda m: Adam(m, lr=1e-2), num_replicas=2,
        )
        losses = []
        try:
            for _ in range(80):
                out = trainer.train_step(train_x, train_y)
                losses.append(out["loss"])
            model = trainer.model
        finally:
            trainer.shutdown()
        return model, losses, images[6:], masks[6:]

    def test_loss_decreases(self, trained):
        _, losses, _, _ = trained
        assert min(losses) < losses[0] * 0.6

    def test_foreground_classes_learned(self, trained):
        model, _, test_x, test_y = trained
        pred = model.predict(test_x)
        labels = test_y.argmax(axis=1)
        scores = [
            mean_multiclass_dice(pred[i], labels[i], 4)
            for i in range(test_x.shape[0])
        ]
        assert np.mean(scores) > 0.25  # learning, at 80 tiny steps

    def test_per_class_scores_structure(self, trained):
        model, _, test_x, test_y = trained
        pred = model.predict(test_x[:1])[0]
        scores = multiclass_dice(pred, test_y[0].argmax(axis=0), 4)
        assert set(scores) == {1, 2, 3}
        assert all(0.0 <= v <= 1.0 for v in scores.values())

    def test_whole_tumour_consistency(self, trained):
        """Union of predicted foreground classes scored as binary ==
        the paper's whole-tumour view of the same prediction."""
        from repro.nn import dice_coefficient

        model, _, test_x, test_y = trained
        pred = model.predict(test_x[:1])[0].argmax(axis=0)
        truth = test_y[0].argmax(axis=0)
        whole = dice_coefficient(pred > 0, truth > 0)
        assert 0.0 <= whole <= 1.0
