"""End-to-end request tracing through the real 2-process serving stack.

Drives a :class:`~repro.serve.server.ModelServer` with forked replica
workers and asserts the ISSUE's acceptance criteria: one merged Chrome
trace per run whose spans cover a chosen request's full lifecycle
(queue_wait -> batch_wait -> dispatch -> replica compute under the
worker's own pid -> completion), phase durations that telescope to the
observed end-to-end latency, a single ``trace_id`` surviving SIGKILL
fail-over, and the ``distmis trace`` view over the run artefacts.
"""

import importlib.util
import json
import os
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.core.checkpoint import CheckpointManager
from repro.nn import UNet3D
from repro.serve import ModelServer, ServeConfig
from repro.telemetry import (
    PHASES,
    TelemetryHub,
    TracingConfig,
    load_request_traces,
)

from .test_serving import (
    SLOW_KW,
    SLOW_SHAPE,
    kill_serving_replica,
    make_model,
    volumes,
)

MODEL_KWARGS = dict(in_channels=1, out_channels=1, base_filters=2,
                    depth=2, use_batchnorm=False)


def _load_trace_validator():
    """Import ``validate_trace_events`` straight from the lint gate so
    the integration trace is held to the exact CI contract."""
    path = Path(__file__).resolve().parents[2] / "tools" / \
        "check_trace_schema.py"
    spec = importlib.util.spec_from_file_location("check_trace_schema",
                                                  path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod.validate_trace_events


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    mgr = CheckpointManager(tmp_path_factory.mktemp("trace_ckpt"))
    mgr.save(make_model(), epoch=3, val_dice=0.9)
    return str(mgr.best_path)


def traced_config(checkpoint, **kw):
    base = dict(checkpoint=checkpoint, model_builder=UNet3D,
                model_kwargs=MODEL_KWARGS, replicas=2, max_batch=4,
                max_delay_ms=5.0, heartbeat_s=0.2,
                tracing=TracingConfig(sample_rate=1.0))
    base.update(kw)
    return ServeConfig(**base)


class TestMergedRequestTimeline:
    def test_one_request_one_timeline_across_processes(
            self, checkpoint, tmp_path, capsys):
        run_dir = tmp_path / "run"
        hub = TelemetryHub(run_dir=run_dir)
        with ModelServer(traced_config(checkpoint),
                         telemetry=hub) as server:
            futs = [server.submit(v) for v in volumes(6)]
            server.drain(timeout_s=60)
            responses = [f.result() for f in futs]
            kept = server.request_traces()
        hub.flush()

        # every response carries its context and the telescoping phases
        assert all(r.trace_id for r in responses)
        assert len({r.trace_id for r in responses}) == len(responses)
        for r in responses:
            phase_sum = (r.queue_wait_s + r.batch_wait_s + r.dispatch_s
                         + r.compute_s + r.stitch_s)
            assert phase_sum == pytest.approx(r.latency_s, rel=1e-9,
                                              abs=1e-9)
        # sample_rate=1.0: every request was kept
        assert {t.request_id for t in kept} == \
            {r.request_id for r in responses}

        # pick one request and follow it through the merged trace
        chosen = max(responses, key=lambda r: r.latency_s)
        events = json.loads((run_dir / "trace.json").read_text())
        assert _load_trace_validator()(events, where="trace.json") == []

        mine = [e for e in events if e.get("ph") == "X"
                and e.get("args", {}).get("request_id")
                == chosen.request_id]
        names = {e["name"] for e in mine}
        assert "request" in names
        expected = {p for p in PHASES if {
            "queue_wait": chosen.queue_wait_s,
            "batch_wait": chosen.batch_wait_s,
            "dispatch": chosen.dispatch_s,
            "compute": chosen.compute_s,
            "stitch": chosen.stitch_s}[p] > 0}
        assert expected <= names
        assert {"queue_wait", "compute"} <= names  # lifecycle covered
        # one trace_id stitches every driver span, under the driver pid
        assert {e["args"]["trace_id"] for e in mine} == {chosen.trace_id}
        assert {e["pid"] for e in mine} == {os.getpid()}

        # the replica's own compute span carries the same trace_id but
        # lives under the *worker's* pid (correct process attribution)
        replica_spans = [
            e for e in events if e.get("ph") == "X"
            and e["name"] == "replica_compute"
            and chosen.trace_id in e.get("args", {}).get("trace_ids", [])]
        assert replica_spans, "replica compute span never crossed back"
        worker_pids = {e["pid"] for e in replica_spans}
        assert os.getpid() not in worker_pids
        process_names = {e["pid"]: e["args"]["name"] for e in events
                         if e.get("ph") == "M"
                         and e.get("name") == "process_name"}
        for pid in worker_pids:
            assert process_names[pid].startswith("worker-")
        # per-op kernel children accompany the replica span
        assert any(e["name"].startswith("kernel:") for e in events
                   if e.get("ph") == "X" and e["pid"] in worker_pids)

        # requests.jsonl landed and distmis trace renders the waterfall
        traces = load_request_traces(run_dir)
        assert {t.request_id for t in traces} == \
            {r.request_id for r in responses}
        assert cli_main(["trace", str(run_dir),
                         "--request", chosen.request_id]) == 0
        out = capsys.readouterr().out
        assert chosen.request_id in out
        assert f"trace {chosen.trace_id}" in out
        assert "dominant phase:" in out

    def test_summary_and_slowest_views(self, checkpoint, tmp_path,
                                       capsys):
        run_dir = tmp_path / "run"
        hub = TelemetryHub(run_dir=run_dir)
        with ModelServer(traced_config(checkpoint),
                         telemetry=hub) as server:
            futs = [server.submit(v) for v in volumes(4)]
            server.drain(timeout_s=60)
            for f in futs:
                f.result()
        hub.flush()
        assert cli_main(["trace", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "kept request trace(s)" in out
        assert "dominant phase across kept traces:" in out
        assert "slowest kept request:" in out
        assert cli_main(["trace", str(run_dir), "--slowest", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("dominant phase:") == 2
        # an unknown request id fails loudly, not silently
        assert cli_main(["trace", str(run_dir),
                         "--request", "req_nope"]) == 1

    def test_trace_cli_without_artefacts_exits_nonzero(self, tmp_path):
        assert cli_main(["trace", str(tmp_path)]) == 1


class TestFailOverTracing:
    def test_sigkill_retry_keeps_one_trace_id(self, checkpoint, tmp_path):
        """A request that survives a replica SIGKILL via resubmission
        completes under the trace_id minted at admission -- one request,
        one trace, across attempts."""
        hub = TelemetryHub(run_dir=tmp_path / "run")
        cfg = traced_config(checkpoint, replicas=1, max_batch=2,
                            max_retries=2, **SLOW_KW)
        with ModelServer(cfg, telemetry=hub) as server:
            futs = [server.submit(v)
                    for v in volumes(2, shape=SLOW_SHAPE)]
            minted = {f.request_id:
                      server._pending[f.request_id].ctx.trace_id
                      for f in futs}
            server.step()
            kill_serving_replica(server)
            server.drain(timeout_s=120)
            responses = [f.result() for f in futs]
            kept = {t.request_id: t for t in server.request_traces()}
        assert all(r.attempt >= 1 for r in responses)
        for r in responses:
            # the response's trace is the admission-minted one
            assert r.trace_id == minted[r.request_id]
            # exactly one kept trace per request, flagged as retried
            t = kept[r.request_id]
            assert t.trace_id == r.trace_id
            assert t.keep_reason == "retried"
            assert t.attempt == r.attempt

    def test_exhausted_retries_trace_the_error(self, checkpoint,
                                               tmp_path):
        hub = TelemetryHub(run_dir=tmp_path / "run")
        cfg = traced_config(checkpoint, replicas=1, max_batch=2,
                            max_retries=0, **SLOW_KW)
        with ModelServer(cfg, telemetry=hub) as server:
            futs = [server.submit(v)
                    for v in volumes(2, shape=SLOW_SHAPE)]
            server.step()
            kill_serving_replica(server)
            server.drain(timeout_s=60)
            for fut in futs:
                with pytest.raises(RuntimeError, match="died mid-batch"):
                    fut.result()
            kept = {t.request_id: t for t in server.request_traces()}
        assert len(kept) == 2
        for t in kept.values():
            assert t.keep_reason == "error"
            assert t.error and "died" in t.error


class TestSamplingUnderLoad:
    def test_default_sampling_bounds_kept_traces(self, checkpoint):
        """With the default tail-based policy a healthy burst keeps only
        a subset of traces, and every response still gets its phases."""
        cfg = traced_config(
            checkpoint, replicas=1,
            tracing=TracingConfig(sample_rate=0.05, min_window=10**6))
        with ModelServer(cfg) as server:
            futs = [server.submit(v) for v in volumes(24)]
            server.drain(timeout_s=120)
            responses = [f.result() for f in futs]
            kept = server.request_traces()
        assert len(kept) < len(responses)
        assert all(r.trace_id for r in responses)  # context always minted
        assert server.latency_quantile(0.5) > 0
        buckets = server.latency_histogram()
        assert buckets[-1][1] == len(responses)  # cumulative count
