"""Prometheus-style metrics: counters, gauges and histograms with labels.

The paper's scaling evidence (Table I, Fig 4) was produced by
*observing* runs; this module is the quantitative half of the unified
telemetry layer -- a :class:`MetricsRegistry` every subsystem records
into, exposable as Prometheus text (``to_prometheus``) for scraping or
as JSONL (``to_jsonl``) for offline diffing, mirroring how Tune streams
trial results and SHADHO streams per-trial hardware telemetry.

Metric objects follow the prometheus_client shape:

>>> reg = MetricsRegistry()
>>> steps = reg.counter("train_steps_total", "optimizer steps",
...                     labelnames=("method",))
>>> steps.labels(method="data_parallel").inc()
>>> print(reg.to_prometheus())        # doctest: +SKIP

Every metric method is also implemented by the no-op twins in
:mod:`repro.telemetry.hub`, so instrumented code never branches on
whether telemetry is enabled.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from .fsio import atomic_write_text

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

# Prometheus' default histogram buckets, biased towards sub-second
# latencies (our per-step and per-stage timings live there).
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 300.0,
)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labelnames: tuple[str, ...], labels: dict) -> tuple:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared "
            f"labelnames {sorted(labelnames)}"
        )
    return tuple(str(labels[n]) for n in labelnames)


def _render_labels(labelnames: tuple[str, ...], key: tuple,
                   extra: dict | None = None) -> str:
    pairs = [f'{n}="{v}"' for n, v in zip(labelnames, key)]
    if extra:
        pairs += [f'{n}="{v}"' for n, v in extra.items()]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Metric:
    """Common parent: a named family of label-keyed children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: tuple[str, ...] = ()):
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple, "_Metric"] = {}
        # the label-less default child doubles as the family when no
        # labelnames were declared
        self._key: tuple = ()

    def labels(self, **labels) -> "_Metric":
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name, self.help, self.labelnames)
            child._key = key
            self._children[key] = child
        return child

    def _series(self):
        """(key, child) pairs: the bare family when label-less, else
        every labelled child."""
        if not self.labelnames:
            return [((), self)]
        return sorted(self._children.items())


class Counter(_Metric):
    """Monotonically increasing count (steps run, bytes moved)."""

    kind = "counter"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def _samples(self):
        for key, child in self._series():
            yield key, {"value": child.value}


class Gauge(_Metric):
    """Instantaneous value (queue depth, gradient norm, utilisation)."""

    kind = "gauge"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def _samples(self):
        for key, child in self._series():
            yield key, {"value": child.value}


class Histogram(_Metric):
    """Cumulative-bucket histogram of observations (step latencies)."""

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(),
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0
        # OpenMetrics-style exemplars: per bucket edge, the most recent
        # observation's trace labels -- the jump from "p99 regressed"
        # to "this traced request is why".
        self.exemplars: dict[str, dict] = {}

    def labels(self, **labels) -> "Histogram":
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = Histogram(self.name, self.help, self.labelnames,
                              self.buckets)
            child._key = key
            self._children[key] = child
        return child

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        self.sum += value
        self.count += 1
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.bucket_counts[i] += 1
                if exemplar:
                    self.exemplars[str(edge)] = {
                        **{k: str(v) for k, v in exemplar.items()},
                        "value": float(value),
                    }
                break
        else:
            if exemplar:
                self.exemplars["+Inf"] = {
                    **{k: str(v) for k, v in exemplar.items()},
                    "value": float(value),
                }

    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile by linear interpolation inside
        the owning bucket (the textbook ``histogram_quantile``).

        Exact quantiles are unavailable by design -- buckets are the
        fixed-cost aggregation -- so this is an estimate whose error is
        bounded by the bucket width; observations beyond the last edge
        clamp to it.  NaN on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cum = 0
        lo = 0.0
        for edge, n in zip(self.buckets, self.bucket_counts):
            if n and cum + n >= rank:
                return lo + (edge - lo) * max(0.0, rank - cum) / n
            cum += n
            lo = edge
        return self.buckets[-1]

    def _samples(self):
        for key, child in self._series():
            sample = {
                "sum": child.sum,
                "count": child.count,
                "buckets": {
                    str(edge): sum(child.bucket_counts[: i + 1])
                    for i, edge in enumerate(child.buckets)
                },
            }
            if child.exemplars:
                sample["exemplars"] = {
                    e: dict(x) for e, x in child.exemplars.items()
                }
            yield key, sample


class MetricsRegistry:
    """Process-wide family registry with text/JSONL exposition.

    Registration is idempotent: asking for an existing name returns the
    existing family (a name registered as a different kind raises).
    """

    def __init__(self):
        self._families: dict[str, _Metric] = {}

    def _register(self, cls, name, help, labelnames, **kw):
        fam = self._families.get(name)
        if fam is not None:
            if not isinstance(fam, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}"
                )
            return fam
        fam = cls(name, help, tuple(labelnames), **kw)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    def families(self) -> list[_Metric]:
        return [self._families[k] for k in sorted(self._families)]

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def get(self, name: str) -> _Metric | None:
        return self._families.get(name)

    # -- exposition ---------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for fam in self.families():
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for key, sample in fam._samples():
                if fam.kind == "histogram":
                    for edge, cum in sample["buckets"].items():
                        lbl = _render_labels(fam.labelnames, key,
                                             {"le": edge})
                        lines.append(f"{fam.name}_bucket{lbl} {cum}")
                    inf = _render_labels(fam.labelnames, key,
                                         {"le": "+Inf"})
                    lines.append(f"{fam.name}_bucket{inf} {sample['count']}")
                    lbl = _render_labels(fam.labelnames, key)
                    lines.append(f"{fam.name}_sum{lbl} {sample['sum']:g}")
                    lines.append(f"{fam.name}_count{lbl} {sample['count']}")
                else:
                    lbl = _render_labels(fam.labelnames, key)
                    lines.append(f"{fam.name}{lbl} {sample['value']:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def samples(self) -> list[dict]:
        """One flat dict per series, the JSONL export rows."""
        rows = []
        for fam in self.families():
            for key, sample in fam._samples():
                rows.append({
                    "name": fam.name,
                    "kind": fam.kind,
                    "labels": dict(zip(fam.labelnames, key)),
                    **sample,
                })
        return rows

    def to_jsonl(self) -> str:
        return "".join(json.dumps(r, sort_keys=True) + "\n"
                       for r in self.samples())

    def export_jsonl(self, path) -> Path:
        return atomic_write_text(Path(path), self.to_jsonl())

    def export_prometheus(self, path) -> Path:
        return atomic_write_text(Path(path), self.to_prometheus())
