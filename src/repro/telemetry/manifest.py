"""Self-describing run manifests.

Every telemetry-enabled run writes a ``manifest.json`` capturing what
ran (config, seed), where (host, platform, git revision) and what came
out (final metrics) -- enough to re-run or audit the run months later
without the shell history.  The capture helpers degrade gracefully:
outside a git checkout the revision is simply absent.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from .fsio import atomic_write_text

__all__ = ["RunManifest", "git_revision", "host_info"]

MANIFEST_FILENAME = "manifest.json"


def git_revision(cwd=None) -> str | None:
    """Current ``HEAD`` hash (with ``+dirty`` suffix), or None outside a
    repository / without git."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5,
        )
        if rev.returncode != 0:
            return None
        sha = rev.stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=5,
        )
        if dirty.returncode == 0 and dirty.stdout.strip():
            sha += "+dirty"
        return sha
    except (OSError, subprocess.TimeoutExpired):
        return None


def host_info() -> dict:
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


@dataclass
class RunManifest:
    """Everything needed to identify and audit one run."""

    run_id: str
    kind: str                      # e.g. "inprocess/data_parallel"
    created_unix: float
    config: dict = field(default_factory=dict)
    seed: int | None = None
    git_rev: str | None = None
    host: dict = field(default_factory=dict)
    argv: list[str] = field(default_factory=list)
    final_metrics: dict = field(default_factory=dict)
    alerts: list = field(default_factory=list)

    @classmethod
    def capture(cls, kind: str, config: dict | None = None,
                seed: int | None = None,
                final_metrics: dict | None = None,
                run_id: str | None = None,
                alerts: list | None = None) -> "RunManifest":
        """Snapshot the current process environment around a run."""
        created = time.time()
        if run_id is None:
            run_id = f"{kind.replace('/', '-')}-{int(created)}-{os.getpid()}"
        return cls(
            run_id=run_id,
            kind=kind,
            created_unix=created,
            config=dict(config or {}),
            seed=seed,
            git_rev=git_revision(),
            host=host_info(),
            argv=list(sys.argv),
            final_metrics=dict(final_metrics or {}),
            alerts=list(alerts or []),
        )

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "created_unix": self.created_unix,
            "created_iso": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self.created_unix)
            ),
            "config": self.config,
            "seed": self.seed,
            "git_rev": self.git_rev,
            "host": self.host,
            "argv": self.argv,
            "final_metrics": self.final_metrics,
            "alerts": self.alerts,
        }

    def write(self, run_dir) -> Path:
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        path = run_dir / MANIFEST_FILENAME
        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True,
                             default=str) + "\n")
        return path

    @classmethod
    def load(cls, run_dir) -> "RunManifest":
        path = Path(run_dir)
        if path.is_dir():
            path = path / MANIFEST_FILENAME
        obj = json.loads(path.read_text())
        return cls(
            run_id=obj["run_id"],
            kind=obj["kind"],
            created_unix=obj["created_unix"],
            config=obj.get("config", {}),
            seed=obj.get("seed"),
            git_rev=obj.get("git_rev"),
            host=obj.get("host", {}),
            argv=obj.get("argv", []),
            final_metrics=obj.get("final_metrics", {}),
            alerts=obj.get("alerts", []),
        )
