"""The process-wide telemetry hub and its zero-overhead null twin.

A :class:`TelemetryHub` bundles the three telemetry primitives --
:class:`~repro.telemetry.metrics.MetricsRegistry`,
:class:`~repro.telemetry.spans.Tracer` and
:class:`~repro.telemetry.manifest.RunManifest` -- behind one object that
instrumented code holds a reference to.  When telemetry is off, code
holds :data:`NULL_HUB` instead: every recording method on the null twin
is a plain no-op, so the instrumented hot paths never branch on an
"enabled" flag per event and the disabled cost is one dynamic dispatch.

Wiring pattern::

    hub = TelemetryHub(run_dir="runs/exp-parallel-01")
    runner = DistMISRunner(telemetry=hub)
    runner.run_inprocess("experiment_parallel")
    # runs/exp-parallel-01/ now holds manifest.json, metrics.jsonl,
    # metrics.prom and trace.json

or process-wide: ``set_hub(hub)`` makes it the default every
un-parameterised constructor picks up.
"""

from __future__ import annotations

import json
from pathlib import Path

from .fsio import atomic_write_text
from .manifest import RunManifest
from .metrics import MetricsRegistry
from .spans import Tracer

__all__ = ["TelemetryHub", "NullHub", "NULL_HUB", "get_hub", "set_hub"]

METRICS_JSONL = "metrics.jsonl"
METRICS_PROM = "metrics.prom"
TRACE_JSON = "trace.json"
PROFILE_JSON = "profile.json"
REQUESTS_JSONL = "requests.jsonl"

# Narrow per-element latency buckets: input-pipeline stages run well
# below the default sub-second grid's resolution on laptop volumes.
STAGE_LATENCY_BUCKETS = (
    1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class TelemetryHub:
    """Live hub: real registry, real tracer, optional run directory.

    ``profile=True`` switches on the profiling artefacts: ``flush``
    additionally writes ``profile.json`` (the aggregated step-time /
    stage / worker profile consumed by ``distmis profile``).
    """

    enabled = True

    def __init__(self, run_dir=None, profile: bool = False):
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.profile = bool(profile)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.last_manifest: RunManifest | None = None
        self.live = None        # LiveMonitor once attach_live is called
        self.request_tracer = None  # RequestTracer once attached
        self.alerts: list = []  # Alert records the live monitor produced
        self._timelines: list = []
        self._attributions: list = []
        self.aggregator = None  # created lazily on the first worker frame
        self._frames_dropped = self.metrics.counter(
            "telemetry_frames_dropped_total",
            "malformed worker telemetry frames/spans dropped on ingest",
            ("kind",))
        self._stage_seconds = self.metrics.counter(
            "pipeline_stage_seconds_total",
            "wall-clock spent per input-pipeline stage", ("stage",))
        self._stage_elements = self.metrics.counter(
            "pipeline_stage_elements_total",
            "elements processed per input-pipeline stage", ("stage",))
        self._stage_latency = self.metrics.histogram(
            "pipeline_stage_latency_seconds",
            "per-element latency per input-pipeline stage", ("stage",),
            buckets=STAGE_LATENCY_BUCKETS)
        self._step_buckets = self.metrics.counter(
            "step_bucket_seconds_total",
            "wall-clock attributed to each training-step bucket "
            "(data_wait / compute / sync / checkpoint)", ("bucket",))

    # -- recording conveniences --------------------------------------------
    def span(self, name: str, category: str = "span", **attrs):
        return self.tracer.span(name, category=category, **attrs)

    def on_stage(self, stage: str, seconds: float, elements: int = 1) -> None:
        """Input-pipeline stage hook (see ``repro.data.dataset``)."""
        self._stage_seconds.labels(stage=stage).inc(seconds)
        self._stage_elements.labels(stage=stage).inc(elements)
        if elements > 0:
            self._stage_latency.labels(stage=stage).observe(
                seconds / elements)
        self.tracer.add_completed(stage, seconds, category="pipeline")

    def on_step_bucket(self, bucket: str, seconds: float) -> None:
        """Attribute ``seconds`` of a training step to one bucket
        (``data_wait`` / ``compute`` / ``sync`` / ``checkpoint``)."""
        self._step_buckets.labels(bucket=bucket).inc(seconds)

    def attach_timeline(self, timeline) -> None:
        """Keep a simulated Timeline for the merged trace export."""
        self._timelines.append(timeline)

    def attach_attribution(self, attribution) -> None:
        """Keep an analytic :class:`~repro.telemetry.profiler.
        StepAttribution` (simulated runs have no measured buckets) for
        the profile export."""
        self._attributions.append(attribution)

    def attach_request_tracer(self, tracer) -> None:
        """Install a :class:`~repro.telemetry.tracing.RequestTracer`;
        its kept traces land in ``requests.jsonl`` at flush time."""
        self.request_tracer = tracer

    # -- live monitoring ----------------------------------------------------
    def attach_live(self, monitor) -> None:
        """Install a :class:`~repro.telemetry.live.LiveMonitor`; from
        here on ``live_tick()`` calls drive its snapshot loop."""
        self.live = monitor

    def live_tick(self, force: bool = False) -> None:
        """One monitor tick opportunity (no-op when nothing attached or
        the interval has not elapsed -- safe on hot-ish paths)."""
        if self.live is not None:
            self.live.tick(force=force)

    def record_alert(self, alert) -> None:
        """Keep an :class:`~repro.telemetry.alerts.Alert` record for the
        run manifest and count it by rule/state."""
        self.alerts.append(alert)
        self.metrics.counter(
            "alerts_total", "alert records produced (firings and "
            "resolutions)", ("rule", "state"),
        ).labels(rule=alert.rule, state=alert.state).inc()

    def ingest_worker_frame(self, frame: dict) -> None:
        """Fold a worker-process telemetry frame (spans + metric
        samples + wall-clock anchor) into the cross-process aggregate;
        see :mod:`repro.telemetry.aggregate`.

        Malformed frames are **dropped and counted**, never raised:
        a worker's telemetry side channel must not be able to take the
        driver (and every other trial) down.  Partially malformed
        frames keep their valid spans; each dropped span is counted
        separately.
        """
        from .aggregate import TraceAggregator, sanitize_frame

        frame, dropped_spans = sanitize_frame(frame)
        if dropped_spans:
            self._frames_dropped.labels(kind="span").inc(dropped_spans)
        if frame is None:
            self._frames_dropped.labels(kind="frame").inc()
            return
        if self.aggregator is None:
            self.aggregator = TraceAggregator()
        self.aggregator.add_frame(frame)

    def merged_samples(self) -> list[dict]:
        """Metric sample rows merged across this process and every
        ingested worker frame."""
        if self.aggregator is None:
            return self.metrics.samples()
        from .aggregate import merge_registries

        return merge_registries(
            [self.metrics.samples()] + self.aggregator.sample_sets()
        ).samples()

    # -- persistence --------------------------------------------------------
    def flush(self, run_dir=None) -> Path | None:
        """Write metrics (JSONL + Prometheus text) and the merged Chrome
        trace into the run directory; returns it (None if unset).

        Every artefact is written atomically (temp file + ``os.replace``)
        so an interrupt mid-flush never leaves torn JSON behind.
        """
        run_dir = Path(run_dir) if run_dir is not None else self.run_dir
        if run_dir is None:
            return None
        run_dir.mkdir(parents=True, exist_ok=True)
        if self.aggregator is not None:
            from .aggregate import merge_registries, merged_chrome_trace

            merged = merge_registries(
                [self.metrics.samples()] + self.aggregator.sample_sets())
            merged.export_jsonl(run_dir / METRICS_JSONL)
            merged.export_prometheus(run_dir / METRICS_PROM)
            merged_chrome_trace(self.tracer, self.aggregator,
                                extra_timelines=self._timelines,
                                path=run_dir / TRACE_JSON)
        else:
            self.metrics.export_jsonl(run_dir / METRICS_JSONL)
            self.metrics.export_prometheus(run_dir / METRICS_PROM)
            self.tracer.to_chrome_trace(run_dir / TRACE_JSON,
                                        extra_timelines=self._timelines)
        if self.request_tracer is not None and self.request_tracer.kept:
            atomic_write_text(run_dir / REQUESTS_JSONL,
                              self.request_tracer.to_jsonl())
        if self.profile:
            from .profiler import build_profile_data

            atomic_write_text(
                run_dir / PROFILE_JSON,
                json.dumps(build_profile_data(self).to_dict(), indent=2)
                + "\n")
        if self.last_manifest is not None:
            self.last_manifest.write(run_dir)
        return run_dir

    def finalize_run(self, kind: str, config: dict | None = None,
                     seed: int | None = None,
                     final_metrics: dict | None = None) -> Path | None:
        """Capture a manifest for the run that just finished and flush
        everything to the run directory."""
        if self.live is not None:
            self.live.close()  # final snapshot + health event, idempotent
        self.last_manifest = RunManifest.capture(
            kind, config=config, seed=seed, final_metrics=final_metrics,
            alerts=[a.to_dict() for a in self.alerts],
        )
        return self.flush()


# -- the null twin ----------------------------------------------------------
class _NullSpan:
    """Reusable no-op context manager standing in for a live span."""

    __slots__ = ()
    span = None

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()


class _NullMetric:
    """Absorbs every metric call; ``labels`` returns itself."""

    __slots__ = ()

    def labels(self, **labels):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        pass

    def quantile(self, q: float) -> float:
        return float("nan")


_NULL_METRIC = _NullMetric()


class _NullRegistry:
    __slots__ = ()

    def counter(self, name, help="", labelnames=()):
        return _NULL_METRIC

    def gauge(self, name, help="", labelnames=()):
        return _NULL_METRIC

    def histogram(self, name, help="", labelnames=(), buckets=()):
        return _NULL_METRIC

    def families(self):
        return []

    def samples(self):
        return []

    def to_prometheus(self) -> str:
        return ""

    def to_jsonl(self) -> str:
        return ""

    def __len__(self) -> int:
        return 0

    def __contains__(self, name) -> bool:
        return False

    def get(self, name):
        return None


class _NullTracer:
    __slots__ = ()
    spans: list = []

    def now(self) -> float:
        return 0.0

    def span(self, name, category="span", resource=None, **attrs):
        return _NULL_SPAN

    def add_completed(self, name, duration_s, category="span",
                      resource=None, **attrs):
        return None

    def record_span(self, name, start, end, resource="sim",
                    category="span", **attrs):
        return None

    def ingest_timeline(self, timeline) -> int:
        return 0

    def closed_spans(self):
        return []

    def to_chrome_trace(self, path=None, extra_timelines=()):
        return []

    def __len__(self) -> int:
        return 0


class NullHub:
    """Disabled telemetry: swallows everything, writes nothing."""

    enabled = False
    profile = False
    run_dir = None
    last_manifest = None
    aggregator = None
    live = None
    request_tracer = None
    alerts: list = []

    def __init__(self):
        self.metrics = _NullRegistry()
        self.tracer = _NullTracer()

    def attach_live(self, monitor) -> None:
        pass

    def attach_request_tracer(self, tracer) -> None:
        pass

    def live_tick(self, force: bool = False) -> None:
        pass

    def record_alert(self, alert) -> None:
        pass

    def span(self, name, category="span", **attrs):
        return _NULL_SPAN

    def on_stage(self, stage, seconds, elements=1) -> None:
        pass

    def on_step_bucket(self, bucket, seconds) -> None:
        pass

    def attach_timeline(self, timeline) -> None:
        pass

    def attach_attribution(self, attribution) -> None:
        pass

    def ingest_worker_frame(self, frame) -> None:
        pass

    def merged_samples(self):
        return []

    def flush(self, run_dir=None):
        return None

    def finalize_run(self, kind, config=None, seed=None, final_metrics=None):
        return None


NULL_HUB = NullHub()

_default_hub = NULL_HUB


def get_hub():
    """The process-wide default hub (the null hub unless ``set_hub``)."""
    return _default_hub


def set_hub(hub) -> None:
    """Install ``hub`` (or None to disable) as the process-wide default."""
    global _default_hub
    _default_hub = hub if hub is not None else NULL_HUB
