"""The process-wide telemetry hub and its zero-overhead null twin.

A :class:`TelemetryHub` bundles the three telemetry primitives --
:class:`~repro.telemetry.metrics.MetricsRegistry`,
:class:`~repro.telemetry.spans.Tracer` and
:class:`~repro.telemetry.manifest.RunManifest` -- behind one object that
instrumented code holds a reference to.  When telemetry is off, code
holds :data:`NULL_HUB` instead: every recording method on the null twin
is a plain no-op, so the instrumented hot paths never branch on an
"enabled" flag per event and the disabled cost is one dynamic dispatch.

Wiring pattern::

    hub = TelemetryHub(run_dir="runs/exp-parallel-01")
    runner = DistMISRunner(telemetry=hub)
    runner.run_inprocess("experiment_parallel")
    # runs/exp-parallel-01/ now holds manifest.json, metrics.jsonl,
    # metrics.prom and trace.json

or process-wide: ``set_hub(hub)`` makes it the default every
un-parameterised constructor picks up.
"""

from __future__ import annotations

from pathlib import Path

from .manifest import RunManifest
from .metrics import MetricsRegistry
from .spans import Tracer

__all__ = ["TelemetryHub", "NullHub", "NULL_HUB", "get_hub", "set_hub"]

METRICS_JSONL = "metrics.jsonl"
METRICS_PROM = "metrics.prom"
TRACE_JSON = "trace.json"


class TelemetryHub:
    """Live hub: real registry, real tracer, optional run directory."""

    enabled = True

    def __init__(self, run_dir=None):
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.last_manifest: RunManifest | None = None
        self._timelines: list = []
        self._stage_seconds = self.metrics.counter(
            "pipeline_stage_seconds_total",
            "wall-clock spent per input-pipeline stage", ("stage",))
        self._stage_elements = self.metrics.counter(
            "pipeline_stage_elements_total",
            "elements processed per input-pipeline stage", ("stage",))

    # -- recording conveniences --------------------------------------------
    def span(self, name: str, category: str = "span", **attrs):
        return self.tracer.span(name, category=category, **attrs)

    def on_stage(self, stage: str, seconds: float, elements: int = 1) -> None:
        """Input-pipeline stage hook (see ``repro.data.dataset``)."""
        self._stage_seconds.labels(stage=stage).inc(seconds)
        self._stage_elements.labels(stage=stage).inc(elements)
        self.tracer.add_completed(stage, seconds, category="pipeline")

    def attach_timeline(self, timeline) -> None:
        """Keep a simulated Timeline for the merged trace export."""
        self._timelines.append(timeline)

    # -- persistence --------------------------------------------------------
    def flush(self, run_dir=None) -> Path | None:
        """Write metrics (JSONL + Prometheus text) and the merged Chrome
        trace into the run directory; returns it (None if unset)."""
        run_dir = Path(run_dir) if run_dir is not None else self.run_dir
        if run_dir is None:
            return None
        run_dir.mkdir(parents=True, exist_ok=True)
        self.metrics.export_jsonl(run_dir / METRICS_JSONL)
        self.metrics.export_prometheus(run_dir / METRICS_PROM)
        self.tracer.to_chrome_trace(run_dir / TRACE_JSON,
                                    extra_timelines=self._timelines)
        if self.last_manifest is not None:
            self.last_manifest.write(run_dir)
        return run_dir

    def finalize_run(self, kind: str, config: dict | None = None,
                     seed: int | None = None,
                     final_metrics: dict | None = None) -> Path | None:
        """Capture a manifest for the run that just finished and flush
        everything to the run directory."""
        self.last_manifest = RunManifest.capture(
            kind, config=config, seed=seed, final_metrics=final_metrics,
        )
        return self.flush()


# -- the null twin ----------------------------------------------------------
class _NullSpan:
    """Reusable no-op context manager standing in for a live span."""

    __slots__ = ()
    span = None

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()


class _NullMetric:
    """Absorbs every metric call; ``labels`` returns itself."""

    __slots__ = ()

    def labels(self, **labels):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class _NullRegistry:
    __slots__ = ()

    def counter(self, name, help="", labelnames=()):
        return _NULL_METRIC

    def gauge(self, name, help="", labelnames=()):
        return _NULL_METRIC

    def histogram(self, name, help="", labelnames=(), buckets=()):
        return _NULL_METRIC

    def families(self):
        return []

    def samples(self):
        return []

    def to_prometheus(self) -> str:
        return ""

    def to_jsonl(self) -> str:
        return ""

    def __len__(self) -> int:
        return 0

    def __contains__(self, name) -> bool:
        return False

    def get(self, name):
        return None


class _NullTracer:
    __slots__ = ()
    spans: list = []

    def now(self) -> float:
        return 0.0

    def span(self, name, category="span", resource=None, **attrs):
        return _NULL_SPAN

    def add_completed(self, name, duration_s, category="span",
                      resource=None, **attrs):
        return None

    def record_span(self, name, start, end, resource="sim",
                    category="span", **attrs):
        return None

    def ingest_timeline(self, timeline) -> int:
        return 0

    def closed_spans(self):
        return []

    def to_chrome_trace(self, path=None, extra_timelines=()):
        return []

    def __len__(self) -> int:
        return 0


class NullHub:
    """Disabled telemetry: swallows everything, writes nothing."""

    enabled = False
    run_dir = None
    last_manifest = None

    def __init__(self):
        self.metrics = _NullRegistry()
        self.tracer = _NullTracer()

    def span(self, name, category="span", **attrs):
        return _NULL_SPAN

    def on_stage(self, stage, seconds, elements=1) -> None:
        pass

    def attach_timeline(self, timeline) -> None:
        pass

    def flush(self, run_dir=None):
        return None

    def finalize_run(self, kind, config=None, seed=None, final_metrics=None):
        return None


NULL_HUB = NullHub()

_default_hub = NULL_HUB


def get_hub():
    """The process-wide default hub (the null hub unless ``set_hub``)."""
    return _default_hub


def set_hub(hub) -> None:
    """Install ``hub`` (or None to disable) as the process-wide default."""
    global _default_hub
    _default_hub = hub if hub is not None else NULL_HUB
