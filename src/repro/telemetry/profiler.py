"""Step-time attribution and bottleneck analysis.

Turns "the run felt slow" into "this run was 63% input-bound, binarise
your data".  Three pieces:

* :class:`StepAttribution` -- wall-clock split of training steps into
  the four buckets instrumented across the stack (``data_wait`` in
  :func:`repro.core.pipeline.train_trial`, ``compute`` in
  :class:`repro.raysim.sgd.DataParallelTrainer`, ``sync`` in
  :func:`repro.cluster.collectives.ring_allreduce`, ``checkpoint``
  around :class:`repro.fault_tolerance.CheckpointManager` saves).
  ``from_cost_model`` derives the same split analytically from
  :class:`repro.perf.costs.StepCostModel`, which is how measured
  fractions are pinned against the simulator in tests and how simulated
  runs are profiled at all.
* :func:`analyze` -- a pure function over the aggregated
  :class:`ProfileData` producing a :class:`BottleneckReport` (verdict,
  input-bound %, sync-overhead %, straggler workers, per-trial
  GPU-second accounting).
* :class:`ProgressReporter` -- a Tune-style live console table rendered
  from the driver's trial state during a search.

The paper's two load-bearing claims surface directly: C1 (experiment
parallelism pays zero gradient-sync overhead) shows as
``sync_overhead_pct == 0`` for 1-replica trials, and C3 (raw NIfTI
decode dominates the input pipeline) shows as the input-bound %
collapsing when the pipeline switches from online NIfTI decoding to
binarised records.
"""

from __future__ import annotations

import json
import math
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

__all__ = ["STEP_BUCKETS", "StepAttribution", "ProfileData",
           "BottleneckReport", "analyze", "analyze_run_dir",
           "build_profile_data", "ProgressReporter"]

STEP_BUCKETS = ("data_wait", "compute", "sync", "checkpoint")

# Verdict thresholds (fractions of attributed step time).
INPUT_BOUND_AT = 0.40
SYNC_BOUND_AT = 0.25
CHECKPOINT_BOUND_AT = 0.25
# A worker whose mean seconds-per-task exceeds the fleet median by this
# factor is flagged as a straggler.
STRAGGLER_FACTOR = 1.5


@dataclass(frozen=True)
class StepAttribution:
    """Seconds of training-step wall-clock attributed to each bucket."""

    data_wait: float = 0.0
    compute: float = 0.0
    sync: float = 0.0
    checkpoint: float = 0.0

    @property
    def total(self) -> float:
        return self.data_wait + self.compute + self.sync + self.checkpoint

    def fraction(self, bucket: str) -> float:
        if bucket not in STEP_BUCKETS:
            raise ValueError(f"unknown step bucket {bucket!r}")
        total = self.total
        return getattr(self, bucket) / total if total > 0 else 0.0

    @property
    def input_bound_fraction(self) -> float:
        return self.fraction("data_wait")

    @property
    def sync_overhead_fraction(self) -> float:
        return self.fraction("sync")

    def __add__(self, other: "StepAttribution") -> "StepAttribution":
        return StepAttribution(
            data_wait=self.data_wait + other.data_wait,
            compute=self.compute + other.compute,
            sync=self.sync + other.sync,
            checkpoint=self.checkpoint + other.checkpoint,
        )

    def as_dict(self) -> dict:
        return {b: getattr(self, b) for b in STEP_BUCKETS}

    @classmethod
    def from_dict(cls, d: dict) -> "StepAttribution":
        return cls(**{b: float(d.get(b, 0.0)) for b in STEP_BUCKETS})

    @classmethod
    def from_samples(cls, rows) -> "StepAttribution":
        """Read the ``step_bucket_seconds_total`` counter out of metric
        sample rows (:meth:`MetricsRegistry.samples` format)."""
        att = cls()
        for row in rows:
            if row.get("name") != "step_bucket_seconds_total":
                continue
            bucket = row.get("labels", {}).get("bucket")
            if bucket in STEP_BUCKETS:
                att = replace(att, **{
                    bucket: getattr(att, bucket) + float(row["value"])})
        return att

    @classmethod
    def from_cost_model(cls, model, config, num_gpus: int,
                        include_checkpoint: bool = True
                        ) -> "StepAttribution":
        """The analytic per-step split the simulator's
        :class:`~repro.perf.costs.StepCostModel` implies.

        Decomposes ``model.step_time`` exactly: ``compute`` is the pure
        forward+backward, ``sync`` is everything the barrier adds on top
        (straggler inflation + all-reduce wire time + framework
        overhead -- identically zero at ``num_gpus == 1``, claim C1),
        ``data_wait`` is the input copy, and ``checkpoint`` amortises
        the fixed per-epoch cost over the epoch's steps, so that
        ``total == step_time + epoch_fixed_s / steps_per_epoch``.
        """
        from ..cluster.collectives import allreduce_time

        compute = model.step_compute_time(config)
        sync = 0.0
        if num_gpus > 1:
            comm = allreduce_time(
                model.gradient_bytes(config), num_gpus,
                model.cluster.node.num_gpus,
                model.cluster.node.intra_link, model.cluster.inter_link)
            sync = (compute * (model.sync_factor(num_gpus) - 1.0)
                    + comm + model.framework_overhead(num_gpus))
        checkpoint = 0.0
        if include_checkpoint:
            checkpoint = (model.params.epoch_fixed_s
                          / model.steps_per_epoch(config, num_gpus))
        return cls(data_wait=model.input_time(config), compute=compute,
                   sync=sync, checkpoint=checkpoint)


@dataclass
class ProfileData:
    """The aggregated profile of one run: what ``profile.json`` holds
    and what :func:`analyze` consumes."""

    attribution: StepAttribution = field(default_factory=StepAttribution)
    stage_seconds: dict = field(default_factory=dict)
    stage_elements: dict = field(default_factory=dict)
    workers: list = field(default_factory=list)
    trials: list = field(default_factory=list)
    # "backend/op" -> seconds inside dispatched convolution kernels; a
    # finer-grained split of the compute bucket (kernel_seconds_total).
    kernels: dict = field(default_factory=dict)
    source: str = "measured"

    def to_dict(self) -> dict:
        return {
            "buckets": self.attribution.as_dict(),
            "stages": {
                stage: {
                    "seconds": self.stage_seconds[stage],
                    "elements": self.stage_elements.get(stage, 0),
                }
                for stage in sorted(self.stage_seconds)
            },
            "workers": self.workers,
            "trials": self.trials,
            "kernels": {k: self.kernels[k] for k in sorted(self.kernels)},
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ProfileData":
        stages = d.get("stages", {})
        return cls(
            attribution=StepAttribution.from_dict(d.get("buckets", {})),
            stage_seconds={s: v["seconds"] for s, v in stages.items()},
            stage_elements={s: v.get("elements", 0)
                            for s, v in stages.items()},
            workers=list(d.get("workers", [])),
            trials=list(d.get("trials", [])),
            kernels={k: float(v)
                     for k, v in d.get("kernels", {}).items()},
            source=d.get("source", "measured"),
        )


def build_profile_data(hub) -> ProfileData:
    """Assemble the run profile from a live hub: merged metric samples
    (driver + worker frames), per-trial spans and worker accounting."""
    rows = hub.merged_samples()
    attribution = StepAttribution.from_samples(rows)
    measured = attribution.total > 0
    for extra in getattr(hub, "_attributions", ()):
        attribution = attribution + extra

    stage_seconds: dict = {}
    stage_elements: dict = {}
    busy: dict = {}
    tasks: dict = {}
    kernels: dict = {}
    for row in rows:
        name, labels = row.get("name"), row.get("labels", {})
        if name == "pipeline_stage_seconds_total":
            stage_seconds[labels["stage"]] = float(row["value"])
        elif name == "pipeline_stage_elements_total":
            stage_elements[labels["stage"]] = int(row["value"])
        elif name == "execpool_worker_busy_seconds":
            busy[labels["worker"]] = float(row["value"])
        elif name == "execpool_tasks_total":
            tasks[labels["worker"]] = int(row["value"])
        elif name == "kernel_seconds_total":
            key = f"{labels.get('backend', '?')}/{labels.get('op', '?')}"
            kernels[key] = kernels.get(key, 0.0) + float(row["value"])

    pids = {}
    if getattr(hub, "aggregator", None) is not None:
        pids = {str(w["worker_id"]): w["pid"]
                for w in hub.aggregator.workers()}
    workers = [
        {
            "worker_id": int(w),
            "pid": pids.get(w, 0),
            "busy_seconds": busy.get(w, 0.0),
            "tasks": tasks.get(w, 0),
        }
        for w in sorted(set(busy) | set(tasks), key=int)
    ]

    trials = [
        {
            "trial_id": s.name,
            "seconds": s.duration,
            "worker": s.attrs.get("worker"),
            "gpu_seconds": s.duration * int(s.attrs.get("num_gpus", 1)),
        }
        for s in hub.tracer.closed_spans() if s.category == "trial"
    ]
    source = "measured" if measured else (
        "cost_model" if getattr(hub, "_attributions", ()) else "measured")
    return ProfileData(attribution=attribution, stage_seconds=stage_seconds,
                       stage_elements=stage_elements, workers=workers,
                       trials=trials, kernels=kernels, source=source)


@dataclass
class BottleneckReport:
    """The analyzer's verdict over one run profile."""

    attribution: StepAttribution
    input_bound_pct: float
    compute_pct: float
    sync_overhead_pct: float
    checkpoint_pct: float
    verdict: str
    stragglers: list
    workers: list
    trials: list
    gpu_seconds_total: float
    top_stages: list
    kernels: dict = field(default_factory=dict)
    source: str = "measured"

    def render(self) -> str:
        att = self.attribution
        lines = [f"bottleneck report (source: {self.source})",
                 f"step-time attribution over {att.total:.3f} s:"]
        pcts = {"data_wait": self.input_bound_pct,
                "compute": self.compute_pct,
                "sync": self.sync_overhead_pct,
                "checkpoint": self.checkpoint_pct}
        for bucket in STEP_BUCKETS:
            lines.append(f"  {bucket:<11} {getattr(att, bucket):>10.3f} s"
                         f"  {pcts[bucket]:>5.1f}%")
        lines.append(f"verdict: {self.verdict}")
        if self.kernels:
            total_k = sum(self.kernels.values())
            lines.append(
                f"convolution kernels ({total_k:.3f} s incl. validation "
                "passes, by backend/op):")
            for key in sorted(self.kernels, key=lambda k: -self.kernels[k]):
                lines.append(f"  {key:<36} {self.kernels[key]:>10.3f} s")
        if self.top_stages:
            lines.append("input-pipeline stages (by wall-clock):")
            for stage, seconds, elements in self.top_stages:
                per = seconds / elements * 1e3 if elements else math.nan
                lines.append(f"  {stage:<16} {seconds:>10.3f} s  "
                             f"{elements:>7d} el  {per:>8.3f} ms/el")
        if self.workers:
            lines.append("workers:")
            for w in self.workers:
                per = (w["busy_seconds"] / w["tasks"]
                       if w["tasks"] else math.nan)
                flag = "  <- straggler" \
                    if w["worker_id"] in self.stragglers else ""
                lines.append(
                    f"  worker {w['worker_id']} (pid {w['pid']}): "
                    f"{w['tasks']} tasks, {w['busy_seconds']:.2f} s busy, "
                    f"{per:.2f} s/task{flag}")
        if self.trials:
            lines.append(
                f"per-trial GPU seconds (total {self.gpu_seconds_total:.2f}):")
            for t in sorted(self.trials, key=lambda t: t["trial_id"]):
                lines.append(f"  {t['trial_id']:<12} "
                             f"{t['gpu_seconds']:>8.2f}")
        return "\n".join(lines)


def analyze(data: ProfileData) -> BottleneckReport:
    """Pure function: aggregated profile in, verdict out."""
    att = data.attribution
    pct = {b: att.fraction(b) * 100.0 for b in STEP_BUCKETS}

    if att.total <= 0:
        verdict = "no step time recorded -- run with profiling enabled"
    elif att.input_bound_fraction >= INPUT_BOUND_AT:
        verdict = (f"input-bound ({pct['data_wait']:.0f}% waiting on "
                   "data) -- binarise your dataset offline (claim C3)")
    elif att.sync_overhead_fraction >= SYNC_BOUND_AT:
        verdict = (f"sync-bound ({pct['sync']:.0f}% in gradient "
                   "synchronisation) -- prefer experiment parallelism "
                   "over data parallelism (claim C1)")
    elif att.fraction("checkpoint") >= CHECKPOINT_BOUND_AT:
        verdict = (f"checkpoint-bound ({pct['checkpoint']:.0f}% "
                   "saving state) -- lower the checkpoint cadence")
    else:
        verdict = (f"compute-bound ({pct['compute']:.0f}% in "
                   "forward/backward) -- the accelerator is the "
                   "bottleneck; scale out trials")

    stragglers: list = []
    rates = {w["worker_id"]: w["busy_seconds"] / w["tasks"]
             for w in data.workers if w["tasks"]}
    if len(rates) >= 2:
        ordered = sorted(rates.values())
        median = ordered[len(ordered) // 2]
        if median > 0:
            stragglers = sorted(w for w, r in rates.items()
                                if r > STRAGGLER_FACTOR * median)

    top_stages = sorted(
        ((s, sec, data.stage_elements.get(s, 0))
         for s, sec in data.stage_seconds.items()),
        key=lambda row: -row[1])

    return BottleneckReport(
        attribution=att,
        input_bound_pct=pct["data_wait"],
        compute_pct=pct["compute"],
        sync_overhead_pct=pct["sync"],
        checkpoint_pct=pct["checkpoint"],
        verdict=verdict,
        stragglers=stragglers,
        workers=list(data.workers),
        trials=list(data.trials),
        gpu_seconds_total=sum(t.get("gpu_seconds", 0.0)
                              for t in data.trials),
        top_stages=top_stages,
        kernels=dict(data.kernels),
        source=data.source,
    )


def analyze_run_dir(run_dir) -> BottleneckReport:
    """Analyze a run directory produced by ``--profile DIR``.

    Prefers ``profile.json``; falls back to reconstructing the profile
    from ``metrics.jsonl`` + ``trace.json`` for runs recorded with plain
    ``--telemetry``.
    """
    run_dir = Path(run_dir)
    profile_path = run_dir / "profile.json"
    if profile_path.exists():
        data = ProfileData.from_dict(json.loads(profile_path.read_text()))
        return analyze(data)

    metrics_path = run_dir / "metrics.jsonl"
    if not metrics_path.exists():
        raise FileNotFoundError(
            f"{run_dir} holds neither profile.json nor metrics.jsonl -- "
            "record the run with --profile DIR (or --telemetry DIR)")
    rows = [json.loads(line)
            for line in metrics_path.read_text().splitlines() if line]
    data = ProfileData(attribution=StepAttribution.from_samples(rows))
    for row in rows:
        name, labels = row.get("name"), row.get("labels", {})
        if name == "pipeline_stage_seconds_total":
            data.stage_seconds[labels["stage"]] = float(row["value"])
        elif name == "pipeline_stage_elements_total":
            data.stage_elements[labels["stage"]] = int(row["value"])
        elif name == "kernel_seconds_total":
            key = f"{labels.get('backend', '?')}/{labels.get('op', '?')}"
            data.kernels[key] = data.kernels.get(key, 0.0) + float(
                row["value"])
    trace_path = run_dir / "trace.json"
    if trace_path.exists():
        for ev in json.loads(trace_path.read_text()):
            if ev.get("ph") == "X" and ev.get("cat") == "trial":
                data.trials.append({
                    "trial_id": ev["name"],
                    "seconds": ev["dur"] / 1e6,
                    "worker": ev.get("args", {}).get("worker"),
                    "gpu_seconds": ev["dur"] / 1e6 * int(
                        ev.get("args", {}).get("num_gpus", 1)),
                })
    return analyze(data)


class ProgressReporter:
    """Tune-style live console table for a running search.

    Rate-limited (at most one table per ``interval_s``) so per-epoch
    report streams don't flood the terminal; in-flight trials render
    their running time via :meth:`Span.elapsed`.
    """

    def __init__(self, stream=None, interval_s: float = 2.0,
                 clock=time.monotonic):
        self._stream = stream if stream is not None else sys.stdout
        self._interval = interval_s
        self._clock = clock
        self._last = -math.inf
        self.renders = 0

    def render(self, trials, in_flight=None, now: float | None = None) -> str:
        in_flight = in_flight or {}
        counts: dict = {}
        for t in trials:
            counts[t.status.value] = counts.get(t.status.value, 0) + 1
        head = " | ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        lines = [f"== trials ({head}) ==",
                 f"{'trial':<12} {'status':<11} {'iter':>4} "
                 f"{'val_dice':>9} {'elapsed_s':>9}"]
        for t in trials:
            last = t.results[-1] if t.results else {}
            dice = last.get("val_dice")
            span = in_flight.get(t.trial_id)
            if span is not None:
                elapsed = span.elapsed(now)
            elif t.status.value in ("terminated", "stopped", "error"):
                elapsed = t.runtime_s
            else:
                elapsed = None
            lines.append(
                f"{t.trial_id:<12} {t.status.value:<11} "
                f"{len(t.results):>4} "
                f"{dice if dice is None else format(dice, '.4f')!s:>9} "
                f"{elapsed if elapsed is None else format(elapsed, '.1f')!s:>9}")
        return "\n".join(lines)

    def update(self, trials, in_flight=None, now: float | None = None,
               force: bool = False) -> None:
        if not force and self._clock() - self._last < self._interval:
            return
        self._last = self._clock()
        self.renders += 1
        self._stream.write(self.render(trials, in_flight, now) + "\n")
        if hasattr(self._stream, "flush"):
            self._stream.flush()

    def finish(self, trials, now: float | None = None) -> None:
        self.update(trials, in_flight=None, now=now, force=True)
