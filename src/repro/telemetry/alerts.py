"""Declarative SLO/alert rules evaluated over live telemetry snapshots.

The monitoring layer (:mod:`repro.telemetry.live`) produces a stream of
*snapshot values* -- a flat ``{name: float}`` dict derived once per tick
from the hub's merged metric samples (ratios over the last window,
health-board counts, queue depths).  This module turns operator intent
into structured :class:`Alert` records over that stream:

>>> rule = AlertRule.parse("input_bound",
...                        "data_wait_ratio > 0.5 for 3 windows")
>>> engine = AlertEngine([rule])
>>> engine.evaluate({"data_wait_ratio": 0.8}, now=0.0)   # window 1
[]
>>> engine.evaluate({"data_wait_ratio": 0.8}, now=1.0)   # window 2
[]
>>> [a.rule for a in engine.evaluate({"data_wait_ratio": 0.8}, now=2.0)]
['input_bound']

Semantics follow Prometheus alerting rules scaled down to one process:

* ``for N windows`` is hysteresis -- the predicate must hold on ``N``
  *consecutive* snapshots before the alert fires, so one noisy window
  never pages;
* a firing alert is **deduplicated**: the rule stays silent until the
  predicate clears (a ``resolved`` record is emitted) and only then can
  fire again;
* a missing value is *not* a breach (monitors evaluate rule sets over
  runs that may never record the metric), but a non-finite value *is*
  when the comparison asks for one (``trials_nonfinite > 0``).

The default rule set (:func:`default_rules`) encodes the failure modes
the paper's cluster economics care about: an input-bound pipeline
(claim C3), a starving trial queue, degenerate trials (non-finite
loss), and stalled workers burning simulated GPU-hours invisibly.
"""

from __future__ import annotations

import math
import re
import time
from dataclasses import dataclass, field

__all__ = ["Alert", "AlertRule", "AlertEngine", "default_rules",
           "DEFAULT_RULE_SPECS"]

_OPS = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}

_EXPR_RE = re.compile(
    r"^\s*(?P<value>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?P<op>>=|<=|>|<)\s*"
    r"(?P<threshold>[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"
    r"(?:\s+for\s+(?P<windows>[0-9]+)\s+windows?)?\s*$"
)


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO rule over a snapshot value.

    ``value`` names a key of the snapshot dict, ``op``/``threshold``
    form the breach predicate, and ``for_windows`` is the hysteresis:
    the number of consecutive breaching snapshots before the rule fires.
    """

    name: str
    value: str
    op: str
    threshold: float
    for_windows: int = 1
    severity: str = "warning"
    summary: str = ""

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")
        if self.for_windows < 1:
            raise ValueError("for_windows must be >= 1")
        if not self.name:
            raise ValueError("rule needs a name")

    @classmethod
    def parse(cls, name: str, expr: str, severity: str = "warning",
              summary: str = "") -> "AlertRule":
        """Parse ``"<value> <op> <threshold> [for N windows]"``."""
        m = _EXPR_RE.match(expr)
        if m is None:
            raise ValueError(
                f"cannot parse alert rule {expr!r}; expected "
                "'<value> <op> <threshold> [for N windows]'"
            )
        return cls(
            name=name,
            value=m.group("value"),
            op=m.group("op"),
            threshold=float(m.group("threshold")),
            for_windows=int(m.group("windows") or 1),
            severity=severity,
            summary=summary,
        )

    @property
    def expr(self) -> str:
        base = f"{self.value} {self.op} {self.threshold:g}"
        if self.for_windows > 1:
            base += f" for {self.for_windows} windows"
        return base

    def breached(self, snapshot: dict) -> tuple[bool, float]:
        """(is the predicate breached on this snapshot, observed value).

        A missing value never breaches; a NaN observed value counts as a
        breach only for rules that watch explicit non-finite counters
        (NaN compares false everywhere, so this returns False for it --
        degenerate-loss detection therefore goes through a *count* of
        non-finite observations, see ``trials_nonfinite``).
        """
        v = snapshot.get(self.value)
        if v is None:
            return False, math.nan
        v = float(v)
        if math.isnan(v):
            return False, v
        return _OPS[self.op](v, self.threshold), v

    def to_dict(self) -> dict:
        return {"name": self.name, "expr": self.expr,
                "severity": self.severity, "summary": self.summary}


@dataclass
class Alert:
    """One structured alert record (a firing or a resolution)."""

    rule: str
    severity: str
    state: str                  # "firing" | "resolved"
    value: float
    threshold: float
    expr: str
    message: str
    fired_at_wall: float
    resolved_at_wall: float | None = None
    windows_breached: int = 0
    labels: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "value": None if math.isnan(self.value) else self.value,
            "threshold": self.threshold,
            "expr": self.expr,
            "message": self.message,
            "fired_at_wall": self.fired_at_wall,
            "resolved_at_wall": self.resolved_at_wall,
            "windows_breached": self.windows_breached,
            "labels": dict(self.labels),
        }


class AlertEngine:
    """Evaluates a rule set over the snapshot stream with hysteresis
    and deduplication.

    :meth:`evaluate` returns only the *newly produced* records (fresh
    firings and resolutions); :attr:`firing` always holds the currently
    active alerts and :attr:`history` everything ever produced.
    """

    def __init__(self, rules=None):
        rules = list(default_rules() if rules is None else rules)
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self.rules = rules
        self._breach_streak: dict[str, int] = {r.name: 0 for r in rules}
        self._active: dict[str, Alert] = {}
        self.history: list[Alert] = []

    @property
    def firing(self) -> list[Alert]:
        return [self._active[name] for name in sorted(self._active)]

    def evaluate(self, snapshot: dict, now: float | None = None
                 ) -> list[Alert]:
        """Fold one snapshot in; returns newly fired/resolved records.

        ``now`` is a *wall-clock* timestamp used only to stamp
        ``fired_at_wall``/``resolved_at_wall`` on the produced records.
        Hysteresis is counted in snapshot *windows*, never in elapsed
        time, so a wall-clock step (NTP) cannot fire or clear a rule
        early -- the monitor's tick gating runs on a monotonic clock.
        """
        now = time.time() if now is None else now
        produced: list[Alert] = []
        for rule in self.rules:
            breached, value = rule.breached(snapshot)
            active = self._active.get(rule.name)
            if breached:
                self._breach_streak[rule.name] += 1
                streak = self._breach_streak[rule.name]
                if active is None and streak >= rule.for_windows:
                    alert = Alert(
                        rule=rule.name, severity=rule.severity,
                        state="firing", value=value,
                        threshold=rule.threshold, expr=rule.expr,
                        message=(rule.summary
                                 or f"{rule.value} = {value:g} breaches "
                                    f"{rule.expr}"),
                        fired_at_wall=now, windows_breached=streak,
                    )
                    self._active[rule.name] = alert
                    self.history.append(alert)
                    produced.append(alert)
                elif active is not None:
                    # dedup: refresh the live record, emit nothing
                    active.value = value
                    active.windows_breached = streak
            else:
                self._breach_streak[rule.name] = 0
                if active is not None:
                    del self._active[rule.name]
                    resolved = Alert(
                        rule=rule.name, severity=rule.severity,
                        state="resolved", value=value,
                        threshold=rule.threshold, expr=rule.expr,
                        message=f"{rule.name} resolved",
                        fired_at_wall=active.fired_at_wall,
                        resolved_at_wall=now,
                        windows_breached=active.windows_breached,
                    )
                    self.history.append(resolved)
                    produced.append(resolved)
        return produced


# Threshold defaults: an input pipeline eating more than half of step
# time for 3 windows is claim C3's regime; 8 queued trials cover every
# laptop-scale pool; any stalled worker or non-finite loss is critical.
DEFAULT_RULE_SPECS = (
    ("input_bound", "data_wait_ratio > 0.5 for 3 windows", "warning",
     "input-bound: majority of step time waiting on data -- binarise "
     "the dataset offline (claim C3)"),
    ("queue_backlog", "queue_depth > 8 for 3 windows", "warning",
     "trial queue backlog: more trials waiting than the pool can place"),
    ("loss_non_finite", "trials_nonfinite > 0", "critical",
     "a trial reported a non-finite loss -- degenerate configuration"),
    ("worker_stalled", "workers_stalled > 0", "critical",
     "worker heartbeat lost -- trial may be burning GPU-hours invisibly"),
    ("serve_backlog", "serve_queue_depth > 16 for 3 windows", "warning",
     "serving admission queue backlog: arrivals outpace the replica "
     "pool -- scale up or shed load"),
    ("serve_p99_slo", "serve_latency_p99 > 0.5 for 3 windows", "critical",
     "serving p99 latency breaches the 500 ms SLO -- inspect the kept "
     "request traces (`distmis trace <run-dir> --slowest 5`) for the "
     "dominant phase"),
)


def default_rules() -> list[AlertRule]:
    """The built-in SLO rule set (fresh instances each call)."""
    return [AlertRule.parse(name, expr, severity=sev, summary=summary)
            for name, expr, sev, summary in DEFAULT_RULE_SPECS]
