"""Span tracing: nested wall-clock spans that merge with simulated
timelines.

The qualitative half of the telemetry layer.  A :class:`Tracer` hands
out context-managed :class:`Span` objects::

    with tracer.span("epoch", category="train", epoch=3):
        with tracer.span("train_step", category="train"):
            ...

Nesting is tracked per thread (each replica thread gets its own stack),
and finished spans carry their depth so a Chrome-trace viewer stacks
them correctly.  ``record_span`` accepts *explicit* timestamps, which is
how discrete-event simulation results (``repro.cluster.trace.Timeline``)
are ingested -- real and simulated spans share one event model and
render in a single Perfetto view (``to_chrome_trace``).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from .fsio import atomic_write_text

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One finished (or still-open) span on the tracer's clock."""

    name: str
    start: float
    end: float | None = None
    category: str = "span"
    resource: str = "proc"
    depth: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def elapsed(self, now: float | None = None) -> float:
        """Seconds this span has covered so far.

        Closed spans return their duration; open spans measure against
        ``now`` (the tracer's current clock) -- the hook live progress
        reporters use to render in-flight trials without try/except.
        """
        if self.end is not None:
            return self.end - self.start
        if now is None:
            raise ValueError(
                f"span {self.name!r} is still open: pass now=tracer.now()")
        return max(0.0, now - self.start)


class _ActiveSpan:
    """Context manager wrapping one live span."""

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def set(self, **attrs) -> "_ActiveSpan":
        """Attach attributes to the live span (visible in the trace)."""
        self.span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.span)


class Tracer:
    """Collects spans from real (clocked) and simulated (explicit) code."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._t0 = clock()
        # Wall-clock anchor: the time.time() reading taken at the same
        # instant as _t0.  Trace time t therefore corresponds to wall
        # clock ``wall_t0 + t``, which is how traces recorded in
        # different processes (each with its own perf_counter origin)
        # are aligned into one timebase by repro.telemetry.aggregate.
        self.wall_t0 = time.time()
        self.spans: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- clocked spans -----------------------------------------------------
    def now(self) -> float:
        """Seconds since tracer creation (the trace's time origin)."""
        return self._clock() - self._t0

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, category: str = "span",
             resource: str | None = None, **attrs) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        stack = self._stack()
        if resource is None:
            resource = (
                stack[-1].resource if stack
                else _default_resource()
            )
        sp = Span(name=name, start=self.now(), category=category,
                  resource=resource, depth=len(stack), attrs=dict(attrs))
        stack.append(sp)
        return _ActiveSpan(self, sp)

    def _finish(self, span: Span) -> None:
        span.end = self.now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit: drop it from wherever it sits
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self.spans.append(span)

    def add_completed(self, name: str, duration_s: float,
                      category: str = "span", resource: str | None = None,
                      **attrs) -> Span:
        """Record a span that just finished, ending now -- the hook for
        code that measured a duration itself (pipeline stage timers)."""
        end = self.now()
        sp = Span(name=name, start=end - duration_s, end=end,
                  category=category,
                  resource=resource or _default_resource(),
                  depth=len(self._stack()), attrs=dict(attrs))
        with self._lock:
            self.spans.append(sp)
        return sp

    # -- explicit-clock spans (simulated time) ------------------------------
    def record_span(self, name: str, start: float, end: float,
                    resource: str = "sim", category: str = "span",
                    **attrs) -> Span:
        """Record a span with caller-supplied timestamps (virtual time)."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        sp = Span(name=name, start=start, end=end, category=category,
                  resource=resource, attrs=dict(attrs))
        with self._lock:
            self.spans.append(sp)
        return sp

    def ingest_timeline(self, timeline) -> int:
        """Copy a :class:`repro.cluster.trace.Timeline`'s events in;
        returns how many were ingested."""
        for ev in timeline.events:
            self.record_span(ev.name, ev.start, ev.end,
                             resource=ev.resource, category=ev.category,
                             **ev.meta)
        return len(timeline.events)

    # -- export -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def closed_spans(self) -> list[Span]:
        """Finished spans only, each exactly once.

        Open (in-flight) spans are excluded -- they have no duration to
        emit -- and identity-deduplicated: a span object inserted into
        ``spans`` while still open (live progress views do this) is
        appended *again* by ``_finish`` when it closes, and must not be
        double-counted by exports.
        """
        seen: set[int] = set()
        out: list[Span] = []
        for s in self.spans:
            if s.end is None or id(s) in seen:
                continue
            seen.add(id(s))
            out.append(s)
        return out

    def to_timeline(self):
        """Convert to a :class:`repro.cluster.trace.Timeline` so the
        simulator's utilisation / category statistics apply to real runs
        too."""
        from ..cluster.trace import Timeline  # lazy: avoid import cycles

        tl = Timeline()
        for s in self.closed_spans():
            tl.record(s.name, s.start, s.end, s.resource,
                      category=s.category, **s.attrs)
        return tl

    def to_chrome_trace(self, path=None, extra_timelines=()) -> list[dict]:
        """Chrome-trace 'X' events (microseconds), one ``tid`` lane per
        resource; pass simulated ``Timeline`` objects via
        ``extra_timelines`` to get the merged Perfetto view (simulated
        lanes appear under their own ``pid``)."""
        events: list[tuple[int, Span]] = [(0, s) for s in self.closed_spans()]
        for i, tl in enumerate(extra_timelines, start=1):
            for ev in tl.events:
                events.append((i, Span(
                    name=ev.name, start=ev.start, end=ev.end,
                    category=ev.category, resource=ev.resource,
                    attrs=dict(ev.meta),
                )))
        lanes: dict[tuple[int, str], int] = {}
        for pid, s in sorted(events, key=lambda e: (e[0], e[1].resource)):
            lanes.setdefault((pid, s.resource), len(lanes))
        out = [
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "pid": pid,
                "tid": lanes[(pid, s.resource)],
                "args": dict(s.attrs),
            }
            for pid, s in sorted(events, key=lambda e: e[1].start)
        ]
        if out:
            # Wall-clock anchor metadata: trace ts=0 is this unix time,
            # so traces from separate processes/runs can be correlated.
            out.append({
                "name": "clock_anchor", "ph": "M", "cat": "__metadata",
                "pid": 0, "tid": 0,
                "args": {"wall_t0_unix": self.wall_t0},
            })
        if path is not None:
            atomic_write_text(Path(path), json.dumps(out))
        return out


def _default_resource() -> str:
    t = threading.current_thread()
    return "proc" if t is threading.main_thread() else t.name
