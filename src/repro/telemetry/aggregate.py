"""Cross-process trace and metric aggregation for the execpool.

The process-pool executor (:mod:`repro.execpool`) runs each trial in a
worker process with its own :class:`~repro.telemetry.hub.TelemetryHub`
-- its own ``perf_counter`` origin, its own metric registry.  Without
aggregation every worker's spans and counters are stranded in a
per-process silo and no single trace of a parallel search exists.

This module is the driver-side merge:

* workers serialise their telemetry into **frames**
  (:func:`capture_frame`) -- incremental closed spans, cumulative metric
  samples and the worker tracer's wall-clock anchor -- and stream them
  over the existing result queue (a frame is queued before the terminal
  ``done``/``error`` message, so per-producer FIFO ordering guarantees
  the driver sees the telemetry before it retires the trial);
* the driver folds frames into a :class:`TraceAggregator`
  (:meth:`~repro.telemetry.hub.TelemetryHub.ingest_worker_frame`);
* at flush time :func:`merged_chrome_trace` aligns every worker's spans
  into the driver's timebase via the wall-clock anchors recorded at
  ``Tracer.__init__`` (worker trace time ``t`` happened at wall clock
  ``worker.anchor + t``, i.e. at driver trace time
  ``t + (worker.anchor - driver.anchor)``) and emits one
  Perfetto-compatible Chrome trace with real pid/tid rows, while
  :func:`merge_registries` rebuilds a single
  :class:`~repro.telemetry.metrics.MetricsRegistry` from all the sample
  rows (counters and histograms sum, gauges last-write-win).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .fsio import atomic_write_text
from .metrics import MetricsRegistry
from .spans import Span, Tracer

__all__ = ["capture_frame", "span_to_dict", "span_from_dict",
           "sanitize_frame", "TraceAggregator", "merge_registries",
           "merged_chrome_trace"]


# -- frame (de)serialisation -------------------------------------------------
def span_to_dict(span: Span) -> dict:
    return {
        "name": span.name, "start": span.start, "end": span.end,
        "category": span.category, "resource": span.resource,
        "depth": span.depth, "attrs": dict(span.attrs),
    }


def span_from_dict(d: dict) -> Span:
    return Span(name=d["name"], start=d["start"], end=d["end"],
                category=d.get("category", "span"),
                resource=d.get("resource", "proc"),
                depth=d.get("depth", 0), attrs=dict(d.get("attrs", {})))


def capture_frame(hub, worker_id: int, since: int = 0) -> tuple[dict, int]:
    """Snapshot a worker hub into a queue-able frame.

    Spans are incremental (everything recorded after index ``since``;
    pass the returned cursor back next time), metric samples are
    cumulative (the aggregator keeps only the latest set per worker, so
    a lost frame degrades resolution, never correctness).
    """
    with hub.tracer._lock:
        spans = list(hub.tracer.spans[since:])
    # Open spans are skipped but the cursor advances past them: when
    # such a span later closes, ``Tracer._finish`` re-appends it beyond
    # the cursor, so it is captured exactly once by a later frame.  The
    # identity dedupe guards the converse -- a span listed twice that
    # closed before this capture must not be emitted twice.
    seen: set[int] = set()
    closed = []
    for s in spans:
        if s.end is None or id(s) in seen:
            continue
        seen.add(id(s))
        closed.append(s)
    frame = {
        "worker_id": worker_id,
        "pid": os.getpid(),
        "anchor_wall": hub.tracer.wall_t0,
        "spans": [span_to_dict(s) for s in closed],
        "samples": hub.metrics.samples(),
    }
    return frame, since + len(spans)


def sanitize_frame(frame) -> tuple[dict | None, int]:
    """Validate a worker frame before aggregation.

    Returns ``(clean_frame, dropped_span_count)``; ``clean_frame`` is
    None when the frame is unusable (not a dict, no integer
    ``worker_id``).  A partially malformed frame survives with its
    decodable spans: a span that is not a dict, lacks a name, or has
    non-numeric/missing start/end is dropped and counted, and a
    ``samples`` field that is not a list of dicts is discarded rather
    than poisoning :func:`merge_registries`.
    """
    if not isinstance(frame, dict):
        return None, 0
    try:
        worker_id = int(frame["worker_id"])
    except (KeyError, TypeError, ValueError):
        return None, 0
    clean = {
        "worker_id": worker_id,
        "pid": frame.get("pid", 0),
        "anchor_wall": frame.get("anchor_wall", 0.0),
    }
    if not isinstance(clean["pid"], int):
        clean["pid"] = 0
    if not isinstance(clean["anchor_wall"], (int, float)):
        clean["anchor_wall"] = 0.0
    spans, dropped = [], 0
    raw_spans = frame.get("spans", ())
    if not isinstance(raw_spans, (list, tuple)):
        raw_spans, dropped = (), dropped + 1
    for d in raw_spans:
        try:
            span_from_dict(d)
        except (TypeError, ValueError, KeyError, AttributeError):
            dropped += 1
            continue
        if not isinstance(d.get("start"), (int, float)) or \
                not isinstance(d.get("end"), (int, float)):
            dropped += 1
            continue
        spans.append(d)
    clean["spans"] = spans
    samples = frame.get("samples")
    if isinstance(samples, list) and all(
            isinstance(r, dict) and "name" in r and "kind" in r
            for r in samples):
        clean["samples"] = samples
    else:
        clean["samples"] = []
    return clean, dropped


# -- driver-side accumulation ------------------------------------------------
class TraceAggregator:
    """Accumulates worker telemetry frames on the driver."""

    def __init__(self):
        self._workers: dict[int, dict] = {}

    def add_frame(self, frame: dict) -> None:
        w = self._workers.setdefault(frame["worker_id"], {
            "worker_id": frame["worker_id"],
            "pid": frame.get("pid", 0),
            "anchor_wall": frame.get("anchor_wall", 0.0),
            "spans": [],
            "samples": [],
        })
        w["pid"] = frame.get("pid", w["pid"])
        w["anchor_wall"] = frame.get("anchor_wall", w["anchor_wall"])
        w["spans"].extend(span_from_dict(d) for d in frame.get("spans", ()))
        samples = frame.get("samples")
        if samples:  # cumulative: the latest frame supersedes older ones
            w["samples"] = list(samples)

    def __len__(self) -> int:
        return len(self._workers)

    def worker_ids(self) -> list[int]:
        return sorted(self._workers)

    def workers(self) -> list[dict]:
        """Per-worker summaries (id, pid, anchor, span count)."""
        return [
            {
                "worker_id": w["worker_id"],
                "pid": w["pid"],
                "anchor_wall": w["anchor_wall"],
                "spans": len(w["spans"]),
            }
            for _, w in sorted(self._workers.items())
        ]

    def sample_sets(self) -> list[list[dict]]:
        """One cumulative metric-sample list per worker."""
        return [list(w["samples"])
                for _, w in sorted(self._workers.items())]

    def aligned_spans(self, driver_anchor_wall: float):
        """Yield ``(pid, span)`` with every worker span shifted into the
        driver tracer's timebase via the wall-clock anchors."""
        for _, w in sorted(self._workers.items()):
            shift = w["anchor_wall"] - driver_anchor_wall
            for s in w["spans"]:
                yield w["pid"], Span(
                    name=s.name, start=s.start + shift, end=s.end + shift,
                    category=s.category, resource=s.resource,
                    depth=s.depth, attrs=dict(s.attrs))


# -- registry merging --------------------------------------------------------
def _child(family, labels: dict):
    return family.labels(**labels) if labels else family


def merge_registries(sample_sets) -> MetricsRegistry:
    """Rebuild one registry from several ``MetricsRegistry.samples()``
    row lists (driver + one per worker).

    Counters and histograms are summed across processes; a gauge series
    takes the last value seen (worker gauges are normally disambiguated
    by a ``worker`` label, so collisions only occur for genuinely
    process-local values where last-write-wins is the right call).
    """
    reg = MetricsRegistry()
    for rows in sample_sets:
        for row in rows:
            name, kind = row["name"], row["kind"]
            labels = dict(row.get("labels", {}))
            labelnames = tuple(labels)
            if kind == "counter":
                _child(reg.counter(name, labelnames=labelnames),
                       labels).inc(row["value"])
            elif kind == "gauge":
                _child(reg.gauge(name, labelnames=labelnames),
                       labels).set(row["value"])
            elif kind == "histogram":
                buckets = row.get("buckets", {})
                edges = tuple(float(e) for e in buckets)
                if not edges:
                    continue
                fam = reg.histogram(name, labelnames=labelnames,
                                    buckets=edges)
                child = _child(fam, labels)
                if len(child.buckets) == len(buckets):
                    prev = 0
                    for i, cum in enumerate(buckets.values()):
                        child.bucket_counts[i] += cum - prev
                        prev = cum
                child.sum += row["sum"]
                child.count += row["count"]
                exemplars = row.get("exemplars")
                if isinstance(exemplars, dict):
                    # last-write-wins per bucket edge, like gauges: an
                    # exemplar is "a recent observation here", not a sum
                    child.exemplars.update(
                        {str(e): dict(x) for e, x in exemplars.items()
                         if isinstance(x, dict)})
    return reg


# -- merged Chrome trace -----------------------------------------------------
def merged_chrome_trace(tracer: Tracer, aggregator: TraceAggregator | None,
                        extra_timelines=(), path=None) -> list[dict]:
    """One Perfetto-compatible Chrome trace across all processes.

    Driver spans keep their timestamps under the driver's real OS pid;
    worker spans are shifted into the driver timebase via the wall-clock
    anchors and appear under their own real pids; simulated timelines
    get synthetic pids above every real one.  ``M`` metadata events name
    each process row and record the driver's wall-clock anchor.
    """
    driver_pid = os.getpid()
    events: list[tuple[int, Span]] = [
        (driver_pid, s) for s in tracer.closed_spans()]
    pid_names: dict[int, str] = {driver_pid: "driver"}
    if aggregator is not None:
        for w in aggregator.workers():
            pid_names.setdefault(w["pid"], f"worker-{w['worker_id']}")
        events.extend(aggregator.aligned_spans(tracer.wall_t0))
    sim_base = max(pid_names) + 1
    for i, tl in enumerate(extra_timelines):
        pid = sim_base + i
        pid_names[pid] = f"simulated-{i}"
        for ev in tl.events:
            events.append((pid, Span(
                name=ev.name, start=ev.start, end=ev.end,
                category=ev.category, resource=ev.resource,
                attrs=dict(ev.meta))))

    lanes: dict[tuple[int, str], int] = {}
    for pid, s in sorted(events, key=lambda e: (e[0], e[1].resource)):
        lanes.setdefault((pid, s.resource), len(lanes))
    out: list[dict] = [
        {
            "name": s.name,
            "cat": s.category,
            "ph": "X",
            "ts": s.start * 1e6,
            "dur": s.duration * 1e6,
            "pid": pid,
            "tid": lanes[(pid, s.resource)],
            "args": dict(s.attrs),
        }
        for pid, s in sorted(events, key=lambda e: e[1].start)
    ]
    for pid in sorted(pid_names):
        out.append({"name": "process_name", "ph": "M", "cat": "__metadata",
                    "pid": pid, "tid": 0, "args": {"name": pid_names[pid]}})
    out.append({"name": "clock_anchor", "ph": "M", "cat": "__metadata",
                "pid": driver_pid, "tid": 0,
                "args": {"wall_t0_unix": tracer.wall_t0}})
    if path is not None:
        atomic_write_text(Path(path), json.dumps(out))
    return out
