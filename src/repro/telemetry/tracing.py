"""End-to-end request tracing across the serve/search process boundary.

A serve request's life -- admission, micro-batch coalescing, dispatch
over the shared task queue, replica compute in another process, stitch
back into a response -- was only visible as aggregate counters.  This
module is the per-unit-of-work substrate (the Tune/Orchestrate lesson:
scheduling improvements are built on per-trial/request observability):

* :class:`TraceContext` -- the propagated identity: a ``trace_id``
  minted at :meth:`repro.serve.server.ModelServer.submit`, the parent
  ``span_id``, and the upfront sampling hint.  It crosses the process
  boundary inside the execpool task config (a plain dict, so the
  existing pickle path carries it) and is re-attached by the replica's
  worker-side span, parenting every process's spans into one timeline.
* :class:`RequestTracer` -- the driver-side assembler: stamps become
  the five phase spans ``queue_wait`` (admission -> batch release),
  ``batch_wait`` (release -> a replica picked the batch up),
  ``dispatch`` (queue hand-off/pickling around the compute),
  ``compute`` (replica-measured inference) and ``stitch`` (result ->
  resolved future).  The decomposition telescopes: the five durations
  sum *exactly* to the end-to-end latency.
* :class:`TailSampler` -- tail-based retention: error and retried
  requests are always kept, so are the slowest ~decile (an online p90
  threshold over a rolling latency window); the healthy fast majority
  is downsampled at ``sample_rate`` by a deterministic hash of the
  trace id.  Sampling bounds trace storage and keeps tracing inside
  the established <5% overhead budget while never losing the requests
  worth debugging.
* :func:`render_waterfall` / :func:`load_request_traces` -- the
  ``distmis trace <run-dir>`` view: a per-request phase waterfall that
  names the dominant phase.

Kept traces also land as spans on the hub tracer (one ``tid`` lane per
request) so :func:`repro.telemetry.aggregate.merged_chrome_trace`
renders driver phases and replica compute -- correct pid attribution
included -- in a single Perfetto view, and as ``requests.jsonl`` rows
in the run directory at flush time.
"""

from __future__ import annotations

import json
import uuid
import zlib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["TraceContext", "TracingConfig", "TailSampler", "RequestTrace",
           "RequestTracer", "render_waterfall", "load_request_traces",
           "SERVE_LATENCY_BUCKETS", "REQUESTS_JSONL", "PHASES"]

REQUESTS_JSONL = "requests.jsonl"

#: The per-request phase decomposition, in timeline order.
PHASES = ("queue_wait", "batch_wait", "dispatch", "compute", "stitch")

#: Fixed latency grid for serving SLOs: stable bucket edges are what
#: make p50/p95/p99 derivation and cross-run histogram diffs meaningful
#: (Prometheus' default grid is too coarse below 5 ms, where micro-
#: batched laptop-scale serving lives).
SERVE_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


@dataclass(frozen=True)
class TraceContext:
    """The identity a request carries across every hop and process.

    ``trace_id`` is minted once at admission and survives fail-over
    resubmission (retried attempts share it -- one request, one trace);
    ``span_id`` names the parent span for children minted downstream;
    ``sampled`` is the *upfront* hint only -- the binding keep/drop
    decision is tail-based (:class:`TailSampler`), made at completion
    when latency and outcome are known.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def mint(cls, sampled: bool = True) -> "TraceContext":
        return cls(trace_id=uuid.uuid4().hex[:16],
                   span_id=uuid.uuid4().hex[:8], sampled=sampled)

    def child(self) -> "TraceContext":
        """A context for a downstream span parented on this one."""
        return TraceContext(trace_id=self.trace_id,
                            span_id=uuid.uuid4().hex[:8],
                            sampled=self.sampled)

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "sampled": self.sampled}

    @classmethod
    def from_dict(cls, d: dict) -> "TraceContext":
        return cls(trace_id=str(d["trace_id"]), span_id=str(d["span_id"]),
                   sampled=bool(d.get("sampled", True)))


@dataclass
class TracingConfig:
    """Knobs for request tracing (defaults fit the overhead budget)."""

    enabled: bool = True
    sample_rate: float = 0.1      # keep fraction for healthy fast traces
    slow_quantile: float = 0.9    # always keep above this latency quantile
    latency_window: int = 256     # rolling window sizing the quantile
    min_window: int = 20          # no slow-keeps until this many samples
    max_traces: int = 2048        # bounded kept-trace retention

    def __post_init__(self):
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if not 0.0 < self.slow_quantile < 1.0:
            raise ValueError("slow_quantile must be in (0, 1)")
        if self.latency_window < 1 or self.min_window < 1:
            raise ValueError("window sizes must be >= 1")


def _hash_unit(trace_id: str) -> float:
    """Deterministic [0, 1) value from a trace id: the same trace makes
    the same sampling decision in every process and on every replay."""
    return (zlib.crc32(trace_id.encode("ascii", "replace")) & 0xFFFFFFFF) \
        / 2 ** 32


class TailSampler:
    """Tail-based keep/drop decisions at request completion.

    Policy, in order: errors and retried requests are always kept
    (they are precisely the traces fail-over debugging needs); the
    slowest tail -- latency at or above the rolling
    ``slow_quantile`` threshold -- is always kept (head-of-line
    blocking lives there); everything else is sampled at
    ``sample_rate`` by a deterministic hash of the trace id.
    """

    def __init__(self, config: TracingConfig | None = None):
        self.config = config or TracingConfig()
        self._window: deque[float] = deque(
            maxlen=self.config.latency_window)

    def slow_threshold(self) -> float | None:
        """Current keep-everything-above latency (None while warming)."""
        if len(self._window) < self.config.min_window:
            return None
        ordered = sorted(self._window)
        idx = min(len(ordered) - 1,
                  int(self.config.slow_quantile * len(ordered)))
        return ordered[idx]

    def decide(self, trace_id: str, latency_s: float,
               error: bool = False, retried: bool = False
               ) -> tuple[bool, str]:
        """(keep?, reason) for one completed request."""
        threshold = self.slow_threshold()
        self._window.append(float(latency_s))
        if error:
            return True, "error"
        if retried:
            return True, "retried"
        if threshold is not None and latency_s >= threshold:
            return True, "slow"
        if _hash_unit(trace_id) < self.config.sample_rate:
            return True, "sampled"
        return False, "dropped"


@dataclass
class RequestTrace:
    """One assembled per-request timeline (phases relative to arrival)."""

    request_id: str
    trace_id: str
    latency_s: float
    phases: list = field(default_factory=list)  # {phase, start_s, dur_s}
    attempt: int = 0
    strategy: str = ""
    batch_id: str = ""
    batch_size: int = 0
    replica: int | None = None
    replica_pid: int | None = None
    error: str | None = None
    kept: bool = True
    keep_reason: str = "sampled"
    t_wall: float = 0.0
    kernel_seconds: dict = field(default_factory=dict)
    # scatter--gather fan-out: patch-chunk tasks this request split
    # into (0 = not scattered) and the distinct replicas that served
    # them -- ``distmis trace`` shows one request across worker pids.
    priority: str = ""
    chunks: int = 0
    chunk_replicas: list = field(default_factory=list)

    def phase_durations(self) -> dict:
        return {p["phase"]: p["dur_s"] for p in self.phases}

    def dominant_phase(self) -> str | None:
        """The phase eating the largest share of the latency."""
        if not self.phases:
            return None
        return max(self.phases, key=lambda p: p["dur_s"])["phase"]

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "latency_s": self.latency_s,
            "phases": [dict(p) for p in self.phases],
            "attempt": self.attempt,
            "strategy": self.strategy,
            "batch_id": self.batch_id,
            "batch_size": self.batch_size,
            "replica": self.replica,
            "replica_pid": self.replica_pid,
            "error": self.error,
            "kept": self.kept,
            "keep_reason": self.keep_reason,
            "t_wall": self.t_wall,
            "kernel_seconds": dict(self.kernel_seconds),
            "priority": self.priority,
            "chunks": self.chunks,
            "chunk_replicas": list(self.chunk_replicas),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RequestTrace":
        return cls(
            request_id=str(d.get("request_id", "?")),
            trace_id=str(d.get("trace_id", "")),
            latency_s=float(d.get("latency_s", 0.0)),
            phases=[dict(p) for p in d.get("phases", [])],
            attempt=int(d.get("attempt", 0)),
            strategy=str(d.get("strategy", "")),
            batch_id=str(d.get("batch_id", "")),
            batch_size=int(d.get("batch_size", 0)),
            replica=d.get("replica"),
            replica_pid=d.get("replica_pid"),
            error=d.get("error"),
            kept=bool(d.get("kept", True)),
            keep_reason=str(d.get("keep_reason", "sampled")),
            t_wall=float(d.get("t_wall", 0.0)),
            kernel_seconds=dict(d.get("kernel_seconds", {})),
            priority=str(d.get("priority", "")),
            chunks=int(d.get("chunks", 0)),
            chunk_replicas=list(d.get("chunk_replicas", [])),
        )


class RequestTracer:
    """Driver-side assembly of per-request timelines.

    The :class:`~repro.serve.server.ModelServer` mints a context per
    admitted request (:meth:`begin`) and reports the monotonic stamps
    it collected at completion (:meth:`complete`); this class turns
    them into the telescoping five-phase decomposition, applies the
    tail sampler, records kept traces as spans on the hub tracer (in
    the hub tracer's timebase, bridged via a fixed monotonic offset
    captured at construction) and retains them for the ``requests.jsonl``
    artefact and ``distmis trace``.
    """

    def __init__(self, telemetry=None, config: TracingConfig | None = None,
                 wall_clock=None):
        import time as _time

        if telemetry is None:
            from .hub import get_hub

            telemetry = get_hub()
        self.telemetry = telemetry
        self.config = config or TracingConfig()
        self.sampler = TailSampler(self.config)
        self._wall = wall_clock or _time.time
        # Fixed bridge from time.monotonic() readings to the hub
        # tracer's clock: one offset captured now, so recording a phase
        # span costs zero extra clock reads per event.
        self._mono_to_trace = (
            telemetry.tracer.now() - _time.monotonic())
        self.kept: deque[RequestTrace] = deque(
            maxlen=self.config.max_traces)
        self._c_decisions = telemetry.metrics.counter(
            "trace_requests_total",
            "request-trace sampling decisions", ("decision",))

    def begin(self, request_id: str) -> TraceContext:
        """Mint the context carried by one admitted request."""
        return TraceContext.mint(sampled=self.config.enabled)

    def _span(self, name: str, start_mono: float, end_mono: float,
              request_id: str, ctx: TraceContext, **attrs) -> None:
        off = self._mono_to_trace
        self.telemetry.tracer.record_span(
            name, start_mono + off, max(start_mono, end_mono) + off,
            resource=request_id, category="serve",
            trace_id=ctx.trace_id, request_id=request_id, **attrs)

    def complete(self, ctx: TraceContext, request_id: str, *,
                 arrival: float, released: float | None = None,
                 started: float | None = None, done: float | None = None,
                 completed: float, compute_s: float = 0.0,
                 attempt: int = 0, strategy: str = "", batch_id: str = "",
                 batch_size: int = 0, replica: int | None = None,
                 replica_pid: int | None = None, error: str | None = None,
                 kernel_seconds: dict | None = None, priority: str = "",
                 chunk_spans: list | None = None) -> RequestTrace:
        """Assemble, sample and (if kept) record one finished request.

        The stamps are ``time.monotonic()`` readings taken by the
        server: ``arrival`` (submit), ``released`` (the micro-batcher
        let the batch go), ``started`` (a replica picked it off the
        task queue), ``done`` (the result message reached the driver)
        and ``completed`` (the future resolved).  A missing stamp
        (failed request) collapses the phases it bounds to zero; the
        five durations always sum exactly to ``completed - arrival``.

        ``chunk_spans`` (scatter--gather requests) is one dict per
        patch-chunk task the request was decomposed into --
        ``{"chunk": i, "start": mono, "end": mono, "replica": wid,
        "pid": pid, "attempt": n}`` -- recorded as ``sw_chunk`` child
        spans of the kept trace, so the merged Chrome trace and
        ``distmis trace`` show one request fanned across worker pids.
        """
        released = arrival if released is None else max(arrival, released)
        started = released if started is None else max(released, started)
        done = started if done is None else max(started, done)
        completed = max(done, completed)
        # compute is replica-measured but capped to the driver-observed
        # started->done window so dispatch >= 0 and the sum telescopes.
        compute = min(max(0.0, float(compute_s)), done - started)
        durations = {
            "queue_wait": released - arrival,
            "batch_wait": started - released,
            "dispatch": (done - started) - compute,
            "compute": compute,
            "stitch": completed - done,
        }
        # timeline order, with compute nested *inside* the dispatch
        # window laid out as [dispatch_pre][compute] for rendering
        starts = {
            "queue_wait": 0.0,
            "batch_wait": released - arrival,
            "dispatch": started - arrival,
            "compute": (started - arrival) + durations["dispatch"],
            "stitch": done - arrival,
        }
        latency = completed - arrival
        keep, reason = self.sampler.decide(
            ctx.trace_id, latency, error=error is not None,
            retried=attempt > 0)
        chunk_spans = list(chunk_spans or [])
        trace = RequestTrace(
            request_id=request_id, trace_id=ctx.trace_id,
            latency_s=latency,
            phases=[{"phase": p, "start_s": starts[p],
                     "dur_s": durations[p]} for p in PHASES],
            attempt=attempt, strategy=strategy, batch_id=batch_id,
            batch_size=batch_size, replica=replica,
            replica_pid=replica_pid, error=error, kept=keep,
            keep_reason=reason, t_wall=self._wall(),
            kernel_seconds=dict(kernel_seconds or {}),
            priority=priority,
            chunks=len(chunk_spans),
            chunk_replicas=sorted({c["replica"] for c in chunk_spans
                                   if c.get("replica") is not None}),
        )
        self._c_decisions.labels(decision=reason).inc()
        if keep and self.config.enabled:
            self.kept.append(trace)
            base = dict(batch_id=batch_id, attempt=attempt)
            if error is not None:
                base["error"] = error
            self._span("request", arrival, completed, request_id, ctx,
                       strategy=strategy, batch_size=batch_size,
                       replica=replica, keep_reason=reason,
                       latency_s=round(latency, 6), **base)
            for p in PHASES:
                if durations[p] <= 0:
                    continue
                t0 = arrival + starts[p]
                self._span(p, t0, t0 + durations[p], request_id, ctx,
                           phase=p, **base)
            for c in chunk_spans:
                if c.get("end", 0.0) <= c.get("start", 0.0):
                    continue
                self._span(f"sw_chunk_{int(c.get('chunk', 0)):03d}",
                           float(c["start"]), float(c["end"]),
                           request_id, ctx,
                           chunk=int(c.get("chunk", 0)),
                           replica=c.get("replica"),
                           replica_pid=c.get("pid"),
                           attempt=int(c.get("attempt", 0)))
        return trace

    # -- export --------------------------------------------------------------
    def traces(self) -> list[RequestTrace]:
        return list(self.kept)

    def to_jsonl(self) -> str:
        return "".join(json.dumps(t.to_dict(), sort_keys=True) + "\n"
                       for t in self.kept)


# -- the ``distmis trace`` view ----------------------------------------------
def load_request_traces(run_dir) -> list[RequestTrace]:
    """Parse ``requests.jsonl`` from a run directory (tolerates a torn
    tail exactly like the event log)."""
    path = Path(run_dir) / REQUESTS_JSONL
    if not path.exists():
        return []
    traces: list[RequestTrace] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict):
                traces.append(RequestTrace.from_dict(row))
    return traces


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms"


def render_waterfall(trace: RequestTrace, width: int = 40) -> str:
    """A text waterfall of one request's phases, naming the dominant
    one -- the ``distmis trace`` renderer (pure, like ``TopView``)."""
    total = max(trace.latency_s, 1e-12)
    head = (f"{trace.request_id}  trace {trace.trace_id}  "
            f"latency {_fmt_ms(trace.latency_s)}  "
            f"batch {trace.batch_size}  replica {trace.replica}  "
            f"attempt {trace.attempt}  [{trace.keep_reason}]")
    if trace.priority:
        head += f"  prio={trace.priority}"
    lines = [head]
    if trace.chunks:
        fanned = ", ".join(str(r) for r in trace.chunk_replicas)
        lines.append(f"  scatter-gather: {trace.chunks} patch chunks "
                     f"across replicas [{fanned}]")
    if trace.error:
        lines.append(f"  ERROR: {trace.error}")
    for p in trace.phases:
        left = int(round(p["start_s"] / total * width))
        bar = int(round(p["dur_s"] / total * width))
        if p["dur_s"] > 0:
            bar = max(1, bar)
        left = min(left, width - bar)
        lane = " " * left + "#" * bar + " " * (width - left - bar)
        share = p["dur_s"] / total
        lines.append(f"  {p['phase']:<11} |{lane}| "
                     f"{_fmt_ms(p['dur_s']):>8} {share * 100:5.1f}%")
    dominant = trace.dominant_phase()
    if dominant is not None:
        share = trace.phase_durations()[dominant] / total
        lines.append(f"  dominant phase: {dominant} "
                     f"({share * 100:.0f}% of latency)")
    return "\n".join(lines)
