"""``repro.telemetry`` -- the unified observability layer.

One event model underneath every backend (the Tune/SHADHO lesson:
a search framework's value hinges on a uniform telemetry stream):

* :class:`MetricsRegistry` -- labelled counters / gauges / histograms
  with Prometheus text exposition and JSONL export
  (:mod:`~repro.telemetry.metrics`);
* :class:`Tracer` -- nested context-managed spans that interoperate
  with the simulator's ``Timeline`` Chrome-trace format, so real and
  simulated spans render in one Perfetto view
  (:mod:`~repro.telemetry.spans`);
* :class:`RunManifest` -- config, seed, git revision, host info and
  final metrics written per run (:mod:`~repro.telemetry.manifest`);
* :class:`TelemetryHub` / :data:`NULL_HUB` -- the process-wide bundle
  handed to instrumented code, with a branch-free no-op twin so
  disabled telemetry costs nothing (:mod:`~repro.telemetry.hub`);
* :class:`TraceAggregator` / :func:`merge_registries` -- cross-process
  aggregation: worker hubs stream frames to the driver, which aligns
  spans via wall-clock anchors into one merged Chrome trace
  (:mod:`~repro.telemetry.aggregate`);
* :class:`StepAttribution` / :func:`analyze` /
  :class:`ProgressReporter` -- step-time attribution, the bottleneck
  analyzer behind ``distmis profile`` and the live search table
  (:mod:`~repro.telemetry.profiler`);
* :class:`LiveMonitor` / :class:`WorkerHealthBoard` /
  :class:`AlertEngine` -- the streaming side: append-only
  ``events.jsonl`` snapshots, worker heartbeats with stall detection,
  declarative SLO alert rules, and the ``distmis top`` text view
  (:mod:`~repro.telemetry.live`, :mod:`~repro.telemetry.alerts`,
  :mod:`~repro.telemetry.top`);
* :class:`TraceContext` / :class:`RequestTracer` / :class:`TailSampler`
  -- end-to-end request tracing for the serving stack: a trace context
  propagated across the process boundary, per-request phase spans, SLO
  latency buckets with exemplars, tail-based sampling, and the
  ``distmis trace`` waterfall (:mod:`~repro.telemetry.tracing`).
"""

from .aggregate import (
    TraceAggregator,
    capture_frame,
    merge_registries,
    merged_chrome_trace,
    sanitize_frame,
)
from .alerts import Alert, AlertEngine, AlertRule, default_rules
from .fsio import atomic_write_text
from .hub import NULL_HUB, NullHub, TelemetryHub, get_hub, set_hub
from .live import (
    EVENTS_JSONL,
    EventLog,
    LiveMonitor,
    WorkerHealthBoard,
    read_events,
)
from .manifest import RunManifest, git_revision, host_info
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import (
    STEP_BUCKETS,
    BottleneckReport,
    ProfileData,
    ProgressReporter,
    StepAttribution,
    analyze,
    analyze_run_dir,
    build_profile_data,
)
from .spans import Span, Tracer
from .top import TopView, run_top
from .tracing import (
    PHASES,
    REQUESTS_JSONL,
    SERVE_LATENCY_BUCKETS,
    RequestTrace,
    RequestTracer,
    TailSampler,
    TraceContext,
    TracingConfig,
    load_request_traces,
    render_waterfall,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "RunManifest",
    "git_revision",
    "host_info",
    "TelemetryHub",
    "NullHub",
    "NULL_HUB",
    "get_hub",
    "set_hub",
    "atomic_write_text",
    "TraceAggregator",
    "capture_frame",
    "merge_registries",
    "merged_chrome_trace",
    "sanitize_frame",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "default_rules",
    "EVENTS_JSONL",
    "EventLog",
    "LiveMonitor",
    "WorkerHealthBoard",
    "read_events",
    "TopView",
    "run_top",
    "STEP_BUCKETS",
    "StepAttribution",
    "ProfileData",
    "BottleneckReport",
    "ProgressReporter",
    "analyze",
    "analyze_run_dir",
    "build_profile_data",
    "TraceContext",
    "TracingConfig",
    "TailSampler",
    "RequestTrace",
    "RequestTracer",
    "render_waterfall",
    "load_request_traces",
    "SERVE_LATENCY_BUCKETS",
    "REQUESTS_JSONL",
    "PHASES",
]
