"""``repro.telemetry`` -- the unified observability layer.

One event model underneath every backend (the Tune/SHADHO lesson:
a search framework's value hinges on a uniform telemetry stream):

* :class:`MetricsRegistry` -- labelled counters / gauges / histograms
  with Prometheus text exposition and JSONL export
  (:mod:`~repro.telemetry.metrics`);
* :class:`Tracer` -- nested context-managed spans that interoperate
  with the simulator's ``Timeline`` Chrome-trace format, so real and
  simulated spans render in one Perfetto view
  (:mod:`~repro.telemetry.spans`);
* :class:`RunManifest` -- config, seed, git revision, host info and
  final metrics written per run (:mod:`~repro.telemetry.manifest`);
* :class:`TelemetryHub` / :data:`NULL_HUB` -- the process-wide bundle
  handed to instrumented code, with a branch-free no-op twin so
  disabled telemetry costs nothing (:mod:`~repro.telemetry.hub`).
"""

from .hub import NULL_HUB, NullHub, TelemetryHub, get_hub, set_hub
from .manifest import RunManifest, git_revision, host_info
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "RunManifest",
    "git_revision",
    "host_info",
    "TelemetryHub",
    "NullHub",
    "NULL_HUB",
    "get_hub",
    "set_hub",
]
