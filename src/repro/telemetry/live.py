"""Live monitoring: streaming metric export, worker health, HTTP view.

PR 1's hub and PR 4's profiler are post-hoc -- artefacts appear at
``flush()`` after the run ends, so a stalled worker or a starving
pipeline burns (simulated) GPU-hours invisibly.  This module is the
streaming side the paper's economics actually need (Tune and Orchestrate
both treat live experiment monitoring as table stakes):

* :class:`EventLog` -- an append-only ``events.jsonl`` in the run
  directory.  Append-only is the crash-safety story: a snapshot is one
  ``write()`` of one line, readers tolerate a torn tail, and repeated
  flushes can never duplicate what is already on disk.
* :class:`WorkerHealthBoard` -- driver-side liveness ledger fed by the
  heartbeat frames execpool workers piggyback on the result queue.
  Exposes ``workers_alive`` / ``worker_stalled_total`` and flags a
  worker whose last heartbeat is older than ``stall_factor`` intervals.
* :class:`LiveMonitor` -- the tick loop gluing it together: every
  ``interval_s`` it derives a flat snapshot-value dict from the hub's
  merged samples (windowed deltas for ratios), appends a ``snapshot``
  event, runs the :class:`~repro.telemetry.alerts.AlertEngine`, and
  appends ``alert`` events for fresh firings/resolutions.  Optionally
  serves ``/metrics`` (Prometheus text) and ``/health`` (JSON) on a
  localhost port.

``distmis top`` (:mod:`repro.telemetry.top`) renders the resulting
event stream; the ROADMAP's replica autoscaler consumes the same
queue-depth/latency gauges.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from pathlib import Path

from .alerts import AlertEngine
from .profiler import STEP_BUCKETS

__all__ = ["EventLog", "read_events", "WorkerHealthBoard", "LiveMonitor",
           "EVENTS_JSONL"]

EVENTS_JSONL = "events.jsonl"

# A worker is stalled once its last heartbeat is older than this many
# heartbeat intervals (k in the issue's "no heartbeat > k x interval").
STALL_FACTOR = 3.0


class EventLog:
    """Append-only JSONL event stream with torn-tail-tolerant reads.

    Each event is one line ``{"seq": n, "t_wall": ..., "type": ..., ...}``;
    ``seq`` is strictly increasing so downstream consumers (``top``,
    tests) can detect duplication -- including across a process restart:
    appending to an existing file resumes numbering after the highest
    ``seq`` already on disk, so a reader's ``seq``-based dedup cursor
    never silently drops a restarted run's events.  The file handle is
    opened lazily and kept line-buffered; :meth:`append` is a single
    ``write`` + ``flush`` so a crash can tear at most the final line.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.seq = 0
        self._fh = None
        self._lock = threading.Lock()

    def append(self, type: str, **payload) -> dict:
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                if self.seq == 0 and self.path.exists():
                    # restart: resume strictly-increasing numbering
                    existing = read_events(self.path)
                    if existing:
                        self.seq = max(
                            int(e.get("seq", -1)) for e in existing) + 1
                self._fh = open(self.path, "a", encoding="utf-8")
            event = {"seq": self.seq,
                     "t_wall": payload.pop("t_wall", None) or time.time(),
                     "type": type, **payload}
            line = json.dumps(event, sort_keys=True, default=str) + "\n"
            self._fh.write(line)
            self._fh.flush()
            self.seq += 1
        return event

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                except OSError:
                    pass
                self._fh.close()
                self._fh = None


def read_events(path, since_seq: int = -1) -> list[dict]:
    """Parse an ``events.jsonl``; skips a torn final line and anything
    at or below ``since_seq`` (the tail cursor ``top --follow`` keeps)."""
    path = Path(path)
    if not path.exists():
        return []
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail (or mid-write reader): skip
            if isinstance(ev, dict) and ev.get("seq", 0) > since_seq:
                events.append(ev)
    return events


class WorkerHealthBoard:
    """Liveness/busy-state ledger over worker heartbeat frames.

    ``on_heartbeat`` folds a frame in; ``check`` (called per monitor
    tick) re-derives who is stalled: no heartbeat for longer than
    ``stall_factor * interval_s``, or an explicitly reported process
    exit (``mark_dead``).  A stalled worker that heartbeats again is
    un-stalled -- ``worker_stalled_total`` counts stall *transitions*.

    Clocks: the ``now`` arguments are **monotonic** readings
    (``time.monotonic``) -- stall windows are elapsed-time arithmetic
    and must not flap when NTP steps the wall clock.  The separate
    ``wall`` argument only stamps the exported ``last_seen_wall`` field
    (display/export).
    """

    def __init__(self, registry=None, interval_s: float = 1.0,
                 stall_factor: float = STALL_FACTOR):
        self.interval_s = float(interval_s)
        self.stall_factor = float(stall_factor)
        self.workers: dict[int, dict] = {}
        self._g_alive = self._g_stalled = self._c_stalls = None
        if registry is not None:
            self._g_alive = registry.gauge(
                "workers_alive", "workers heartbeating within the stall "
                "window")
            self._g_stalled = registry.gauge(
                "workers_stalled", "workers currently considered stalled")
            self._c_stalls = registry.counter(
                "worker_stalled_total", "worker stall transitions "
                "(heartbeat lost or process exit)")

    def on_heartbeat(self, hb: dict, now: float | None = None,
                     wall: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        wid = int(hb["worker_id"])
        w = self.workers.setdefault(wid, {
            "worker_id": wid, "heartbeats": 0, "stalled": False,
            "dead": False,
        })
        w.update(
            pid=int(hb.get("pid", w.get("pid", 0))),
            state=str(hb.get("state", "unknown")),
            trial_id=hb.get("trial_id"),
            busy_seconds=float(hb.get("busy_seconds", 0.0)),
            last_seen_mono=now,
            last_seen_wall=time.time() if wall is None else wall,
        )
        w["heartbeats"] += 1
        w["dead"] = False

    def mark_dead(self, worker_id: int, now: float | None = None) -> None:
        """An authoritative process exit (driver saw ``is_alive()`` go
        False): stall immediately instead of waiting out the window."""
        now = time.monotonic() if now is None else now
        w = self.workers.setdefault(int(worker_id), {
            "worker_id": int(worker_id), "heartbeats": 0, "stalled": False,
            "pid": 0, "state": "dead", "trial_id": None,
            "busy_seconds": 0.0, "last_seen_mono": now,
            "last_seen_wall": time.time(),
        })
        w["dead"] = True
        w["state"] = "dead"

    def check(self, now: float | None = None) -> list[int]:
        """Re-derive stall state; returns workers that *newly* stalled."""
        now = time.monotonic() if now is None else now
        window = self.stall_factor * self.interval_s
        newly: list[int] = []
        for wid, w in sorted(self.workers.items()):
            stalled = w["dead"] or (now - w.get("last_seen_mono", now)
                                    > window)
            if stalled and not w["stalled"]:
                newly.append(wid)
                if self._c_stalls is not None:
                    self._c_stalls.inc()
            w["stalled"] = stalled
        if self._g_alive is not None:
            self._g_alive.set(self.alive_count())
            self._g_stalled.set(self.stalled_count())
        return newly

    def alive_count(self) -> int:
        return sum(1 for w in self.workers.values() if not w["stalled"])

    def stalled_count(self) -> int:
        return sum(1 for w in self.workers.values() if w["stalled"])

    def snapshot(self) -> list[dict]:
        """JSON-able per-worker rows for health events and ``/health``."""
        return [
            {k: w.get(k) for k in (
                "worker_id", "pid", "state", "trial_id", "busy_seconds",
                "heartbeats", "stalled", "last_seen_wall")}
            for _, w in sorted(self.workers.items())
        ]


def _sample_value(rows: list[dict], name: str, labels: dict | None = None
                  ) -> float | None:
    for row in rows:
        if row.get("name") != name:
            continue
        if labels is not None and row.get("labels") != labels:
            continue
        return float(row.get("value", 0.0))
    return None


class LiveMonitor:
    """Periodic snapshot/alert loop over a live hub.

    Driven by ``tick()`` calls from instrumented code paths (reporter
    callbacks, the executor drive loop) -- no background thread, so a
    monitor can never outlive its run or race the final flush.  A tick
    before ``interval_s`` has elapsed is free (one clock read).
    """

    def __init__(self, hub, run_dir=None, interval_s: float = 1.0,
                 rules=None, stall_factor: float = STALL_FACTOR,
                 http_port: int | None = None, on_snapshot=None):
        self.hub = hub
        run_dir = Path(run_dir if run_dir is not None else hub.run_dir)
        self.run_dir = run_dir
        self.interval_s = float(interval_s)
        self.events = EventLog(run_dir / EVENTS_JSONL)
        self.health = WorkerHealthBoard(
            registry=hub.metrics, interval_s=interval_s,
            stall_factor=stall_factor)
        self.engine = AlertEngine(rules)
        self.on_snapshot = on_snapshot
        self.extra_values: dict[str, float] = {}
        self.last_values: dict[str, float] = {}
        self.snapshots = 0
        self._last_tick = -math.inf
        self._last_buckets: dict[str, float] | None = None
        self._closed = False
        self._server = None
        self._server_thread = None
        if http_port is not None:
            self._serve(http_port)

    # -- value derivation ---------------------------------------------------
    def set_value(self, name: str, value: float) -> None:
        """Publish a driver-side value (e.g. ``queue_depth``) into the
        next snapshot without minting a metric family for it."""
        self.extra_values[name] = float(value)

    def snapshot_values(self, rows=None, advance_window: bool = False
                        ) -> dict:
        """The flat value dict rules are evaluated against.

        ``data_wait_ratio`` is windowed: the share of *newly accrued*
        step-bucket seconds since the previous snapshot spent in
        ``data_wait`` (cumulative ratios would hide a pipeline that
        degrades mid-run).  Only ticks advance the window
        (``advance_window=True``); read-only views (``/health``) must
        not perturb it.
        """
        rows = self.hub.merged_samples() if rows is None else rows
        buckets = {b: 0.0 for b in STEP_BUCKETS}
        for row in rows:
            if row.get("name") == "step_bucket_seconds_total":
                b = row.get("labels", {}).get("bucket")
                if b in buckets:
                    buckets[b] += float(row["value"])
        window = dict(buckets)
        if self._last_buckets is not None:
            window = {b: buckets[b] - self._last_buckets.get(b, 0.0)
                      for b in buckets}
            if sum(window.values()) <= 0:   # idle window: fall back
                window = dict(buckets)
        if advance_window:
            self._last_buckets = buckets
        total = sum(window.values())
        values = {
            "data_wait_ratio": (window["data_wait"] / total) if total > 0
            else 0.0,
            "sync_ratio": (window["sync"] / total) if total > 0 else 0.0,
            "workers_alive": float(self.health.alive_count()),
            "workers_stalled": float(self.health.stalled_count()),
        }
        for name, default in (("queue_depth", "tune_trials_pending"),
                              ("trials_nonfinite", "trials_nonfinite_total")):
            v = _sample_value(rows, default)
            if v is not None:
                values[name] = v
        values.update(self.extra_values)
        return values

    # -- event ingestion ----------------------------------------------------
    def on_heartbeat(self, hb: dict) -> None:
        self.health.on_heartbeat(hb)
        self.events.append("heartbeat", **{
            k: hb.get(k) for k in ("worker_id", "pid", "state", "trial_id",
                                   "busy_seconds")})

    def on_worker_dead(self, worker_id: int) -> None:
        self.health.mark_dead(worker_id)

    # -- the tick loop ------------------------------------------------------
    def tick(self, now: float | None = None, force: bool = False,
             wall: float | None = None) -> bool:
        """Snapshot if ``interval_s`` has elapsed; True if it did.

        ``now`` is a **monotonic** reading -- it gates the tick interval
        and drives the health board's stall window, so an NTP wall-clock
        step can neither suppress snapshots nor flap stall detection.
        ``wall`` (``time.time()`` by default) only stamps the exported
        event/alert timestamps.
        """
        if self._closed:
            return False
        now = time.monotonic() if now is None else now
        wall = time.time() if wall is None else wall
        if not force and now - self._last_tick < self.interval_s:
            return False
        self._last_tick = now
        self.health.check(now)
        rows = self.hub.merged_samples()
        values = self.snapshot_values(rows, advance_window=True)
        self.last_values = values
        produced = self.engine.evaluate(values, now=wall)
        for alert in produced:
            self.hub.record_alert(alert)
            self.events.append("alert", t_wall=wall, **alert.to_dict())
        buckets = {}
        for row in rows:
            if row.get("name") == "step_bucket_seconds_total":
                b = row.get("labels", {}).get("bucket")
                if b:
                    buckets[b] = buckets.get(b, 0.0) + float(row["value"])
        self.events.append(
            "snapshot", t_wall=wall, values=values, buckets=buckets,
            workers=self.health.snapshot(),
            alerts_firing=[a.rule for a in self.engine.firing],
            samples=len(rows),
        )
        self.snapshots += 1
        if self.on_snapshot is not None:
            self.on_snapshot(self)
        return True

    def health_view(self) -> dict:
        """The JSON ``/health`` document."""
        return {
            "run_dir": str(self.run_dir),
            "interval_s": self.interval_s,
            "snapshots": self.snapshots,
            "workers": self.health.snapshot(),
            "workers_alive": self.health.alive_count(),
            "workers_stalled": self.health.stalled_count(),
            "alerts_firing": [a.to_dict() for a in self.engine.firing],
            "values": self.snapshot_values()
            if not self._closed else self.extra_values,
        }

    def close(self) -> None:
        """Final forced snapshot + health event; idempotent."""
        if self._closed:
            return
        self.tick(force=True)
        self.events.append("health", **self.health_view())
        self._closed = True
        self.events.close()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=2.0)
            self._server = None

    # -- localhost HTTP exposition ------------------------------------------
    @property
    def http_port(self) -> int | None:
        return self._server.server_address[1] if self._server else None

    def _serve(self, port: int) -> None:
        from http.server import BaseHTTPRequestHandler, HTTPServer

        monitor = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path.rstrip("/") in ("", "/health"):
                    body = json.dumps(monitor.health_view(),
                                      default=str).encode()
                    ctype = "application/json"
                elif self.path.rstrip("/") == "/metrics":
                    from .aggregate import merge_registries

                    reg = merge_registries([monitor.hub.merged_samples()])
                    body = reg.to_prometheus().encode()
                    ctype = "text/plain; version=0.0.4"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr
                pass

        self._server = HTTPServer(("127.0.0.1", port), Handler)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="distmis-live-http",
            daemon=True)
        self._server_thread.start()
