"""Crash-safe file writes for telemetry exports.

Every telemetry artefact (metrics.jsonl, metrics.prom, trace.json,
profile.json) is rewritten wholesale on each flush.  A plain
``write_text`` truncates first, so an interrupt mid-flush leaves torn
JSON behind -- the exact failure PR 1 fixed for ``RunTracker`` and this
module extends to the hub: render to a sibling temp file, fsync, then
``os.replace`` so readers only ever observe the old or the new file.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # failed mid-write: never leave the temp around
            try:
                tmp.unlink()
            except OSError:
                pass
    return path
