"""``distmis top`` -- a live text view over a run's event stream.

Tails the append-only ``events.jsonl`` a :class:`~repro.telemetry.live.
LiveMonitor` writes and renders, htop-style, what the run is doing
*right now*: per-worker liveness and busy state, trial progress, the
rolling step-time bucket split over the last snapshot window, and the
alerts currently firing.

Rendering is pure (``TopView.render(events) -> str``), so tests and
non-TTY environments (CI's ``make monitor-smoke``) consume the exact
same code path as the interactive loop; on a TTY the screen is cleared
between frames, otherwise frames are printed sequentially.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from .live import EVENTS_JSONL, read_events
from .profiler import STEP_BUCKETS

__all__ = ["TopView", "run_top"]

_BAR_WIDTH = 24


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


class TopView:
    """Folds an event stream into the latest run picture and renders it."""

    def __init__(self):
        self.last_snapshot: dict | None = None
        self.prev_snapshot: dict | None = None
        self.heartbeats: dict[int, dict] = {}
        self.alerts: dict[str, dict] = {}      # rule -> latest record
        self.events_seen = 0
        self.last_seq = -1
        self.finished = False                  # saw a terminal health event

    def ingest(self, events) -> int:
        """Fold events in (idempotent across overlapping reads via
        ``seq``); returns how many were new."""
        new = 0
        for ev in events:
            seq = ev.get("seq", -1)
            if seq <= self.last_seq:
                continue
            self.last_seq = seq
            self.events_seen += 1
            new += 1
            kind = ev.get("type")
            if kind == "snapshot":
                self.prev_snapshot = self.last_snapshot
                self.last_snapshot = ev
            elif kind == "heartbeat":
                if ev.get("worker_id") is not None:
                    self.heartbeats[int(ev["worker_id"])] = ev
            elif kind == "alert":
                self.alerts[ev.get("rule", "?")] = ev
            elif kind == "health":
                self.finished = True
        return new

    # -- render helpers -----------------------------------------------------
    def _workers(self) -> list[dict]:
        snap = self.last_snapshot or {}
        rows = {int(w["worker_id"]): dict(w)
                for w in snap.get("workers", [])}
        for wid, hb in self.heartbeats.items():
            row = rows.setdefault(wid, {"worker_id": wid, "stalled": False})
            # a heartbeat newer than the snapshot refreshes the row --
            # ordered by event seq, not t_wall (a wall-clock step must
            # not make fresh heartbeats look stale)
            if hb.get("seq", -1) >= snap.get("seq", -1):
                row.update(state=hb.get("state"),
                           trial_id=hb.get("trial_id"),
                           pid=hb.get("pid"),
                           busy_seconds=hb.get("busy_seconds"))
        return [rows[w] for w in sorted(rows)]

    def _bucket_window(self) -> tuple[dict, float]:
        """Step-bucket seconds accrued between the last two snapshots
        (cumulative totals when only one snapshot exists)."""
        last = (self.last_snapshot or {}).get("buckets", {})
        prev = (self.prev_snapshot or {}).get("buckets", {})
        window = {b: float(last.get(b, 0.0)) - float(prev.get(b, 0.0))
                  for b in set(last) | set(prev)}
        if sum(window.values()) <= 0:
            window = {b: float(v) for b, v in last.items()}
        return window, sum(window.values())

    def render(self, now: float | None = None) -> str:
        now = time.time() if now is None else now
        lines: list[str] = []
        snap = self.last_snapshot
        if snap is None:
            return ("distmis top: no snapshots yet "
                    f"({self.events_seen} events)")
        # display-only wall arithmetic: clamp so a backwards NTP step
        # cannot render a negative age
        age = max(0.0, now - snap.get("t_wall", now))
        values = snap.get("values", {})
        lines.append(
            f"distmis top  |  snapshot #{snap.get('seq')}  "
            f"age {age:5.1f}s  |  events {self.events_seen}")

        firing = [a for a in self.alerts.values()
                  if a.get("state") == "firing"]
        if firing:
            lines.append("ALERTS FIRING:")
            for a in sorted(firing, key=lambda a: a.get("rule", "")):
                lines.append(
                    f"  [{a.get('severity', '?'):<8}] {a.get('rule')}: "
                    f"{a.get('message', '')}")
        else:
            lines.append("alerts: none firing")

        serve = {k: v for k, v in values.items()
                 if k.startswith("serve_")}
        if serve:
            # a serve run: queue/in-flight/replica gauges and the SLO
            # latency quantiles replace the training-centric buckets
            lines.append(
                "serving:  queue "
                f"{int(serve.get('serve_queue_depth', 0))}  "
                f"in-flight {int(serve.get('serve_inflight', 0))}  "
                f"replicas {int(serve.get('serve_replicas', 0))}")
            if "serve_latency_p50" in serve:
                lines.append(
                    "  latency  "
                    f"p50 {serve.get('serve_latency_p50', 0.0) * 1e3:.1f}ms"
                    f"  p95 {serve.get('serve_latency_p95', 0.0) * 1e3:.1f}"
                    "ms"
                    f"  p99 {serve.get('serve_latency_p99', 0.0) * 1e3:.1f}"
                    "ms")
        window, total = self._bucket_window()
        if not serve or total > 0:
            lines.append("step-time buckets (last window):")
            for bucket in STEP_BUCKETS:
                sec = window.get(bucket, 0.0)
                frac = sec / total if total > 0 else 0.0
                lines.append(f"  {bucket:<11} {_bar(frac)} {sec:8.3f}s "
                             f"{frac * 100:5.1f}%")

        workers = self._workers()
        if workers:
            lines.append(
                f"workers ({sum(1 for w in workers if not w.get('stalled'))}"
                f"/{len(workers)} alive):")
            for w in workers:
                state = w.get("state") or "?"
                flag = "  <- STALLED" if w.get("stalled") else ""
                busy = w.get("busy_seconds")
                busy_s = f"{busy:8.2f}s busy" if busy is not None \
                    else " " * 14
                trial = w.get("trial_id") or "-"
                lines.append(
                    f"  worker {w['worker_id']:>2} (pid {w.get('pid', 0)}) "
                    f"{state:<7} {trial:<12} {busy_s}{flag}")

        interesting = {k: v for k, v in sorted(values.items())
                       if k not in ("workers_alive", "workers_stalled")}
        if interesting:
            lines.append("values: " + "  ".join(
                f"{k}={v:g}" for k, v in interesting.items()))
        return "\n".join(lines)


def run_top(run_dir, follow: bool = False, interval_s: float = 1.0,
            max_frames: int | None = None, stream=None,
            clock=time.time, sleep=time.sleep) -> int:
    """The ``distmis top <run-dir>`` entry point.

    One-shot by default (render the current state and exit); with
    ``follow`` it keeps tailing ``events.jsonl`` until interrupted, the
    run's final ``health`` event has been rendered with nothing new
    behind it (run over), or ``max_frames`` renders.
    """
    stream = sys.stdout if stream is None else stream
    path = Path(run_dir) / EVENTS_JSONL
    if not path.exists():
        print(f"no {EVENTS_JSONL} in {run_dir} -- run with --watch "
              "(or point at a live run directory)", file=sys.stderr)
        return 1
    view = TopView()
    is_tty = getattr(stream, "isatty", lambda: False)()
    frames = 0
    while True:
        new = view.ingest(read_events(path, since_seq=view.last_seq))
        if is_tty:
            stream.write("\x1b[2J\x1b[H")
        stream.write(view.render(now=clock()) + "\n")
        if hasattr(stream, "flush"):
            stream.flush()
        frames += 1
        if not follow:
            return 0
        if max_frames is not None and frames >= max_frames:
            return 0
        if view.finished and new == 0:
            return 0
        sleep(interval_s)
    return 0
