"""DistMIS reproduction.

Reproduction of Berral et al., *Distributing Deep Learning
Hyperparameter Tuning for 3D Medical Image Segmentation* (IPDPS
Workshops 2022): data-parallel vs experiment-parallel distribution of a
3D U-Net hyper-parameter search, rebuilt from scratch in NumPy with a
calibrated cluster simulator standing in for the BSC MareNostrum-CTE
GPU cluster.

Subpackages
-----------
``repro.nn``
    NumPy deep-learning engine (TensorFlow substitute): 3D conv layers,
    the Fig 2 U-Net, Dice losses, Adam, cyclic LR.
``repro.data``
    Dataset substrate: synthetic BraTS cohort, NIfTI-1 codec,
    TFRecord-style files, tf.data-style pipeline.
``repro.cluster``
    Discrete-event cluster hardware model: V100 nodes, NVLink /
    InfiniBand links, collective cost models.
``repro.raysim``
    Ray-like runtime: tasks, actors, placement scheduler, Tune-like
    trial runner with grid/random/ASHA search.
``repro.perf``
    Calibrated performance model behind the Table I reproduction.
``repro.telemetry``
    Unified observability: metrics registry, span tracer, run
    manifests, and the process-wide hub with its zero-overhead null
    twin.
``repro.core``
    The paper's pipeline: configuration spaces, data-parallel and
    experiment-parallel drivers, the DistMIS runner, profiling.
"""

__version__ = "1.0.0"

__all__ = ["nn", "data", "cluster", "raysim", "perf", "telemetry", "core",
           "__version__"]
