"""Unified fault tolerance: retry policies, checkpoint handles, injection.

A 44-hour search on a shared cluster *will* lose GPUs (preemption, ECC
errors, node reboots -- Section V of the paper runs on exactly such a
machine).  This module is the shared vocabulary every execution backend
speaks:

* :class:`RetryPolicy` -- how many times a crashed trial is re-run,
  with what backoff, and whether it resumes from its last checkpoint or
  restarts from scratch.  Accepted by :func:`repro.raysim.tune.tune_run`
  (in-process execution) and
  :func:`repro.cluster.failures.run_with_failures` (the discrete-event
  simulator), so laptop-scale tests and paper-scale pricing share one
  semantics.
* :class:`CheckpointHandle` -- an opaque (epoch, path) pair a trainable
  publishes through its reporter (``reporter(epoch=..., checkpoint=...)``)
  and receives back as ``reporter.resume_from`` after a crash.
* :class:`FaultInjector` -- wraps an in-process trainable and
  deterministically raises :class:`InjectedFault` at configured epochs
  (or probabilistically with a seeded RNG), so the retry/resume path is
  testable end-to-end without an actual flaky machine.

Sits below both ``repro.raysim`` and ``repro.cluster`` in the import
graph; depends only on NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "RetryPolicy",
    "CheckpointHandle",
    "FaultInjector",
    "InjectedFault",
]

RESUME_MODES = ("checkpoint", "scratch")


@dataclass(frozen=True)
class RetryPolicy:
    """What happens after a trial attempt crashes.

    ``max_retries`` further attempts are made (0 = fail fast).  With
    ``resume="checkpoint"`` the next attempt receives the last
    :class:`CheckpointHandle` the trial published and continues from
    that epoch; ``"scratch"`` always restarts from epoch 0 (and a
    checkpoint-mode retry falls back to scratch when the crashed attempt
    never published a checkpoint).  ``backoff_s`` is the wait before
    retry ``k`` (1-based), growing by ``backoff_factor`` per attempt --
    real seconds in-process, accounted into the timeline by the
    simulator.
    """

    max_retries: int = 0
    resume: str = "checkpoint"
    backoff_s: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.resume not in RESUME_MODES:
            raise ValueError(f"resume must be one of {RESUME_MODES}")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before ``attempt`` (attempt 1 = first retry)."""
        if attempt < 1:
            return 0.0
        return self.backoff_s * self.backoff_factor ** (attempt - 1)

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1


@dataclass(frozen=True)
class CheckpointHandle:
    """Pointer to a trial's last durable state: *what epoch* finished
    and *where* its checkpoint lives (``path`` may be None for purely
    simulated checkpoints, where only the epoch matters)."""

    epoch: int
    path: str | None = None
    meta: dict = field(default_factory=dict, compare=False)


class InjectedFault(RuntimeError):
    """The crash a :class:`FaultInjector` raises (a stand-in for a GPU
    ECC error / preemption inside the trainable)."""


class FaultInjector:
    """Deterministic, seeded crash injection around a trainable.

    Wraps the ``(config, reporter)`` contract: the injected reporter
    raises :class:`InjectedFault` when the trainable reports the
    configured epoch -- *before* the result row (and any checkpoint) is
    recorded, exactly like a crash mid-epoch.  The n-th injected fault
    fires when ``time_attr == crash_epochs[n]``; once the list is
    exhausted no further deterministic faults fire, so a retried trial
    makes progress.  ``p_crash`` adds seeded per-report random faults on
    top (a Bernoulli draw per reported epoch).

    >>> injector = FaultInjector(crash_epochs=(3,))
    >>> analysis = tune_run(injector.wrap(trainable), search,
    ...                     retry_policy=RetryPolicy(max_retries=1))
    >>> injector.faults_injected
    1
    """

    def __init__(
        self,
        trainable: Callable | None = None,
        crash_epochs: Sequence[int] = (),
        p_crash: float = 0.0,
        seed: int = 0,
        time_attr: str = "epoch",
    ):
        if not 0.0 <= p_crash < 1.0:
            raise ValueError("p_crash must be in [0, 1)")
        self._trainable = trainable
        self.crash_epochs = list(crash_epochs)
        self.p_crash = p_crash
        self.time_attr = time_attr
        self.faults_injected = 0
        self._rng = np.random.default_rng(seed)

    def wrap(self, trainable: Callable) -> "FaultInjector":
        """Bind (or rebind) the trainable; returns self for chaining."""
        self._trainable = trainable
        return self

    def _maybe_crash(self, metrics: dict) -> None:
        t = metrics.get(self.time_attr)
        if t is None:
            return
        if (self.faults_injected < len(self.crash_epochs)
                and t == self.crash_epochs[self.faults_injected]):
            self.faults_injected += 1
            raise InjectedFault(
                f"injected fault #{self.faults_injected} at "
                f"{self.time_attr}={t}"
            )
        if self.p_crash > 0.0 and self._rng.random() < self.p_crash:
            self.faults_injected += 1
            raise InjectedFault(
                f"injected random fault at {self.time_attr}={t}"
            )

    def __call__(self, config: dict, reporter):
        if self._trainable is None:
            raise ValueError("FaultInjector has no trainable; pass one to "
                             "the constructor or call .wrap(trainable)")
        return self._trainable(config, _InjectingReporter(self, reporter))


class _InjectingReporter:
    """Reporter proxy that consults the injector before every report.

    Forwards everything else (``resume_from``, ``last_checkpoint``,
    ``trial_id``...) to the wrapped reporter, so trainables cannot tell
    they are being sabotaged.
    """

    def __init__(self, injector: FaultInjector, reporter):
        self._injector = injector
        self._reporter = reporter

    def __call__(self, **metrics):
        self._injector._maybe_crash(metrics)
        return self._reporter(**metrics)

    def __getattr__(self, name):
        return getattr(self._reporter, name)
