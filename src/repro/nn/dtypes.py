"""Compute-dtype policy for the numpy model stack.

Historically every parameter and activation was hard-coded ``float64``.
That stays the default -- bit-compatibility with all recorded runs --
but the policy makes ``float32`` an explicit opt-in: half the memory
traffic and roughly double the GEMM throughput on the BLAS-bound GEMM
backend, at ~1e-6 relative accuracy.

Selection, in priority order: :func:`set_compute_dtype` /
:func:`use_compute_dtype` > the ``DISTMIS_COMPUTE_DTYPE`` environment
variable > ``float64``.  The CLI exposes the same choice as
``--compute-dtype``; ``distmis search`` alone flips the *default* to
``float32`` (hyper-parameter ranking is insensitive to the ~1e-6
relative error, and the fast path roughly halves the step time) while
``--compute-dtype float64`` restores the old behaviour.  Initializers
and layers consult the policy at *construction* time via
:func:`resolve_dtype`, so a model built inside
:func:`use_compute_dtype` keeps its dtype after the block exits.
"""

from __future__ import annotations

import contextlib
import os
import threading

import numpy as np

__all__ = [
    "get_compute_dtype",
    "set_compute_dtype",
    "use_compute_dtype",
    "resolve_dtype",
]

ENV_VAR = "DISTMIS_COMPUTE_DTYPE"
_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))

_lock = threading.Lock()
_active: np.dtype | None = None


def _validate(dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt not in _ALLOWED:
        raise ValueError(
            f"compute dtype must be float32 or float64, got {dt}"
        )
    return dt


def get_compute_dtype() -> np.dtype:
    """The active compute dtype (resolving ``DISTMIS_COMPUTE_DTYPE`` on
    first use; ``float64`` when unset)."""
    global _active
    if _active is None:
        with _lock:
            if _active is None:
                _active = _validate(
                    os.environ.get(ENV_VAR, "").strip() or np.float64)
    return _active


def set_compute_dtype(dtype) -> np.dtype:
    """Install the policy dtype; returns the previous one."""
    global _active
    new = _validate(dtype)
    previous = get_compute_dtype()
    with _lock:
        _active = new
    return previous


@contextlib.contextmanager
def use_compute_dtype(dtype):
    """Context manager: build/run the enclosed block under ``dtype``."""
    previous = set_compute_dtype(dtype)
    try:
        yield get_compute_dtype()
    finally:
        set_compute_dtype(previous)


def resolve_dtype(dtype=None) -> np.dtype:
    """An explicit ``dtype`` wins; ``None`` defers to the policy."""
    return get_compute_dtype() if dtype is None else _validate(dtype)
