"""``repro.nn`` -- a from-scratch NumPy deep-learning engine.

Stands in for TensorFlow 2.3 in the reproduction: channels-first 3D
convolutional layers with hand-derived backward passes, the paper's 3D
U-Net (:class:`~repro.nn.unet3d.UNet3D`), Dice losses, Adam, and cyclic
learning-rate schedules.  Gradients are verified by finite differences
(:mod:`repro.nn.gradcheck`).
"""

from . import functional, kernels
from .dtypes import (
    get_compute_dtype,
    resolve_dtype,
    set_compute_dtype,
    use_compute_dtype,
)
from .gradcheck import check_module_gradients, numeric_gradient, relative_error
from .kernels import (
    available_backends,
    get_backend,
    kernel_threads,
    set_backend,
    use_backend,
    workspace,
    workspace_bytes,
)
from .initializers import (
    GlorotUniform,
    HeNormal,
    TruncatedNormal,
    get_initializer,
)
from .layers import (
    AvgPool3D,
    BatchNorm,
    Conv3D,
    ConvTranspose3D,
    Dropout,
    FusedConvBNReLU3D,
    GroupNorm,
    Identity,
    InstanceNorm,
    LeakyReLU,
    MaxPool3D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from .losses import (
    BinaryCrossEntropy,
    ComboLoss,
    Loss,
    MulticlassSoftDiceLoss,
    QuadraticSoftDiceLoss,
    SoftDiceLoss,
    get_loss,
)
from .metrics import mean_multiclass_dice, multiclass_dice
from .metrics import (
    batch_dice,
    dice_coefficient,
    iou,
    precision,
    recall,
    soft_dice_coefficient,
    voxel_accuracy,
)
from .module import Module, Parameter, Sequential
from .summary import LayerInfo, format_summary, model_summary
from .optimizers import (
    SGD,
    Adam,
    Momentum,
    Optimizer,
    clip_grad_norm,
    get_optimizer,
)
from .schedules import (
    ConstantLR,
    CosineAnnealing,
    CyclicLR,
    ExponentialDecay,
    LinearWarmup,
    Schedule,
    StepDecay,
    linear_scaling_rule,
)
from .unet3d import PAPER_INPUT_SHAPE, PAPER_OUTPUT_SHAPE, ConvBlock, UNet3D

__all__ = [
    "functional",
    "kernels",
    "get_backend",
    "set_backend",
    "use_backend",
    "available_backends",
    "kernel_threads",
    "workspace",
    "workspace_bytes",
    "get_compute_dtype",
    "set_compute_dtype",
    "use_compute_dtype",
    "resolve_dtype",
    "Module",
    "Parameter",
    "Sequential",
    "Conv3D",
    "ConvTranspose3D",
    "FusedConvBNReLU3D",
    "MaxPool3D",
    "AvgPool3D",
    "BatchNorm",
    "GroupNorm",
    "InstanceNorm",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Softmax",
    "Loss",
    "SoftDiceLoss",
    "QuadraticSoftDiceLoss",
    "BinaryCrossEntropy",
    "MulticlassSoftDiceLoss",
    "ComboLoss",
    "get_loss",
    "multiclass_dice",
    "mean_multiclass_dice",
    "dice_coefficient",
    "soft_dice_coefficient",
    "batch_dice",
    "iou",
    "precision",
    "recall",
    "voxel_accuracy",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "get_optimizer",
    "clip_grad_norm",
    "Schedule",
    "ConstantLR",
    "StepDecay",
    "ExponentialDecay",
    "CyclicLR",
    "CosineAnnealing",
    "LinearWarmup",
    "linear_scaling_rule",
    "TruncatedNormal",
    "GlorotUniform",
    "HeNormal",
    "get_initializer",
    "ConvBlock",
    "UNet3D",
    "PAPER_INPUT_SHAPE",
    "PAPER_OUTPUT_SHAPE",
    "check_module_gradients",
    "numeric_gradient",
    "relative_error",
    "LayerInfo",
    "model_summary",
    "format_summary",
]
