"""Keras-style model summary.

Walks a model's leaf modules, temporarily instruments their forward
methods, runs one probe pass and reports per-layer output shapes and
parameter counts -- the "406,793 total parameters" table the paper
quotes came from exactly this kind of summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .module import Module

__all__ = ["LayerInfo", "model_summary", "format_summary"]


@dataclass(frozen=True)
class LayerInfo:
    name: str
    kind: str
    output_shape: tuple[int, ...] | None
    params: int


def model_summary(model: Module, input_shape: tuple[int, ...],
                  rng: np.random.Generator | None = None) -> list[LayerInfo]:
    """Instrument leaf modules, run a probe forward pass, return rows.

    ``input_shape`` includes the batch axis, e.g. ``(1, 4, 48, 48, 32)``.
    The model is left exactly as found (methods restored, eval/train
    mode preserved, no gradient side effects).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    leaves = [
        (name, mod)
        for name, mod in model.named_modules()
        if name and not mod._modules  # leaf = no submodules
    ]
    shapes: dict[str, tuple[int, ...]] = {}
    originals = {}

    def instrument(name: str, mod: Module):
        orig = mod.forward

        def wrapped(x, _name=name, _orig=orig):
            out = _orig(x)
            if isinstance(out, np.ndarray):
                shapes[_name] = out.shape
            return out

        mod.forward = wrapped
        originals[name] = (mod, orig)

    was_training = model.training
    try:
        for name, mod in leaves:
            instrument(name, mod)
        model.eval()
        probe = rng.normal(size=input_shape)
        model(probe)
    finally:
        for mod, _orig in originals.values():
            mod.__dict__.pop("forward", None)  # unshadow the class method
        model.train(was_training)

    rows = []
    for name, mod in leaves:
        own_params = sum(p.size for p in mod._params.values())
        rows.append(
            LayerInfo(
                name=name,
                kind=type(mod).__name__,
                output_shape=shapes.get(name),
                params=own_params,
            )
        )
    return rows


def format_summary(model: Module, input_shape: tuple[int, ...]) -> str:
    """Render the table plus the Keras-style totals footer."""
    rows = model_summary(model, input_shape)
    name_w = max(24, max(len(r.name) for r in rows) + 2)
    lines = [
        f"{'layer':<{name_w}} {'type':<18} {'output shape':<22} {'params':>10}",
        "-" * (name_w + 52),
    ]
    for r in rows:
        shape = str(r.output_shape) if r.output_shape else "-"
        lines.append(
            f"{r.name:<{name_w}} {r.kind:<18} {shape:<22} {r.params:>10,}"
        )
    total = model.num_params()
    trainable = model.num_params(trainable_only=True)
    lines.append("-" * (name_w + 52))
    lines.append(f"total params: {total:,}  "
                 f"(trainable {trainable:,}, "
                 f"non-trainable {total - trainable:,})")
    return "\n".join(lines)
