"""Module system: parameters, gradient bookkeeping, train/eval modes.

This is the minimal object model a layer-graph engine needs: every layer
is a :class:`Module` that implements an explicit ``forward`` and
``backward`` (no tape autograd -- gradients are hand-derived per layer and
validated by finite differences in ``repro.nn.gradcheck``).  Composite
architectures such as the 3D U-Net wire modules together and route
gradients through the same structure in reverse.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable (or frozen) tensor with an accumulated gradient."""

    __slots__ = ("value", "grad", "trainable")

    def __init__(self, value: np.ndarray, trainable: bool = True):
        value = np.asarray(value)
        if value.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            # Integer/odd inputs are promoted; float32/float64 values keep
            # the dtype the initializer (i.e. the compute-dtype policy)
            # produced them in.
            value = value.astype(np.float64)
        self.value = value
        self.grad = np.zeros_like(self.value)
        self.trainable = bool(trainable)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "param" if self.trainable else "buffer"
        return f"Parameter({kind}, shape={self.value.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses register parameters with :meth:`add_parameter` and
    submodules by plain attribute assignment.  ``forward`` must cache
    whatever ``backward`` needs on ``self``; ``backward`` receives the
    gradient of the loss w.r.t. the output and must (a) accumulate
    parameter gradients into ``Parameter.grad`` and (b) return the
    gradient w.r.t. the input.
    """

    def __init__(self) -> None:
        self._params: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # -- registration -------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def add_parameter(
        self, name: str, value: np.ndarray, trainable: bool = True
    ) -> Parameter:
        p = Parameter(value, trainable=trainable)
        self._params[name] = p
        object.__setattr__(self, name, p)
        return p

    # -- traversal ----------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._params.items():
            yield (f"{prefix}{name}", p)
        for mname, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mname}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for mname, mod in self._modules.items():
            yield from mod.named_modules(prefix=f"{prefix}{mname}.")

    def num_params(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters (Keras-style ``count_params``)."""
        return sum(
            p.size
            for p in self.parameters()
            if p.trainable or not trainable_only
        )

    # -- modes / grads ------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state --------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name -> array snapshot (copies, safe to serialise)."""
        return {name: p.value.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        for name, p in own.items():
            # Cast to the parameter's own dtype so checkpoints written by a
            # float64 run load cleanly into a float32 model (and vice versa).
            arr = np.asarray(state[name], dtype=p.value.dtype)
            if arr.shape != p.value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"model {p.value.shape} vs state {arr.shape}"
                )
            p.value = arr.copy()

    def get_flat_params(self) -> np.ndarray:
        """Concatenate all trainable parameter values into one vector."""
        vecs = [p.value.ravel() for p in self.parameters() if p.trainable]
        return np.concatenate(vecs) if vecs else np.zeros(0)

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Inverse of :meth:`get_flat_params`."""
        offset = 0
        for p in self.parameters():
            if not p.trainable:
                continue
            n = p.size
            p.value = (flat[offset : offset + n]
                       .reshape(p.value.shape).astype(p.value.dtype))
            offset += n
        if offset != flat.size:
            raise ValueError(
                f"flat vector has {flat.size} entries, model needs {offset}"
            )

    def get_flat_grads(self) -> np.ndarray:
        """Concatenate all trainable parameter gradients into one vector."""
        vecs = [p.grad.ravel() for p in self.parameters() if p.trainable]
        return np.concatenate(vecs) if vecs else np.zeros(0)

    def set_flat_grads(self, flat: np.ndarray) -> None:
        """Overwrite trainable gradients from one flat vector (post all-reduce)."""
        offset = 0
        for p in self.parameters():
            if not p.trainable:
                continue
            n = p.size
            p.grad = (flat[offset : offset + n]
                      .reshape(p.grad.shape).astype(p.grad.dtype))
            offset += n
        if offset != flat.size:
            raise ValueError(
                f"flat vector has {flat.size} entries, model needs {offset}"
            )

    # -- computation --------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(params={self.num_params()})"


class Sequential(Module):
    """Chain of modules applied in order; backward runs in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(self.layers):
            setattr(self, f"layer{i}", layer)

    def append(self, layer: Module) -> None:
        idx = len(self.layers)
        self.layers.append(layer)
        setattr(self, f"layer{idx}", layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]
