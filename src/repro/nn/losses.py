"""Segmentation loss functions.

The paper trains with the *soft Dice loss* (Section II-B2):

    L(y_hat, y) = 1 - (2 * sum(y_hat * y) + eps) / (sum(y_hat) + sum(y) + eps)

with ``eps = 0.1`` to avoid division by zero, and also evaluates the
*quadratic* soft Dice variant (V-Net style, denominator of squared terms)
which "seems to lead to worst validation results" -- reproduced by
experiment E8.

Every loss exposes ``forward(pred, target) -> (scalar_loss, dpred)`` so a
single call yields both the value and the gradient seed for
backpropagation.  Losses are **means over the batch axis**, which makes
sharded data-parallel gradients (weighted by shard size) exactly equal to
the full-batch gradient -- the property behind claim C2.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Loss",
    "SoftDiceLoss",
    "QuadraticSoftDiceLoss",
    "BinaryCrossEntropy",
    "MulticlassSoftDiceLoss",
    "ComboLoss",
    "get_loss",
]


def _flatten_per_sample(a: np.ndarray) -> np.ndarray:
    """Collapse all non-batch axes: (N, ...) -> (N, V)."""
    return a.reshape(a.shape[0], -1)


def _validate(pred: np.ndarray, target: np.ndarray) -> None:
    if pred.shape != target.shape:
        raise ValueError(
            f"prediction/target shape mismatch: {pred.shape} vs {target.shape}"
        )
    if pred.ndim < 2:
        raise ValueError("losses expect a leading batch axis")


class Loss:
    """Base class; subclasses implement :meth:`forward`."""

    def forward(self, pred: np.ndarray, target: np.ndarray):
        raise NotImplementedError

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)[0]


class SoftDiceLoss(Loss):
    """Paper's Dice loss: per-sample soft Dice, averaged over the batch."""

    def __init__(self, eps: float = 0.1):
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = float(eps)

    def forward(self, pred: np.ndarray, target: np.ndarray):
        _validate(pred, target)
        p = _flatten_per_sample(pred)
        t = _flatten_per_sample(target)
        n = pred.shape[0]

        inter = np.einsum("nv,nv->n", p, t)
        num = 2.0 * inter + self.eps
        den = p.sum(axis=1) + t.sum(axis=1) + self.eps
        dice = num / den
        loss = float(np.mean(1.0 - dice))

        # d(1 - num/den)/dp_k = -(2*t_k*den - num) / den^2, averaged over batch
        grad = -(2.0 * t * den[:, None] - num[:, None]) / (den[:, None] ** 2)
        grad /= n
        return loss, grad.reshape(pred.shape)


class QuadraticSoftDiceLoss(Loss):
    """V-Net-style Dice with squared terms in the denominator.

    Tested by the paper and found to validate worse than the plain soft
    Dice; kept as the loss ablation of experiment E8.
    """

    def __init__(self, eps: float = 0.1):
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = float(eps)

    def forward(self, pred: np.ndarray, target: np.ndarray):
        _validate(pred, target)
        p = _flatten_per_sample(pred)
        t = _flatten_per_sample(target)
        n = pred.shape[0]

        inter = np.einsum("nv,nv->n", p, t)
        num = 2.0 * inter + self.eps
        den = np.einsum("nv,nv->n", p, p) + np.einsum("nv,nv->n", t, t) + self.eps
        dice = num / den
        loss = float(np.mean(1.0 - dice))

        grad = -(2.0 * t * den[:, None] - num[:, None] * 2.0 * p) / (
            den[:, None] ** 2
        )
        grad /= n
        return loss, grad.reshape(pred.shape)


class BinaryCrossEntropy(Loss):
    """Voxel-wise BCE on probabilities (post-sigmoid), batch mean.

    Included for the class-imbalance discussion: plain BCE is dominated by
    the background class, which is exactly why the paper uses Dice.
    """

    def __init__(self, eps: float = 1e-7):
        self.eps = float(eps)

    def forward(self, pred: np.ndarray, target: np.ndarray):
        _validate(pred, target)
        p = np.clip(pred, self.eps, 1.0 - self.eps)
        n = pred.shape[0]
        voxels_per_sample = pred.size / n
        loss = float(
            -np.mean(target * np.log(p) + (1 - target) * np.log(1 - p))
        )
        grad = -(target / p - (1 - target) / (1 - p)) / (n * voxels_per_sample)
        return loss, grad


class MulticlassSoftDiceLoss(Loss):
    """Macro-averaged soft Dice over class channels.

    For the original 4-class MSD problem (before the paper's binary
    reduction): ``pred`` is a ``(N, C, ...)`` probability map (softmax
    output), ``target`` the one-hot encoding of the label map.  The loss
    is ``1 - mean_{n,c} dice(pred[n,c], target[n,c])``; background can
    be excluded (BraTS convention).
    """

    def __init__(self, eps: float = 0.1, include_background: bool = True):
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = float(eps)
        self.include_background = bool(include_background)

    def forward(self, pred: np.ndarray, target: np.ndarray):
        _validate(pred, target)
        if pred.ndim < 3:
            raise ValueError("expected (N, C, ...) class-channel tensors")
        n, c = pred.shape[:2]
        start = 0 if self.include_background else 1
        if start >= c:
            raise ValueError("no foreground channels to score")
        p = pred.reshape(n, c, -1)
        t = target.reshape(n, c, -1)

        inter = np.einsum("ncv,ncv->nc", p, t)
        num = 2.0 * inter + self.eps
        den = p.sum(axis=2) + t.sum(axis=2) + self.eps
        dice = num / den                     # (n, c)
        used = dice[:, start:]
        loss = float(np.mean(1.0 - used))

        grad = np.zeros_like(p)
        scale = 1.0 / (n * (c - start))
        grad[:, start:] = (
            -(2.0 * t[:, start:] * den[:, start:, None]
              - num[:, start:, None])
            / (den[:, start:, None] ** 2)
        ) * scale
        return loss, grad.reshape(pred.shape)


class ComboLoss(Loss):
    """Weighted sum of two losses (e.g. Dice + BCE), a common extension."""

    def __init__(self, first: Loss, second: Loss, alpha: float = 0.5):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.first, self.second, self.alpha = first, second, float(alpha)

    def forward(self, pred: np.ndarray, target: np.ndarray):
        l1, g1 = self.first.forward(pred, target)
        l2, g2 = self.second.forward(pred, target)
        a = self.alpha
        return a * l1 + (1 - a) * l2, a * g1 + (1 - a) * g2


_REGISTRY = {
    "dice": SoftDiceLoss,
    "soft_dice": SoftDiceLoss,
    "quadratic_dice": QuadraticSoftDiceLoss,
    "bce": BinaryCrossEntropy,
    "multiclass_dice": MulticlassSoftDiceLoss,
}


def get_loss(spec, **kwargs) -> Loss:
    """Resolve a loss by name (as hyper-parameter configs do) or instance."""
    if isinstance(spec, Loss):
        return spec
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec](**kwargs)
        except KeyError:
            raise ValueError(
                f"unknown loss {spec!r}; known: {sorted(_REGISTRY)}"
            ) from None
    raise TypeError(f"cannot interpret {spec!r} as a loss")
