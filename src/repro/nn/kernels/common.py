"""Shared helpers for the convolution kernel backends.

Lives below both :mod:`repro.nn.functional` (the dispatching public API)
and the concrete backends, so neither imports the other: backends import
helpers from here, ``functional`` re-exports the public ones.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "triple",
    "pad_volume",
    "conv3d_output_shape",
    "conv_transpose3d_output_shape",
]


def triple(v) -> tuple[int, int, int]:
    """Normalise an int-or-3-sequence into a 3-tuple."""
    if isinstance(v, (int, np.integer)):
        return (int(v), int(v), int(v))
    t = tuple(int(x) for x in v)
    if len(t) != 3:
        raise ValueError(f"expected an int or a length-3 sequence, got {v!r}")
    return t


def pad_volume(x: np.ndarray, pad: tuple[int, int, int]) -> np.ndarray:
    """Zero-pad the three spatial axes of a ``(N, C, D, H, W)`` tensor."""
    pd, ph, pw = pad
    if pd == ph == pw == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pd, pd), (ph, ph), (pw, pw)))


def conv3d_output_shape(
    spatial: tuple[int, int, int],
    kernel,
    stride=1,
    pad=0,
) -> tuple[int, int, int]:
    """Spatial output shape of a 3D convolution."""
    k, s, p = triple(kernel), triple(stride), triple(pad)
    out = []
    for dim, kk, ss, pp in zip(spatial, k, s, p):
        o = (dim + 2 * pp - kk) // ss + 1
        if o <= 0:
            raise ValueError(
                f"conv3d output dim <= 0 (input {dim}, kernel {kk}, "
                f"stride {ss}, pad {pp})"
            )
        out.append(o)
    return tuple(out)


def conv_transpose3d_output_shape(
    spatial: tuple[int, int, int],
    kernel,
    stride=1,
) -> tuple[int, int, int]:
    """Spatial output shape of a 3D transposed convolution (no padding)."""
    k, s = triple(kernel), triple(stride)
    return tuple((dim - 1) * ss + kk for dim, kk, ss in zip(spatial, k, s))
