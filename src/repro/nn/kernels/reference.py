"""The ``reference`` backend: the original einsum/scatter kernels.

Kept verbatim as the numerical ground truth the GEMM backend is
cross-validated against (every stride/padding/kernel combination the
U-Net uses, forward and backward, plus finite-difference gradchecks).
Written as a small number of large vectorised operations
(``sliding_window_view`` + ``einsum`` on the forward path, one
scatter-add per kernel offset on the backward path): a 3x3x3 kernel
costs 27 fused updates regardless of volume size.

Perf note: earlier revisions forced ``np.ascontiguousarray`` onto the
forward output and the backward input-gradient.  Both were full
activation-tensor copies per layer per step bought for nothing -- every
consumer in the stack (einsum, ``sliding_window_view``, ufuncs, the
norm layers) handles strided arrays -- so the results are now returned
as produced.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .common import conv_transpose3d_output_shape, pad_volume
from .registry import KernelBackend, register_backend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(KernelBackend):
    """einsum contractions over ``sliding_window_view`` patches."""

    name = "reference"

    def conv3d_forward(self, x, w, b, stride, pad, ctx=None):
        s, p = stride, pad
        xp = pad_volume(x, p)
        kd, kh, kw = w.shape[2:]
        # (N, C, D', H', W', kd, kh, kw) view -- no copy.
        cols = sliding_window_view(xp, (kd, kh, kw), axis=(2, 3, 4))
        cols = cols[:, :, :: s[0], :: s[1], :: s[2]]
        y = np.einsum("ncdhwxyz,ocxyz->nodhw", cols, w, optimize=True)
        if b is not None:
            y += b.reshape(1, -1, 1, 1, 1)
        return y

    def conv3d_backward(self, dy, x, w, stride, pad, with_bias, ctx=None):
        s, p = stride, pad
        kd, kh, kw = w.shape[2:]
        Do, Ho, Wo = dy.shape[2:]

        xp = pad_volume(x, p)
        cols = sliding_window_view(xp, (kd, kh, kw), axis=(2, 3, 4))
        cols = cols[:, :, :: s[0], :: s[1], :: s[2]]
        dw = np.einsum("nodhw,ncdhwxyz->ocxyz", dy, cols, optimize=True)

        db = dy.sum(axis=(0, 2, 3, 4)) if with_bias else None

        dxp = np.zeros_like(xp)
        # dy (N,O,Do,Ho,Wo) x w[:,:,i,j,k] (O,C) -> offset (i,j,k)
        for i in range(kd):
            di = slice(i, i + s[0] * Do, s[0])
            for j in range(kh):
                dj = slice(j, j + s[1] * Ho, s[1])
                for k in range(kw):
                    dk = slice(k, k + s[2] * Wo, s[2])
                    dxp[:, :, di, dj, dk] += np.einsum(
                        "nodhw,oc->ncdhw", dy, w[:, :, i, j, k],
                        optimize=True
                    )
        pd, ph, pw = p
        dx = dxp[
            :,
            :,
            pd : dxp.shape[2] - pd or None,
            ph : dxp.shape[3] - ph or None,
            pw : dxp.shape[4] - pw or None,
        ]
        return dx, dw, db

    def conv_transpose3d_forward(self, x, w, b, stride, ctx=None):
        s = stride
        n, _, D, H, W = x.shape
        kd, kh, kw = w.shape[2:]
        Do, Ho, Wo = conv_transpose3d_output_shape((D, H, W), (kd, kh, kw), s)
        y = np.zeros((n, w.shape[1], Do, Ho, Wo), dtype=x.dtype)
        for i in range(kd):
            di = slice(i, i + s[0] * D, s[0])
            for j in range(kh):
                dj = slice(j, j + s[1] * H, s[1])
                for k in range(kw):
                    dk = slice(k, k + s[2] * W, s[2])
                    y[:, :, di, dj, dk] += np.einsum(
                        "ncdhw,co->nodhw", x, w[:, :, i, j, k], optimize=True
                    )
        if b is not None:
            y += b.reshape(1, -1, 1, 1, 1)
        return y

    def conv_transpose3d_backward(self, dy, x, w, stride, with_bias,
                                  ctx=None):
        s = stride
        kd, kh, kw = w.shape[2:]
        n, _, D, H, W = x.shape

        dx = np.zeros_like(x)
        dw = np.zeros_like(w)
        for i in range(kd):
            di = slice(i, i + s[0] * D, s[0])
            for j in range(kh):
                dj = slice(j, j + s[1] * H, s[1])
                for k in range(kw):
                    dk = slice(k, k + s[2] * W, s[2])
                    dy_off = dy[:, :, di, dj, dk]
                    dx += np.einsum("nodhw,co->ncdhw", dy_off,
                                    w[:, :, i, j, k], optimize=True)
                    dw[:, :, i, j, k] = np.einsum(
                        "ncdhw,nodhw->co", x, dy_off, optimize=True
                    )
        db = dy.sum(axis=(0, 2, 3, 4)) if with_bias else None
        return dx, dw, db


register_backend(ReferenceBackend())
