"""Convolution compute backends: registry, workspace arena, kernels.

Importing this package registers the built-in backends (``reference``,
``gemm`` and ``fused``); the active one is resolved lazily by
:func:`~repro.nn.kernels.registry.get_backend`.
"""

from __future__ import annotations

from .common import (
    conv3d_output_shape,
    conv_transpose3d_output_shape,
    pad_volume,
    triple,
)
from .registry import (
    KernelBackend,
    available_backends,
    consume_kernel_seconds,
    get_backend,
    kernel_seconds_snapshot,
    record_kernel_seconds,
    register_backend,
    set_backend,
    use_backend,
)
from .workspace import (
    WorkspaceArena,
    set_workspace_limit,
    workspace,
    workspace_bytes,
)

# Backend registration side effects.
from . import gemm as _gemm  # noqa: F401,E402
from . import reference as _reference  # noqa: F401,E402
from .fused import kernel_threads  # noqa: E402  (also registers "fused")

__all__ = [
    "kernel_threads",
    "KernelBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "record_kernel_seconds",
    "consume_kernel_seconds",
    "kernel_seconds_snapshot",
    "WorkspaceArena",
    "workspace",
    "set_workspace_limit",
    "workspace_bytes",
    "triple",
    "pad_volume",
    "conv3d_output_shape",
    "conv_transpose3d_output_shape",
]
