"""The ``gemm`` backend: im2col/col2im lowering to contiguous BLAS GEMMs.

The reference kernels contract an 8-D ``sliding_window_view`` with
``einsum``; for the backward pass that degenerates into one einsum per
kernel offset and none of it reaches a single large GEMM.  This backend
restructures every convolution around the classic im2col lowering:

* **forward** -- gather the input into a patches matrix ``cols`` of
  shape ``(N, C*kd*kh*kw, Do*Ho*Wo)`` (one strided copy), then one
  batched ``np.matmul`` with the reshaped weights straight into the
  freshly allocated output.
* **backward/dw** -- the *same* patches matrix, contracted against
  ``dy`` with one batched GEMM.  The forward pass parks ``cols`` in the
  layer's ``ctx`` dict, so training steps gather once and GEMM three
  times.
* **backward/dx** -- for unit stride, the full-correlation form: gather
  padded ``dy`` patches and GEMM against the flipped/transposed weights
  directly into ``dx``.  For strided convolutions, the col2im form:
  GEMM ``w^T @ dy`` into the (recycled) patches buffer and scatter-add
  per kernel offset.
* **transposed conv** -- one GEMM producing the offset columns, then a
  ``kd*kh*kw``-step scatter (forward) / gather (backward).

All scratch (patches matrices, padded volumes) is checked out of the
:mod:`~repro.nn.kernels.workspace` arena and recycled across steps;
outputs are always freshly allocated, never views into the arena.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .common import conv3d_output_shape, conv_transpose3d_output_shape
from .registry import KernelBackend, register_backend
from .workspace import workspace

__all__ = ["GemmBackend"]

_UNIT = (1, 1, 1)


def _gather_cols(xp: np.ndarray, kernel, stride, out: np.ndarray) -> None:
    """im2col: fill ``out`` (N, C*kd*kh*kw, P) from the padded volume."""
    n, c = xp.shape[:2]
    kd, kh, kw = kernel
    cols = sliding_window_view(xp, (kd, kh, kw), axis=(2, 3, 4))
    cols = cols[:, :, :: stride[0], :: stride[1], :: stride[2]]
    Do, Ho, Wo = cols.shape[2:5]
    np.copyto(out.reshape(n, c, kd, kh, kw, Do, Ho, Wo),
              cols.transpose(0, 1, 5, 6, 7, 2, 3, 4))


def _padded(ws, x: np.ndarray, pad) -> np.ndarray:
    """Zero-padded copy of ``x`` in an arena buffer (``x`` itself when
    padding is zero -- callers must not write through it)."""
    pd, ph, pw = pad
    if pd == ph == pw == 0:
        return x
    n, c, D, H, W = x.shape
    xp = ws.acquire((n, c, D + 2 * pd, H + 2 * ph, W + 2 * pw), x.dtype)
    # Zero only the pad margins -- the interior is fully overwritten by
    # the copy below, and skipping its redundant fill saves one complete
    # write pass over the (recycled, hence dirty) arena buffer.
    if pd:
        xp[:, :, :pd].fill(0.0)
        xp[:, :, pd + D:].fill(0.0)
    if ph:
        xp[:, :, pd : pd + D, :ph].fill(0.0)
        xp[:, :, pd : pd + D, ph + H:].fill(0.0)
    if pw:
        xp[:, :, pd : pd + D, ph : ph + H, :pw].fill(0.0)
        xp[:, :, pd : pd + D, ph : ph + H, pw + W:].fill(0.0)
    xp[:, :, pd : pd + D, ph : ph + H, pw : pw + W] = x
    return xp


class GemmBackend(KernelBackend):
    """im2col/col2im + batched ``np.matmul`` with workspace reuse."""

    name = "gemm"

    # -- conv3d ------------------------------------------------------------
    def conv3d_forward(self, x, w, b, stride, pad, ctx=None):
        ws = workspace()
        n, c = x.shape[:2]
        co = w.shape[0]
        kd, kh, kw = w.shape[2:]
        Do, Ho, Wo = conv3d_output_shape(x.shape[2:], (kd, kh, kw),
                                         stride, pad)
        P, K = Do * Ho * Wo, c * kd * kh * kw

        if (kd, kh, kw) == _UNIT and stride == _UNIT and pad == (0, 0, 0):
            # 1x1x1 channel mix: the input already is the patches matrix.
            cols, owned = x.reshape(n, K, P), None
        else:
            xp = _padded(ws, x, pad)
            cols = owned = ws.acquire((n, K, P), x.dtype)
            _gather_cols(xp, (kd, kh, kw), stride, cols)
            if xp is not x:
                ws.release(xp)

        y = np.empty((n, co, Do, Ho, Wo), dtype=x.dtype)
        np.matmul(w.reshape(co, K), cols, out=y.reshape(n, co, P))
        if b is not None:
            y += b.reshape(1, -1, 1, 1, 1)

        if ctx is not None and owned is not None:
            ctx["cols"] = owned  # handed to the matching backward call
        else:
            ws.release(owned)
        return y

    def conv3d_backward(self, dy, x, w, stride, pad, with_bias, ctx=None):
        ws = workspace()
        n, c = x.shape[:2]
        co = w.shape[0]
        kd, kh, kw = w.shape[2:]
        Do, Ho, Wo = dy.shape[2:]
        P, K = Do * Ho * Wo, c * kd * kh * kw
        unit_kernel = ((kd, kh, kw) == _UNIT and stride == _UNIT
                       and pad == (0, 0, 0))

        # The patches matrix: reuse the forward's gather when the layer
        # carried it over, else rebuild it.
        cols = ctx.pop("cols", None) if ctx is not None else None
        if cols is not None and cols.shape != (n, K, P):
            ws.release(cols)  # stale ctx from a different config
            cols = None
        owned = cols
        if cols is None:
            if unit_kernel:
                cols = x.reshape(n, K, P)
            else:
                xp = _padded(ws, x, pad)
                cols = owned = ws.acquire((n, K, P), x.dtype)
                _gather_cols(xp, (kd, kh, kw), stride, cols)
                if xp is not x:
                    ws.release(xp)

        dy2 = np.ascontiguousarray(dy).reshape(n, co, P)
        dw = np.matmul(dy2, cols.transpose(0, 2, 1)).sum(axis=0)
        dw = dw.reshape(w.shape)
        db = dy.sum(axis=(0, 2, 3, 4)) if with_bias else None

        if unit_kernel:
            dx = np.empty_like(x)
            np.matmul(w.reshape(co, K).T, dy2, out=dx.reshape(n, c, P))
        elif stride == _UNIT and all(kk - 1 - pp >= 0 for kk, pp in
                                     zip((kd, kh, kw), pad)):
            dx = self._dx_correlation(ws, dy, w, pad, x.shape)
        else:
            dx = self._dx_scatter(ws, dy2, w, stride, pad, x.shape,
                                  scratch=owned)
        ws.release(owned)
        return dx, dw, db

    @staticmethod
    def _dx_correlation(ws, dy, w, pad, x_shape):
        """Unit-stride input gradient as a full correlation: gather
        padded-``dy`` patches and GEMM with flipped weights straight
        into a fresh ``dx``."""
        n, c, D, H, W = x_shape
        co = w.shape[0]
        kd, kh, kw = w.shape[2:]
        bpad = tuple(kk - 1 - pp for kk, pp in zip((kd, kh, kw), pad))
        dyp = _padded(ws, dy, bpad)
        Kb = co * kd * kh * kw
        dycols = ws.acquire((n, Kb, D * H * W), dy.dtype)
        _gather_cols(dyp, (kd, kh, kw), _UNIT, dycols)
        if dyp is not dy:
            ws.release(dyp)
        # (C, Co*k^3) from w flipped along every kernel axis.
        wflip = np.ascontiguousarray(
            w[:, :, ::-1, ::-1, ::-1].transpose(1, 0, 2, 3, 4)
        ).reshape(c, Kb)
        dx = np.empty(x_shape, dtype=dy.dtype)
        np.matmul(wflip, dycols, out=dx.reshape(n, c, D * H * W))
        ws.release(dycols)
        return dx

    @staticmethod
    def _dx_scatter(ws, dy2, w, stride, pad, x_shape, scratch=None):
        """General-stride input gradient: col2im scatter-add of
        ``w^T @ dy`` (reusing the patches buffer as the column
        scratch when available)."""
        n, c, D, H, W = x_shape
        co = w.shape[0]
        kd, kh, kw = w.shape[2:]
        P = dy2.shape[2]
        K = c * kd * kh * kw
        Do, Ho, Wo = conv3d_output_shape((D, H, W), (kd, kh, kw),
                                         stride, pad)
        dcols = scratch if (scratch is not None
                            and scratch.shape == (n, K, P)) else None
        released_here = dcols is None
        if dcols is None:
            dcols = ws.acquire((n, K, P), dy2.dtype)
        np.matmul(w.reshape(co, K).T, dy2, out=dcols)

        pd, ph, pw = pad
        dxp = ws.acquire((n, c, D + 2 * pd, H + 2 * ph, W + 2 * pw),
                         dy2.dtype)
        dxp.fill(0.0)
        v = dcols.reshape(n, c, kd, kh, kw, Do, Ho, Wo)
        for i in range(kd):
            di = slice(i, i + stride[0] * Do, stride[0])
            for j in range(kh):
                dj = slice(j, j + stride[1] * Ho, stride[1])
                for k in range(kw):
                    dk = slice(k, k + stride[2] * Wo, stride[2])
                    dxp[:, :, di, dj, dk] += v[:, :, i, j, k]
        dx = dxp[
            :,
            :,
            pd : dxp.shape[2] - pd or None,
            ph : dxp.shape[3] - ph or None,
            pw : dxp.shape[4] - pw or None,
        ].copy()
        ws.release(dxp)
        if released_here:
            ws.release(dcols)
        return dx

    # -- conv_transpose3d --------------------------------------------------
    def conv_transpose3d_forward(self, x, w, b, stride, ctx=None):
        ws = workspace()
        n, ci, D, H, W = x.shape
        co = w.shape[1]
        kd, kh, kw = w.shape[2:]
        Do, Ho, Wo = conv_transpose3d_output_shape((D, H, W), (kd, kh, kw),
                                                   stride)
        P, K = D * H * W, co * kd * kh * kw

        cols = ws.acquire((n, K, P), x.dtype)
        np.matmul(w.reshape(ci, K).T,
                  np.ascontiguousarray(x).reshape(n, ci, P), out=cols)
        y = np.zeros((n, co, Do, Ho, Wo), dtype=x.dtype)
        v = cols.reshape(n, co, kd, kh, kw, D, H, W)
        for i in range(kd):
            di = slice(i, i + stride[0] * D, stride[0])
            for j in range(kh):
                dj = slice(j, j + stride[1] * H, stride[1])
                for k in range(kw):
                    dk = slice(k, k + stride[2] * W, stride[2])
                    y[:, :, di, dj, dk] += v[:, :, i, j, k]
        ws.release(cols)
        if b is not None:
            y += b.reshape(1, -1, 1, 1, 1)
        return y

    def conv_transpose3d_backward(self, dy, x, w, stride, with_bias,
                                  ctx=None):
        ws = workspace()
        n, ci, D, H, W = x.shape
        co = w.shape[1]
        kd, kh, kw = w.shape[2:]
        P, K = D * H * W, co * kd * kh * kw

        # Gather dy at every kernel offset: the adjoint of the forward
        # scatter, one strided slice copy per offset.
        dycols = ws.acquire((n, K, P), dy.dtype)
        v = dycols.reshape(n, co, kd, kh, kw, D, H, W)
        for i in range(kd):
            di = slice(i, i + stride[0] * D, stride[0])
            for j in range(kh):
                dj = slice(j, j + stride[1] * H, stride[1])
                for k in range(kw):
                    dk = slice(k, k + stride[2] * W, stride[2])
                    v[:, :, i, j, k] = dy[:, :, di, dj, dk]

        dx = np.empty_like(x)
        np.matmul(w.reshape(ci, K), dycols, out=dx.reshape(n, ci, P))
        x2 = np.ascontiguousarray(x).reshape(n, ci, P)
        dw = np.matmul(x2, dycols.transpose(0, 2, 1)).sum(axis=0)
        dw = dw.reshape(w.shape)
        ws.release(dycols)
        db = dy.sum(axis=(0, 2, 3, 4)) if with_bias else None
        return dx, dw, db

    # -- ctx management ----------------------------------------------------
    def release_ctx(self, ctx: dict | None) -> None:
        """Reclaim scratch a forward pass parked for a backward that
        never ran (e.g. a training-mode forward used for evaluation).

        Releases *every* arena array in ``ctx``, not just this backend's
        own keys, so a ctx stashed under one backend is still reclaimed
        when another is active at cleanup time (layers may outlive a
        ``use_backend`` block)."""
        if not ctx:
            return
        ws = workspace()
        for buf in ctx.values():
            if isinstance(buf, np.ndarray):
                ws.release(buf)
            elif isinstance(buf, (list, tuple)):
                # e.g. the fused backend's (d0, d1, cols) tile stash
                for item in buf:
                    for part in (item if isinstance(item, tuple) else (item,)):
                        if isinstance(part, np.ndarray):
                            ws.release(part)
        ctx.clear()


register_backend(GemmBackend())
