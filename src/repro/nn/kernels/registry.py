"""Pluggable compute-backend registry for the convolution kernels.

Every 3D convolution in the model dispatches through one active
:class:`KernelBackend`:

* ``reference`` -- the original ``sliding_window_view`` + ``einsum``
  kernels, kept as the bit-for-bit ground truth every other backend is
  cross-validated against (gradcheck + allclose parity tests).
* ``gemm`` -- im2col/col2im lowering to one contiguous BLAS GEMM per
  convolution, with workspace-arena scratch reuse (the default).
* ``fused`` -- the GEMM lowering tiled over output-depth chunks so the
  patches matrix stays cache-resident, plus a fused
  Conv3D+BatchNorm+ReLU forward/backward (``supports_fusion``) and
  optional thread-pool execution of independent tiles
  (``DISTMIS_KERNEL_THREADS``).

Selection, in priority order: :func:`set_backend` /
:func:`use_backend` > the ``DISTMIS_KERNEL_BACKEND`` environment
variable > the built-in default (``gemm``).  The CLI exposes the same
choice as ``--kernel-backend``.

The module also keeps the per-backend kernel-seconds ledger:
:mod:`repro.nn.functional` stamps every dispatched call with two
``perf_counter`` reads, and :class:`~repro.raysim.sgd.DataParallelTrainer`
drains the ledger into the ``kernel_seconds_total{backend,op}`` counter
after each optimizer step, so the profiler can split its ``compute``
bucket by backend and operation.
"""

from __future__ import annotations

import contextlib
import os
import threading

__all__ = [
    "KernelBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "record_kernel_seconds",
    "consume_kernel_seconds",
    "kernel_seconds_snapshot",
]

ENV_VAR = "DISTMIS_KERNEL_BACKEND"
DEFAULT_BACKEND = "gemm"


class KernelBackend:
    """Interface every compute backend implements.

    All methods receive *normalised* arguments: ``stride``/``pad`` are
    3-tuples and shapes have been validated by
    :mod:`repro.nn.functional`.  ``ctx`` is an optional mutable dict
    owned by the calling layer; a backend may stash forward-pass scratch
    there (e.g. the im2col patches matrix) for the matching backward
    call and must reclaim it in :meth:`release_ctx`.  Outputs must be
    freshly allocated arrays -- never views into cached scratch.
    """

    name: str = "abstract"

    #: True when the backend implements the fused Conv3D+BN+ReLU pair
    #: below; layers consult this (via
    #: :func:`repro.nn.functional.fused_conv_bn_relu_supported`) before
    #: routing through the fused path.
    supports_fusion: bool = False

    def conv3d_forward(self, x, w, b, stride, pad, ctx=None):
        raise NotImplementedError

    def conv3d_backward(self, dy, x, w, stride, pad, with_bias, ctx=None):
        raise NotImplementedError

    def conv_transpose3d_forward(self, x, w, b, stride, ctx=None):
        raise NotImplementedError

    def conv_transpose3d_backward(self, dy, x, w, stride, with_bias,
                                  ctx=None):
        raise NotImplementedError

    # -- optional fused Conv3D+BatchNorm+ReLU (supports_fusion) -------------
    def conv3d_bn_relu_forward(self, x, w, b, gamma, beta, running_mean,
                               running_var, eps, stride, pad, training,
                               ctx=None):
        """Fused ``relu(batchnorm(conv3d(x)))``.

        Returns ``(y, mean, var)`` -- batch statistics in training mode
        (the layer folds them into its running estimates), the running
        statistics unchanged in eval mode.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not support conv/BN/ReLU fusion")

    def conv3d_bn_relu_backward(self, dy, x, w, gamma, stride, pad,
                                with_bias, ctx=None, need_dx=True):
        """Gradients of :meth:`conv3d_bn_relu_forward` (training mode).

        Returns ``(dx, dw, db, dgamma, dbeta)``; requires the ``ctx``
        the forward call populated.  ``need_dx=False`` lets the backend
        skip the input gradient (``dx`` is then ``None``) -- e.g. for a
        network's first layer, whose input carries no gradient.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not support conv/BN/ReLU fusion")

    def release_ctx(self, ctx: dict | None) -> None:
        """Return any scratch stashed in ``ctx`` to its pool (no-op by
        default)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelBackend {self.name}>"


_BACKENDS: dict[str, KernelBackend] = {}
_active: KernelBackend | None = None
_lock = threading.Lock()


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend instance to the registry (name collisions replace,
    so tests can re-register instrumented doubles)."""
    if not getattr(backend, "name", None) or backend.name == "abstract":
        raise ValueError("backend needs a concrete .name")
    _BACKENDS[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_BACKENDS))


def _resolve(name: str) -> KernelBackend:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None


def get_backend() -> KernelBackend:
    """The active backend (resolving ``DISTMIS_KERNEL_BACKEND`` on first
    use)."""
    global _active
    if _active is None:
        with _lock:
            if _active is None:
                _active = _resolve(
                    os.environ.get(ENV_VAR, "").strip() or DEFAULT_BACKEND)
    return _active


def set_backend(backend: str | KernelBackend) -> KernelBackend:
    """Install the active backend; returns the previous one (the
    env/default resolution when none was ever active, so
    :func:`use_backend` restores the state a fresh process would see)."""
    global _active
    new = _resolve(backend) if isinstance(backend, str) else backend
    previous = get_backend()
    with _lock:
        _active = new
    return previous


@contextlib.contextmanager
def use_backend(backend: str | KernelBackend):
    """Context manager: run the enclosed block under another backend."""
    previous = set_backend(backend)
    try:
        yield get_backend()
    finally:
        set_backend(previous)


# -- kernel-seconds ledger ---------------------------------------------------
_stats_lock = threading.Lock()
_kernel_seconds: dict[tuple[str, str], float] = {}


def record_kernel_seconds(backend: str, op: str, seconds: float) -> None:
    """Accumulate wall-clock for one dispatched kernel call."""
    key = (backend, op)
    with _stats_lock:
        _kernel_seconds[key] = _kernel_seconds.get(key, 0.0) + seconds


def consume_kernel_seconds() -> dict[tuple[str, str], float]:
    """Drain and return the ledger (caller feeds it into telemetry)."""
    with _stats_lock:
        out = dict(_kernel_seconds)
        _kernel_seconds.clear()
    return out


def kernel_seconds_snapshot() -> dict[tuple[str, str], float]:
    """Non-destructive view of the ledger (tests, debugging)."""
    with _stats_lock:
        return dict(_kernel_seconds)
