"""Workspace arena: bounded, shape-keyed reuse of large scratch buffers.

The GEMM backend lowers every convolution to ``patches-matrix x weights``,
and the patches matrix is *large* -- ``kd*kh*kw`` times the activation it
was gathered from.  Allocating (and faulting in) a multi-hundred-MB
temporary per convolution per step would hand a third of the step time to
the allocator, so scratch buffers are checked out of a process-wide arena
instead and recycled across steps.

Semantics:

* :meth:`WorkspaceArena.acquire` returns an **uninitialised** buffer of
  the requested shape/dtype -- a recycled one when the free pool holds a
  match, a fresh allocation otherwise.  Callers must fully overwrite it.
* :meth:`WorkspaceArena.release` checks a buffer back in.  Released bytes
  are retained up to ``max_bytes`` (oldest-first eviction beyond that);
  checked-out buffers are never counted against the budget because they
  cannot be evicted.
* Buffers are handed to exactly one caller at a time, so workspace reuse
  can never alias a *live* tensor: two overlapping checkouts of the same
  key get two distinct buffers, and kernel outputs are always freshly
  allocated arrays, never views into the arena (property-tested in
  ``tests/unit/nn/test_workspace.py``).

The arena is thread-safe (replica threads of
:class:`~repro.raysim.sgd.DataParallelTrainer` convolve concurrently) and
its footprint is exported as the ``kernel_workspace_bytes`` telemetry
gauge by the trainer.
"""

from __future__ import annotations

import os
import threading

import numpy as np

__all__ = [
    "WorkspaceArena",
    "workspace",
    "set_workspace_limit",
    "workspace_bytes",
]

# Retained (free-pool) budget.  Override with DISTMIS_KERNEL_WORKSPACE_MB.
DEFAULT_LIMIT_BYTES = 512 * 1024 * 1024


class WorkspaceArena:
    """Pool of reusable scratch ndarrays keyed by ``(shape, dtype)``."""

    def __init__(self, max_bytes: int | None = None):
        if max_bytes is None:
            mb = os.environ.get("DISTMIS_KERNEL_WORKSPACE_MB", "")
            max_bytes = (int(float(mb) * 1024 * 1024) if mb
                         else DEFAULT_LIMIT_BYTES)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._order: list[tuple] = []  # FIFO of (key, nbytes) for eviction
        self._out: dict[int, tuple] = {}  # id(buffer) -> key while checked out
        self.free_bytes = 0
        self.in_use_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(shape, dtype) -> tuple:
        return (tuple(int(d) for d in shape), np.dtype(dtype).str)

    def acquire(self, shape, dtype=np.float64) -> np.ndarray:
        """Check out an uninitialised ``(shape, dtype)`` scratch buffer."""
        key = self._key(shape, dtype)
        with self._lock:
            stack = self._free.get(key)
            if stack:
                buf = stack.pop()
                self.free_bytes -= buf.nbytes
                self._order.remove((key, buf.nbytes))
                self.hits += 1
            else:
                buf = None
                self.misses += 1
        if buf is None:
            buf = np.empty(key[0], dtype=np.dtype(dtype))
        with self._lock:
            self._out[id(buf)] = key
            self.in_use_bytes += buf.nbytes
        return buf

    def release(self, buf: np.ndarray | None) -> None:
        """Return a buffer to the pool.  Foreign arrays (not handed out by
        :meth:`acquire`) and ``None`` are ignored, so callers can release
        unconditionally."""
        if buf is None:
            return
        with self._lock:
            key = self._out.get(id(buf))
            if key is None:
                return
            if buf.shape != key[0] or buf.dtype.str != key[1]:
                # ``id`` reuse: a checkout leaked (its ctx was dropped
                # without release), the buffer was collected, and this
                # *foreign* array landed on the same address.  Filing it
                # under the stale key would hand a wrong-shaped buffer
                # to a later acquire -- drop the entry, ignore the array.
                del self._out[id(buf)]
                return
            del self._out[id(buf)]
            self.in_use_bytes -= buf.nbytes
            if buf.nbytes > self.max_bytes:
                self.evictions += 1  # too big to ever retain
                return
            self._free.setdefault(key, []).append(buf)
            self._order.append((key, buf.nbytes))
            self.free_bytes += buf.nbytes
            while self.free_bytes > self.max_bytes and self._order:
                old_key, nbytes = self._order.pop(0)
                self._free[old_key].pop(0)
                self.free_bytes -= nbytes
                self.evictions += 1

    def clear(self) -> None:
        """Drop every retained buffer (checked-out ones stay live)."""
        with self._lock:
            self._free.clear()
            self._order.clear()
            self.free_bytes = 0

    @property
    def total_bytes(self) -> int:
        return self.free_bytes + self.in_use_bytes

    def stats(self) -> dict:
        with self._lock:
            return {
                "free_bytes": self.free_bytes,
                "in_use_bytes": self.in_use_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


_WORKSPACE = WorkspaceArena()


def workspace() -> WorkspaceArena:
    """The process-wide arena shared by every kernel invocation."""
    return _WORKSPACE


def set_workspace_limit(max_bytes: int) -> int:
    """Rebound the retained-bytes budget; returns the previous limit."""
    ws = workspace()
    previous, ws.max_bytes = ws.max_bytes, int(max_bytes)
    with ws._lock:
        while ws.free_bytes > ws.max_bytes and ws._order:
            key, nbytes = ws._order.pop(0)
            ws._free[key].pop(0)
            ws.free_bytes -= nbytes
            ws.evictions += 1
    return previous


def workspace_bytes() -> int:
    """Current arena footprint (retained + checked out), for the
    ``kernel_workspace_bytes`` gauge."""
    return workspace().total_bytes
