"""The ``fused`` backend: depth-sliced batched GEMMs plus Conv+BN+ReLU fusion.

The ``gemm`` backend gathers each convolution into one giant patches
matrix ``(N, C*kd*kh*kw, Do*Ho*Wo)`` and runs a single batched GEMM.
For the skinny matrices of a small-filter 3D U-Net that GEMM is
bandwidth-bound: every padded input slice is copied ``kd`` times into
the patches matrix, and the whole matrix streams from DRAM once per
multiply.  This backend lowers the convolution differently:

* **depth-sliced im2col** (MEC-style) -- only the *2D* patch columns
  ``(C*kh*kw, Ho*Wo)`` are gathered, once per padded input depth slice,
  into a ``(N, S, C*kh*kw, Ho*Wo)`` buffer: a third of the gather
  traffic of the full 3D im2col for a 3^3 kernel.  The depth axis of
  the kernel is then applied as ``kd`` *batched* GEMMs -- for offset
  ``j`` the weight slab ``w[:, :, j]`` multiplies the slice range
  ``cols2[:, j::sd]`` -- accumulated into a batch-major scratch and
  transpose-copied into the output layout.  Each per-slice operand is
  contiguous (or has one unit stride), so every batch entry dispatches
  straight to BLAS; measured 2-3x faster than the single-GEMM lowering
  on the 32^3 U-Net layer shapes.  The gather itself is a raw
  ``as_strided`` window copy: ``sliding_window_view`` spends as long in
  shape/stride bookkeeping as in the copy at these call counts.
* **output-depth tiling** -- the slice buffer is tiled along output
  depth to a workspace-arena target (``DISTMIS_KERNEL_TILE_MB``,
  default 4 MiB per tile) so it stays cache-resident at large volumes.
  Training forwards *stash* the tile buffers in ``ctx``; the backward
  weight gradient contracts the same slice ranges against the matching
  ``dy`` rows (``cols2 @ dy^T`` per depth offset, partials summed in
  tile order) with no re-gather.  The input gradient at unit stride is
  the mirrored lowering over the padded ``dy`` -- 2D patches of ``dy``
  against depth slabs of the flipped kernel.
* **fused Conv3D+BatchNorm+ReLU** (``supports_fusion``) -- training
  forward accumulates the BN channel sums in the GEMM epilogue while
  each output tile is cache-hot, then applies ``relu(scale*y + shift)``
  in one elementwise pass; eval forward folds the running statistics
  into the weights (``w' = w*scale``, ``b' = b*scale + shift``) and
  applies ReLU per tile, one pass total.  The backward reconstructs the
  BN input gradient without ever materialising ``x_hat``: with
  ``dyr = dy * (y > 0)`` the conv-output gradient is the channel-affine
  ``A*dyr + B*y_conv + C`` (coefficients from the standard BN gradient
  with ``x_hat`` substituted by ``(y_conv - mean) * inv_std``), applied
  in place on the stashed conv output.  Per U-Net stage this skips the
  ``x_hat`` volume, the BN output volume and the ReLU mask the unfused
  layer chain materialises.
* **thread-pool tiles** -- independent tiles optionally run on a shared
  ``ThreadPoolExecutor`` (``DISTMIS_KERNEL_THREADS``, default 1): the
  arena hands each thread a distinct buffer, tiles write disjoint output
  slices, and reductions (``dw``, BN sums) combine per-tile partials in
  fixed tile order so results are bit-identical to the serial schedule.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .common import conv3d_output_shape
from .gemm import GemmBackend, _padded
from .registry import register_backend
from .workspace import workspace

__all__ = ["FusedBackend", "kernel_threads"]

_UNIT = (1, 1, 1)

#: Target bytes for one tile's slice buffer (per thread).
TILE_ENV = "DISTMIS_KERNEL_TILE_MB"
DEFAULT_TILE_MB = 4.0

#: Tile thread-pool width (1 = serial; BLAS stays pinned separately).
THREADS_ENV = "DISTMIS_KERNEL_THREADS"

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_size = 0


def kernel_threads() -> int:
    """Requested tile-parallelism width (``DISTMIS_KERNEL_THREADS``)."""
    raw = os.environ.get(THREADS_ENV, "").strip()
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def _tile_target_bytes() -> int:
    raw = os.environ.get(TILE_ENV, "").strip()
    try:
        mb = float(raw) if raw else DEFAULT_TILE_MB
    except ValueError:
        mb = DEFAULT_TILE_MB
    return max(1 << 16, int(mb * 1024 * 1024))


def _plan_tiles(n, K9, Do, Ho, Wo, itemsize):
    """Output-depth tile spans ``[(d0, d1), ...]``, or ``None`` when the
    whole slice buffer (``K9 = C*kh*kw`` rows per depth slice) already
    fits the tile target and tiling would only add gather-halo
    overhead."""
    per_d = n * K9 * Ho * Wo * itemsize
    target = _tile_target_bytes()
    if per_d * Do <= 2 * target:
        return None
    td = max(1, target // per_d)
    if td >= Do:
        return None
    return [(d0, min(d0 + int(td), Do)) for d0 in range(0, Do, int(td))]


def _gather_slab2d(xslab, kernel_hw, stride_hw, out):
    """2D im2col every depth slice of a padded slab: fill ``out``
    ``(N, S, C*kh*kw, Ho*Wo)`` from ``xslab`` ``(N, C, S, Hp, Wp)``.
    One window copy per call -- each input slice is touched once, not
    once per kernel depth offset."""
    n, c, S, Hp, Wp = xslab.shape
    kh, kw = kernel_hw
    sh, sw = stride_hw
    tn, tc, t2, t3, t4 = xslab.strides
    Ho = (Hp - kh) // sh + 1
    Wo = (Wp - kw) // sw + 1
    win = as_strided(
        xslab,
        (n, S, c, kh, kw, Ho, Wo),
        (tn, t2, tc, t3, t4, t3 * sh, t4 * sw),
    )
    np.copyto(out.reshape(n, S, c, kh, kw, Ho, Wo), win)


def _w_slices(w):
    """Per-depth-offset weight slabs ``(kd, co, C*kh*kw)``, contiguous
    so each batched GEMM gets a BLAS-clean left operand."""
    co, c, kd, kh, kw = w.shape
    return np.ascontiguousarray(
        w.transpose(2, 0, 1, 3, 4)).reshape(kd, co, c * kh * kw)


def _release_stash(ws, ctx):
    """Return any stale stashed slice buffers in ``ctx`` to the arena."""
    if not ctx:
        return
    for _, _, cols in ctx.pop("cols_tiles", ()):
        ws.release(cols)
    ws.release(ctx.pop("cols", None))


def _map_tiles(fn, tiles):
    """Run ``fn`` over tile spans -- serially, or on the shared pool when
    ``DISTMIS_KERNEL_THREADS`` asks for it.  Results keep tile order."""
    width = kernel_threads()
    if width <= 1 or len(tiles) <= 1:
        return [fn(t) for t in tiles]
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size != width:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="distmis-tile")
            _pool_size = width
        pool = _pool
    return list(pool.map(fn, tiles))


class FusedBackend(GemmBackend):
    """Depth-sliced batched GEMMs with a fused Conv3D+BatchNorm+ReLU pair."""

    name = "fused"
    supports_fusion = True

    # -- depth-sliced conv3d ------------------------------------------------
    def conv3d_forward(self, x, w, b, stride, pad, ctx=None):
        kernel = w.shape[2:]
        if kernel == _UNIT and stride == _UNIT and pad == (0, 0, 0):
            return super().conv3d_forward(x, w, b, stride, pad, ctx)
        n, c = x.shape[:2]
        co = w.shape[0]
        Do, Ho, Wo = conv3d_output_shape(x.shape[2:], kernel, stride, pad)
        K9 = c * kernel[1] * kernel[2]
        tiles = (_plan_tiles(n, K9, Do, Ho, Wo, x.dtype.itemsize)
                 or [(0, Do)])
        ws = workspace()
        _release_stash(ws, ctx)
        xp = _padded(ws, x, pad)
        y = np.empty((n, co, Do, Ho, Wo), dtype=x.dtype)
        stash = [] if ctx is not None else None
        self._run_tiles(ws, xp, w, b, y, stride, tiles, stash=stash)
        if xp is not x:
            ws.release(xp)
        if stash:
            ctx["cols_tiles"] = stash
        return y

    def conv3d_backward(self, dy, x, w, stride, pad, with_bias, ctx=None,
                        need_dx=True):
        kernel = w.shape[2:]
        if kernel == _UNIT and stride == _UNIT and pad == (0, 0, 0):
            return super().conv3d_backward(dy, x, w, stride, pad,
                                           with_bias, ctx)
        n, c = x.shape[:2]
        co = w.shape[0]
        kd, kh, kw = kernel
        sd = stride[0]
        Do, Ho, Wo = dy.shape[2:]
        HoWo = Ho * Wo
        K9 = c * kh * kw
        ws = workspace()
        tiles = (_plan_tiles(n, K9, Do, Ho, Wo, x.dtype.itemsize)
                 or [(0, Do)])

        # The forward's stashed slice buffers (validated against this
        # call's geometry -- a stale ctx from a different config is
        # simply returned to the arena).
        stash = ctx.pop("cols_tiles", None) if ctx else None
        if stash is not None and not (
                stash
                and stash[0][0] == 0 and stash[-1][1] == Do
                and all(cols.shape == (n, (d1 - d0 - 1) * sd + kd, K9, HoWo)
                        and cols.dtype == x.dtype
                        for d0, d1, cols in stash)):
            for _, _, cols in stash:
                ws.release(cols)
            stash = None
        if ctx:
            ws.release(ctx.pop("cols", None))  # stale untiled stash
        dyc = np.ascontiguousarray(dy)

        # dw: for depth offset j, contract the slice range
        # ``cols2[:, j::sd]`` against the matching dy rows -- per-slice
        # GEMMs in the flipped orientation (K9 patch rows as M), with
        # per-tile partials summed in tile order (determinism).
        def dw_from(cols2, d0, d1):
            td = d1 - d0
            dyb = (dyc[:, :, d0:d1].reshape(n, co, td, HoWo)
                   .transpose(0, 2, 3, 1))  # (n, td, HoWo, co) view
            part = np.empty((kd, K9, co), dtype=x.dtype)
            for j in range(kd):
                slab = cols2[:, j : j + (td - 1) * sd + 1 : sd]
                part[j] = (np.matmul(slab, dyb)
                           .reshape(n * td, K9, co).sum(axis=0))
            return part

        if stash is not None:
            def dw_stashed(entry):
                d0, d1, cols2 = entry
                part = dw_from(cols2, d0, d1)
                ws.release(cols2)
                return part

            parts = _map_tiles(dw_stashed, stash)
        else:
            # No stash (eval-mode forward, or none ran): re-gather each
            # tile's slice buffer before contracting.
            xp = _padded(ws, x, pad)

            def dw_tile(span):
                d0, d1 = span
                S = (d1 - d0 - 1) * sd + kd
                cols2 = ws.acquire((n, S, K9, HoWo), x.dtype)
                _gather_slab2d(xp[:, :, d0 * sd : d0 * sd + S], (kh, kw),
                               stride[1:], cols2)
                part = dw_from(cols2, d0, d1)
                ws.release(cols2)
                return part

            parts = _map_tiles(dw_tile, tiles)
            if xp is not x:
                ws.release(xp)
        total = parts[0]
        for part in parts[1:]:
            total += part
        dw = np.ascontiguousarray(
            total.reshape(kd, c, kh, kw, co).transpose(4, 1, 0, 2, 3))
        db = dy.sum(axis=(0, 2, 3, 4)) if with_bias else None

        if not need_dx:
            dx = None  # first-layer input carries no gradient
        elif stride == _UNIT and all(kk - 1 - pp >= 0 for kk, pp in
                                     zip(kernel, pad)):
            dx = self._dx_correlation_tiled(ws, dyc, w, pad, x.shape)
        else:
            dx = self._dx_scatter(ws, dyc.reshape(n, co, Do * HoWo), w,
                                  stride, pad, x.shape)
        return dx, dw, db

    @staticmethod
    def _dx_correlation_tiled(ws, dy, w, pad, x_shape):
        """Unit-stride input gradient: the mirrored depth-sliced
        lowering -- 2D patches of the padded ``dy`` against per-offset
        slabs of the flipped kernel, tiled over the *input* depth."""
        n, c, D, H, W = x_shape
        co = w.shape[0]
        kd, kh, kw = w.shape[2:]
        bpad = tuple(kk - 1 - pp for kk, pp in zip((kd, kh, kw), pad))
        K9b = co * kh * kw
        HW = H * W
        tiles = (_plan_tiles(n, K9b, D, H, W, dy.dtype.itemsize)
                 or [(0, D)])
        dyp = _padded(ws, dy, bpad)
        wkb = np.ascontiguousarray(
            w[:, :, ::-1, ::-1, ::-1].transpose(2, 1, 0, 3, 4)
        ).reshape(kd, c, K9b)
        dx = np.empty(x_shape, dtype=dy.dtype)

        def dx_tile(span):
            d0, d1 = span
            td = d1 - d0
            S = td - 1 + kd
            cols2 = ws.acquire((n, S, K9b, HW), dy.dtype)
            _gather_slab2d(dyp[:, :, d0 : d0 + S], (kh, kw), (1, 1), cols2)
            xbat = ws.acquire((n, td, c, HW), dy.dtype)
            tmp = ws.acquire((n, td, c, HW), dy.dtype) if kd > 1 else None
            np.matmul(wkb[0], cols2[:, 0:td], out=xbat)
            for j in range(1, kd):
                np.matmul(wkb[j], cols2[:, j : j + td], out=tmp)
                np.add(xbat, tmp, out=xbat)
            if tmp is not None:
                ws.release(tmp)
            ws.release(cols2)
            np.copyto(
                dx[:, :, d0:d1],
                xbat.reshape(n, td, c, H, W).transpose(0, 2, 1, 3, 4))
            ws.release(xbat)

        _map_tiles(dx_tile, tiles)
        if dyp is not dy:
            ws.release(dyp)
        return dx

    def _run_tiles(self, ws, xp, w5, b, y, stride, tiles,
                   relu=False, stats=False, stash=None):
        """Run every tile's depth-sliced GEMMs into its slice of ``y``;
        optionally apply bias/ReLU and/or return per-tile BN channel
        sums (computed on the batch-major scratch while it is
        cache-hot, before the transpose-copy into ``y``).  When
        ``stash`` is a list the slice buffers are kept (appended in
        tile order as ``(d0, d1, cols2)`` for the backward's dw GEMMs)
        instead of recycled."""
        n = xp.shape[0]
        co, _, kd, kh, kw = w5.shape
        Do, Ho, Wo = y.shape[2:]
        HoWo = Ho * Wo
        sd = stride[0]
        wk = _w_slices(w5)
        K9 = wk.shape[2]
        bias = None if b is None else b.reshape(1, 1, co, 1)

        def run(span):
            d0, d1 = span
            td = d1 - d0
            S = (td - 1) * sd + kd
            cols2 = ws.acquire((n, S, K9, HoWo), y.dtype)
            _gather_slab2d(xp[:, :, d0 * sd : d0 * sd + S], (kh, kw),
                           stride[1:], cols2)
            ybat = ws.acquire((n, td, co, HoWo), y.dtype)
            tmp = (ws.acquire((n, td, co, HoWo), y.dtype)
                   if kd > 1 else None)
            np.matmul(wk[0], cols2[:, 0 : (td - 1) * sd + 1 : sd],
                      out=ybat)
            for j in range(1, kd):
                np.matmul(wk[j], cols2[:, j : j + (td - 1) * sd + 1 : sd],
                          out=tmp)
                np.add(ybat, tmp, out=ybat)
            if tmp is not None:
                ws.release(tmp)
            if stash is None:
                ws.release(cols2)
            if bias is not None:
                ybat += bias
            if relu:
                np.maximum(ybat, 0.0, out=ybat)
            sums = None
            if stats:  # channel sums while the scratch is cache-hot
                sums = (ybat.sum(axis=(0, 1, 3)),
                        np.einsum("ndcp,ndcp->c", ybat, ybat))
            np.copyto(
                y[:, :, d0:d1],
                ybat.reshape(n, td, co, Ho, Wo).transpose(0, 2, 1, 3, 4))
            ws.release(ybat)
            return sums, (d0, d1, cols2)

        results = _map_tiles(run, tiles)
        if stash is not None:
            stash.extend(entry for _, entry in results)
        return [sums for sums, _ in results]

    # -- fused Conv3D + BatchNorm + ReLU ------------------------------------
    def conv3d_bn_relu_forward(self, x, w, b, gamma, beta, running_mean,
                               running_var, eps, stride, pad, training,
                               ctx=None):
        ws = workspace()
        n, c = x.shape[:2]
        co = w.shape[0]
        kernel = w.shape[2:]
        Do, Ho, Wo = conv3d_output_shape(x.shape[2:], kernel, stride, pad)
        K9 = c * kernel[1] * kernel[2]
        tiles = (_plan_tiles(n, K9, Do, Ho, Wo, x.dtype.itemsize)
                 or [(0, Do)])
        xp = _padded(ws, x, pad)

        if not training:
            # Running stats are constants: fold BN into the weights and
            # finish each tile with an in-place ReLU -- one pass total.
            _release_stash(ws, ctx)
            inv_std = 1.0 / np.sqrt(running_var + eps)
            scale = gamma * inv_std
            shift = beta - running_mean * scale
            wf = w * scale.reshape(-1, 1, 1, 1, 1)
            bf = shift if b is None else b * scale + shift
            y = np.empty((n, co, Do, Ho, Wo), dtype=x.dtype)
            self._run_tiles(ws, xp, wf, bf, y, stride, tiles, relu=True)
            if xp is not x:
                ws.release(xp)
            return y, running_mean, running_var

        # Training: conv into the stashed y_conv buffer, folding the BN
        # channel sums into the tile epilogue, then one affine+ReLU pass.
        _release_stash(ws, ctx)
        y_conv = ws.acquire((n, co, Do, Ho, Wo), x.dtype)
        stash = [] if ctx is not None else None
        sums = self._run_tiles(ws, xp, w, b, y_conv, stride, tiles,
                               stats=True, stash=stash)
        if xp is not x:
            ws.release(xp)
        total = sums[0][0]
        sq_total = sums[0][1]
        for s, ss in sums[1:]:
            total = total + s
            sq_total = sq_total + ss
        count = float(n * Do * Ho * Wo)
        mean = total / count
        var = np.maximum(sq_total / count - mean**2, 0.0)  # numerical guard
        inv_std = 1.0 / np.sqrt(var + eps)
        scale = gamma * inv_std
        shift = beta - mean * scale

        y = np.empty_like(y_conv)
        s_r = scale.reshape(1, -1, 1, 1, 1)
        np.multiply(y_conv, s_r, out=y)
        y += shift.reshape(1, -1, 1, 1, 1)
        np.maximum(y, 0.0, out=y)

        if ctx is not None:
            ctx.update(y_conv=y_conv, mean=mean, inv_std=inv_std,
                       count=count, scale=scale, shift=shift,
                       cols_tiles=stash)
        else:
            ws.release(y_conv)
        return y, mean, var

    def conv3d_bn_relu_backward(self, dy, x, w, gamma, stride, pad,
                                with_bias, ctx=None, need_dx=True):
        if not ctx or "y_conv" not in ctx:
            raise RuntimeError(
                "fused conv/BN/ReLU backward needs the ctx its training "
                "forward populated")
        ws = workspace()
        y_conv = ctx.pop("y_conv")
        mean = ctx.pop("mean")
        inv_std = ctx.pop("inv_std")
        count = ctx.pop("count")
        scale = ctx.pop("scale")
        shift = ctx.pop("shift")

        def rc(v):  # per-channel broadcast
            return v.reshape(1, -1, 1, 1, 1)

        # ReLU gate: the pre-activation is > 0 exactly where the output
        # is (ties at 0 get zero gradient either way), so the stashed
        # conv output reconstructs the mask without a stored one.
        dyr = ws.acquire(dy.shape, dy.dtype)
        np.multiply(y_conv, rc(scale), out=dyr)
        dyr += rc(shift)
        np.multiply(dy, dyr > 0, out=dyr)

        axes = (0, 2, 3, 4)
        s0 = dyr.sum(axis=axes)                       # sum of gated dy
        t1 = np.einsum("ncdhw,ncdhw->c", dyr, y_conv)
        dbeta = s0
        dgamma = inv_std * (t1 - mean * s0)

        # BN input gradient without x_hat: substituting
        # x_hat = (y_conv - mean) * inv_std into
        # dx = inv_std/m * (m*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
        # gives the channel-affine dconv = A*dyr + B*y_conv + C.
        m = count
        s1 = gamma * s0           # sum(dxhat)
        s2 = gamma * dgamma       # sum(dxhat * x_hat)
        A = gamma * inv_std
        B = -(inv_std**2) * s2 / m
        C = -inv_std * s1 / m - mean * B

        np.multiply(dyr, rc(A), out=dyr)
        np.multiply(y_conv, rc(B), out=y_conv)
        y_conv += dyr
        y_conv += rc(C)
        ws.release(dyr)

        # ctx still carries the forward's stashed slice buffers, which
        # the conv backward consumes for its dw GEMMs.
        dx, dw, db = self.conv3d_backward(y_conv, x, w, stride, pad,
                                          with_bias, ctx=ctx,
                                          need_dx=need_dx)
        ws.release(y_conv)
        return dx, dw, db, dgamma, dbeta

    # ctx management: GemmBackend.release_ctx releases every arena array
    # in the ctx ("cols", "y_conv", or a "cols_tiles" stash alike).


register_backend(FusedBackend())
