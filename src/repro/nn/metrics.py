"""Segmentation quality metrics.

The paper reports the Dice similarity coefficient (DSC, a.k.a.
Sorensen-Dice / F1) on validation and test sets, obtaining ~0.89 for the
full-volume 3D U-Net regardless of the distribution strategy
(Section IV-C).  Metrics here operate on *hard* masks obtained by
thresholding the sigmoid output.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dice_coefficient",
    "soft_dice_coefficient",
    "iou",
    "precision",
    "recall",
    "voxel_accuracy",
    "confusion_counts",
    "batch_dice",
    "multiclass_dice",
    "mean_multiclass_dice",
]


def _binarize(a: np.ndarray, threshold: float) -> np.ndarray:
    return (np.asarray(a) >= threshold).astype(np.float64)


def confusion_counts(
    pred: np.ndarray, target: np.ndarray, threshold: float = 0.5
) -> tuple[float, float, float, float]:
    """Return (TP, FP, FN, TN) voxel counts for hard masks."""
    p = _binarize(pred, threshold)
    t = _binarize(target, 0.5)
    tp = float((p * t).sum())
    fp = float((p * (1 - t)).sum())
    fn = float(((1 - p) * t).sum())
    tn = float(((1 - p) * (1 - t)).sum())
    return tp, fp, fn, tn


def dice_coefficient(
    pred: np.ndarray, target: np.ndarray, threshold: float = 0.5,
    empty_value: float = 1.0,
) -> float:
    """Hard Dice = 2|A ∩ B| / (|A| + |B|) in [0, 1].

    ``empty_value`` is returned when both masks are empty (a perfect
    match of nothing), the standard convention for BraTS-style scoring.
    """
    tp, fp, fn, _ = confusion_counts(pred, target, threshold)
    denom = 2 * tp + fp + fn
    if denom == 0:
        return float(empty_value)
    return 2 * tp / denom


def soft_dice_coefficient(
    pred: np.ndarray, target: np.ndarray, eps: float = 0.1
) -> float:
    """Differentiable Dice on probabilities (the training-time analogue)."""
    p = np.asarray(pred, dtype=np.float64)
    t = np.asarray(target, dtype=np.float64)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    num = 2.0 * float((p * t).sum()) + eps
    den = float(p.sum()) + float(t.sum()) + eps
    return num / den


def iou(pred: np.ndarray, target: np.ndarray, threshold: float = 0.5) -> float:
    """Jaccard index |A ∩ B| / |A ∪ B|."""
    tp, fp, fn, _ = confusion_counts(pred, target, threshold)
    denom = tp + fp + fn
    if denom == 0:
        return 1.0
    return tp / denom


def precision(pred: np.ndarray, target: np.ndarray, threshold: float = 0.5) -> float:
    tp, fp, _, _ = confusion_counts(pred, target, threshold)
    return tp / (tp + fp) if (tp + fp) > 0 else 1.0


def recall(pred: np.ndarray, target: np.ndarray, threshold: float = 0.5) -> float:
    tp, _, fn, _ = confusion_counts(pred, target, threshold)
    return tp / (tp + fn) if (tp + fn) > 0 else 1.0


def voxel_accuracy(
    pred: np.ndarray, target: np.ndarray, threshold: float = 0.5
) -> float:
    tp, fp, fn, tn = confusion_counts(pred, target, threshold)
    total = tp + fp + fn + tn
    return (tp + tn) / total if total > 0 else 1.0


def multiclass_dice(
    pred: np.ndarray,
    target: np.ndarray,
    num_classes: int,
    include_background: bool = False,
) -> dict[int, float]:
    """Per-class hard Dice for the original 4-class MSD problem.

    ``pred`` is either a ``(C, ...)`` probability map (argmax over the
    class axis) or an integer label map matching ``target``'s shape;
    ``target`` is an integer label map.  Returns ``{class: dice}``;
    class 0 (background) is skipped unless requested, matching BraTS
    scoring conventions.
    """
    target = np.asarray(target)
    pred = np.asarray(pred)
    if pred.shape != target.shape:
        if pred.ndim != target.ndim + 1 or pred.shape[0] != num_classes:
            raise ValueError(
                f"pred shape {pred.shape} incompatible with target "
                f"{target.shape} and {num_classes} classes"
            )
        pred = pred.argmax(axis=0)
    out: dict[int, float] = {}
    start = 0 if include_background else 1
    for c in range(start, num_classes):
        out[c] = dice_coefficient(pred == c, target == c)
    return out


def mean_multiclass_dice(
    pred: np.ndarray, target: np.ndarray, num_classes: int
) -> float:
    """Macro-averaged foreground Dice (the BraTS summary number)."""
    per_class = multiclass_dice(pred, target, num_classes)
    return float(np.mean(list(per_class.values())))


def batch_dice(
    pred: np.ndarray, target: np.ndarray, threshold: float = 0.5
) -> np.ndarray:
    """Per-sample hard Dice over a (N, ...) batch; returns shape (N,)."""
    pred = np.asarray(pred)
    target = np.asarray(target)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return np.array(
        [
            dice_coefficient(pred[i], target[i], threshold)
            for i in range(pred.shape[0])
        ]
    )
