"""Low-level NumPy kernels for 3D neural-network layers.

All tensors are *channels-first*, matching the paper's data format
(Section III-A): activations are ``(N, C, D, H, W)`` and convolution
weights are ``(C_out, C_in, kD, kH, kW)``.

The convolution entry points here are thin dispatchers: they validate
shapes, normalise ``stride``/``pad`` into 3-tuples, and hand off to the
active :class:`~repro.nn.kernels.registry.KernelBackend` (``gemm`` by
default, the original einsum kernels as ``reference``; see
:mod:`repro.nn.kernels`).  Each dispatched call is stamped with two
``perf_counter`` reads feeding the per-backend kernel-seconds ledger the
profiler splits its ``compute`` bucket by.

The ``ctx`` parameter is an optional mutable dict owned by the calling
layer: a backend may park forward-pass scratch there (e.g. the im2col
patches matrix) for the matching backward call.  Layers that forward
without backpropagating must hand leftover ctx to
:func:`release_conv_ctx`.

Pooling stays here: it is memory-bound reshuffling with no GEMM to
lower to, so there is nothing for a backend to specialise.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from .kernels.common import (  # noqa: F401  (re-exported public helpers)
    conv3d_output_shape,
    conv_transpose3d_output_shape,
    pad_volume,
    triple as _triple,
)
from .kernels.registry import get_backend, record_kernel_seconds

__all__ = [
    "pad_volume",
    "conv3d_forward",
    "conv3d_backward",
    "conv3d_bn_relu_forward",
    "conv3d_bn_relu_backward",
    "fused_conv_bn_relu_supported",
    "conv_transpose3d_forward",
    "conv_transpose3d_backward",
    "release_conv_ctx",
    "maxpool3d_forward",
    "maxpool3d_backward",
    "avgpool3d_forward",
    "avgpool3d_backward",
    "conv3d_output_shape",
    "conv_transpose3d_output_shape",
]


def conv3d_forward(
    x: np.ndarray,
    w: np.ndarray,
    b: np.ndarray | None = None,
    stride=1,
    pad=0,
    ctx: dict | None = None,
) -> np.ndarray:
    """3D cross-correlation.

    Parameters
    ----------
    x : (N, C_in, D, H, W)
    w : (C_out, C_in, kD, kH, kW)
    b : (C_out,) or None
    stride, pad : int or 3-tuple
    ctx : optional dict the backend may stash forward scratch in for the
        matching :func:`conv3d_backward` call (training-mode layers pass
        a fresh dict per step; see :func:`release_conv_ctx`).

    Returns
    -------
    (N, C_out, D_out, H_out, W_out)
    """
    s, p = _triple(stride), _triple(pad)
    if x.ndim != 5 or w.ndim != 5:
        raise ValueError("conv3d expects 5-D activations and weights")
    if x.shape[1] != w.shape[1]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weight expects {w.shape[1]}"
        )
    backend = get_backend()
    t0 = perf_counter()
    y = backend.conv3d_forward(x, w, b, s, p, ctx)
    record_kernel_seconds(backend.name, "conv3d_forward", perf_counter() - t0)
    return y


def conv3d_backward(
    dy: np.ndarray,
    x: np.ndarray,
    w: np.ndarray,
    stride=1,
    pad=0,
    with_bias: bool = True,
    ctx: dict | None = None,
):
    """Gradients of :func:`conv3d_forward`.

    Returns ``(dx, dw, db)`` where ``db`` is None when ``with_bias`` is
    False.  Passing the same ``ctx`` dict the forward call populated
    lets the backend reuse its forward scratch (the GEMM backend skips
    one full im2col gather per layer per step).
    """
    s, p = _triple(stride), _triple(pad)
    backend = get_backend()
    t0 = perf_counter()
    out = backend.conv3d_backward(dy, x, w, s, p, with_bias, ctx)
    record_kernel_seconds(backend.name, "conv3d_backward", perf_counter() - t0)
    return out


def fused_conv_bn_relu_supported() -> bool:
    """True when the active backend implements the fused
    Conv3D+BatchNorm+ReLU pair (layers fall back to the sequential
    conv/norm/act chain otherwise)."""
    return bool(getattr(get_backend(), "supports_fusion", False))


def conv3d_bn_relu_forward(
    x: np.ndarray,
    w: np.ndarray,
    b: np.ndarray | None,
    gamma: np.ndarray,
    beta: np.ndarray,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    eps: float = 1e-5,
    stride=1,
    pad=0,
    training: bool = True,
    ctx: dict | None = None,
):
    """Fused ``relu(batchnorm(conv3d(x)))`` on a fusion-capable backend.

    Returns ``(y, mean, var)``: the batch statistics in training mode
    (the caller owns the running-statistics update), the running
    statistics unchanged in eval mode.  Raises ``NotImplementedError``
    when the active backend lacks fusion -- check
    :func:`fused_conv_bn_relu_supported` first.
    """
    s, p = _triple(stride), _triple(pad)
    if x.ndim != 5 or w.ndim != 5:
        raise ValueError("conv3d_bn_relu expects 5-D activations and weights")
    if x.shape[1] != w.shape[1]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weight expects {w.shape[1]}"
        )
    co = w.shape[0]
    for name, v in (("gamma", gamma), ("beta", beta),
                    ("running_mean", running_mean),
                    ("running_var", running_var)):
        if v.shape != (co,):
            raise ValueError(
                f"{name} must have shape ({co},), got {v.shape}")
    backend = get_backend()
    t0 = perf_counter()
    out = backend.conv3d_bn_relu_forward(
        x, w, b, gamma, beta, running_mean, running_var, eps, s, p,
        training, ctx)
    record_kernel_seconds(backend.name, "conv3d_bn_relu_forward",
                          perf_counter() - t0)
    return out


def conv3d_bn_relu_backward(
    dy: np.ndarray,
    x: np.ndarray,
    w: np.ndarray,
    gamma: np.ndarray,
    stride=1,
    pad=0,
    with_bias: bool = True,
    ctx: dict | None = None,
    need_dx: bool = True,
):
    """Gradients of :func:`conv3d_bn_relu_forward` (training mode).

    Returns ``(dx, dw, db, dgamma, dbeta)``; ``ctx`` must be the dict
    the matching forward call populated (it is consumed here).  Pass
    ``need_dx=False`` for a network's first layer: the input carries no
    gradient and skipping ``dx`` saves the largest gather of the
    backward pass (``dx`` comes back as ``None``).
    """
    s, p = _triple(stride), _triple(pad)
    backend = get_backend()
    t0 = perf_counter()
    out = backend.conv3d_bn_relu_backward(dy, x, w, gamma, s, p, with_bias,
                                          ctx, need_dx=need_dx)
    record_kernel_seconds(backend.name, "conv3d_bn_relu_backward",
                          perf_counter() - t0)
    return out


def conv_transpose3d_forward(
    x: np.ndarray,
    w: np.ndarray,
    b: np.ndarray | None = None,
    stride=1,
    ctx: dict | None = None,
) -> np.ndarray:
    """3D transposed convolution (a.k.a. up-convolution), no padding.

    Parameters
    ----------
    x : (N, C_in, D, H, W)
    w : (C_in, C_out, kD, kH, kW) -- note the transposed channel layout,
        matching ``tf.keras.layers.Conv3DTranspose`` semantics.
    """
    s = _triple(stride)
    if x.shape[1] != w.shape[0]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weight expects {w.shape[0]}"
        )
    backend = get_backend()
    t0 = perf_counter()
    y = backend.conv_transpose3d_forward(x, w, b, s, ctx)
    record_kernel_seconds(backend.name, "conv_transpose3d_forward",
                          perf_counter() - t0)
    return y


def conv_transpose3d_backward(
    dy: np.ndarray,
    x: np.ndarray,
    w: np.ndarray,
    stride=1,
    with_bias: bool = True,
    ctx: dict | None = None,
):
    """Gradients of :func:`conv_transpose3d_forward`.

    Returns ``(dx, dw, db)``.
    """
    s = _triple(stride)
    backend = get_backend()
    t0 = perf_counter()
    out = backend.conv_transpose3d_backward(dy, x, w, s, with_bias, ctx)
    record_kernel_seconds(backend.name, "conv_transpose3d_backward",
                          perf_counter() - t0)
    return out


def release_conv_ctx(ctx: dict | None) -> None:
    """Reclaim backend scratch parked in ``ctx`` by a forward pass whose
    backward never ran (evaluation forwards in training mode, truncated
    steps).  Safe on ``None``, empty, and already-consumed dicts."""
    if ctx:
        get_backend().release_ctx(ctx)


def _pool_windows(x: np.ndarray, k: tuple[int, int, int]):
    """Reshape ``(N,C,D,H,W)`` into non-overlapping pooling windows.

    Returns a ``(N, C, D', H', W', kd*kh*kw)`` array.  Requires each
    spatial dim to be divisible by the corresponding kernel dim (the
    paper crops its volumes to guarantee exactly this, Section IV-A).
    """
    n, c, D, H, W = x.shape
    kd, kh, kw = k
    if D % kd or H % kh or W % kw:
        raise ValueError(
            f"pooling requires divisible spatial dims, got {(D, H, W)} "
            f"with kernel {k}; crop the input first (see repro.data.preprocess)"
        )
    v = x.reshape(n, c, D // kd, kd, H // kh, kh, W // kw, kw)
    v = v.transpose(0, 1, 2, 4, 6, 3, 5, 7)
    return v.reshape(n, c, D // kd, H // kh, W // kw, kd * kh * kw)


def maxpool3d_forward(x: np.ndarray, kernel=2):
    """Non-overlapping 3D max pooling (stride == kernel).

    Returns ``(y, argmax)`` where ``argmax`` indexes the flattened window
    and is consumed by :func:`maxpool3d_backward`.
    """
    k = _triple(kernel)
    win = _pool_windows(x, k)
    arg = win.argmax(axis=-1)
    y = np.take_along_axis(win, arg[..., None], axis=-1)[..., 0]
    return y, arg


def maxpool3d_backward(dy: np.ndarray, arg: np.ndarray, x_shape, kernel=2):
    """Scatter pooled gradients back to the argmax positions."""
    k = _triple(kernel)
    kd, kh, kw = k
    n, c, D, H, W = x_shape
    win = np.zeros((*dy.shape, kd * kh * kw), dtype=dy.dtype)
    np.put_along_axis(win, arg[..., None], dy[..., None], axis=-1)
    v = win.reshape(n, c, D // kd, H // kh, W // kw, kd, kh, kw)
    v = v.transpose(0, 1, 2, 5, 3, 6, 4, 7)
    return v.reshape(n, c, D, H, W)


def avgpool3d_forward(x: np.ndarray, kernel=2) -> np.ndarray:
    """Non-overlapping 3D average pooling (stride == kernel)."""
    k = _triple(kernel)
    return _pool_windows(x, k).mean(axis=-1)


def avgpool3d_backward(dy: np.ndarray, x_shape, kernel=2) -> np.ndarray:
    """Spread pooled gradients uniformly over each window."""
    k = _triple(kernel)
    kd, kh, kw = k
    n, c, D, H, W = x_shape
    scale = 1.0 / (kd * kh * kw)
    win = np.broadcast_to(
        (dy * scale)[..., None], (*dy.shape, kd * kh * kw)
    ).copy()
    v = win.reshape(n, c, D // kd, H // kh, W // kw, kd, kh, kw)
    v = v.transpose(0, 1, 2, 5, 3, 6, 4, 7)
    return v.reshape(n, c, D, H, W)
