"""Low-level vectorised NumPy kernels for 3D neural-network layers.

All tensors are *channels-first*, matching the paper's data format
(Section III-A): activations are ``(N, C, D, H, W)`` and convolution
weights are ``(C_out, C_in, kD, kH, kW)``.

The convolution kernels are written as a small number of large vectorised
operations (``sliding_window_view`` + ``einsum`` on the forward path, one
scatter-add per kernel offset on the backward path) rather than per-voxel
Python loops: a 3x3x3 kernel costs 27 fused updates regardless of volume
size, which keeps everything in BLAS/ufunc territory.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "pad_volume",
    "conv3d_forward",
    "conv3d_backward",
    "conv_transpose3d_forward",
    "conv_transpose3d_backward",
    "maxpool3d_forward",
    "maxpool3d_backward",
    "avgpool3d_forward",
    "avgpool3d_backward",
    "conv3d_output_shape",
    "conv_transpose3d_output_shape",
]


def _triple(v) -> tuple[int, int, int]:
    """Normalise an int-or-3-sequence into a 3-tuple."""
    if isinstance(v, (int, np.integer)):
        return (int(v), int(v), int(v))
    t = tuple(int(x) for x in v)
    if len(t) != 3:
        raise ValueError(f"expected an int or a length-3 sequence, got {v!r}")
    return t


def pad_volume(x: np.ndarray, pad: tuple[int, int, int]) -> np.ndarray:
    """Zero-pad the three spatial axes of a ``(N, C, D, H, W)`` tensor."""
    pd, ph, pw = pad
    if pd == ph == pw == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pd, pd), (ph, ph), (pw, pw)))


def conv3d_output_shape(
    spatial: tuple[int, int, int],
    kernel,
    stride=1,
    pad=0,
) -> tuple[int, int, int]:
    """Spatial output shape of a 3D convolution."""
    k, s, p = _triple(kernel), _triple(stride), _triple(pad)
    out = []
    for dim, kk, ss, pp in zip(spatial, k, s, p):
        o = (dim + 2 * pp - kk) // ss + 1
        if o <= 0:
            raise ValueError(
                f"conv3d output dim <= 0 (input {dim}, kernel {kk}, "
                f"stride {ss}, pad {pp})"
            )
        out.append(o)
    return tuple(out)


def conv_transpose3d_output_shape(
    spatial: tuple[int, int, int],
    kernel,
    stride=1,
) -> tuple[int, int, int]:
    """Spatial output shape of a 3D transposed convolution (no padding)."""
    k, s = _triple(kernel), _triple(stride)
    return tuple((dim - 1) * ss + kk for dim, kk, ss in zip(spatial, k, s))


def conv3d_forward(
    x: np.ndarray,
    w: np.ndarray,
    b: np.ndarray | None = None,
    stride=1,
    pad=0,
) -> np.ndarray:
    """3D cross-correlation.

    Parameters
    ----------
    x : (N, C_in, D, H, W)
    w : (C_out, C_in, kD, kH, kW)
    b : (C_out,) or None
    stride, pad : int or 3-tuple

    Returns
    -------
    (N, C_out, D_out, H_out, W_out)
    """
    s, p = _triple(stride), _triple(pad)
    if x.ndim != 5 or w.ndim != 5:
        raise ValueError("conv3d expects 5-D activations and weights")
    if x.shape[1] != w.shape[1]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weight expects {w.shape[1]}"
        )
    xp = pad_volume(x, p)
    kd, kh, kw = w.shape[2:]
    # (N, C, D', H', W', kd, kh, kw) view -- no copy.
    cols = sliding_window_view(xp, (kd, kh, kw), axis=(2, 3, 4))
    cols = cols[:, :, :: s[0], :: s[1], :: s[2]]
    y = np.einsum("ncdhwxyz,ocxyz->nodhw", cols, w, optimize=True)
    if b is not None:
        y += b.reshape(1, -1, 1, 1, 1)
    return np.ascontiguousarray(y)


def conv3d_backward(
    dy: np.ndarray,
    x: np.ndarray,
    w: np.ndarray,
    stride=1,
    pad=0,
    with_bias: bool = True,
):
    """Gradients of :func:`conv3d_forward`.

    Returns ``(dx, dw, db)`` where ``db`` is None when ``with_bias`` is
    False.  The input gradient is accumulated with one strided
    scatter-add per kernel offset, which is fully vectorised over the
    batch and spatial axes.
    """
    s, p = _triple(stride), _triple(pad)
    kd, kh, kw = w.shape[2:]
    Do, Ho, Wo = dy.shape[2:]

    xp = pad_volume(x, p)
    cols = sliding_window_view(xp, (kd, kh, kw), axis=(2, 3, 4))
    cols = cols[:, :, :: s[0], :: s[1], :: s[2]]
    dw = np.einsum("nodhw,ncdhwxyz->ocxyz", dy, cols, optimize=True)

    db = dy.sum(axis=(0, 2, 3, 4)) if with_bias else None

    dxp = np.zeros_like(xp)
    # dy (N,O,Do,Ho,Wo) x w[:,:,i,j,k] (O,C) -> contribution at offset (i,j,k)
    for i in range(kd):
        di = slice(i, i + s[0] * Do, s[0])
        for j in range(kh):
            dj = slice(j, j + s[1] * Ho, s[1])
            for k in range(kw):
                dk = slice(k, k + s[2] * Wo, s[2])
                dxp[:, :, di, dj, dk] += np.einsum(
                    "nodhw,oc->ncdhw", dy, w[:, :, i, j, k], optimize=True
                )
    pd, ph, pw = p
    dx = dxp[
        :,
        :,
        pd : dxp.shape[2] - pd or None,
        ph : dxp.shape[3] - ph or None,
        pw : dxp.shape[4] - pw or None,
    ]
    return np.ascontiguousarray(dx), dw, db


def conv_transpose3d_forward(
    x: np.ndarray,
    w: np.ndarray,
    b: np.ndarray | None = None,
    stride=1,
) -> np.ndarray:
    """3D transposed convolution (a.k.a. up-convolution), no padding.

    Parameters
    ----------
    x : (N, C_in, D, H, W)
    w : (C_in, C_out, kD, kH, kW) -- note the transposed channel layout,
        matching ``tf.keras.layers.Conv3DTranspose`` semantics.
    """
    s = _triple(stride)
    if x.shape[1] != w.shape[0]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[1]}, weight expects {w.shape[0]}"
        )
    n, _, D, H, W = x.shape
    kd, kh, kw = w.shape[2:]
    Do, Ho, Wo = conv_transpose3d_output_shape((D, H, W), (kd, kh, kw), s)
    y = np.zeros((n, w.shape[1], Do, Ho, Wo), dtype=x.dtype)
    for i in range(kd):
        di = slice(i, i + s[0] * D, s[0])
        for j in range(kh):
            dj = slice(j, j + s[1] * H, s[1])
            for k in range(kw):
                dk = slice(k, k + s[2] * W, s[2])
                y[:, :, di, dj, dk] += np.einsum(
                    "ncdhw,co->nodhw", x, w[:, :, i, j, k], optimize=True
                )
    if b is not None:
        y += b.reshape(1, -1, 1, 1, 1)
    return y


def conv_transpose3d_backward(
    dy: np.ndarray,
    x: np.ndarray,
    w: np.ndarray,
    stride=1,
    with_bias: bool = True,
):
    """Gradients of :func:`conv_transpose3d_forward`.

    Returns ``(dx, dw, db)``.
    """
    s = _triple(stride)
    kd, kh, kw = w.shape[2:]
    n, _, D, H, W = x.shape

    dx = np.zeros_like(x)
    dw = np.zeros_like(w)
    for i in range(kd):
        di = slice(i, i + s[0] * D, s[0])
        for j in range(kh):
            dj = slice(j, j + s[1] * H, s[1])
            for k in range(kw):
                dk = slice(k, k + s[2] * W, s[2])
                dy_off = dy[:, :, di, dj, dk]
                dx += np.einsum("nodhw,co->ncdhw", dy_off, w[:, :, i, j, k],
                                optimize=True)
                dw[:, :, i, j, k] = np.einsum(
                    "ncdhw,nodhw->co", x, dy_off, optimize=True
                )
    db = dy.sum(axis=(0, 2, 3, 4)) if with_bias else None
    return dx, dw, db


def _pool_windows(x: np.ndarray, k: tuple[int, int, int]):
    """Reshape ``(N,C,D,H,W)`` into non-overlapping pooling windows.

    Returns a ``(N, C, D', H', W', kd*kh*kw)`` array.  Requires each
    spatial dim to be divisible by the corresponding kernel dim (the
    paper crops its volumes to guarantee exactly this, Section IV-A).
    """
    n, c, D, H, W = x.shape
    kd, kh, kw = k
    if D % kd or H % kh or W % kw:
        raise ValueError(
            f"pooling requires divisible spatial dims, got {(D, H, W)} "
            f"with kernel {k}; crop the input first (see repro.data.preprocess)"
        )
    v = x.reshape(n, c, D // kd, kd, H // kh, kh, W // kw, kw)
    v = v.transpose(0, 1, 2, 4, 6, 3, 5, 7)
    return v.reshape(n, c, D // kd, H // kh, W // kw, kd * kh * kw)


def maxpool3d_forward(x: np.ndarray, kernel=2):
    """Non-overlapping 3D max pooling (stride == kernel).

    Returns ``(y, argmax)`` where ``argmax`` indexes the flattened window
    and is consumed by :func:`maxpool3d_backward`.
    """
    k = _triple(kernel)
    win = _pool_windows(x, k)
    arg = win.argmax(axis=-1)
    y = np.take_along_axis(win, arg[..., None], axis=-1)[..., 0]
    return y, arg


def maxpool3d_backward(dy: np.ndarray, arg: np.ndarray, x_shape, kernel=2):
    """Scatter pooled gradients back to the argmax positions."""
    k = _triple(kernel)
    kd, kh, kw = k
    n, c, D, H, W = x_shape
    win = np.zeros((*dy.shape, kd * kh * kw), dtype=dy.dtype)
    np.put_along_axis(win, arg[..., None], dy[..., None], axis=-1)
    v = win.reshape(n, c, D // kd, H // kh, W // kw, kd, kh, kw)
    v = v.transpose(0, 1, 2, 5, 3, 6, 4, 7)
    return v.reshape(n, c, D, H, W)


def avgpool3d_forward(x: np.ndarray, kernel=2) -> np.ndarray:
    """Non-overlapping 3D average pooling (stride == kernel)."""
    k = _triple(kernel)
    return _pool_windows(x, k).mean(axis=-1)


def avgpool3d_backward(dy: np.ndarray, x_shape, kernel=2) -> np.ndarray:
    """Spread pooled gradients uniformly over each window."""
    k = _triple(kernel)
    kd, kh, kw = k
    n, c, D, H, W = x_shape
    scale = 1.0 / (kd * kh * kw)
    win = np.broadcast_to(
        (dy * scale)[..., None], (*dy.shape, kd * kh * kw)
    ).copy()
    v = win.reshape(n, c, D // kd, H // kh, W // kw, kd, kh, kw)
    v = v.transpose(0, 1, 2, 5, 3, 6, 4, 7)
    return v.reshape(n, c, D, H, W)
