"""The 3D U-Net architecture of the paper (Fig 2).

Analysis (encoder) and synthesis (decoder) paths with four resolution
steps; each step runs two 3x3x3 convolutions, each followed by batch
normalisation and a ReLU (Section III-A).  Down-sampling is 2x2x2 max
pooling with stride two; up-sampling is a 2x2x2 transposed convolution
with stride two, concatenated with the equal-resolution encoder features.
The number of filters at resolution step ``s`` (1-based) is
``base_filters * 2**(s-1)`` -- 8, 16, 32, 64 with the paper's
``base_filters = 8``.  A final 1x1x1 convolution plus sigmoid produces
the binary whole-tumour mask.

Two synthesis-path variants are provided, because the paper's text and
its reported parameter count disagree slightly:

* ``transpose_halves=True`` (default; matches the *text*: "the number of
  filters for the synthesis path is halved") -- each up-convolution
  halves the channel count, giving **352,513** parameters (including the
  BN moving statistics, as Keras' ``count_params`` does).
* ``transpose_halves=False`` -- each up-convolution preserves channels,
  giving **410,361** parameters, the closest structural variant to the
  paper's reported **406,793**.

EXPERIMENTS.md records the discrepancy; everything else in the
reproduction is insensitive to it.
"""

from __future__ import annotations

import numpy as np

from .dtypes import resolve_dtype
from .initializers import TruncatedNormal
from .layers.activations import ReLU, Sigmoid, Softmax
from .layers.batchnorm import BatchNorm
from .layers.dropout import Dropout
from .layers.groupnorm import GroupNorm, InstanceNorm
from .layers.conv3d import Conv3D
from .layers.conv_transpose3d import ConvTranspose3D
from .layers.fused_block import FusedConvBNReLU3D
from .layers.pooling import MaxPool3D
from .module import Module, Sequential

__all__ = ["ConvBlock", "UNet3D", "PAPER_INPUT_SHAPE", "PAPER_OUTPUT_SHAPE"]

# Paper Section III-A: channels-first 4 x 240 x 240 x 152 input,
# 1 x 240 x 240 x 152 output.
PAPER_INPUT_SHAPE = (4, 240, 240, 152)
PAPER_OUTPUT_SHAPE = (1, 240, 240, 152)


def _make_norm(kind: str | None, channels: int, dtype=None) -> Module | None:
    """Normalisation factory: 'batch' (the paper), 'instance', 'group'
    (nnU-Net-style BN alternatives at tiny batch sizes) or None."""
    if kind in (None, "none"):
        return None
    if kind == "batch":
        return BatchNorm(channels, dtype=dtype)
    if kind == "instance":
        return InstanceNorm(channels, dtype=dtype)
    if kind == "group":
        return GroupNorm(channels, num_groups=max(1, channels // 4),
                         dtype=dtype)
    raise ValueError(
        f"unknown norm {kind!r}; expected batch/instance/group/none"
    )


class ConvBlock(Module):
    """Two (Conv3D 3x3x3 -> norm -> ReLU) stages (paper: BatchNorm).

    With the paper's BatchNorm each stage is a
    :class:`~repro.nn.layers.fused_block.FusedConvBNReLU3D` composite:
    on a fusion-capable backend the whole triple runs as one fused
    kernel call, and on every other backend (or under sync-BN /
    instrumentation) it transparently degrades to the sequential
    conv/bn/act chain with identical arithmetic.  Other norms keep the
    flat ``Sequential`` wiring.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        use_batchnorm: bool = True,
        rng: np.random.Generator | None = None,
        norm: str | None = "__from_flag__",
        dtype=None,
        input_grad: bool = True,
    ):
        super().__init__()
        if norm == "__from_flag__":
            norm = "batch" if use_batchnorm else None
        dtype = resolve_dtype(dtype)
        init = TruncatedNormal(dtype=dtype)
        layers: list[Module] = []
        if norm == "batch":
            # ``input_grad=False`` (the network's first block) lets the
            # fused backward skip the dx of the first stage entirely.
            layers.append(FusedConvBNReLU3D(
                in_channels, out_channels, 3, padding="same",
                kernel_initializer=init, rng=rng, dtype=dtype,
                input_grad=input_grad))
            layers.append(FusedConvBNReLU3D(
                out_channels, out_channels, 3, padding="same",
                kernel_initializer=init, rng=rng, dtype=dtype))
        else:
            layers.append(
                Conv3D(in_channels, out_channels, 3, padding="same",
                       kernel_initializer=init, rng=rng, dtype=dtype)
            )
            n1 = _make_norm(norm, out_channels, dtype=dtype)
            if n1 is not None:
                layers.append(n1)
            layers.append(ReLU())
            layers.append(
                Conv3D(out_channels, out_channels, 3, padding="same",
                       kernel_initializer=init, rng=rng, dtype=dtype)
            )
            n2 = _make_norm(norm, out_channels, dtype=dtype)
            if n2 is not None:
                layers.append(n2)
            layers.append(ReLU())
        self.body = Sequential(*layers)
        self.out_channels = out_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.body(x)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return self.body.backward(dy)


class UNet3D(Module):
    """Parametric 3D U-Net (paper defaults: 4 steps, base 8 filters).

    Parameters
    ----------
    in_channels:
        Input modalities (4 for the MSD brain-tumour task: FLAIR, T1w,
        T1gd, T2w).
    out_channels:
        Output labels (1: whole tumour vs background).
    base_filters:
        Filters at the first resolution step (paper: 8).
    depth:
        Number of resolution steps (paper: 4 => 3 poolings, so spatial
        dims must be divisible by ``2**(depth-1)``).
    transpose_halves:
        Synthesis-path variant; see the module docstring.
    use_batchnorm:
        Disable to obtain a purely deterministic network for the exact
        data-parallel equivalence tests.
    final_activation:
        ``"sigmoid"`` (paper's binary head) or ``"softmax"`` over the
        class channels, for the original 4-class problem.
    """

    def __init__(
        self,
        in_channels: int = 4,
        out_channels: int = 1,
        base_filters: int = 8,
        depth: int = 4,
        transpose_halves: bool = True,
        use_batchnorm: bool = True,
        rng: np.random.Generator | None = None,
        final_activation: str = "sigmoid",
        norm: str | None = "__from_flag__",
        bottleneck_dropout: float = 0.0,
        dtype=None,
    ):
        super().__init__()
        if depth < 2:
            raise ValueError("UNet3D needs depth >= 2")
        if base_filters < 1:
            raise ValueError("base_filters must be >= 1")
        if final_activation not in ("sigmoid", "softmax"):
            raise ValueError(
                f"final_activation must be 'sigmoid' or 'softmax', "
                f"got {final_activation!r}"
            )
        if norm == "__from_flag__":
            norm = "batch" if use_batchnorm else None
        self.norm = norm
        self.dtype = resolve_dtype(dtype)
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.depth = int(depth)
        self.base_filters = int(base_filters)
        self.transpose_halves = bool(transpose_halves)

        filters = [base_filters * 2**s for s in range(depth)]
        self.filters = filters

        # Analysis path: depth blocks, pooling between them.
        ci = in_channels
        self.enc_blocks: list[ConvBlock] = []
        self.pools: list[MaxPool3D] = []
        for s in range(depth):
            blk = ConvBlock(ci, filters[s], use_batchnorm, rng, norm=norm,
                            dtype=self.dtype, input_grad=(s > 0))
            setattr(self, f"enc{s}", blk)
            self.enc_blocks.append(blk)
            ci = filters[s]
            if s < depth - 1:
                pool = MaxPool3D(2)
                setattr(self, f"pool{s}", pool)
                self.pools.append(pool)

        # Synthesis path.
        init = TruncatedNormal(dtype=self.dtype)
        self.up_convs: list[ConvTranspose3D] = []
        self.dec_blocks: list[ConvBlock] = []
        cur = filters[-1]
        for s in range(depth - 2, -1, -1):
            up_out = filters[s] if transpose_halves else cur
            up = ConvTranspose3D(cur, up_out, 2, 2, kernel_initializer=init,
                                 rng=rng, dtype=self.dtype)
            setattr(self, f"up{s}", up)
            self.up_convs.append(up)
            blk = ConvBlock(up_out + filters[s], filters[s], use_batchnorm,
                            rng, norm=norm, dtype=self.dtype)
            setattr(self, f"dec{s}", blk)
            self.dec_blocks.append(blk)
            cur = filters[s]

        self.bottleneck_dropout = (
            Dropout(bottleneck_dropout, rng=rng)
            if bottleneck_dropout > 0.0
            else None
        )
        self.head = Conv3D(cur, out_channels, 1, padding="valid",
                           kernel_initializer=init, rng=rng,
                           dtype=self.dtype)
        self.final_activation = final_activation
        self.out_act = (
            Sigmoid() if final_activation == "sigmoid" else Softmax(axis=1)
        )

        self._skip_channels: list[int] | None = None

    def min_divisor(self) -> int:
        """Spatial dims must be divisible by this (2 ** #poolings)."""
        return 2 ** (self.depth - 1)

    def validate_input_shape(self, shape: tuple[int, ...]) -> None:
        """Raise with a helpful message when the volume cannot be pooled."""
        if len(shape) != 5:
            raise ValueError(f"expected (N,C,D,H,W), got {shape}")
        if shape[1] != self.in_channels:
            raise ValueError(
                f"model expects {self.in_channels} channels, input has {shape[1]}"
            )
        div = self.min_divisor()
        for dim in shape[2:]:
            if dim % div:
                raise ValueError(
                    f"spatial dim {dim} not divisible by {div}; crop the "
                    f"volume first (the paper crops 155 -> 152 slices)"
                )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.validate_input_shape(x.shape)
        skips: list[np.ndarray] = []
        for s in range(self.depth - 1):
            x = self.enc_blocks[s](x)
            skips.append(x)
            x = self.pools[s](x)
        x = self.enc_blocks[-1](x)
        if self.bottleneck_dropout is not None:
            x = self.bottleneck_dropout(x)

        self._skip_channels = []
        for i, s in enumerate(range(self.depth - 2, -1, -1)):
            up = self.up_convs[i](x)
            self._skip_channels.append(up.shape[1])
            x = np.concatenate([up, skips[s]], axis=1)
            x = self.dec_blocks[i](x)

        x = self.head(x)
        return self.out_act(x)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._skip_channels is None:
            raise RuntimeError("backward called before forward")
        dy = self.out_act.backward(dy)
        dy = self.head.backward(dy)

        # Walk the synthesis path in reverse, peeling concat gradients.
        dskips: dict[int, np.ndarray] = {}
        for i in range(len(self.dec_blocks) - 1, -1, -1):
            s = self.depth - 2 - i  # encoder level this decoder stage joins
            dcat = self.dec_blocks[i].backward(dy)
            c = self._skip_channels[i]
            dup, dskip = dcat[:, :c], dcat[:, c:]
            dskips[s] = dskip
            dy = self.up_convs[i].backward(np.ascontiguousarray(dup))

        # Bottom block, then the analysis path in reverse.
        if self.bottleneck_dropout is not None:
            dy = self.bottleneck_dropout.backward(dy)
        dy = self.enc_blocks[-1].backward(dy)
        for s in range(self.depth - 2, -1, -1):
            dy = self.pools[s].backward(dy)
            dy = dy + dskips[s]
            dy = self.enc_blocks[s].backward(dy)

        self._skip_channels = None
        return dy

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference forward pass (eval mode, mode restored afterwards)."""
        was_training = self.training
        self.eval()
        try:
            return self.forward(x)
        finally:
            self.train(was_training)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UNet3D(in={self.in_channels}, out={self.out_channels}, "
            f"filters={self.filters}, params={self.num_params()})"
        )
