"""Learning-rate schedules.

Data-parallel training scales the batch by the number of replicas, so the
paper scales the initial learning rate by ``#GPUs`` and notes that the
*cyclic learning rate* technique (Smith, WACV 2017 -- the paper's
reference [38]) is used to approximate a good rate under that scaling.
Schedules are callables ``lr = schedule(step)`` on the global update
counter.
"""

from __future__ import annotations

import math

__all__ = [
    "Schedule",
    "ConstantLR",
    "StepDecay",
    "ExponentialDecay",
    "CyclicLR",
    "CosineAnnealing",
    "LinearWarmup",
    "linear_scaling_rule",
]


class Schedule:
    """Base class: a callable mapping the update index to a rate."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(Schedule):
    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.base_lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.base_lr


class StepDecay(Schedule):
    """Multiply the rate by ``gamma`` every ``step_size`` updates."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.base_lr, self.step_size, self.gamma = float(lr), int(step_size), float(gamma)

    def __call__(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class ExponentialDecay(Schedule):
    """``lr * decay**(step / decay_steps)`` (TensorFlow convention)."""

    def __init__(self, lr: float, decay_steps: int, decay_rate: float):
        self.base_lr = float(lr)
        self.decay_steps = int(decay_steps)
        self.decay_rate = float(decay_rate)

    def __call__(self, step: int) -> float:
        return self.base_lr * self.decay_rate ** (step / self.decay_steps)


class CyclicLR(Schedule):
    """Triangular cyclic learning rate (Smith 2017, paper reference [38]).

    The rate sweeps linearly from ``base_lr`` up to ``max_lr`` and back
    over ``2 * step_size`` updates.  ``mode='triangular2'`` halves the
    amplitude each cycle.
    """

    def __init__(self, base_lr: float, max_lr: float, step_size: int,
                 mode: str = "triangular"):
        if max_lr < base_lr:
            raise ValueError("max_lr must be >= base_lr")
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if mode not in ("triangular", "triangular2"):
            raise ValueError(f"unknown cyclic mode {mode!r}")
        self.base_lr, self.max_lr = float(base_lr), float(max_lr)
        self.step_size, self.mode = int(step_size), mode

    def __call__(self, step: int) -> float:
        cycle = math.floor(1 + step / (2 * self.step_size))
        x = abs(step / self.step_size - 2 * cycle + 1)
        scale = 1.0 if self.mode == "triangular" else 1.0 / (2 ** (cycle - 1))
        return self.base_lr + (self.max_lr - self.base_lr) * max(0.0, 1 - x) * scale


class CosineAnnealing(Schedule):
    """Half-cosine decay from ``lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, lr: float, total_steps: int, min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.base_lr, self.total_steps, self.min_lr = float(lr), int(total_steps), float(min_lr)

    def __call__(self, step: int) -> float:
        s = min(step, self.total_steps)
        cos = 0.5 * (1 + math.cos(math.pi * s / self.total_steps))
        return self.min_lr + (self.base_lr - self.min_lr) * cos


class LinearWarmup(Schedule):
    """Ramp linearly from 0 to the wrapped schedule over ``warmup_steps``.

    The standard companion of the linear scaling rule: large scaled rates
    are eased in to avoid early divergence.
    """

    def __init__(self, inner: Schedule, warmup_steps: int):
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be >= 0")
        self.inner, self.warmup_steps = inner, int(warmup_steps)

    def __call__(self, step: int) -> float:
        lr = self.inner(step)
        if self.warmup_steps and step < self.warmup_steps:
            return lr * (step + 1) / self.warmup_steps
        return lr


def linear_scaling_rule(base_lr: float, num_replicas: int) -> float:
    """The paper's LR scaling: ``1e-4 x #GPUs`` (Section IV-B)."""
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    return base_lr * num_replicas
