"""Weight initializers.

The paper (Section III-A) uses a *truncated normal* kernel initializer for
every convolution layer; the rest are provided for completeness and for
the ablation experiments.

Every initializer takes an optional ``dtype``: an explicit value wins,
``None`` defers to the process compute-dtype policy
(:func:`repro.nn.dtypes.resolve_dtype`, ``float64`` unless opted into
``float32``).  Resolution happens at *call* time, and random draws are
always made in float64 then cast, so a float32 model is a bit-exact
down-cast of the float64 one from the same seed.
"""

from __future__ import annotations

import math

import numpy as np

from .dtypes import resolve_dtype

__all__ = [
    "Initializer",
    "Zeros",
    "Ones",
    "Constant",
    "RandomNormal",
    "TruncatedNormal",
    "GlorotUniform",
    "HeNormal",
    "get_initializer",
]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute fan-in / fan-out for dense or convolutional weight shapes.

    Convolution weights are ``(C_out, C_in, *kernel)`` (channels-first),
    dense weights are ``(in, out)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[1] * receptive, shape[0] * receptive


class Initializer:
    """Base class: callable ``(shape, rng) -> ndarray``."""

    def __init__(self, dtype=None):
        self.dtype = dtype

    def _dtype(self) -> np.dtype:
        return resolve_dtype(self.dtype)

    def __call__(self, shape, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Zeros(Initializer):
    def __call__(self, shape, rng):
        return np.zeros(shape, dtype=self._dtype())


class Ones(Initializer):
    def __call__(self, shape, rng):
        return np.ones(shape, dtype=self._dtype())


class Constant(Initializer):
    def __init__(self, value: float, dtype=None):
        super().__init__(dtype)
        self.value = float(value)

    def __call__(self, shape, rng):
        return np.full(shape, self.value, dtype=self._dtype())


class RandomNormal(Initializer):
    def __init__(self, mean: float = 0.0, stddev: float = 0.05, dtype=None):
        super().__init__(dtype)
        self.mean, self.stddev = float(mean), float(stddev)

    def __call__(self, shape, rng):
        out = rng.normal(self.mean, self.stddev, size=shape)
        return out.astype(self._dtype(), copy=False)


class TruncatedNormal(Initializer):
    """Normal draw re-sampled until within two standard deviations.

    Matches ``tf.keras.initializers.TruncatedNormal``: values more than
    2 sigma from the mean are discarded and redrawn, which bounds the
    largest initial weight and was the paper's choice for every
    convolution (Section III-A).
    """

    def __init__(self, mean: float = 0.0, stddev: float = 0.05, dtype=None):
        super().__init__(dtype)
        self.mean, self.stddev = float(mean), float(stddev)

    def __call__(self, shape, rng):
        out = rng.normal(self.mean, self.stddev, size=shape)
        lo, hi = self.mean - 2 * self.stddev, self.mean + 2 * self.stddev
        bad = (out < lo) | (out > hi)
        # Redraw the tails; each pass keeps ~95.4% so this converges fast.
        while bad.any():
            out[bad] = rng.normal(self.mean, self.stddev, size=int(bad.sum()))
            bad = (out < lo) | (out > hi)
        return out.astype(self._dtype(), copy=False)


class GlorotUniform(Initializer):
    """Uniform(-limit, limit) with limit = sqrt(6 / (fan_in + fan_out))."""

    def __call__(self, shape, rng):
        fan_in, fan_out = _fan_in_out(tuple(shape))
        limit = math.sqrt(6.0 / (fan_in + fan_out))
        out = rng.uniform(-limit, limit, size=shape)
        return out.astype(self._dtype(), copy=False)


class HeNormal(Initializer):
    """Normal(0, sqrt(2 / fan_in)) -- suited to ReLU networks."""

    def __call__(self, shape, rng):
        fan_in, _ = _fan_in_out(tuple(shape))
        out = rng.normal(0.0, math.sqrt(2.0 / fan_in), size=shape)
        return out.astype(self._dtype(), copy=False)


_REGISTRY = {
    "zeros": Zeros,
    "ones": Ones,
    "random_normal": RandomNormal,
    "truncated_normal": TruncatedNormal,
    "glorot_uniform": GlorotUniform,
    "he_normal": HeNormal,
}


def get_initializer(spec, dtype=None) -> Initializer:
    """Resolve a string name or pass through an :class:`Initializer`.

    ``dtype`` applies only when constructing from a string name;
    ready-made instances keep their own setting.
    """
    if isinstance(spec, Initializer):
        return spec
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec](dtype=dtype)
        except KeyError:
            raise ValueError(
                f"unknown initializer {spec!r}; known: {sorted(_REGISTRY)}"
            ) from None
    raise TypeError(f"cannot interpret {spec!r} as an initializer")
