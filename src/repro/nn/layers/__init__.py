"""Layer zoo for the NumPy deep-learning engine."""

from .activations import Identity, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from .batchnorm import BatchNorm
from .groupnorm import GroupNorm, InstanceNorm
from .conv3d import Conv3D
from .conv_transpose3d import ConvTranspose3D
from .dropout import Dropout
from .fused_block import FusedConvBNReLU3D
from .pooling import AvgPool3D, MaxPool3D

__all__ = [
    "Conv3D",
    "FusedConvBNReLU3D",
    "ConvTranspose3D",
    "MaxPool3D",
    "AvgPool3D",
    "BatchNorm",
    "GroupNorm",
    "InstanceNorm",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Softmax",
]
