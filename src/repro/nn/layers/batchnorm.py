"""Batch normalisation over channels-first 3D activations.

The paper applies batch normalisation before each ReLU (Section III-A).
Per-replica statistics are the TensorFlow ``MirroredStrategy`` default --
each replica normalises with the statistics of its *own* batch shard --
so data-parallel training is not bit-identical to single-device training
when BN is present.  A ``stats_reducer`` hook enables synchronous BN
(global statistics via all-reduce), which restores exact equivalence and
is exercised by the training-equivalence tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..dtypes import resolve_dtype
from ..module import Module

__all__ = ["BatchNorm"]

# A stats reducer receives (sum, sum_of_squares, count) computed on the
# local shard and returns the globally reduced triple.
StatsReducer = Callable[
    [np.ndarray, np.ndarray, float], tuple[np.ndarray, np.ndarray, float]
]


class BatchNorm(Module):
    """Normalise each channel over the batch and spatial axes.

    Parameters
    ----------
    num_channels:
        Size of axis 1 of the input.
    momentum:
        Exponential moving-average factor for the running statistics used
        at evaluation time (Keras convention: ``running = momentum *
        running + (1 - momentum) * batch``).
    eps:
        Variance floor.
    stats_reducer:
        Optional hook for synchronous (cross-replica) statistics.
    """

    def __init__(
        self,
        num_channels: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        stats_reducer: StatsReducer | None = None,
        dtype=None,
    ):
        super().__init__()
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        self.num_channels = int(num_channels)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.stats_reducer = stats_reducer
        self.dtype = resolve_dtype(dtype)

        self.add_parameter("gamma", np.ones(num_channels, dtype=self.dtype))
        self.add_parameter("beta", np.zeros(num_channels, dtype=self.dtype))
        self.add_parameter(
            "running_mean", np.zeros(num_channels, dtype=self.dtype),
            trainable=False)
        self.add_parameter(
            "running_var", np.ones(num_channels, dtype=self.dtype),
            trainable=False)

        self._cache: tuple | None = None

    @staticmethod
    def _reshape(v: np.ndarray) -> np.ndarray:
        """Broadcast a per-channel vector over (N, C, *spatial)."""
        return v.reshape(1, -1, 1, 1, 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5:
            raise ValueError(f"BatchNorm expects (N,C,D,H,W), got {x.shape}")
        if x.shape[1] != self.num_channels:
            raise ValueError(
                f"BatchNorm built for {self.num_channels} channels, "
                f"input has {x.shape[1]}"
            )
        axes = (0, 2, 3, 4)
        if self.training:
            count = float(x.shape[0] * x.shape[2] * x.shape[3] * x.shape[4])
            total = x.sum(axis=axes)
            sq_total = np.einsum("ncdhw,ncdhw->c", x, x)
            if self.stats_reducer is not None:
                total, sq_total, count = self.stats_reducer(total, sq_total, count)
            mean = total / count
            var = sq_total / count - mean**2
            var = np.maximum(var, 0.0)  # numerical guard

            m = self.momentum
            self.running_mean.value = m * self.running_mean.value + (1 - m) * mean
            self.running_var.value = m * self.running_var.value + (1 - m) * var
        else:
            mean, var = self.running_mean.value, self.running_var.value
            count = 0.0

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._reshape(mean)) * self._reshape(inv_std)
        y = self._reshape(self.gamma.value) * x_hat + self._reshape(self.beta.value)
        self._cache = (x_hat, inv_std, count, self.training)
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, count, was_training = self._cache
        self._cache = None
        axes = (0, 2, 3, 4)

        self.gamma.grad += np.einsum("ncdhw,ncdhw->c", dy, x_hat)
        self.beta.grad += dy.sum(axis=axes)

        g = self._reshape(self.gamma.value)
        if not was_training:
            # Running statistics are constants w.r.t. the input.
            return dy * g * self._reshape(inv_std)

        # Standard batch-norm input gradient:
        # dx = gamma*inv_std/m * (m*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
        dxhat = dy * g
        m = count
        sum_dxhat = dxhat.sum(axis=axes)
        sum_dxhat_xhat = np.einsum("ncdhw,ncdhw->c", dxhat, x_hat)
        if self.stats_reducer is not None:
            # Synchronous BN: the input gradient depends on the *global*
            # batch sums, so reduce them exactly as the forward stats were.
            sum_dxhat, sum_dxhat_xhat, _ = self.stats_reducer(
                sum_dxhat, sum_dxhat_xhat, 0.0
            )
        dx = (
            self._reshape(inv_std)
            / m
            * (
                m * dxhat
                - self._reshape(sum_dxhat)
                - x_hat * self._reshape(sum_dxhat_xhat)
            )
        )
        return dx
