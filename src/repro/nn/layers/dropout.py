"""Inverted dropout (identity at evaluation time)."""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Zero each activation with probability ``rate`` during training and
    rescale survivors by ``1 / (1 - rate)`` so expectations match eval."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        dx = dy * self._mask
        self._mask = None
        return dx
