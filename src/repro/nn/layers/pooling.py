"""3D pooling layers (non-overlapping windows, stride == kernel)."""

from __future__ import annotations

import numpy as np

from ..functional import (
    avgpool3d_backward,
    avgpool3d_forward,
    maxpool3d_backward,
    maxpool3d_forward,
)
from ..module import Module

__all__ = ["MaxPool3D", "AvgPool3D"]


class MaxPool3D(Module):
    """2x2x2 (by default) max pooling with stride two in each dimension,
    as used between the analysis-path resolution steps (Section II-B1)."""

    def __init__(self, kernel_size=2):
        super().__init__()
        self.kernel_size = kernel_size
        self._arg: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        y, arg = maxpool3d_forward(x, self.kernel_size)
        self._arg, self._x_shape = arg, x.shape
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._arg is None:
            raise RuntimeError("backward called before forward")
        dx = maxpool3d_backward(dy, self._arg, self._x_shape, self.kernel_size)
        self._arg = None
        return dx


class AvgPool3D(Module):
    """Average pooling counterpart, used by ablation experiments."""

    def __init__(self, kernel_size=2):
        super().__init__()
        self.kernel_size = kernel_size
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return avgpool3d_forward(x, self.kernel_size)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        dx = avgpool3d_backward(dy, self._x_shape, self.kernel_size)
        self._x_shape = None
        return dx
