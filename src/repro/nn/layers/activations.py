"""Element-wise activation layers."""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Identity", "Softmax"]


class ReLU(Module):
    """Rectified linear unit, the paper's activation after every BN."""

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        dx = np.where(self._mask, dy, 0.0)
        self._mask = None
        return dx


class LeakyReLU(Module):
    def __init__(self, alpha: float = 0.01):
        super().__init__()
        self.alpha = float(alpha)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        dx = np.where(self._mask, dy, self.alpha * dy)
        self._mask = None
        return dx


class Sigmoid(Module):
    """Logistic output used for the final 1x1x1 binary-mask head."""

    def __init__(self):
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise formulation.  Floating inputs
        # keep their dtype (the float32 compute path must not silently
        # promote at the head); anything else lands in float64.
        dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
        y = np.empty_like(x, dtype=dtype)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        self._y = y
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        dx = dy * self._y * (1.0 - self._y)
        self._y = None
        return dx


class Tanh(Module):
    def __init__(self):
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        dx = dy * (1.0 - self._y**2)
        self._y = None
        return dx


class Identity(Module):
    """No-op layer, handy as a placeholder in ablations."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy


class Softmax(Module):
    """Channel-axis softmax (for the 4-class variant of the task)."""

    def __init__(self, axis: int = 1):
        super().__init__()
        self.axis = axis
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        z = x - x.max(axis=self.axis, keepdims=True)
        e = np.exp(z)
        self._y = e / e.sum(axis=self.axis, keepdims=True)
        return self._y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        y = self._y
        dot = (dy * y).sum(axis=self.axis, keepdims=True)
        dx = y * (dy - dot)
        self._y = None
        return dx
