"""3D convolution layer (channels-first), the workhorse of the 3D U-Net."""

from __future__ import annotations

import numpy as np

from ..dtypes import resolve_dtype
from ..functional import (
    conv3d_backward,
    conv3d_forward,
    conv3d_output_shape,
    release_conv_ctx,
)
from ..initializers import get_initializer
from ..module import Module

__all__ = ["Conv3D"]


def _resolve_padding(padding, kernel: tuple[int, int, int]) -> tuple[int, int, int]:
    if padding == "same":
        if any(k % 2 == 0 for k in kernel):
            raise ValueError(
                f"'same' padding requires odd kernel dims, got {kernel}"
            )
        return tuple(k // 2 for k in kernel)
    if padding == "valid":
        return (0, 0, 0)
    if isinstance(padding, int):
        return (padding, padding, padding)
    t = tuple(int(p) for p in padding)
    if len(t) != 3:
        raise ValueError(f"padding must be 'same', 'valid', int or 3-tuple, got {padding!r}")
    return t


class Conv3D(Module):
    """``y = conv3d(x, W) + b`` with learned ``W`` of shape
    ``(out_channels, in_channels, kD, kH, kW)``.

    Defaults match the paper's configuration: truncated-normal kernel
    initialiser and 'same' padding for the 3x3x3 convolutions of the
    analysis/synthesis paths (Section III-A).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size=3,
        stride=1,
        padding="same",
        use_bias: bool = True,
        kernel_initializer=None,
        bias_initializer=None,
        rng: np.random.Generator | None = None,
        dtype=None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        k = kernel_size
        self.kernel = (k, k, k) if isinstance(k, int) else tuple(int(v) for v in k)
        self.stride = stride
        self.padding = _resolve_padding(padding, self.kernel)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.use_bias = bool(use_bias)
        self.dtype = resolve_dtype(dtype)

        rng = rng if rng is not None else np.random.default_rng()
        k_init = get_initializer(kernel_initializer or "truncated_normal",
                                 dtype=self.dtype)
        b_init = get_initializer(bias_initializer or "zeros",
                                 dtype=self.dtype)
        self.add_parameter(
            "w", k_init((out_channels, in_channels, *self.kernel), rng)
        )
        if self.use_bias:
            self.add_parameter("b", b_init((out_channels,), rng))

        self._x: np.ndarray | None = None
        self._ctx: dict | None = None

    def output_shape(self, spatial: tuple[int, int, int]) -> tuple[int, int, int]:
        return conv3d_output_shape(spatial, self.kernel, self.stride, self.padding)

    def forward(self, x: np.ndarray) -> np.ndarray:
        release_conv_ctx(self._ctx)  # forward without backward: reclaim
        x = np.asarray(x, dtype=self.dtype)
        self._x = x
        # Only carry backend scratch forward when a backward will consume it.
        self._ctx = {} if self.training else None
        return conv3d_forward(
            x,
            self.w.value,
            self.b.value if self.use_bias else None,
            stride=self.stride,
            pad=self.padding,
            ctx=self._ctx,
        )

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        ctx, self._ctx = self._ctx, None
        dx, dw, db = conv3d_backward(
            dy,
            self._x,
            self.w.value,
            stride=self.stride,
            pad=self.padding,
            with_bias=self.use_bias,
            ctx=ctx,
        )
        release_conv_ctx(ctx)
        self.w.grad += dw
        if self.use_bias:
            self.b.grad += db
        self._x = None
        return dx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv3D({self.in_channels}->{self.out_channels}, "
            f"k={self.kernel}, stride={self.stride}, pad={self.padding})"
        )
