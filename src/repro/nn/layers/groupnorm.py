"""Group and instance normalisation.

Batch statistics are unreliable at the paper's forced batch size of 2
(Section IV-B), which is why modern MIS pipelines (e.g. nnU-Net) prefer
*instance* or *group* normalisation -- statistics over channels/space of
each sample, independent of the batch and therefore of the
data-parallel sharding.  Both are provided as drop-in BN alternatives
for the normalisation ablation; InstanceNorm is GroupNorm with one
channel per group.
"""

from __future__ import annotations

import numpy as np

from ..dtypes import resolve_dtype
from ..module import Module

__all__ = ["GroupNorm", "InstanceNorm"]


class GroupNorm(Module):
    """Normalise each (sample, channel-group) over its voxels.

    Input ``(N, C, D, H, W)``; ``num_groups`` must divide ``C``.
    Identical behaviour in train and eval mode (no running statistics),
    which also makes data-parallel sharding exact without any sync --
    the property the normalisation tests pin.
    """

    def __init__(self, num_channels: int, num_groups: int, eps: float = 1e-5,
                 dtype=None):
        super().__init__()
        if num_channels < 1 or num_groups < 1:
            raise ValueError("channels and groups must be >= 1")
        if num_channels % num_groups:
            raise ValueError(
                f"num_groups {num_groups} must divide num_channels {num_channels}"
            )
        self.num_channels = num_channels
        self.num_groups = num_groups
        self.eps = float(eps)
        self.dtype = resolve_dtype(dtype)
        self.add_parameter("gamma", np.ones(num_channels, dtype=self.dtype))
        self.add_parameter("beta", np.zeros(num_channels, dtype=self.dtype))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 5 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"expected (N, {self.num_channels}, D, H, W), got {x.shape}"
            )
        n, c, d, h, w = x.shape
        g = self.num_groups
        xg = x.reshape(n, g, c // g, d, h, w)
        axes = (2, 3, 4, 5)
        mean = xg.mean(axis=axes, keepdims=True)
        var = xg.var(axis=axes, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = ((xg - mean) * inv_std).reshape(n, c, d, h, w)
        y = (
            self.gamma.value.reshape(1, -1, 1, 1, 1) * x_hat
            + self.beta.value.reshape(1, -1, 1, 1, 1)
        )
        self._cache = (x_hat, inv_std, (n, g, c // g, d, h, w))
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, gshape = self._cache
        self._cache = None
        n, g, cg, d, h, w = gshape

        self.gamma.grad += np.einsum("ncdhw,ncdhw->c", dy, x_hat)
        self.beta.grad += dy.sum(axis=(0, 2, 3, 4))

        dxhat = dy * self.gamma.value.reshape(1, -1, 1, 1, 1)
        dxhat_g = dxhat.reshape(gshape)
        xhat_g = x_hat.reshape(gshape)
        m = cg * d * h * w
        axes = (2, 3, 4, 5)
        sum_dxhat = dxhat_g.sum(axis=axes, keepdims=True)
        sum_dxhat_xhat = (dxhat_g * xhat_g).sum(axis=axes, keepdims=True)
        dxg = (
            inv_std / m
            * (m * dxhat_g - sum_dxhat - xhat_g * sum_dxhat_xhat)
        )
        return dxg.reshape(n, g * cg, d, h, w)


class InstanceNorm(GroupNorm):
    """Per-sample per-channel normalisation: GroupNorm with C groups."""

    def __init__(self, num_channels: int, eps: float = 1e-5, dtype=None):
        super().__init__(num_channels, num_groups=num_channels, eps=eps,
                         dtype=dtype)
