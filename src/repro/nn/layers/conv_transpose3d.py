"""3D transposed convolution, the synthesis-path up-sampling of the U-Net."""

from __future__ import annotations

import numpy as np

from ..dtypes import resolve_dtype
from ..functional import (
    conv_transpose3d_backward,
    conv_transpose3d_forward,
    conv_transpose3d_output_shape,
)
from ..initializers import get_initializer
from ..module import Module

__all__ = ["ConvTranspose3D"]


class ConvTranspose3D(Module):
    """Transposed 3D convolution with weight shape
    ``(in_channels, out_channels, kD, kH, kW)`` and no padding.

    The paper uses 2x2x2 kernels with stride 2 in every synthesis layer
    (Section II-B1), which exactly doubles each spatial dimension.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size=2,
        stride=2,
        use_bias: bool = True,
        kernel_initializer=None,
        bias_initializer=None,
        rng: np.random.Generator | None = None,
        dtype=None,
    ):
        super().__init__()
        k = kernel_size
        self.kernel = (k, k, k) if isinstance(k, int) else tuple(int(v) for v in k)
        self.stride = stride
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.use_bias = bool(use_bias)
        self.dtype = resolve_dtype(dtype)

        rng = rng if rng is not None else np.random.default_rng()
        k_init = get_initializer(kernel_initializer or "truncated_normal",
                                 dtype=self.dtype)
        b_init = get_initializer(bias_initializer or "zeros",
                                 dtype=self.dtype)
        self.add_parameter(
            "w", k_init((in_channels, out_channels, *self.kernel), rng)
        )
        if self.use_bias:
            self.add_parameter("b", b_init((out_channels,), rng))

        self._x: np.ndarray | None = None

    def output_shape(self, spatial: tuple[int, int, int]) -> tuple[int, int, int]:
        return conv_transpose3d_output_shape(spatial, self.kernel, self.stride)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        self._x = x
        return conv_transpose3d_forward(
            x,
            self.w.value,
            self.b.value if self.use_bias else None,
            stride=self.stride,
        )

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        dx, dw, db = conv_transpose3d_backward(
            dy, self._x, self.w.value, stride=self.stride, with_bias=self.use_bias
        )
        self.w.grad += dw
        if self.use_bias:
            self.b.grad += db
        self._x = None
        return dx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConvTranspose3D({self.in_channels}->{self.out_channels}, "
            f"k={self.kernel}, stride={self.stride})"
        )
