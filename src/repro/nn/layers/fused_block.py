"""Fused Conv3D -> BatchNorm -> ReLU composite layer.

The paper's U-Net applies this exact triple at every resolution step
(Section III-A), and the unfused chain materialises four full volumes
per stage (conv output, ``x_hat``, BN output, ReLU mask).  On a
fusion-capable backend (``fused``) this layer routes the triple through
one :func:`repro.nn.functional.conv3d_bn_relu_forward` call that folds
the BN affine into the GEMM epilogue and applies ReLU in place.

The layer *contains* ordinary :class:`~repro.nn.layers.conv3d.Conv3D`,
:class:`~repro.nn.layers.batchnorm.BatchNorm` and
:class:`~repro.nn.layers.activations.ReLU` children (named ``conv`` /
``bn`` / ``act``), so parameters, state dicts, ``named_modules`` walks
and the model summary all see the familiar leaves.  Fusion is a runtime
routing decision re-taken every forward; the sequential child chain is
used whenever fusion cannot preserve semantics:

* the active backend lacks ``supports_fusion`` (``reference``/``gemm``);
* synchronous BN is wired (``bn.stats_reducer`` set) -- the fused kernel
  computes local statistics only;
* a child ``forward`` has been instrumented per-instance (the model
  summary and the profiler hook leaf forwards via ``__dict__``) -- the
  hooks must keep firing.

Both routes produce the same arithmetic to float64 round-off, which the
parity matrix pins at rtol 1e-9 (``tests/unit/nn/test_fused_block.py``).
"""

from __future__ import annotations

import numpy as np

from ..functional import (
    conv3d_bn_relu_backward,
    conv3d_bn_relu_forward,
    fused_conv_bn_relu_supported,
    release_conv_ctx,
)
from ..module import Module
from .activations import ReLU
from .batchnorm import BatchNorm
from .conv3d import Conv3D

__all__ = ["FusedConvBNReLU3D"]


class FusedConvBNReLU3D(Module):
    """``relu(batchnorm(conv3d(x)))`` with backend-level fusion when the
    active kernel backend supports it, and a transparent fall-back to
    the equivalent ``conv -> bn -> act`` child chain when it does not.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size=3,
        stride=1,
        padding="same",
        use_bias: bool = True,
        momentum: float = 0.9,
        eps: float = 1e-5,
        kernel_initializer=None,
        rng: np.random.Generator | None = None,
        dtype=None,
        input_grad: bool = True,
    ):
        super().__init__()
        self.conv = Conv3D(
            in_channels, out_channels, kernel_size, stride=stride,
            padding=padding, use_bias=use_bias,
            kernel_initializer=kernel_initializer, rng=rng, dtype=dtype)
        self.bn = BatchNorm(out_channels, momentum=momentum, eps=eps,
                            dtype=dtype)
        self.act = ReLU()
        self.out_channels = int(out_channels)
        #: Set False for a network's *first* layer (its input carries no
        #: gradient): the fused backward then skips the dx computation
        #: -- the largest gather of the layer's backward pass -- and
        #: ``backward`` returns ``None``.  Advisory: the sequential
        #: fall-back route still computes dx.
        self.input_grad = bool(input_grad)
        self._route: str | None = None
        self._x: np.ndarray | None = None
        self._ctx: dict | None = None

    # -- routing ------------------------------------------------------------
    def fusion_active(self) -> bool:
        """Whether the *next* forward will take the fused kernel path."""
        return (
            fused_conv_bn_relu_supported()
            and self.bn.stats_reducer is None
            # Per-instance instrumentation (model summary, profiler
            # hooks) replaces child forwards via __dict__; those hooks
            # only fire on the sequential route.
            and "forward" not in self.conv.__dict__
            and "forward" not in self.bn.__dict__
            and "forward" not in self.act.__dict__
        )

    # -- computation --------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        release_conv_ctx(self._ctx)  # forward without backward: reclaim
        self._ctx = None
        if not self.fusion_active():
            self._route = "sequential"
            return self.act(self.bn(self.conv(x)))

        self._route = "fused"
        x = np.asarray(x, dtype=self.conv.dtype)
        self._x = x if self.training else None
        self._ctx = {} if self.training else None
        bn = self.bn
        y, mean, var = conv3d_bn_relu_forward(
            x,
            self.conv.w.value,
            self.conv.b.value if self.conv.use_bias else None,
            bn.gamma.value,
            bn.beta.value,
            bn.running_mean.value,
            bn.running_var.value,
            eps=bn.eps,
            stride=self.conv.stride,
            pad=self.conv.padding,
            training=self.training,
            ctx=self._ctx,
        )
        if self.training:
            # Same running-statistics update BatchNorm.forward applies.
            m = bn.momentum
            bn.running_mean.value = m * bn.running_mean.value + (1 - m) * mean
            bn.running_var.value = m * bn.running_var.value + (1 - m) * var
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._route == "sequential":
            self._route = None
            return self.conv.backward(self.bn.backward(self.act.backward(dy)))
        if self._route != "fused" or self._x is None:
            raise RuntimeError(
                "backward called before a training-mode forward")
        self._route = None
        ctx, self._ctx = self._ctx, None
        x, self._x = self._x, None
        dx, dw, db, dgamma, dbeta = conv3d_bn_relu_backward(
            dy, x, self.conv.w.value, self.bn.gamma.value,
            stride=self.conv.stride, pad=self.conv.padding,
            with_bias=self.conv.use_bias, ctx=ctx,
            need_dx=self.input_grad)
        release_conv_ctx(ctx)
        self.conv.w.grad += dw
        if self.conv.use_bias:
            self.conv.b.grad += db
        self.bn.gamma.grad += dgamma
        self.bn.beta.grad += dbeta
        return dx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FusedConvBNReLU3D({self.conv.in_channels}->"
            f"{self.out_channels}, k={self.conv.kernel}, "
            f"fused={self.fusion_active()})"
        )
