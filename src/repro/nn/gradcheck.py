"""Finite-difference gradient checking.

Every hand-written backward pass in ``repro.nn`` is validated against a
central-difference approximation; the unit tests call these helpers on
small random tensors.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .module import Module

__all__ = ["numeric_gradient", "check_module_gradients", "relative_error"]


def numeric_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, h: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + h
        fp = f(x)
        flat[i] = orig - h
        fm = f(x)
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * h)
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max elementwise |a-b| / max(|a|, |b|, 1e-8)."""
    a, b = np.asarray(a), np.asarray(b)
    denom = np.maximum(np.maximum(np.abs(a), np.abs(b)), 1e-8)
    return float(np.max(np.abs(a - b) / denom))


def check_module_gradients(
    module: Module,
    x: np.ndarray,
    h: float = 1e-5,
    loss_weights: np.ndarray | None = None,
) -> dict[str, float]:
    """Compare analytic and numeric gradients of a module.

    Uses the scalar loss ``sum(w * module(x))`` with fixed random weights
    ``w`` (so every output element contributes a distinct gradient).
    Returns a dict of relative errors: one entry per parameter plus an
    ``"input"`` entry.
    """
    x = np.asarray(x, dtype=np.float64)
    y0 = module(x)
    if loss_weights is None:
        rng = np.random.default_rng(0)
        loss_weights = rng.normal(size=y0.shape)

    # Analytic pass.
    module.zero_grad()
    y = module(x)
    dx = module.backward(loss_weights.copy())
    analytic = {name: p.grad.copy() for name, p in module.named_parameters()
                if p.trainable}

    errors: dict[str, float] = {}

    def loss_of_input(xv):
        return float((module(xv) * loss_weights).sum())

    errors["input"] = relative_error(dx, numeric_gradient(loss_of_input, x.copy(), h))

    for name, p in module.named_parameters():
        if not p.trainable:
            continue

        def loss_of_param(v, _p=p):
            old = _p.value
            _p.value = v
            out = float((module(x) * loss_weights).sum())
            _p.value = old
            return out

        num = numeric_gradient(loss_of_param, p.value.copy(), h)
        errors[name] = relative_error(analytic[name], num)

    # Leave module state clean.
    module.zero_grad()
    _ = y0, y
    return errors
