"""Gradient-descent optimizers.

The paper trains with Adam at an initial learning rate of ``1e-4 x #GPUs``
(the linear scaling rule for data parallelism, Section IV-B); SGD and
momentum variants are provided for the hyper-parameter search space and
ablations.  Optimizers read ``Parameter.grad`` accumulated by the model's
backward pass and update ``Parameter.value`` in place -- in-place updates
keep the hot loop allocation-free.
"""

from __future__ import annotations

import numpy as np

from .module import Module
from .schedules import ConstantLR, Schedule

__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "get_optimizer",
           "clip_grad_norm"]


def clip_grad_norm(model: "Module", max_norm: float) -> float:
    """Scale all trainable gradients so their global L2 norm is at most
    ``max_norm``; returns the pre-clip norm.  The standard stabiliser
    for the scaled learning rates the LR x #GPUs rule produces."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total_sq = 0.0
    params = [p for p in model.parameters() if p.trainable]
    for p in params:
        total_sq += float(np.sum(p.grad * p.grad))
    norm = float(np.sqrt(total_sq))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm


class Optimizer:
    """Base optimizer bound to a model's trainable parameters.

    ``lr`` may be a float (wrapped in a constant schedule) or any
    :class:`~repro.nn.schedules.Schedule`; the effective rate is
    re-evaluated from the internal step counter at every :meth:`step`.
    """

    def __init__(self, model: Module, lr=1e-3, weight_decay: float = 0.0):
        self.model = model
        self.schedule: Schedule = (
            lr if isinstance(lr, Schedule) else ConstantLR(float(lr))
        )
        self.weight_decay = float(weight_decay)
        self.t = 0  # completed update count

    @property
    def lr(self) -> float:
        """Learning rate that the *next* step will use."""
        return self.schedule(self.t)

    def _trainable(self):
        return [p for p in self.model.parameters() if p.trainable]

    def step(self) -> float:
        """Apply one update; returns the learning rate used."""
        lr = self.schedule(self.t)
        for i, p in enumerate(self._trainable()):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            self._update(i, p, g, lr)
        self.t += 1
        return lr

    def _update(self, index: int, p, g: np.ndarray, lr: float) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        self.model.zero_grad()

    def state_dict(self) -> dict:
        return {"t": self.t}

    def load_state_dict(self, state: dict) -> None:
        self.t = int(state["t"])


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def _update(self, index, p, g, lr):
        p.value -= lr * g


class Momentum(Optimizer):
    """SGD with (optionally Nesterov) momentum."""

    def __init__(self, model, lr=1e-3, momentum: float = 0.9,
                 nesterov: bool = False, weight_decay: float = 0.0):
        super().__init__(model, lr, weight_decay)
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, index, p, g, lr):
        v = self._velocity.get(index)
        if v is None:
            v = np.zeros_like(p.value)
            self._velocity[index] = v
        v *= self.momentum
        v -= lr * g
        if self.nesterov:
            p.value += self.momentum * v - lr * g
        else:
            p.value += v

    def state_dict(self):
        return {"t": self.t, "velocity": {k: v.copy() for k, v in self._velocity.items()}}

    def load_state_dict(self, state):
        self.t = int(state["t"])
        self._velocity = {k: np.asarray(v).copy() for k, v in state["velocity"].items()}


class Adam(Optimizer):
    """Adam (Kingma & Ba), the paper's optimizer, with bias correction."""

    def __init__(self, model, lr=1e-4, beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(model, lr, weight_decay)
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def _update(self, index, p, g, lr):
        m = self._m.get(index)
        if m is None:
            m = np.zeros_like(p.value)
            v = np.zeros_like(p.value)
            self._m[index], self._v[index] = m, v
        else:
            v = self._v[index]
        b1, b2 = self.beta1, self.beta2
        m *= b1
        m += (1 - b1) * g
        v *= b2
        v += (1 - b2) * g * g
        t = self.t + 1
        m_hat = m / (1 - b1**t)
        v_hat = v / (1 - b2**t)
        p.value -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self):
        return {
            "t": self.t,
            "m": {k: v.copy() for k, v in self._m.items()},
            "v": {k: v.copy() for k, v in self._v.items()},
        }

    def load_state_dict(self, state):
        self.t = int(state["t"])
        self._m = {k: np.asarray(v).copy() for k, v in state["m"].items()}
        self._v = {k: np.asarray(v).copy() for k, v in state["v"].items()}


_REGISTRY = {"sgd": SGD, "momentum": Momentum, "adam": Adam}


def get_optimizer(spec: str, model: Module, **kwargs) -> Optimizer:
    """Build an optimizer by name, as hyper-parameter configs do."""
    try:
        cls = _REGISTRY[spec]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {spec!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(model, **kwargs)
