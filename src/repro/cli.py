"""Command-line interface: ``distmis <command>``.

The paper ships its framework as deployable tooling for researchers
adapting their own MIS workloads (Section V-B); the CLI is that
surface:

* ``distmis table1``   -- reproduce Table I on the simulated cluster;
* ``distmis fig4``     -- reproduce the Fig 4 series (3 jittered runs);
* ``distmis train``    -- train one configuration in-process;
* ``distmis search``   -- run a hyper-parameter search in-process;
* ``distmis simulate`` -- price one (method, #GPUs) cell, optionally
  exporting the Chrome trace;
* ``distmis profile``  -- the bottleneck analyzer: given a profiled run
  directory, the step-time attribution verdict; with no directory, the
  Section III-B1 online-vs-offline pipeline comparison;
* ``distmis calibrate``-- re-fit the cost model against Table I;
* ``distmis telemetry``-- inspect a telemetry run directory (summary /
  Prometheus text / merged Chrome trace);
* ``distmis top``      -- live (or post-hoc) text view over a run's
  ``events.jsonl`` stream: worker liveness, step-time buckets, alerts;
* ``distmis trace``    -- per-request phase waterfalls over a serve
  run's kept traces (``requests.jsonl``): queue_wait / batch_wait /
  dispatch / compute / stitch, naming the dominant phase;
* ``distmis bench``    -- the benchmark-regression gate: ``compare`` a
  fresh ``BENCH_*.json`` against the committed trajectory, ``record``
  a full-size run onto the trajectory history;
* ``distmis serve-bench`` -- load-test the micro-batched replica pool
  (:mod:`repro.serve`) at a fixed offered rate and write the serving
  latency record ``BENCH_serving.json`` (tail latency, throughput,
  batch-size histogram).

``train``, ``search`` and ``simulate`` accept ``--telemetry DIR`` to
record the run (manifest + metrics + trace) into ``DIR``.  ``search``
and ``simulate`` additionally accept ``--profile DIR``: the run then
also writes ``profile.json`` (step-time attribution + input-stage
latencies + per-trial GPU seconds), renders a live trial progress
table, and prints the bottleneck report when it finishes -- plus
``--watch`` (stream live snapshots/alerts to stdout while the run is
in flight) and ``--live-port PORT`` (serve ``/metrics`` and ``/health``
on localhost), both requiring a run directory.
"""

from __future__ import annotations

import argparse
import sys


def _watch_line(monitor) -> None:
    """One non-TTY-friendly line per live snapshot (``--watch``)."""
    vals = monitor.last_values
    firing = ",".join(a.rule for a in monitor.engine.firing) or "-"
    print(f"[watch] snapshot {monitor.snapshots:>4}  "
          f"alive {int(vals.get('workers_alive', 0))}  "
          f"stalled {int(vals.get('workers_stalled', 0))}  "
          f"data_wait {vals.get('data_wait_ratio', 0.0):.0%}  "
          f"alerts {firing}", flush=True)


def _make_hub(args):
    """A live hub writing to ``--telemetry DIR`` (``--profile DIR``
    additionally enables step-time attribution), else the null sink.
    ``--watch`` / ``--live-port`` additionally attach a
    :class:`~repro.telemetry.LiveMonitor` streaming ``events.jsonl``
    (and the localhost ``/metrics`` + ``/health`` endpoint)."""
    watch = bool(getattr(args, "watch", False))
    live_port = getattr(args, "live_port", None)
    hub = None
    if getattr(args, "profile", None):
        from .telemetry import TelemetryHub

        hub = TelemetryHub(run_dir=args.profile, profile=True)
    elif getattr(args, "telemetry", None):
        from .telemetry import TelemetryHub

        hub = TelemetryHub(run_dir=args.telemetry)
    if hub is None:
        if watch or live_port is not None:
            raise SystemExit("--watch/--live-port need a run directory: "
                             "pass --telemetry DIR (or --profile DIR)")
        from .telemetry import NULL_HUB

        return NULL_HUB
    if watch or live_port is not None:
        from .telemetry import LiveMonitor

        monitor = LiveMonitor(hub, http_port=live_port,
                              on_snapshot=_watch_line if watch else None)
        hub.attach_live(monitor)
        if live_port is not None:
            print(f"live endpoint: http://127.0.0.1:{monitor.http_port}"
                  "/health (and /metrics)")
    return hub


def _add_scale_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--subjects", type=int, default=10,
                   help="synthetic cohort size (paper: 484)")
    p.add_argument("--volume", type=int, nargs=3, default=(16, 16, 16),
                   metavar=("D", "H", "W"),
                   help="volume shape (paper: 240 240 155)")
    p.add_argument("--epochs", type=int, default=15, help="epoch budget")
    p.add_argument("--base-filters", type=int, default=4,
                   help="first-level filters (paper: 8)")
    p.add_argument("--depth", type=int, default=2,
                   help="resolution steps (paper: 4)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--kernel-backend", default=None,
                   choices=["gemm", "reference", "fused"],
                   help="convolution compute backend (default: gemm, or "
                        "DISTMIS_KERNEL_BACKEND; 'fused' adds tiled "
                        "im2col and Conv+BN+ReLU fusion)")
    p.add_argument("--compute-dtype", default=None,
                   choices=["float64", "float32"],
                   help="parameter/activation dtype (default: float64 -- "
                        "except 'search', which defaults to float32 -- or "
                        "DISTMIS_COMPUTE_DTYPE)")


#: Undo actions recorded by :func:`_apply_compute_flags`, drained by
#: :func:`main` after the command returns so in-process callers (tests)
#: never observe a leaked global backend/dtype policy.
_policy_restores: list = []


def _apply_compute_flags(args) -> None:
    """Install --kernel-backend / --compute-dtype before any model is
    built (None leaves env/default resolution untouched)."""
    if getattr(args, "kernel_backend", None):
        from .nn.kernels import set_backend

        prev = set_backend(args.kernel_backend)
        _policy_restores.append(lambda: set_backend(prev))
    if getattr(args, "compute_dtype", None):
        from .nn.dtypes import set_compute_dtype

        prev = set_compute_dtype(args.compute_dtype)
        _policy_restores.append(lambda: set_compute_dtype(prev))


def _settings(args):
    from .core import ExperimentSettings

    return ExperimentSettings(
        num_subjects=args.subjects,
        volume_shape=tuple(args.volume),
        epochs=args.epochs,
        base_filters=args.base_filters,
        depth=args.depth,
        seed=args.seed,
    )


def cmd_table1(args) -> int:
    from .perf import SpeedupTable, calibrated_model

    print(SpeedupTable(calibrated_model()).render())
    return 0


def cmd_fig4(args) -> int:
    from .core import DistMISRunner

    report = DistMISRunner().simulate_comparison(num_runs=args.runs,
                                                 base_seed=args.seed)
    print(report.render_figure_series())
    return 0


def cmd_train(args) -> int:
    from .core import MISPipeline, train_trial

    _apply_compute_flags(args)
    hub = _make_hub(args)
    settings = _settings(args)
    pipeline = MISPipeline(settings, telemetry=hub)
    config = {"learning_rate": args.lr, "loss": args.loss}
    out = train_trial(
        config, settings, pipeline, num_replicas=args.gpus,
        convergence_patience=4, telemetry=hub,
    )
    for rec in out.history:
        print(f"epoch {rec.epoch:>3}  loss {rec.train_loss:.4f}  "
              f"val DSC {rec.val_dice:.4f}  lr {rec.lr:.2e}")
    print(f"best val DSC {out.val_dice:.4f}   test DSC {out.test_dice:.4f}")
    if out.converged_epoch is not None:
        print(f"converged at epoch {out.converged_epoch}")
    run_dir = hub.finalize_run(
        kind="train", config=config, seed=settings.seed,
        final_metrics={"val_dice": out.val_dice,
                       "test_dice": out.test_dice,
                       "wall_seconds": out.wall_seconds},
    )
    if run_dir is not None:
        print(f"telemetry written to {run_dir}")
    return 0


def cmd_search(args) -> int:
    import os

    from .core import DistMISRunner, HyperparameterSpace

    # Search workloads trade a little precision for throughput: default
    # to the float32 fast path unless the user (flag or env) said
    # otherwise.  Gradcheck/parity tooling keeps the float64 default.
    if (args.compute_dtype is None
            and not os.environ.get("DISTMIS_COMPUTE_DTYPE", "").strip()):
        args.compute_dtype = "float32"
    _apply_compute_flags(args)
    space = HyperparameterSpace(
        {"learning_rate": args.lr, "loss": args.losses}
    )
    runner = DistMISRunner(space=space, settings=_settings(args),
                           telemetry=_make_hub(args))
    progress = None
    if args.profile:
        from .telemetry import ProgressReporter

        progress = ProgressReporter()
    if args.method == "data_parallel":
        result = runner.run_inprocess("data_parallel", num_gpus=args.gpus)
        for o in result.outcomes:
            print(f"{o.config}  val DSC {o.val_dice:.4f}")
        best = result.best()
        print(f"best: {best.config} (val DSC {best.val_dice:.4f})")
    else:
        result = runner.run_inprocess(
            "experiment_parallel",
            executor=args.executor, max_workers=args.workers,
            progress=progress,
        )
        if args.executor == "process":
            workers = args.workers or result.num_gpus
            print(f"process executor: {len(result.outcomes)} trials over "
                  f"{workers} workers in {result.elapsed_seconds:.1f} s")
        for row in result.analysis.results_table("val_dice"):
            print(f"{row['trial_id']} {row['config']} "
                  f"val DSC {row['val_dice']:.4f} [{row['status']}]")
        print(f"best: {result.analysis.best_config('val_dice')}")
    if args.profile:
        from .telemetry import analyze_run_dir

        print(analyze_run_dir(runner.telemetry.run_dir).render())
    if runner.telemetry.enabled:
        print(f"telemetry written to {runner.telemetry.run_dir}")
    return 0


def _parse_failures(spec: str):
    """``mtbf=43200,repair=600[,frac=0.9]`` -> FailureModel (seconds)."""
    from .cluster import FailureModel

    known = {"mtbf": "mtbf_s", "repair": "repair_s",
             "frac": "checkpoint_fraction"}
    kwargs = {}
    for part in spec.split(","):
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in known:
            raise SystemExit(
                f"bad --failures entry {part!r}; expected "
                "mtbf=SECONDS[,repair=SECONDS][,frac=FRACTION]"
            )
        kwargs[known[key]] = float(value)
    if "mtbf_s" not in kwargs:
        raise SystemExit("--failures needs at least mtbf=SECONDS")
    return FailureModel(**kwargs)


def cmd_simulate(args) -> int:
    from .core import DistMISRunner
    from .perf import format_hms

    failures = _parse_failures(args.failures) if args.failures else None
    retry_policy = None
    if failures is not None and (args.max_retries is not None
                                 or args.resume != "checkpoint"):
        from .fault_tolerance import RetryPolicy

        retry_policy = RetryPolicy(
            max_retries=args.max_retries if args.max_retries is not None
            else 0,
            resume=args.resume,
        )
    runner = DistMISRunner(telemetry=_make_hub(args))
    if args.profile:
        # Pin the simulated run's step-time attribution to the
        # calibrated cost model's decomposition for the method's
        # per-trial GPU width (experiment-parallel trials are 1-GPU,
        # the property behind claim C1's zero sync overhead).
        from .perf import TrialConfig
        from .telemetry import StepAttribution

        if args.method == "data_parallel":
            width = args.gpus
        elif args.method == "hybrid":
            width = args.gpus_per_trial or min(
                args.gpus, runner.cost_model.cluster.node.num_gpus)
        else:
            width = 1
        runner.telemetry.attach_attribution(StepAttribution.from_cost_model(
            runner.cost_model, TrialConfig(), num_gpus=width))
    run = runner.simulate(args.method, args.gpus, seed=args.seed,
                          gpus_per_trial=args.gpus_per_trial,
                          failures=failures, retry_policy=retry_policy)
    print(f"{run.method} @ {args.gpus} GPUs: "
          f"{format_hms(run.elapsed_seconds)} "
          f"({run.elapsed_seconds:.0f} s), "
          f"mean GPU utilisation {run.timeline.mean_utilization():.0%}")
    if failures is not None:
        print(f"failures: {run.num_failures}, wasted "
              f"{format_hms(run.wasted_seconds)}, "
              f"abandoned trials: {run.num_abandoned}")
        for rec in run.retries:
            resumed = (f"resume at epoch {rec.resumed_epoch}"
                       if rec.resumed_epoch is not None else "from scratch")
            print(f"  {rec.trial} attempt {rec.attempt} failed at "
                  f"{format_hms(rec.failed_at_s)} ({resumed})")
    if args.trace:
        run.timeline.to_chrome_trace(args.trace)
        print(f"chrome trace written to {args.trace}")
    if args.profile:
        from .telemetry import analyze_run_dir

        print(analyze_run_dir(runner.telemetry.run_dir).render())
    if runner.telemetry.enabled:
        print(f"telemetry written to {runner.telemetry.run_dir}")
    return 0


def cmd_telemetry(args) -> int:
    import json
    from pathlib import Path

    from .telemetry import RunManifest
    from .telemetry.hub import METRICS_JSONL, METRICS_PROM, TRACE_JSON

    run_dir = Path(args.run_dir)
    if args.action == "summary":
        if not run_dir.is_dir():
            print(f"no run directory at {run_dir}", file=sys.stderr)
            return 1
        manifest_path = run_dir / "manifest.json"
        if manifest_path.exists():
            m = RunManifest.load(run_dir)
            print(f"run       : {m.run_id}")
            print(f"kind      : {m.kind}")
            created = m.to_dict()["created_iso"]
            print(f"created   : {created}")
            print(f"git rev   : {m.git_rev or '(unknown)'}")
            print(f"host      : {m.host.get('hostname', '?')} "
                  f"({m.host.get('platform', '?')})")
            print(f"seed      : {m.seed}")
            if m.config:
                print(f"config    : {json.dumps(m.config, sort_keys=True)}")
            for k, v in sorted(m.final_metrics.items()):
                print(f"  {k:<20} {v}")
        else:
            print(f"no manifest.json in {run_dir}")
        metrics_path = run_dir / METRICS_JSONL
        if metrics_path.exists():
            rows = [json.loads(line)
                    for line in metrics_path.read_text().splitlines() if line]
            print(f"metrics   : {len(rows)} series")
            for row in rows:
                labels = ",".join(f"{k}={v}"
                                  for k, v in sorted(row["labels"].items()))
                name = row["name"] + (f"{{{labels}}}" if labels else "")
                if row["kind"] == "histogram":
                    mean = row["sum"] / row["count"] if row["count"] else 0.0
                    print(f"  {name:<44} n={row['count']} mean={mean:.4g}")
                else:
                    print(f"  {name:<44} {row['value']:g}")
        trace_path = run_dir / TRACE_JSON
        if trace_path.exists():
            events = json.loads(trace_path.read_text())
            cats: dict[str, int] = {}
            for ev in events:
                cats[ev.get("cat", "?")] = cats.get(ev.get("cat", "?"), 0) + 1
            breakdown = ", ".join(f"{k}: {v}" for k, v in sorted(cats.items()))
            print(f"trace     : {len(events)} spans ({breakdown})")
        return 0
    if args.action == "prom":
        prom = run_dir / METRICS_PROM
        if not prom.exists():
            print(f"no {METRICS_PROM} in {run_dir}", file=sys.stderr)
            return 1
        sys.stdout.write(prom.read_text())
        return 0
    # action == "trace": merge the run dirs' traces into one Perfetto file.
    # Each run dir may already span several pids (real spans + simulated
    # timelines), so shift rather than overwrite to keep lanes distinct.
    merged: list[dict] = []
    offset = 0
    for d in [run_dir] + [Path(p) for p in args.extra_runs]:
        trace_path = d / TRACE_JSON
        if not trace_path.exists():
            print(f"no {TRACE_JSON} in {d}", file=sys.stderr)
            return 1
        events = json.loads(trace_path.read_text())
        for ev in events:
            ev["pid"] = offset + ev.get("pid", 0)
            merged.append(ev)
        offset = max((e["pid"] for e in events), default=offset) + 1
    # metadata events ("M": process names, clock anchors) carry no ts;
    # keep them ahead of the span stream they describe
    merged.sort(key=lambda e: e.get("ts", -1.0))
    out = Path(args.output)
    out.write_text(json.dumps(merged))
    print(f"merged chrome trace ({len(merged)} spans) written to {out}")
    return 0


def cmd_profile(args) -> int:
    if args.run_dir:
        from .telemetry import analyze_run_dir

        try:
            report = analyze_run_dir(args.run_dir)
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        print(report.render())
        return 0
    from .core import profile_online_vs_offline

    report = profile_online_vs_offline(
        num_subjects=args.subjects,
        volume_shape=tuple(args.volume),
        epochs=args.epochs,
    )
    print(report.render())
    return 0


def cmd_top(args) -> int:
    from .telemetry import run_top

    return run_top(args.run_dir, follow=args.follow,
                   interval_s=args.interval, max_frames=args.frames)


def cmd_trace(args) -> int:
    from .telemetry import REQUESTS_JSONL, load_request_traces
    from .telemetry.tracing import render_waterfall

    traces = load_request_traces(args.run_dir)
    if not traces:
        print(f"no {REQUESTS_JSONL} in {args.run_dir} -- serve with a "
              "--telemetry run directory (kept traces are written at "
              "flush time)", file=sys.stderr)
        return 1
    if args.request is not None:
        chosen = [t for t in traces if t.request_id == args.request
                  or t.trace_id == args.request]
        if not chosen:
            print(f"no kept trace for request {args.request!r} "
                  f"({len(traces)} kept traces; it may have been "
                  "sampled out)", file=sys.stderr)
            return 1
        for t in chosen:
            print(render_waterfall(t))
        return 0
    ranked = sorted(traces, key=lambda t: t.latency_s, reverse=True)
    if args.slowest is not None:
        for i, t in enumerate(ranked[:args.slowest]):
            if i:
                print()
            print(render_waterfall(t))
        return 0
    # default: a summary plus the slowest request's waterfall
    reasons: dict[str, int] = {}
    for t in traces:
        reasons[t.keep_reason] = reasons.get(t.keep_reason, 0) + 1
    kept = ", ".join(f"{k}: {v}" for k, v in sorted(reasons.items()))
    print(f"{len(traces)} kept request trace(s) ({kept})")
    dominant: dict[str, int] = {}
    for t in traces:
        phase = t.dominant_phase()
        if phase is not None:
            dominant[phase] = dominant.get(phase, 0) + 1
    if dominant:
        top_phase = max(sorted(dominant), key=lambda p: dominant[p])
        print(f"dominant phase across kept traces: {top_phase} "
              f"({dominant[top_phase]}/{len(traces)} requests)")
    print()
    print("slowest kept request:")
    print(render_waterfall(ranked[0]))
    return 0


def cmd_bench_compare(args) -> int:
    from pathlib import Path

    from .perf.regression import (
        compare_records,
        load_bench_record,
        load_trajectory,
    )

    candidate_path = Path(args.candidate)
    bench_dir = Path(args.bench_dir)
    baseline_path = Path(args.baseline) if args.baseline else \
        bench_dir / candidate_path.name.replace("_smoke.json", ".json")
    try:
        candidate = load_bench_record(candidate_path)
    except (OSError, ValueError) as exc:
        print(f"candidate {candidate_path}: {exc}", file=sys.stderr)
        return 1
    if not baseline_path.exists():
        print(f"no trajectory baseline at {baseline_path} -- commit a "
              "full-size run first", file=sys.stderr)
        return 1
    try:
        baseline = load_bench_record(baseline_path)
    except ValueError as exc:
        print(f"baseline {baseline_path}: {exc}", file=sys.stderr)
        return 1
    history = load_trajectory(bench_dir, baseline.benchmark,
                              host_key=baseline.host_key)
    report = compare_records(baseline, candidate,
                             rel_threshold=args.threshold,
                             history=history, strict_host=args.strict_host)
    print(report.describe())
    if report.quarantined is not None:
        # A smoke candidate never gates; a smoke *baseline* means the
        # committed trajectory itself is corrupt -- that must fail.
        return 0 if candidate.smoke else 1
    return 0 if report.ok else 1


def cmd_bench_record(args) -> int:
    from pathlib import Path

    from .perf.regression import append_trajectory, load_bench_record

    try:
        record = load_bench_record(args.candidate)
        path = append_trajectory(record, Path(args.bench_dir))
    except (OSError, ValueError) as exc:
        print(f"{args.candidate}: {exc}", file=sys.stderr)
        return 1
    print(f"{record.benchmark}: {len(record.metrics)} metric(s) appended "
          f"to {path}")
    return 0


def cmd_serve_bench(args) -> int:
    import tempfile
    from pathlib import Path

    import numpy as np

    from .core.checkpoint import CheckpointManager
    from .nn import UNet3D
    from .perf.regression import bench_output_path, is_smoke_env
    from .serve import (
        ModelServer,
        ServeConfig,
        run_serve_bench,
        write_serving_record,
    )

    hub = _make_hub(args)
    smoke = bool(args.smoke or is_smoke_env())
    model_kwargs = dict(in_channels=args.channels, out_channels=1,
                        base_filters=args.base_filters, depth=args.depth,
                        use_batchnorm=False)
    rng = np.random.default_rng(args.seed)
    tmp = None
    checkpoint = args.checkpoint
    if checkpoint is None:
        # a synthetic "best trial": untrained weights through the same
        # CheckpointManager round-trip a tuned model would take
        tmp = tempfile.TemporaryDirectory(prefix="serve_ckpt_")
        model = UNet3D(rng=np.random.default_rng(args.seed),
                       **model_kwargs)
        mgr = CheckpointManager(tmp.name)
        mgr.save(model, epoch=0, val_dice=1.0)
        checkpoint = str(mgr.best_path)
    volumes = [rng.normal(size=(args.channels, *args.volume))
               for _ in range(8)]
    large_volumes = None
    if args.large_every:
        large_volumes = [rng.normal(size=(args.channels,
                                          *args.large_volume))
                         for _ in range(4)]
    priority_mix = None
    if args.priority_mix is not None:
        high, normal, low = args.priority_mix
        priority_mix = {"high": high, "normal": normal, "low": low}

    def build_config(**overrides):
        base = dict(
            checkpoint=checkpoint, model_builder=UNet3D,
            model_kwargs=model_kwargs, replicas=args.replicas,
            max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
            autoscale=args.autoscale,
            full_volume_max_voxels=args.full_volume_max_voxels,
            patch_shape=tuple(args.patch_size),
            overlap=args.overlap, sw_batch_size=args.sw_batch_size,
            scatter_gather=not args.no_scatter,
            shed_backlog=args.shed_backlog,
            compute_dtype=args.compute_dtype,
        )
        base.update(overrides)
        return ServeConfig(**base)

    def bench_once(config):
        with ModelServer(config, telemetry=hub) as server:
            return run_serve_bench(
                server, volumes, rps=args.rps, duration_s=args.duration,
                smoke=smoke, priority_mix=priority_mix,
                large_volumes=large_volumes,
                large_every=args.large_every, seed=args.seed)

    try:
        record = bench_once(build_config())
        if args.dispatch_compare:
            # same offered load through legacy whole-request dispatch:
            # the head-of-line-blocking baseline the scatter--gather
            # small-request p99 win is measured against
            whole = bench_once(build_config(scatter_gather=False))
            if args.large_every:
                scatter_p99 = (
                    record["mixed_workload"]["small"]
                    ["latency_seconds"]["p99"])
                whole_p99 = (
                    whole["mixed_workload"]["small"]
                    ["latency_seconds"]["p99"])
                record["mixed_workload"]["whole_request_small"] = (
                    whole["mixed_workload"]["small"])
                record["mixed_workload"]["small_p99_speedup"] = (
                    whole_p99 / scatter_p99 if scatter_p99 > 0 else 0.0)
            else:
                scatter_p99 = record["latency_seconds"]["p99"]
                whole_p99 = whole["latency_seconds"]["p99"]
                record["dispatch_compare"] = {
                    "whole_request": whole["latency_seconds"],
                    "p99_speedup": (whole_p99 / scatter_p99
                                    if scatter_p99 > 0 else 0.0),
                }
        if args.dtype_compare and args.compute_dtype != "float32":
            # float32 serving mode (ROADMAP 1c): latency win plus the
            # identity cost versus the float64-served reference,
            # recorded as a labelled row of the serving record
            from .core.inference import full_volume_inference
            from .core.checkpoint import load_checkpoint

            with ModelServer(build_config(compute_dtype="float32"),
                             telemetry=hub) as server32:
                rec32 = run_serve_bench(
                    server32, volumes, rps=args.rps,
                    duration_s=args.duration, smoke=smoke,
                    priority_mix=priority_mix,
                    large_volumes=large_volumes,
                    large_every=args.large_every, seed=args.seed)
                probe = server32.submit(volumes[0])
                server32.drain(timeout_s=60)
                pred32 = probe.result().prediction
            ref_model = UNet3D(rng=np.random.default_rng(args.seed),
                               **model_kwargs)
            load_checkpoint(checkpoint, ref_model)
            ref = full_volume_inference(
                ref_model, np.asarray(volumes[0])[None]).prediction[0]
            diff = float(np.max(np.abs(
                pred32.astype(np.float64) - ref)))
            p99_64 = record["latency_seconds"]["p99"]
            p99_32 = rec32["latency_seconds"]["p99"]
            record["float32_mode"] = {
                "latency_seconds": rec32["latency_seconds"],
                "throughput_rps": rec32["throughput_rps"],
                "p99_speedup_vs_float64": (p99_64 / p99_32
                                           if p99_32 > 0 else 0.0),
                "max_abs_diff_vs_float64": diff,
                "bit_identical_to_float64": diff == 0.0,
            }
    finally:
        if tmp is not None:
            tmp.cleanup()
    if args.out:
        out = Path(args.out)
    else:
        out = bench_output_path(Path(args.bench_dir) / "_anchor",
                                "serving", smoke)
    out.parent.mkdir(parents=True, exist_ok=True)
    write_serving_record(record, out)
    lat = record["latency_seconds"]
    req = record["requests"]
    print(f"serving: {req['completed']}/{req['sent']} requests on "
          f"{args.replicas} replica(s) ({req['failed']} failed, "
          f"{req['shed']} shed, {req['retried']} retried)")
    print(f"  latency  p50 {lat['p50'] * 1e3:.1f} ms   "
          f"p95 {lat['p95'] * 1e3:.1f} ms   "
          f"p99 {lat['p99'] * 1e3:.1f} ms")
    print(f"  throughput {record['throughput_rps']:.1f} rps "
          f"(offered {args.rps:g})")
    if priority_mix or args.shed_backlog:
        for level in ("high", "normal", "low"):
            block = record["priorities"][level]
            if not (block["count"] or block["shed"]):
                continue
            print(f"  {level:>6}: {block['count']} served, "
                  f"{block['shed']} shed, "
                  f"p99 {block['latency_seconds']['p99'] * 1e3:.1f} ms")
    mixed = record.get("mixed_workload")
    if mixed:
        print(f"  small p99 {mixed['small']['latency_seconds']['p99'] * 1e3:.1f} ms"
              f"   large p99 {mixed['large']['latency_seconds']['p99'] * 1e3:.1f} ms"
              + (f"   small-p99 speedup vs whole-request "
                 f"{mixed['small_p99_speedup']:.1f}x"
                 if "small_p99_speedup" in mixed else ""))
    f32 = record.get("float32_mode")
    if f32:
        print(f"  float32 mode: p99 "
              f"{f32['latency_seconds']['p99'] * 1e3:.1f} ms "
              f"({f32['p99_speedup_vs_float64']:.2f}x vs float64), "
              f"max |diff| {f32['max_abs_diff_vs_float64']:.3g}")
    hist = record["batch_size"]["histogram"]
    sizes = ", ".join(f"{k}x{hist[k]}"
                      for k in sorted(hist, key=int))
    print(f"  batch sizes: {sizes}")
    run_dir = hub.finalize_run(
        kind="serve-bench",
        config={"rps": args.rps, "duration": args.duration,
                "replicas": args.replicas, "max_batch": args.max_batch,
                "max_delay_ms": args.max_delay_ms,
                "scatter_gather": not args.no_scatter,
                "shed_backlog": args.shed_backlog,
                "priority_mix": priority_mix or {},
                "large_every": args.large_every},
        seed=args.seed,
        final_metrics={"latency_p50_s": lat["p50"],
                       "latency_p99_s": lat["p99"],
                       "throughput_rps": record["throughput_rps"],
                       "shed": float(req["shed"])},
    )
    if run_dir is not None:
        print(f"telemetry written to {run_dir}")
    print(f"serving benchmark written to {out}")
    return 0


def cmd_summary(args) -> int:
    import numpy as np

    from .nn import UNet3D, format_summary

    net = UNet3D(
        4, 1, args.base_filters, args.depth,
        transpose_halves=not args.transpose_keeps_channels,
        rng=np.random.default_rng(0),
    )
    print(format_summary(net, (1, 4, *args.volume)))
    return 0


def cmd_report(args) -> int:
    from .core.report import build_report

    text = build_report(num_runs=args.runs, base_seed=args.seed)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def cmd_calibrate(args) -> int:
    from .perf import fit_to_table1

    result = fit_to_table1(max_nfev=args.max_nfev)
    print("fitted parameters:")
    for name in ("gpu_efficiency", "straggler_sigma", "mirrored_overhead_s",
                 "internode_overhead_s", "epoch_fixed_s", "startup_base_s",
                 "startup_per_node_s", "tune_trial_overhead_s"):
        print(f"  {name} = {getattr(result.params, name):.6g}")
    print(f"max |error| {result.max_abs_pct_error:.1f}%, "
          f"mean {result.mean_abs_pct_error:.1f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="distmis",
        description="DistMIS reproduction: distributed hyper-parameter "
                    "tuning for 3D medical image segmentation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="reproduce Table I").set_defaults(
        fn=cmd_table1
    )

    p = sub.add_parser("fig4", help="reproduce Figure 4 series")
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_fig4)

    p = sub.add_parser("train", help="train one configuration in-process")
    _add_scale_args(p)
    p.add_argument("--lr", type=float, default=3e-3)
    p.add_argument("--loss", default="dice",
                   choices=["dice", "quadratic_dice", "bce"])
    p.add_argument("--gpus", type=int, default=1,
                   help="virtual data-parallel replicas")
    p.add_argument("--telemetry", metavar="DIR",
                   help="record manifest/metrics/trace into DIR")
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("search", help="hyper-parameter search in-process")
    _add_scale_args(p)
    p.add_argument("--lr", type=float, nargs="+", default=[3e-3, 1e-3])
    p.add_argument("--losses", nargs="+", default=["dice"])
    p.add_argument("--method", default="experiment_parallel",
                   choices=["data_parallel", "experiment_parallel"])
    p.add_argument("--gpus", type=int, default=1)
    p.add_argument("--executor", default="serial",
                   choices=["serial", "process"],
                   help="experiment_parallel trial execution backend: "
                        "serial (one core) or a process pool (true "
                        "multi-core parallelism, result-identical)")
    p.add_argument("--workers", type=int, default=None,
                   help="process executor: worker processes "
                        "(default: all cores)")
    p.add_argument("--telemetry", metavar="DIR",
                   help="record manifest/metrics/trace into DIR")
    p.add_argument("--profile", metavar="DIR",
                   help="profile the run into DIR (step-time attribution "
                        "+ merged cross-process trace + bottleneck "
                        "report; implies --telemetry DIR)")
    p.add_argument("--watch", action="store_true",
                   help="stream live snapshot/alert lines while the search "
                        "runs (requires --telemetry/--profile; the run dir "
                        "also gains events.jsonl for `distmis top`)")
    p.add_argument("--live-port", type=int, default=None, metavar="PORT",
                   help="serve /metrics (Prometheus) and /health (JSON) on "
                        "localhost while the run is in flight (0 = any "
                        "free port; requires --telemetry/--profile)")
    p.set_defaults(fn=cmd_search)

    p = sub.add_parser("simulate", help="price one cell on the simulator")
    p.add_argument("method",
                   choices=["data_parallel", "experiment_parallel", "hybrid"])
    p.add_argument("gpus", type=int)
    p.add_argument("--gpus-per-trial", type=int, default=None,
                   help="hybrid method: GPUs per trial (default: one node)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--failures", metavar="SPEC",
                   help="price the run under exponential GPU failures: "
                        "mtbf=SECONDS[,repair=SECONDS][,frac=FRACTION] "
                        "(experiment_parallel only; per-epoch checkpoint "
                        "resume unless --resume scratch)")
    p.add_argument("--max-retries", type=int, default=None,
                   help="with --failures: abandon a trial after this many "
                        "retries (default: unlimited)")
    p.add_argument("--resume", choices=["checkpoint", "scratch"],
                   default="checkpoint",
                   help="with --failures: what a retried trial keeps")
    p.add_argument("--trace", help="write a Chrome trace JSON here")
    p.add_argument("--telemetry", metavar="DIR",
                   help="record manifest/metrics/trace into DIR")
    p.add_argument("--profile", metavar="DIR",
                   help="profile the run into DIR: attribution from the "
                        "calibrated cost model + bottleneck report "
                        "(implies --telemetry DIR)")
    p.add_argument("--watch", action="store_true",
                   help="stream live snapshot lines while the simulation "
                        "runs (requires --telemetry/--profile)")
    p.add_argument("--live-port", type=int, default=None, metavar="PORT",
                   help="serve /metrics and /health on localhost during "
                        "the run (0 = any free port)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("telemetry",
                       help="inspect a telemetry run directory")
    p.add_argument("action", choices=["summary", "prom", "trace"],
                   help="summary: manifest + metrics overview; prom: dump "
                        "Prometheus text; trace: merge Chrome traces")
    p.add_argument("run_dir", help="run directory written by --telemetry")
    p.add_argument("extra_runs", nargs="*",
                   help="further run dirs to merge (trace action)")
    p.add_argument("--output", default="merged_trace.json",
                   help="output path for the merged trace")
    p.set_defaults(fn=cmd_telemetry)

    p = sub.add_parser("profile", help="bottleneck analyzer / report")
    p.add_argument("run_dir", nargs="?", default=None,
                   help="a --profile run directory: print its step-time "
                        "attribution verdict (omit for the online-vs-"
                        "offline pipeline comparison)")
    p.add_argument("--subjects", type=int, default=6)
    p.add_argument("--volume", type=int, nargs=3, default=(48, 48, 32))
    p.add_argument("--epochs", type=int, default=3)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("top",
                       help="live text view over a run's events.jsonl")
    p.add_argument("run_dir",
                   help="run directory written with --watch / a live "
                        "monitor (needs events.jsonl)")
    p.add_argument("--follow", action="store_true",
                   help="keep tailing until the run's final health event "
                        "(default: render once and exit)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh period in seconds with --follow")
    p.add_argument("--frames", type=int, default=None,
                   help="stop after this many rendered frames (useful in "
                        "non-TTY smoke runs)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("trace",
                       help="per-request phase waterfalls from a serve "
                            "run's kept traces (requests.jsonl)")
    p.add_argument("run_dir",
                   help="run directory written by a served --telemetry "
                        "run (needs requests.jsonl)")
    p.add_argument("--request", default=None, metavar="ID",
                   help="render one request by request id or trace id")
    p.add_argument("--slowest", type=int, default=None, metavar="N",
                   help="render the N slowest kept requests")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("bench", help="benchmark-regression tracking")
    bsub = p.add_subparsers(dest="bench_command", required=True)
    c = bsub.add_parser("compare",
                        help="gate a fresh BENCH_*.json against the "
                             "committed trajectory")
    c.add_argument("candidate", help="freshly written BENCH_*.json")
    c.add_argument("--baseline", default=None,
                   help="trajectory point to diff against (default: the "
                        "committed file of the same name in --bench-dir)")
    c.add_argument("--bench-dir", default="benchmarks",
                   help="directory holding the committed trajectory")
    c.add_argument("--threshold", type=float, default=0.15,
                   help="relative regression band (widened per metric by "
                        "the trajectory's measured noise)")
    c.add_argument("--strict-host", action="store_true",
                   help="gate even when host/BLAS metadata differ "
                        "(default: cross-host comparisons are advisory)")
    c.set_defaults(fn=cmd_bench_compare)
    c = bsub.add_parser("record",
                        help="append a full-size run to the trajectory "
                             "history JSONL")
    c.add_argument("candidate", help="BENCH_*.json to append")
    c.add_argument("--bench-dir", default="benchmarks")
    c.set_defaults(fn=cmd_bench_record)

    p = sub.add_parser("serve-bench",
                       help="load-test the micro-batched replica pool "
                            "and record the serving latency trajectory")
    p.add_argument("--rps", type=float, default=20.0,
                   help="offered request rate (open loop)")
    p.add_argument("--duration", type=float, default=3.0,
                   help="load-generation window in seconds")
    p.add_argument("--replicas", type=int, default=2,
                   help="model replica processes")
    p.add_argument("--max-batch", type=int, default=4,
                   help="micro-batch size cap")
    p.add_argument("--max-delay-ms", type=float, default=10.0,
                   help="micro-batch coalescing deadline")
    p.add_argument("--autoscale", action="store_true",
                   help="let the backlog-driven autoscaler resize the "
                        "pool during the run")
    p.add_argument("--priority-mix", type=float, nargs=3, default=None,
                   metavar=("HIGH", "NORMAL", "LOW"),
                   help="offered fraction per priority (e.g. 0.2 0.6 "
                        "0.2); default: all normal")
    p.add_argument("--shed-backlog", type=int, default=0,
                   help="backlog at which low-priority admissions are "
                        "shed (0 = no shedding)")
    p.add_argument("--no-scatter", action="store_true",
                   help="whole-request dispatch for sliding-window "
                        "volumes (legacy mode; default scatters them "
                        "into patch-chunk tasks)")
    p.add_argument("--dispatch-compare", action="store_true",
                   help="also run the same load through whole-request "
                        "dispatch and record the small-request p99 "
                        "speedup of scatter-gather")
    p.add_argument("--dtype-compare", action="store_true",
                   help="also run the bench in float32 serving mode and "
                        "record the latency/identity trade-off row")
    p.add_argument("--compute-dtype", default=None,
                   choices=["float64", "float32"],
                   help="replica kernel dtype policy (default float64; "
                        "float32 trades offline bit-identity for speed)")
    p.add_argument("--large-every", type=int, default=0,
                   help="replace every Nth request with a large "
                        "sliding-window volume (0 = uniform small "
                        "traffic)")
    p.add_argument("--large-volume", type=int, nargs=3,
                   default=(16, 16, 16), metavar=("D", "H", "W"),
                   help="shape of the large mixed-workload volume")
    p.add_argument("--full-volume-max-voxels", type=int,
                   default=64 ** 3,
                   help="volumes above this spatial voxel count route "
                        "to sliding-window inference")
    p.add_argument("--patch-size", type=int, nargs=3,
                   default=(16, 16, 16), metavar=("D", "H", "W"),
                   help="sliding-window patch shape")
    p.add_argument("--overlap", type=float, default=0.5,
                   help="sliding-window patch overlap in [0, 1)")
    p.add_argument("--sw-batch-size", type=int, default=4,
                   help="patches per sliding-window model invocation "
                        "(the scatter-gather chunk size)")
    p.add_argument("--volume", type=int, nargs=3, default=(16, 16, 16),
                   metavar=("D", "H", "W"),
                   help="served volume shape (paper: 240 240 155)")
    p.add_argument("--channels", type=int, default=1,
                   help="input channels (paper: 4 modalities)")
    p.add_argument("--base-filters", type=int, default=2)
    p.add_argument("--depth", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint", default=None,
                   help="serve this .npz checkpoint (model flags must "
                        "match its architecture; default: a synthetic "
                        "best-trial checkpoint built from the flags)")
    p.add_argument("--bench-dir", default="benchmarks",
                   help="where BENCH_serving[_smoke].json lands")
    p.add_argument("--out", default=None,
                   help="explicit output path (overrides --bench-dir)")
    p.add_argument("--smoke", action="store_true",
                   help="write the quarantined *_smoke.json record "
                        "(also: DISTMIS_BENCH_SMOKE=1)")
    p.add_argument("--telemetry", metavar="DIR",
                   help="record manifest/metrics/trace into DIR")
    p.add_argument("--watch", action="store_true",
                   help="stream live snapshot/alert lines (serve_backlog "
                        "etc.) while the bench runs; requires --telemetry")
    p.add_argument("--live-port", type=int, default=None, metavar="PORT",
                   help="serve /metrics and /health on localhost during "
                        "the run (0 = any free port)")
    p.set_defaults(fn=cmd_serve_bench)

    p = sub.add_parser("summary", help="print the model's layer summary")
    p.add_argument("--base-filters", type=int, default=8)
    p.add_argument("--depth", type=int, default=4)
    p.add_argument("--volume", type=int, nargs=3, default=(16, 16, 16),
                   metavar=("D", "H", "W"),
                   help="probe volume for output shapes (paper: 240 240 152)")
    p.add_argument("--transpose-keeps-channels", action="store_true",
                   help="use the 410k-parameter synthesis variant")
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("report",
                       help="regenerate the full reproduction report")
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="write markdown here instead of stdout")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("calibrate", help="re-fit the cost model to Table I")
    p.add_argument("--max-nfev", type=int, default=300)
    p.set_defaults(fn=cmd_calibrate)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    finally:
        while _policy_restores:
            _policy_restores.pop()()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
