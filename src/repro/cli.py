"""Command-line interface: ``distmis <command>``.

The paper ships its framework as deployable tooling for researchers
adapting their own MIS workloads (Section V-B); the CLI is that
surface:

* ``distmis table1``   -- reproduce Table I on the simulated cluster;
* ``distmis fig4``     -- reproduce the Fig 4 series (3 jittered runs);
* ``distmis train``    -- train one configuration in-process;
* ``distmis search``   -- run a hyper-parameter search in-process;
* ``distmis simulate`` -- price one (method, #GPUs) cell, optionally
  exporting the Chrome trace;
* ``distmis profile``  -- the Section III-B1 pipeline bottleneck report;
* ``distmis calibrate``-- re-fit the cost model against Table I.
"""

from __future__ import annotations

import argparse
import sys


def _add_scale_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--subjects", type=int, default=10,
                   help="synthetic cohort size (paper: 484)")
    p.add_argument("--volume", type=int, nargs=3, default=(16, 16, 16),
                   metavar=("D", "H", "W"),
                   help="volume shape (paper: 240 240 155)")
    p.add_argument("--epochs", type=int, default=15, help="epoch budget")
    p.add_argument("--base-filters", type=int, default=4,
                   help="first-level filters (paper: 8)")
    p.add_argument("--depth", type=int, default=2,
                   help="resolution steps (paper: 4)")
    p.add_argument("--seed", type=int, default=0)


def _settings(args):
    from .core import ExperimentSettings

    return ExperimentSettings(
        num_subjects=args.subjects,
        volume_shape=tuple(args.volume),
        epochs=args.epochs,
        base_filters=args.base_filters,
        depth=args.depth,
        seed=args.seed,
    )


def cmd_table1(args) -> int:
    from .perf import SpeedupTable, calibrated_model

    print(SpeedupTable(calibrated_model()).render())
    return 0


def cmd_fig4(args) -> int:
    from .core import DistMISRunner

    report = DistMISRunner().simulate_comparison(num_runs=args.runs,
                                                 base_seed=args.seed)
    print(report.render_figure_series())
    return 0


def cmd_train(args) -> int:
    from .core import MISPipeline, train_trial

    settings = _settings(args)
    pipeline = MISPipeline(settings)
    out = train_trial(
        {"learning_rate": args.lr, "loss": args.loss},
        settings, pipeline, num_replicas=args.gpus,
        convergence_patience=4,
    )
    for rec in out.history:
        print(f"epoch {rec.epoch:>3}  loss {rec.train_loss:.4f}  "
              f"val DSC {rec.val_dice:.4f}  lr {rec.lr:.2e}")
    print(f"best val DSC {out.val_dice:.4f}   test DSC {out.test_dice:.4f}")
    if out.converged_epoch is not None:
        print(f"converged at epoch {out.converged_epoch}")
    return 0


def cmd_search(args) -> int:
    from .core import DistMISRunner, HyperparameterSpace

    space = HyperparameterSpace(
        {"learning_rate": args.lr, "loss": args.losses}
    )
    runner = DistMISRunner(space=space, settings=_settings(args))
    if args.method == "data_parallel":
        result = runner.run_inprocess("data_parallel", num_gpus=args.gpus)
        for o in result.outcomes:
            print(f"{o.config}  val DSC {o.val_dice:.4f}")
        best = result.best()
        print(f"best: {best.config} (val DSC {best.val_dice:.4f})")
    else:
        result = runner.run_inprocess("experiment_parallel")
        for row in result.analysis.results_table("val_dice"):
            print(f"{row['trial_id']} {row['config']} "
                  f"val DSC {row['val_dice']:.4f} [{row['status']}]")
        print(f"best: {result.analysis.best_config('val_dice')}")
    return 0


def cmd_simulate(args) -> int:
    from .core import DistMISRunner
    from .perf import format_hms

    runner = DistMISRunner()
    run = runner.simulate(args.method, args.gpus, seed=args.seed,
                          gpus_per_trial=args.gpus_per_trial)
    print(f"{args.method} @ {args.gpus} GPUs: "
          f"{format_hms(run.elapsed_seconds)} "
          f"({run.elapsed_seconds:.0f} s), "
          f"mean GPU utilisation {run.timeline.mean_utilization():.0%}")
    if args.trace:
        run.timeline.to_chrome_trace(args.trace)
        print(f"chrome trace written to {args.trace}")
    return 0


def cmd_profile(args) -> int:
    from .core import profile_online_vs_offline

    report = profile_online_vs_offline(
        num_subjects=args.subjects,
        volume_shape=tuple(args.volume),
        epochs=args.epochs,
    )
    print(report.render())
    return 0


def cmd_summary(args) -> int:
    import numpy as np

    from .nn import UNet3D, format_summary

    net = UNet3D(
        4, 1, args.base_filters, args.depth,
        transpose_halves=not args.transpose_keeps_channels,
        rng=np.random.default_rng(0),
    )
    print(format_summary(net, (1, 4, *args.volume)))
    return 0


def cmd_report(args) -> int:
    from .core.report import build_report

    text = build_report(num_runs=args.runs, base_seed=args.seed)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def cmd_calibrate(args) -> int:
    from .perf import fit_to_table1

    result = fit_to_table1(max_nfev=args.max_nfev)
    print("fitted parameters:")
    for name in ("gpu_efficiency", "straggler_sigma", "mirrored_overhead_s",
                 "internode_overhead_s", "epoch_fixed_s", "startup_base_s",
                 "startup_per_node_s", "tune_trial_overhead_s"):
        print(f"  {name} = {getattr(result.params, name):.6g}")
    print(f"max |error| {result.max_abs_pct_error:.1f}%, "
          f"mean {result.mean_abs_pct_error:.1f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="distmis",
        description="DistMIS reproduction: distributed hyper-parameter "
                    "tuning for 3D medical image segmentation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="reproduce Table I").set_defaults(
        fn=cmd_table1
    )

    p = sub.add_parser("fig4", help="reproduce Figure 4 series")
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_fig4)

    p = sub.add_parser("train", help="train one configuration in-process")
    _add_scale_args(p)
    p.add_argument("--lr", type=float, default=3e-3)
    p.add_argument("--loss", default="dice",
                   choices=["dice", "quadratic_dice", "bce"])
    p.add_argument("--gpus", type=int, default=1,
                   help="virtual data-parallel replicas")
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("search", help="hyper-parameter search in-process")
    _add_scale_args(p)
    p.add_argument("--lr", type=float, nargs="+", default=[3e-3, 1e-3])
    p.add_argument("--losses", nargs="+", default=["dice"])
    p.add_argument("--method", default="experiment_parallel",
                   choices=["data_parallel", "experiment_parallel"])
    p.add_argument("--gpus", type=int, default=1)
    p.set_defaults(fn=cmd_search)

    p = sub.add_parser("simulate", help="price one cell on the simulator")
    p.add_argument("method",
                   choices=["data_parallel", "experiment_parallel", "hybrid"])
    p.add_argument("gpus", type=int)
    p.add_argument("--gpus-per-trial", type=int, default=None,
                   help="hybrid method: GPUs per trial (default: one node)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--trace", help="write a Chrome trace JSON here")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("profile", help="input-pipeline bottleneck report")
    p.add_argument("--subjects", type=int, default=6)
    p.add_argument("--volume", type=int, nargs=3, default=(48, 48, 32))
    p.add_argument("--epochs", type=int, default=3)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("summary", help="print the model's layer summary")
    p.add_argument("--base-filters", type=int, default=8)
    p.add_argument("--depth", type=int, default=4)
    p.add_argument("--volume", type=int, nargs=3, default=(16, 16, 16),
                   metavar=("D", "H", "W"),
                   help="probe volume for output shapes (paper: 240 240 152)")
    p.add_argument("--transpose-keeps-channels", action="store_true",
                   help="use the 410k-parameter synthesis variant")
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("report",
                       help="regenerate the full reproduction report")
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="write markdown here instead of stdout")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("calibrate", help="re-fit the cost model to Table I")
    p.add_argument("--max-nfev", type=int, default=300)
    p.set_defaults(fn=cmd_calibrate)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
