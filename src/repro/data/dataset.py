"""A ``tf.data``-style input pipeline.

The paper relies on the tf.data idioms -- *interleave* for parallel file
reading, *map* for the binarisation transform, *shuffle*, *batch* and
*prefetch* (Sections II-B3, III-B1).  This module reimplements that
pipeline algebra over plain Python iterables:

>>> ds = (Dataset.from_list(paths)
...         .interleave(read_record_file, cycle_length=4)
...         .map(parse_example)
...         .shuffle(buffer_size=16, seed=0)
...         .batch(2)
...         .prefetch(2))
>>> for batch in ds: ...

Transformations are lazy; each ``iter()`` restarts the pipeline.
``map``/``interleave`` accept ``num_parallel_calls`` to run the transform
in a thread pool (NumPy releases the GIL for the heavy kernels), and
``prefetch`` decouples the consumer with a background thread + bounded
queue -- the same overlap mechanics tf.data provides.  Every stage
records per-stage wall-clock into an optional :class:`PipelineStats`, the
hook the Section III-B1 bottleneck profiler uses.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator

import numpy as np

__all__ = ["Dataset", "PipelineStats"]


class PipelineStats:
    """Accumulated per-stage wall-clock seconds and element counts.

    When built with a telemetry hub every ``add`` is mirrored into the
    hub as a `pipeline_stage_*` metric sample plus a completed span, so
    the §III-B1 stage profile shows up in the Prometheus export and the
    merged Chrome trace.  The default hub is the process-wide one
    (usually the branch-free null sink), so un-instrumented callers pay
    one no-op call per element.
    """

    def __init__(self, telemetry=None):
        self.seconds: dict[str, float] = defaultdict(float)
        self.elements: dict[str, int] = defaultdict(int)
        if telemetry is None:
            from ..telemetry import get_hub

            telemetry = get_hub()
        self.telemetry = telemetry

    def add(self, stage: str, seconds: float, elements: int = 1) -> None:
        self.seconds[stage] += seconds
        self.elements[stage] += elements
        self.telemetry.on_stage(stage, seconds, elements)

    def report(self) -> list[tuple[str, float, int]]:
        """Stages sorted by total time, descending."""
        return sorted(
            ((k, self.seconds[k], self.elements[k]) for k in self.seconds),
            key=lambda t: -t[1],
        )

    def bottleneck(self) -> str | None:
        rep = self.report()
        return rep[0][0] if rep else None


class Dataset:
    """Lazy, restartable element stream with tf.data-style combinators."""

    def __init__(self, source: Callable[[], Iterator], stats: PipelineStats | None = None):
        self._source = source
        self.stats = stats

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_list(cls, items: list, stats: PipelineStats | None = None) -> "Dataset":
        items = list(items)
        return cls(lambda: iter(items), stats)

    @classmethod
    def from_generator(
        cls, factory: Callable[[], Iterable], stats: PipelineStats | None = None
    ) -> "Dataset":
        """``factory`` is called at every iteration to restart the stream."""
        return cls(lambda: iter(factory()), stats)

    @classmethod
    def range(cls, n: int) -> "Dataset":
        return cls.from_generator(lambda: range(n))

    # -- plumbing ---------------------------------------------------------
    def _derive(self, source: Callable[[], Iterator]) -> "Dataset":
        child = Dataset(source, self.stats)
        return child

    def with_stats(self, stats: PipelineStats) -> "Dataset":
        self.stats = stats
        return self

    def _record(self, stage: str, seconds: float, elements: int = 1) -> None:
        if self.stats is not None:
            self.stats.add(stage, seconds, elements)

    def __iter__(self) -> Iterator:
        return self._source()

    # -- transformations --------------------------------------------------
    def map(
        self,
        fn: Callable,
        num_parallel_calls: int = 1,
        stage: str = "map",
    ) -> "Dataset":
        """Apply ``fn`` to every element (optionally via a thread pool,
        preserving order, like tf.data's deterministic map)."""
        if num_parallel_calls < 1:
            raise ValueError("num_parallel_calls must be >= 1")

        if num_parallel_calls == 1:
            def gen():
                for item in self._source():
                    t0 = time.perf_counter()
                    out = fn(item)
                    self._record(stage, time.perf_counter() - t0)
                    yield out
        else:
            def gen():
                with ThreadPoolExecutor(max_workers=num_parallel_calls) as pool:
                    pending = []
                    it = self._source()
                    try:
                        for item in it:
                            pending.append(pool.submit(_timed, fn, item))
                            if len(pending) >= num_parallel_calls * 2:
                                out, dt = pending.pop(0).result()
                                self._record(stage, dt)
                                yield out
                        for fut in pending:
                            out, dt = fut.result()
                            self._record(stage, dt)
                            yield out
                    finally:
                        for fut in pending:
                            fut.cancel()
        return self._derive(gen)

    def interleave(
        self,
        fn: Callable[[object], Iterable],
        cycle_length: int = 2,
        stage: str = "interleave",
    ) -> "Dataset":
        """Map each element to a sub-stream and interleave the streams
        round-robin, tf.data semantics (deterministic order)."""
        if cycle_length < 1:
            raise ValueError("cycle_length must be >= 1")

        def gen():
            outer = self._source()
            active: list[Iterator] = []
            exhausted_outer = False
            while True:
                while not exhausted_outer and len(active) < cycle_length:
                    try:
                        item = next(outer)
                    except StopIteration:
                        exhausted_outer = True
                        break
                    t0 = time.perf_counter()
                    sub = iter(fn(item))
                    self._record(stage + ".open", time.perf_counter() - t0)
                    active.append(sub)
                if not active:
                    return
                still = []
                for sub in active:
                    try:
                        t0 = time.perf_counter()
                        val = next(sub)
                        self._record(stage, time.perf_counter() - t0)
                    except StopIteration:
                        continue
                    still.append(sub)
                    yield val
                active = still

        return self._derive(gen)

    @staticmethod
    def zip(*datasets: "Dataset") -> "Dataset":
        """Pair elements of several datasets positionally (tf.data
        ``zip``): stops at the shortest stream.  The idiom for
        (image_file, label_file) pairing before a joint decode."""
        if not datasets:
            raise ValueError("zip needs at least one dataset")

        def gen():
            iterators = [iter(d) for d in datasets]
            while True:
                row = []
                for it in iterators:
                    try:
                        row.append(next(it))
                    except StopIteration:
                        return
                yield tuple(row)

        return Dataset(gen, datasets[0].stats)

    def enumerate(self, start: int = 0) -> "Dataset":
        """Yield ``(index, element)`` pairs (tf.data ``enumerate``)."""

        def gen():
            i = start
            for item in self._source():
                yield (i, item)
                i += 1

        return self._derive(gen)

    def filter(self, predicate: Callable[[object], bool]) -> "Dataset":
        def gen():
            for item in self._source():
                if predicate(item):
                    yield item
        return self._derive(gen)

    def shuffle(self, buffer_size: int, seed: int | None = None) -> "Dataset":
        """Streaming shuffle with a reservoir buffer (tf.data semantics:
        uniform within the buffer window, not a global permutation)."""
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")

        def gen():
            rng = np.random.default_rng(seed)
            buf: list = []
            for item in self._source():
                buf.append(item)
                if len(buf) >= buffer_size:
                    idx = int(rng.integers(len(buf)))
                    buf[idx], buf[-1] = buf[-1], buf[idx]
                    yield buf.pop()
            while buf:
                idx = int(rng.integers(len(buf)))
                buf[idx], buf[-1] = buf[-1], buf[idx]
                yield buf.pop()

        return self._derive(gen)

    def batch(self, batch_size: int, drop_remainder: bool = False) -> "Dataset":
        """Group consecutive elements; ndarray elements are stacked."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")

        def gen():
            buf: list = []
            for item in self._source():
                buf.append(item)
                if len(buf) == batch_size:
                    yield _collate(buf)
                    buf = []
            if buf and not drop_remainder:
                yield _collate(buf)

        return self._derive(gen)

    def unbatch(self) -> "Dataset":
        def gen():
            for batch in self._source():
                items = _uncollate(batch)
                yield from items
        return self._derive(gen)

    def repeat(self, count: int | None = None) -> "Dataset":
        """Repeat the stream ``count`` times (None = forever)."""
        if count is not None and count < 1:
            raise ValueError("count must be >= 1 or None")

        def gen():
            n = 0
            while count is None or n < count:
                yielded = False
                for item in self._source():
                    yielded = True
                    yield item
                n += 1
                if not yielded:
                    return
        return self._derive(gen)

    def take(self, n: int) -> "Dataset":
        def gen():
            it = self._source()
            for _ in range(n):
                try:
                    yield next(it)
                except StopIteration:
                    return
        return self._derive(gen)

    def skip(self, n: int) -> "Dataset":
        def gen():
            it = self._source()
            for _ in range(n):
                try:
                    next(it)
                except StopIteration:
                    return
            yield from it
        return self._derive(gen)

    def shard(self, num_shards: int, index: int) -> "Dataset":
        """Every ``num_shards``-th element starting at ``index`` -- how
        subjects are partitioned across data-parallel workers."""
        if not 0 <= index < num_shards:
            raise ValueError(f"shard index {index} out of range [0, {num_shards})")

        def gen():
            for i, item in enumerate(self._source()):
                if i % num_shards == index:
                    yield item
        return self._derive(gen)

    def cache(self) -> "Dataset":
        """Materialise the stream on first pass; replay from memory after
        (tf.data ``cache()``, the complement of offline binarisation).

        The cache fills *incrementally*: every element is appended to
        shared storage as soon as it is produced, so a concurrent second
        iterator serves the cached prefix immediately (instead of
        blocking for the whole first epoch) and an abandoned first pass
        leaves a warm partial cache -- the next iterator skips the
        cached prefix of the source and produces only the remainder.
        Exactly one iterator at a time holds the producer role; the
        others serve from storage and wait on a condition for growth.
        """
        storage: list = []
        state = {"done": False, "producing": False}
        cond = threading.Condition()
        _PRODUCE = object()  # sentinel: this iterator must pull the source

        def gen():
            i = 0
            it = None  # non-None iff this iterator holds the producer role
            try:
                while True:
                    item = _PRODUCE
                    with cond:
                        if i < len(storage):
                            item = storage[i]
                            i += 1
                        elif state["done"]:
                            return
                        elif state["producing"] and it is None:
                            # Another iterator is filling the cache; wait
                            # for growth (timeout guards a producer that
                            # died without notifying).
                            cond.wait(timeout=0.1)
                            continue
                        else:
                            state["producing"] = True
                    if item is not _PRODUCE:
                        yield item
                        continue
                    # Producer path: pull one element outside the lock.
                    if it is None:
                        it = self._source()
                        # Resume after a partial first pass: the cached
                        # prefix is served from storage, so skip it in
                        # the restarted (deterministic) source.
                        for _ in range(i):
                            next(it)
                    try:
                        nxt = next(it)
                    except StopIteration:
                        with cond:
                            state["done"] = True
                            state["producing"] = False
                            cond.notify_all()
                        return
                    with cond:
                        storage.append(nxt)
                        cond.notify_all()
            finally:
                if it is not None:
                    with cond:
                        if not state["done"]:
                            state["producing"] = False
                            cond.notify_all()

        return self._derive(gen)

    def prefetch(self, buffer_size: int = 1) -> "Dataset":
        """Produce elements on a background thread into a bounded queue,
        overlapping producer and consumer (tf.data ``prefetch``).

        The worker thread shuts down cleanly when the consumer abandons
        the iterator early (``take(n)`` downstream, an exception, GC):
        closing the generator sets a stop event and drains the queue, so
        a producer blocked on ``put`` wakes, notices, and exits instead
        of leaking a thread blocked forever.
        """
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")

        def gen():
            q: queue.Queue = queue.Queue(maxsize=buffer_size)
            sentinel = object()
            stop = threading.Event()
            error: list[BaseException] = []

            def worker():
                try:
                    for item in self._source():
                        while not stop.is_set():
                            try:
                                q.put(item, timeout=0.05)
                                break
                            except queue.Full:
                                continue
                        if stop.is_set():
                            return
                except BaseException as exc:  # propagate to the consumer
                    error.append(exc)
                finally:
                    try:
                        q.put_nowait(sentinel)
                    except queue.Full:
                        pass  # consumer is gone and draining

            t = threading.Thread(target=worker, daemon=True)
            t.start()
            try:
                while True:
                    # consumer-side stall: how long the training loop sat
                    # waiting on the producer thread (prefetch depth too
                    # small, or the upstream pipeline too slow)
                    t0 = time.perf_counter()
                    item = q.get()
                    self._record("prefetch.wait", time.perf_counter() - t0)
                    if item is sentinel:
                        if error:
                            raise error[0]
                        return
                    yield item
            finally:
                stop.set()
                while True:  # unblock a producer stuck on a full queue
                    try:
                        q.get_nowait()
                    except queue.Empty:
                        break
                t.join(timeout=1.0)

        return self._derive(gen)

    # -- terminals ----------------------------------------------------------
    def to_list(self) -> list:
        return list(self)

    def count(self) -> int:
        return sum(1 for _ in self)

    def reduce(self, initial, fn: Callable):
        acc = initial
        for item in self:
            acc = fn(acc, item)
        return acc


def _timed(fn, item):
    t0 = time.perf_counter()
    out = fn(item)
    return out, time.perf_counter() - t0


def _collate(items: list):
    """Stack ndarray (or tuple/dict of ndarray) elements into a batch."""
    first = items[0]
    if isinstance(first, np.ndarray):
        return np.stack(items)
    if isinstance(first, tuple):
        return tuple(_collate([it[i] for it in items]) for i in range(len(first)))
    if isinstance(first, dict):
        return {k: _collate([it[k] for it in items]) for k in first}
    return list(items)


def _uncollate(batch):
    if isinstance(batch, np.ndarray):
        return [batch[i] for i in range(batch.shape[0])]
    if isinstance(batch, tuple):
        parts = [_uncollate(b) for b in batch]
        return [tuple(p[i] for p in parts) for i in range(len(parts[0]))]
    if isinstance(batch, dict):
        keys = list(batch)
        parts = {k: _uncollate(batch[k]) for k in keys}
        n = len(parts[keys[0]])
        return [{k: parts[k][i] for k in keys} for i in range(n)]
    return list(batch)
