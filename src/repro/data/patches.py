"""Sub-volume patch extraction and stitching.

The paper's central design argument (Sections I, II-A) is that the
*common* way to fit 3D MRI into GPU memory -- training on sampled
sub-volume patches -- "loses spatial information ... and has very poor
performing time for both training and inference", whereas their
full-volume pipeline keeps accuracy and converges faster.  To make that
comparison runnable (experiment E11), this module implements the
sub-patch baseline:

* :func:`patch_grid` / :func:`extract_patches` -- tile a channels-first
  volume into (optionally overlapping) patches;
* :func:`stitch_patches` -- reassemble patch predictions into a full
  volume, averaging overlaps (the standard sliding-window inference);
* :func:`sample_random_patches` -- the training-time sampler, with the
  usual foreground-biased sampling so tumour voxels are seen despite
  class imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PatchSpec",
    "patch_grid",
    "extract_patches",
    "stitch_patches",
    "sample_random_patches",
]


@dataclass(frozen=True)
class PatchSpec:
    """Geometry of a patching scheme."""

    patch_shape: tuple[int, int, int]
    stride: tuple[int, int, int]

    def __post_init__(self):
        if any(p < 1 for p in self.patch_shape):
            raise ValueError("patch dims must be >= 1")
        if any(s < 1 for s in self.stride):
            raise ValueError("strides must be >= 1")
        if any(s > p for s, p in zip(self.stride, self.patch_shape)):
            raise ValueError(
                "stride larger than patch would leave voxels uncovered"
            )


def patch_grid(
    volume_shape: tuple[int, int, int], spec: PatchSpec
) -> list[tuple[int, int, int]]:
    """Start offsets of a grid covering the whole volume.

    The final patch along each axis is clamped so it ends exactly at the
    boundary (standard sliding-window behaviour), so every voxel is
    covered even when stride does not divide the extent.
    """
    starts = []
    for dim, p, s in zip(volume_shape, spec.patch_shape, spec.stride):
        if p > dim:
            raise ValueError(f"patch dim {p} exceeds volume dim {dim}")
        axis = list(range(0, dim - p + 1, s))
        if axis[-1] != dim - p:
            axis.append(dim - p)
        starts.append(axis)
    return [
        (d, h, w)
        for d in starts[0]
        for h in starts[1]
        for w in starts[2]
    ]


def extract_patches(
    volume: np.ndarray, spec: PatchSpec
) -> tuple[np.ndarray, list[tuple[int, int, int]]]:
    """Tile a ``(C, D, H, W)`` volume; returns (patches, offsets) with
    patches of shape ``(N, C, *patch_shape)``."""
    if volume.ndim != 4:
        raise ValueError(f"expected (C, D, H, W), got {volume.shape}")
    offsets = patch_grid(volume.shape[1:], spec)
    pd, ph, pw = spec.patch_shape
    patches = np.stack(
        [
            volume[:, d : d + pd, h : h + ph, w : w + pw]
            for d, h, w in offsets
        ]
    )
    return patches, offsets


def stitch_patches(
    patches: np.ndarray,
    offsets: list[tuple[int, int, int]],
    volume_shape: tuple[int, int, int],
) -> np.ndarray:
    """Average overlapping patch predictions back into a full volume.

    ``patches`` is ``(N, C, pd, ph, pw)``; returns ``(C, D, H, W)``.
    """
    if len(patches) != len(offsets):
        raise ValueError("patch/offset count mismatch")
    c = patches.shape[1]
    pd, ph, pw = patches.shape[2:]
    acc = np.zeros((c, *volume_shape), dtype=np.float64)
    weight = np.zeros(volume_shape, dtype=np.float64)
    for patch, (d, h, w) in zip(patches, offsets):
        acc[:, d : d + pd, h : h + ph, w : w + pw] += patch
        weight[d : d + pd, h : h + ph, w : w + pw] += 1.0
    if (weight == 0).any():
        raise ValueError("stitching left uncovered voxels")
    return (acc / weight[None]).astype(patches.dtype)


def sample_random_patches(
    image: np.ndarray,
    mask: np.ndarray,
    patch_shape: tuple[int, int, int],
    num_patches: int,
    rng: np.random.Generator,
    foreground_fraction: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Training-time patch sampler with foreground bias.

    A ``foreground_fraction`` of the patches are centred on a random
    tumour voxel (when any exists) so the heavily imbalanced positive
    class is actually sampled; the rest are uniform.  Returns
    ``(image_patches, mask_patches)`` of shapes ``(N, C, *p)`` and
    ``(N, 1, *p)``.
    """
    if not 0.0 <= foreground_fraction <= 1.0:
        raise ValueError("foreground_fraction must be in [0, 1]")
    if num_patches < 1:
        raise ValueError("num_patches must be >= 1")
    spatial = image.shape[1:]
    pd, ph, pw = patch_shape
    if any(p > s for p, s in zip(patch_shape, spatial)):
        raise ValueError("patch larger than volume")

    fg = np.argwhere(mask[0] > 0.5)
    imgs, msks = [], []
    for i in range(num_patches):
        use_fg = fg.size > 0 and rng.random() < foreground_fraction
        if use_fg:
            centre = fg[int(rng.integers(len(fg)))]
            start = [
                int(np.clip(c - p // 2, 0, s - p))
                for c, p, s in zip(centre, patch_shape, spatial)
            ]
        else:
            start = [
                int(rng.integers(0, s - p + 1))
                for p, s in zip(patch_shape, spatial)
            ]
        d, h, w = start
        imgs.append(image[:, d : d + pd, h : h + ph, w : w + pw])
        msks.append(mask[:, d : d + pd, h : h + ph, w : w + pw])
    return np.stack(imgs), np.stack(msks)
