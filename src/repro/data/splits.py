"""Train / validation / test splitting (paper: 70% / 15% / 15%)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DatasetSplit", "split_indices", "PAPER_FRACTIONS"]

PAPER_FRACTIONS = (0.70, 0.15, 0.15)


@dataclass(frozen=True)
class DatasetSplit:
    """Index partitions of a cohort."""

    train: tuple[int, ...]
    val: tuple[int, ...]
    test: tuple[int, ...]

    def __post_init__(self):
        all_idx = list(self.train) + list(self.val) + list(self.test)
        if len(set(all_idx)) != len(all_idx):
            raise ValueError("split partitions overlap")

    @property
    def sizes(self) -> tuple[int, int, int]:
        return (len(self.train), len(self.val), len(self.test))

    def total(self) -> int:
        return sum(self.sizes)


def split_indices(
    num_items: int,
    fractions: tuple[float, float, float] = PAPER_FRACTIONS,
    seed: int | None = 0,
) -> DatasetSplit:
    """Randomly partition ``range(num_items)``.

    Fractions must sum to 1 (within rounding); sizes are assigned by
    floor-then-distribute so every item lands in exactly one partition.
    With the paper's 484 subjects and 70/15/15 this gives 338/73/73.
    """
    if num_items < 3:
        raise ValueError("need at least 3 items to build a 3-way split")
    if len(fractions) != 3:
        raise ValueError("fractions must have exactly 3 entries")
    if any(f <= 0 for f in fractions):
        raise ValueError("all fractions must be positive")
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError(f"fractions must sum to 1, got {sum(fractions)}")

    order = np.arange(num_items)
    if seed is not None:
        np.random.default_rng(seed).shuffle(order)

    n_train = int(num_items * fractions[0])
    n_val = int(num_items * fractions[1])
    # Remainder goes to test; guarantee every partition is non-empty.
    n_train = max(1, n_train)
    n_val = max(1, n_val)
    if n_train + n_val >= num_items:
        n_train, n_val = num_items - 2, 1

    train = tuple(int(i) for i in order[:n_train])
    val = tuple(int(i) for i in order[n_train : n_train + n_val])
    test = tuple(int(i) for i in order[n_train + n_val :])
    return DatasetSplit(train=train, val=val, test=test)
