"""Minimal NIfTI-1 reader/writer.

The MSD data ships as NIfTI (the paper's Section I cites the format as
one of the non-trivial ingestion steps), so the reproduction includes a
real single-file NIfTI-1 implementation: the standard 348-byte header,
``vox_offset`` 352, magic ``n+1``, and a useful subset of datatypes.
Optionally gzip-compressed (``.nii.gz``), like the originals.

Only the fields the pipeline needs are interpreted (dim, datatype,
pixdim, scl_slope/inter); everything else is written as zeros, which
conformant readers accept.
"""

from __future__ import annotations

import gzip
import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["NiftiImage", "read_nifti", "write_nifti", "NIFTI_DTYPES"]

_HDR_SIZE = 348
_VOX_OFFSET = 352.0
_MAGIC = b"n+1\x00"

# NIfTI-1 datatype codes -> numpy dtypes (subset).
NIFTI_DTYPES = {
    2: np.dtype(np.uint8),
    4: np.dtype(np.int16),
    8: np.dtype(np.int32),
    16: np.dtype(np.float32),
    64: np.dtype(np.float64),
    256: np.dtype(np.int8),
    512: np.dtype(np.uint16),
}
_DTYPE_CODES = {v: k for k, v in NIFTI_DTYPES.items()}


@dataclass
class NiftiImage:
    """In-memory NIfTI volume: data plus the header fields we keep."""

    data: np.ndarray
    spacing: tuple[float, ...] = (1.0, 1.0, 1.0)
    description: str = ""

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape


def write_nifti(path, image: NiftiImage | np.ndarray, spacing=None,
                description: str = "") -> Path:
    """Serialise a volume to ``.nii`` (or ``.nii.gz`` by extension).

    Arrays of up to 7 dimensions are supported (NIfTI dim[0] limit).
    """
    path = Path(path)
    if isinstance(image, np.ndarray):
        image = NiftiImage(
            data=image,
            spacing=tuple(spacing) if spacing else (1.0,) * min(image.ndim, 3),
            description=description,
        )
    data = np.ascontiguousarray(image.data)
    if data.ndim < 1 or data.ndim > 7:
        raise ValueError(f"NIfTI supports 1..7 dims, got {data.ndim}")
    try:
        code = _DTYPE_CODES[data.dtype]
    except KeyError:
        raise ValueError(
            f"dtype {data.dtype} not supported; use one of "
            f"{sorted(str(d) for d in _DTYPE_CODES)}"
        ) from None

    dim = [data.ndim] + list(data.shape) + [1] * (7 - data.ndim)
    pixdim = [0.0] + list(image.spacing) + [1.0] * (7 - len(image.spacing))
    pixdim = pixdim[:8]

    hdr = bytearray(_HDR_SIZE)
    struct.pack_into("<i", hdr, 0, _HDR_SIZE)            # sizeof_hdr
    struct.pack_into("<8h", hdr, 40, *dim)               # dim
    struct.pack_into("<h", hdr, 70, code)                # datatype
    struct.pack_into("<h", hdr, 72, data.dtype.itemsize * 8)  # bitpix
    struct.pack_into("<8f", hdr, 76, *pixdim)            # pixdim
    struct.pack_into("<f", hdr, 108, _VOX_OFFSET)        # vox_offset
    struct.pack_into("<f", hdr, 112, 1.0)                # scl_slope
    struct.pack_into("<f", hdr, 116, 0.0)                # scl_inter
    desc = image.description.encode()[:80]
    hdr[148 : 148 + len(desc)] = desc                    # descrip
    hdr[344:348] = _MAGIC                                # magic

    payload = bytes(hdr) + b"\x00" * 4 + data.tobytes()  # 4-byte extension pad
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wb") as f:
        f.write(payload)
    return path


def read_nifti(path) -> NiftiImage:
    """Load a ``.nii`` / ``.nii.gz`` file written by any NIfTI-1 writer
    (little-endian, uncompressed-in-file data, supported datatype)."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rb") as f:
        blob = f.read()
    if len(blob) < _HDR_SIZE + 4:
        raise ValueError(f"{path} too small to be a NIfTI-1 file")
    (sizeof_hdr,) = struct.unpack_from("<i", blob, 0)
    if sizeof_hdr != _HDR_SIZE:
        raise ValueError(
            f"{path}: bad sizeof_hdr {sizeof_hdr} (big-endian or not NIfTI-1?)"
        )
    magic = blob[344:348]
    if magic not in (b"n+1\x00", b"ni1\x00"):
        raise ValueError(f"{path}: bad NIfTI magic {magic!r}")

    dim = struct.unpack_from("<8h", blob, 40)
    ndim = dim[0]
    if not 1 <= ndim <= 7:
        raise ValueError(f"{path}: invalid dim[0]={ndim}")
    shape = tuple(dim[1 : 1 + ndim])

    (datatype,) = struct.unpack_from("<h", blob, 70)
    try:
        dtype = NIFTI_DTYPES[datatype]
    except KeyError:
        raise ValueError(f"{path}: unsupported datatype code {datatype}") from None

    pixdim = struct.unpack_from("<8f", blob, 76)
    (vox_offset,) = struct.unpack_from("<f", blob, 108)
    (scl_slope,) = struct.unpack_from("<f", blob, 112)
    (scl_inter,) = struct.unpack_from("<f", blob, 116)
    descrip = blob[148:228].split(b"\x00", 1)[0].decode(errors="replace")

    offset = int(vox_offset) if vox_offset else _HDR_SIZE + 4
    count = int(np.prod(shape))
    data = np.frombuffer(blob, dtype=dtype, count=count, offset=offset)
    data = data.reshape(shape).copy()
    if scl_slope not in (0.0, 1.0) or scl_inter != 0.0:
        data = data * scl_slope + scl_inter

    spacing = tuple(float(p) for p in pixdim[1 : 1 + min(ndim, 3)])
    return NiftiImage(data=data, spacing=spacing, description=descrip)
