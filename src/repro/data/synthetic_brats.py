"""Synthetic MSD Task 1 (BraTS-like) dataset generator.

The paper benchmarks on the Medical Segmentation Decathlon "Task 1"
brain-tumour set: 484 multi-modal MRI subjects (FLAIR, T1w, T1gd, T2w),
volume size 240x240x155 at 1 mm isotropic spacing, with 4-class ground
truth (background / enhancing tumour / non-enhancing tumour / edema)
(Section IV-A).  That dataset cannot be downloaded here, so this module
generates a *structurally equivalent* synthetic cohort:

* an ellipsoidal "brain" with smooth low-frequency intensity texture,
* a tumour composed of three nested regions -- an enhancing core, a
  non-enhancing rim and a surrounding edema shell -- so the 4-class label
  map and the "join the three positive classes" binarisation of the paper
  are both exercised,
* four channels derived from the same anatomy with modality-specific
  contrast (e.g. edema bright on FLAIR/T2w, core bright on T1gd), plus
  per-channel noise.

Shapes, dtypes, class semantics and per-channel standardisation all match
the paper's pipeline; only the clinical content is synthetic, which is
irrelevant to the scheduling/throughput claims and sufficient for the
learning claims (the tumours are learnable from local intensity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

try:
    from scipy.ndimage import gaussian_filter
except ImportError:  # pragma: no cover - scipy is a hard dependency
    gaussian_filter = None

__all__ = [
    "MODALITIES",
    "CLASS_NAMES",
    "PAPER_VOLUME_SHAPE",
    "PAPER_NUM_SUBJECTS",
    "Subject",
    "SyntheticBraTS",
]

MODALITIES = ("FLAIR", "T1w", "T1gd", "T2w")
CLASS_NAMES = ("background", "enhancing", "non-enhancing", "edema")
PAPER_VOLUME_SHAPE = (240, 240, 155)
PAPER_NUM_SUBJECTS = 484


@dataclass
class Subject:
    """One multi-modal MRI subject.

    Attributes
    ----------
    subject_id:
        Stable identifier, e.g. ``"BRATS_0007"``.
    image:
        ``(4, D, H, W)`` float32 channels-first volume (modality order as
        in :data:`MODALITIES`).
    label:
        ``(D, H, W)`` uint8 map with values 0..3 (:data:`CLASS_NAMES`).
    spacing:
        Voxel size in mm (the MSD set is 1.0 isotropic).
    """

    subject_id: str
    image: np.ndarray
    label: np.ndarray
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0)
    meta: dict = field(default_factory=dict)

    @property
    def volume_shape(self) -> tuple[int, int, int]:
        return tuple(self.label.shape)

    def binary_label(self) -> np.ndarray:
        """Whole-tumour mask: the paper joins the three non-background
        classes into a single positive label (Section IV-A)."""
        return (self.label > 0).astype(np.uint8)

    def nbytes(self) -> int:
        return int(self.image.nbytes + self.label.nbytes)


def _ellipsoid_mask(shape, center, radii) -> np.ndarray:
    grids = np.ogrid[tuple(slice(0, s) for s in shape)]
    acc = np.zeros(shape, dtype=np.float64)
    for g, c, r in zip(grids, center, radii):
        acc = acc + ((g - c) / max(r, 1e-6)) ** 2
    return acc <= 1.0


class SyntheticBraTS:
    """Seeded generator of BraTS-like subjects.

    Parameters
    ----------
    num_subjects:
        Cohort size (paper: 484).
    volume_shape:
        Spatial size; defaults to a small shape suitable for in-process
        training.  Pass :data:`PAPER_VOLUME_SHAPE` for full-scale I/O
        experiments.
    seed:
        Base seed; subject ``i`` is generated from ``seed + i`` so any
        subject can be produced independently and reproducibly (a
        requirement for sharding subjects across workers).
    tumor_probability:
        Fraction of subjects with a tumour (a handful of negatives keeps
        the Dice-on-empty edge cases exercised).
    """

    def __init__(
        self,
        num_subjects: int = 32,
        volume_shape: tuple[int, int, int] = (24, 24, 16),
        seed: int = 0,
        tumor_probability: float = 0.95,
        noise_sigma: float = 0.08,
    ):
        if num_subjects < 1:
            raise ValueError("num_subjects must be >= 1")
        if len(volume_shape) != 3 or any(s < 8 for s in volume_shape):
            raise ValueError(
                f"volume_shape must be 3 dims of at least 8 voxels, got {volume_shape}"
            )
        if not 0.0 <= tumor_probability <= 1.0:
            raise ValueError("tumor_probability must be in [0, 1]")
        self.num_subjects = int(num_subjects)
        self.volume_shape = tuple(int(s) for s in volume_shape)
        self.seed = int(seed)
        self.tumor_probability = float(tumor_probability)
        self.noise_sigma = float(noise_sigma)

    def __len__(self) -> int:
        return self.num_subjects

    def subject_ids(self) -> list[str]:
        return [f"BRATS_{i:04d}" for i in range(self.num_subjects)]

    def generate(self, index: int) -> Subject:
        """Generate subject ``index`` deterministically."""
        if not 0 <= index < self.num_subjects:
            raise IndexError(
                f"subject index {index} out of range [0, {self.num_subjects})"
            )
        rng = np.random.default_rng(self.seed * 1_000_003 + index)
        shape = self.volume_shape
        D, H, W = shape

        # --- anatomy: brain ellipsoid with smooth texture -------------
        center = np.array(shape) / 2.0 + rng.uniform(-1.5, 1.5, size=3)
        radii = np.array(shape) * rng.uniform(0.36, 0.44, size=3)
        brain = _ellipsoid_mask(shape, center, radii)

        texture = rng.normal(size=shape)
        if gaussian_filter is not None:
            texture = gaussian_filter(texture, sigma=max(2.0, min(shape) / 8))
        texture = (texture - texture.mean()) / (texture.std() + 1e-9)

        # --- tumour: nested core / rim / edema -------------------------
        label = np.zeros(shape, dtype=np.uint8)
        has_tumor = rng.random() < self.tumor_probability
        if has_tumor:
            # Place the tumour well inside the brain.
            t_center = center + rng.uniform(-0.2, 0.2, size=3) * radii
            base_r = rng.uniform(0.4, 0.65) * radii.min()
            edema = _ellipsoid_mask(shape, t_center, (base_r,) * 3) & brain
            rim = _ellipsoid_mask(shape, t_center, (base_r * 0.72,) * 3) & brain
            core = _ellipsoid_mask(shape, t_center, (base_r * 0.45,) * 3) & brain
            label[edema] = 3
            label[rim] = 2
            label[core] = 1

        # --- modalities -------------------------------------------------
        # Contrast table: (brain, edema, rim, core) mean intensity per
        # modality, loosely mimicking real MRI appearance.
        contrast = {
            "FLAIR": (0.45, 0.95, 0.80, 0.70),
            "T1w": (0.60, 0.40, 0.35, 0.30),
            "T1gd": (0.60, 0.45, 0.50, 0.98),
            "T2w": (0.50, 0.90, 0.75, 0.60),
        }
        image = np.zeros((len(MODALITIES), *shape), dtype=np.float32)
        masks = (brain, label == 3, label == 2, label == 1)
        for c, mod in enumerate(MODALITIES):
            vol = np.zeros(shape, dtype=np.float64)
            for level, mask in zip(contrast[mod], masks):
                vol[mask] = level
            vol += 0.1 * texture * brain
            vol += rng.normal(scale=self.noise_sigma, size=shape) * brain
            image[c] = vol.astype(np.float32)

        return Subject(
            subject_id=f"BRATS_{index:04d}",
            image=image,
            label=label,
            meta={"has_tumor": bool(has_tumor), "seed": self.seed},
        )

    def __iter__(self):
        for i in range(self.num_subjects):
            yield self.generate(i)

    def __getitem__(self, index: int) -> Subject:
        return self.generate(index)
