"""Data augmentation for 3D MRI volumes.

The paper's input data is fixed per epoch (the premise of offline
binarisation), so augmentation is the standard *online* complement:
cheap, label-consistent transforms applied after the record read.  All
transforms are seeded and operate on channels-first ``(C, D, H, W)``
images paired with ``(1, D, H, W)`` masks.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "random_flip",
    "random_intensity_shift",
    "random_intensity_scale",
    "random_gaussian_noise",
    "Augmenter",
]

Transform = Callable[
    [np.ndarray, np.ndarray, np.random.Generator],
    tuple[np.ndarray, np.ndarray],
]


def _check(image: np.ndarray, mask: np.ndarray) -> None:
    if image.ndim != 4 or mask.ndim != 4:
        raise ValueError("expected channels-first 4-D image and mask")
    if image.shape[1:] != mask.shape[1:]:
        raise ValueError(
            f"image/mask spatial mismatch: {image.shape} vs {mask.shape}"
        )


def random_flip(axes: Sequence[int] = (1, 2, 3), p: float = 0.5) -> Transform:
    """Mirror image AND mask along each spatial axis with prob ``p``.

    Anatomically safe for left/right on brain MRI; the synthetic task is
    fully symmetric so all three axes default on.
    """
    axes = tuple(axes)
    if any(a not in (1, 2, 3) for a in axes):
        raise ValueError("flip axes must be spatial (1, 2 or 3)")

    def apply(image, mask, rng):
        _check(image, mask)
        for axis in axes:
            if rng.random() < p:
                image = np.flip(image, axis=axis)
                mask = np.flip(mask, axis=axis)
        return np.ascontiguousarray(image), np.ascontiguousarray(mask)

    return apply


def random_intensity_shift(max_shift: float = 0.1) -> Transform:
    """Add a per-channel constant drawn from U(-max_shift, max_shift);
    the mask is untouched (intensity changes never move labels)."""
    if max_shift < 0:
        raise ValueError("max_shift must be >= 0")

    def apply(image, mask, rng):
        _check(image, mask)
        shift = rng.uniform(-max_shift, max_shift, size=(image.shape[0], 1, 1, 1))
        return image + shift.astype(image.dtype), mask

    return apply


def random_intensity_scale(max_factor: float = 0.1) -> Transform:
    """Multiply each channel by U(1-max_factor, 1+max_factor)."""
    if not 0 <= max_factor < 1:
        raise ValueError("max_factor must be in [0, 1)")

    def apply(image, mask, rng):
        _check(image, mask)
        scale = rng.uniform(
            1 - max_factor, 1 + max_factor, size=(image.shape[0], 1, 1, 1)
        )
        return image * scale.astype(image.dtype), mask

    return apply


def random_gaussian_noise(sigma: float = 0.05) -> Transform:
    """Additive white noise on the image only."""
    if sigma < 0:
        raise ValueError("sigma must be >= 0")

    def apply(image, mask, rng):
        _check(image, mask)
        noise = rng.normal(scale=sigma, size=image.shape)
        return (image + noise).astype(image.dtype), mask

    return apply


class Augmenter:
    """A seeded composition of transforms, applied in order.

    >>> aug = Augmenter([random_flip(), random_gaussian_noise(0.02)], seed=0)
    >>> image2, mask2 = aug(image, mask)

    Re-seeding with the same value replays the same augmentation
    sequence -- required for the reproducibility tests and for
    deterministic multi-worker sharding.
    """

    def __init__(self, transforms: Sequence[Transform], seed: int = 0):
        self.transforms = list(transforms)
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self.rng = np.random.default_rng(self.seed)

    def __call__(self, image: np.ndarray, mask: np.ndarray):
        for t in self.transforms:
            image, mask = t(image, mask, self.rng)
        return image, mask

    def map_fn(self):
        """Adapter for ``Dataset.map``: element = (image, mask) tuple."""
        def fn(example):
            image, mask = example
            return self(image, mask)
        return fn
