"""``repro.data`` -- dataset substrate.

Stands in for the MSD Task 1 download plus TensorFlow's input stack:
a seeded synthetic BraTS-like cohort (:mod:`~repro.data.synthetic_brats`),
a minimal NIfTI-1 codec (:mod:`~repro.data.nifti`), TFRecord-style framed
record files (:mod:`~repro.data.records`), a tf.data-style pipeline
(:mod:`~repro.data.dataset`), the paper's pre-processing transforms
(:mod:`~repro.data.preprocess`) and the 70/15/15 split
(:mod:`~repro.data.splits`).
"""

from .augment import (
    Augmenter,
    random_flip,
    random_gaussian_noise,
    random_intensity_scale,
    random_intensity_shift,
)
from .dataset import Dataset, PipelineStats
from .nifti import NiftiImage, read_nifti, write_nifti
from .patches import (
    PatchSpec,
    extract_patches,
    patch_grid,
    sample_random_patches,
    stitch_patches,
)
from .preprocess import (
    TrainingExample,
    center_crop,
    crop_to_divisible,
    merge_labels_binary,
    one_hot,
    preprocess_subject,
    standardize,
)
from .records import (
    IndexedRecordReader,
    RecordCorruptionError,
    RecordIndexError,
    RecordReader,
    RecordWriter,
    decode_example,
    encode_example,
    index_path_for,
    read_example_file,
    read_sharded_examples,
    write_example_file,
    write_sharded_examples,
)
from .splits import PAPER_FRACTIONS, DatasetSplit, split_indices
from .synthetic_brats import (
    CLASS_NAMES,
    MODALITIES,
    PAPER_NUM_SUBJECTS,
    PAPER_VOLUME_SHAPE,
    Subject,
    SyntheticBraTS,
)

__all__ = [
    "Dataset",
    "PipelineStats",
    "NiftiImage",
    "read_nifti",
    "write_nifti",
    "TrainingExample",
    "standardize",
    "center_crop",
    "crop_to_divisible",
    "merge_labels_binary",
    "one_hot",
    "preprocess_subject",
    "RecordWriter",
    "RecordReader",
    "IndexedRecordReader",
    "RecordCorruptionError",
    "RecordIndexError",
    "index_path_for",
    "encode_example",
    "decode_example",
    "write_example_file",
    "read_example_file",
    "write_sharded_examples",
    "read_sharded_examples",
    "DatasetSplit",
    "split_indices",
    "PAPER_FRACTIONS",
    "Subject",
    "SyntheticBraTS",
    "MODALITIES",
    "CLASS_NAMES",
    "PAPER_VOLUME_SHAPE",
    "PAPER_NUM_SUBJECTS",
    "PatchSpec",
    "patch_grid",
    "extract_patches",
    "stitch_patches",
    "sample_random_patches",
    "Augmenter",
    "random_flip",
    "random_intensity_shift",
    "random_intensity_scale",
    "random_gaussian_noise",
]
